// Unit tests of the four cuSZp stages in isolation.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/core/stages.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

TEST(Quantize, RoundsToNearestBin) {
  const std::vector<float> in = {0.0f, 0.09f, 0.11f, -0.29f, 1.0f};
  std::vector<std::int32_t> out(in.size());
  quantize(in, 0.1, out);  // bin = 0.2
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);   // 0.09/0.2 = 0.45 -> 0
  EXPECT_EQ(out[2], 1);   // 0.11/0.2 = 0.55 -> 1
  EXPECT_EQ(out[3], -1);  // -1.45 -> -1
  EXPECT_EQ(out[4], 5);
}

TEST(Quantize, ErrorWithinBound) {
  Rng rng(3);
  std::vector<float> in(10000);
  for (auto& v : in) v = static_cast<float>(rng.normal() * 100);
  std::vector<std::int32_t> q(in.size());
  std::vector<float> back(in.size());
  const double eb = 0.05;
  quantize(in, eb, q);
  dequantize(q, eb, back);
  for (size_t i = 0; i < in.size(); ++i) {
    ASSERT_LE(std::abs(back[i] - in[i]), eb + 1e-9);
  }
}

TEST(Quantize, ThrowsWhenMagnitudeTooLargeForBound) {
  const std::vector<float> in = {1e20f};
  std::vector<std::int32_t> out(1);
  EXPECT_THROW(quantize(in, 1e-6, out), format_error);
}

TEST(Lorenzo, ForwardInverseIdentity) {
  Rng rng(4);
  std::vector<std::int32_t> v(256);
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.next_below(1u << 29)) - (1 << 28);
  }
  auto w = v;
  lorenzo_forward(w);
  lorenzo_inverse(w);
  EXPECT_EQ(w, v);
}

TEST(Lorenzo, DeltasOfConstantRunAreZero) {
  std::vector<std::int32_t> v = {7, 7, 7, 7, 7};
  lorenzo_forward(v);
  EXPECT_EQ(v, (std::vector<std::int32_t>{7, 0, 0, 0, 0}));
}

TEST(Lorenzo, ExtremeValuesDoNotOverflow) {
  // The quantizer guarantees |r| <= 2^29; the worst delta is +-2^30.
  std::vector<std::int32_t> v = {1 << 29, -(1 << 29), 1 << 29};
  lorenzo_forward(v);
  EXPECT_EQ(v[1], -(1 << 30));
  EXPECT_EQ(v[2], 1 << 30);
  lorenzo_inverse(v);
  EXPECT_EQ(v, (std::vector<std::int32_t>{1 << 29, -(1 << 29), 1 << 29}));
}

TEST(Signs, SplitApplyRoundtrip) {
  Rng rng(5);
  std::vector<std::int32_t> v(64);
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.next_below(1u << 30)) - (1 << 29);
  }
  std::vector<std::uint32_t> mags(v.size());
  std::vector<byte_t> signs(v.size() / 8);
  split_signs(v, mags, signs);
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(mags[i], static_cast<std::uint32_t>(std::abs(
                           static_cast<std::int64_t>(v[i]))));
  }
  std::vector<std::int32_t> back(v.size());
  apply_signs(mags, signs, back);
  EXPECT_EQ(back, v);
}

TEST(Signs, LayoutBitPerElement) {
  std::vector<std::int32_t> v(16, 1);
  v[3] = -1;
  v[9] = -5;
  std::vector<std::uint32_t> mags(16);
  std::vector<byte_t> signs(2);
  split_signs(v, mags, signs);
  EXPECT_EQ(signs[0], 1u << 3);
  EXPECT_EQ(signs[1], 1u << 1);  // element 9 = byte 1 bit 1
}

TEST(FixedLength, PaperExample) {
  // Paper §4.2: block {1,2,5,11,2,0,0,1} -> max 11 -> 4 bits.
  const std::vector<std::uint32_t> mags = {1, 2, 5, 11, 2, 0, 0, 1};
  EXPECT_EQ(fixed_length_of(mags), 4u);
}

TEST(FixedLength, Cases) {
  EXPECT_EQ(fixed_length_of(std::vector<std::uint32_t>{0, 0, 0}), 0u);
  EXPECT_EQ(fixed_length_of(std::vector<std::uint32_t>{1}), 1u);
  EXPECT_EQ(fixed_length_of(std::vector<std::uint32_t>{0, 128}), 8u);
  EXPECT_EQ(fixed_length_of(std::vector<std::uint32_t>{0x40000000u}), 31u);
}

class ShuffleWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShuffleWidth, BitShuffleBijection) {
  const unsigned f = GetParam();
  Rng rng(f * 31 + 7);
  for (const size_t L : {8u, 32u, 64u, 128u}) {
    std::vector<std::uint32_t> mags(L);
    const std::uint32_t mask =
        f >= 32 ? ~0u : ((1u << f) - 1);
    for (auto& m : mags) {
      m = static_cast<std::uint32_t>(rng.next_u64()) & mask;
    }
    std::vector<byte_t> planes(f * L / 8 + 1, byte_t{0});
    bit_shuffle(mags, f, planes);
    std::vector<std::uint32_t> back(L, 999);
    bit_unshuffle(planes, f, back);
    ASSERT_EQ(back, mags) << "L=" << L << " f=" << f;
  }
}

TEST_P(ShuffleWidth, BitPackBijection) {
  const unsigned f = GetParam();
  Rng rng(f * 131 + 3);
  const size_t L = 32;
  std::vector<std::uint32_t> mags(L);
  const std::uint32_t mask = f >= 32 ? ~0u : ((1u << f) - 1);
  for (auto& m : mags) {
    m = static_cast<std::uint32_t>(rng.next_u64()) & mask;
  }
  std::vector<byte_t> packed(f * L / 8 + 8, byte_t{0});
  bit_pack(mags, f, packed);
  std::vector<std::uint32_t> back(L, 999);
  bit_unpack(packed, f, back);
  EXPECT_EQ(back, mags);
}

INSTANTIATE_TEST_SUITE_P(Widths, ShuffleWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u,
                                           12u, 15u, 16u, 17u, 21u, 24u, 27u,
                                           30u, 31u));

TEST(Shuffle, PaperFigure11Layout) {
  // Fig. 11: plane k byte j holds bit k of elements 8j..8j+7, bit position
  // within the byte = element offset.
  std::vector<std::uint32_t> mags(8, 0);
  mags[0] = 0b1;    // element 0 contributes to plane 0
  mags[3] = 0b10;   // element 3 contributes to plane 1
  std::vector<byte_t> planes(2, byte_t{0});
  bit_shuffle(mags, 2, planes);
  EXPECT_EQ(planes[0], 1u << 0);  // plane 0: element 0
  EXPECT_EQ(planes[1], 1u << 3);  // plane 1: element 3
}

TEST(Shuffle, ZeroPlanesIsEmpty) {
  std::vector<std::uint32_t> mags(32, 0);
  std::vector<byte_t> planes(1, byte_t{0xFF});
  bit_shuffle(mags, 0, std::span<byte_t>(planes.data(), 0));
  std::vector<std::uint32_t> back(32, 7);
  bit_unshuffle(std::span<const byte_t>(planes.data(), 0), 0, back);
  for (const auto m : back) EXPECT_EQ(m, 0u);
}

}  // namespace
}  // namespace szp::core
