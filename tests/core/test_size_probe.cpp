// exact_compressed_bytes: the dry-run size probe must match the real
// stream exactly across configurations.
#include <gtest/gtest.h>

#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"

namespace szp::core {
namespace {

class SizeProbe : public ::testing::TestWithParam<double> {};

TEST_P(SizeProbe, MatchesActualStreamAcrossSuites) {
  const double rel = GetParam();
  for (const auto& info : data::all_suites()) {
    const auto field = data::make_field(info.id, 0, 0.02);
    Params p;
    p.error_bound = rel;
    const double range = field.value_range();
    const size_t probed = exact_compressed_bytes(field.values, p, range);
    const auto stream = compress_serial(field.values, p, range);
    EXPECT_EQ(probed, stream.size()) << info.name << " rel=" << rel;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SizeProbe,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

TEST(SizeProbe, MatchesWithOutlierModeAndToggles) {
  const auto field = data::make_field(data::Suite::kHacc, 0, 0.02);
  for (const bool outlier : {false, true}) {
    for (const bool lorenzo : {false, true}) {
      Params p;
      p.error_bound = 1e-3;
      p.outlier_mode = outlier;
      p.lorenzo = lorenzo;
      const double range = field.value_range();
      EXPECT_EQ(exact_compressed_bytes(field.values, p, range),
                compress_serial(field.values, p, range).size())
          << outlier << lorenzo;
    }
  }
}

TEST(SizeProbe, EmptyInput) {
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1;
  // An empty stream still carries the (empty) v2 checksum footer.
  EXPECT_EQ(exact_compressed_bytes({}, p),
            Header::kSize + ChecksumFooter::kFixedBytes);
}

}  // namespace
}  // namespace szp::core
