// Fuzz-lite: 200 random (data shape, Params) configurations must all
// compress, decompress, respect the bound, and match between the serial
// and device paths. Catches interactions between toggles that the
// targeted tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/core/compressor.hpp"
#include "szp/core/serial.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

std::vector<float> random_signal(Rng& rng, size_t n) {
  std::vector<float> v(n);
  const int kind = static_cast<int>(rng.next_below(4));
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    switch (kind) {
      case 0:  // white noise
        v[i] = static_cast<float>(rng.normal() * 100);
        break;
      case 1:  // random walk
        acc += rng.normal();
        v[i] = static_cast<float>(acc);
        break;
      case 2:  // sparse spikes on zeros
        v[i] = rng.next_below(50) == 0
                   ? static_cast<float>(rng.normal() * 1000)
                   : 0.0f;
        break;
      default:  // smooth oscillation
        v[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.01) *
                                  50.0);
        break;
    }
  }
  return v;
}

TEST(FuzzConfigs, TwoHundredRandomConfigurations) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.next_below(20000);
    const auto data = random_signal(rng, n);

    Params p;
    static const unsigned kLens[] = {8, 16, 32, 64, 128, 256};
    p.block_len = kLens[rng.next_below(6)];
    p.lorenzo = rng.next_below(2) == 0;
    p.lorenzo_layers = 1 + static_cast<unsigned>(rng.next_below(2));
    p.zero_block_bypass = rng.next_below(2) == 0;
    p.bit_shuffle = rng.next_below(2) == 0;
    p.outlier_mode = rng.next_below(2) == 0;
    p.scan = rng.next_below(2) == 0 ? ScanAlgo::kChained : ScanAlgo::kTwoPass;
    p.mode = ErrorMode::kAbs;
    p.error_bound = std::pow(10.0, -1.0 - static_cast<double>(rng.next_below(3)));

    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " L=" + std::to_string(p.block_len) +
                 " lorenzo=" + std::to_string(p.lorenzo) +
                 " layers=" + std::to_string(p.lorenzo_layers) +
                 " bypass=" + std::to_string(p.zero_block_bypass) +
                 " shuffle=" + std::to_string(p.bit_shuffle) +
                 " outlier=" + std::to_string(p.outlier_mode) +
                 " eb=" + std::to_string(p.error_bound));

    const auto stream = compress_serial(data, p);
    const auto recon = decompress_serial(stream);
    ASSERT_EQ(recon.size(), n);
    double max_abs = 0;
    for (const float v : data) {
      max_abs = std::max(max_abs, std::abs(static_cast<double>(v)));
    }
    ASSERT_TRUE(metrics::error_bounded(data, recon,
                                       p.error_bound + max_abs * 1.2e-7));

    // Device equality on a random quarter of the trials (keeps runtime
    // reasonable while still covering every toggle combination over the
    // sweep).
    if (rng.next_below(4) == 0) {
      gpusim::Device dev(1 + static_cast<unsigned>(rng.next_below(8)));
      auto d_in = gpusim::to_device<float>(dev, data);
      gpusim::DeviceBuffer<byte_t> d_cmp(
          dev, max_compressed_bytes(n, p.block_len));
      const auto res = compress_device(dev, d_in, n, p, p.error_bound, d_cmp);
      ASSERT_EQ(res.bytes, stream.size());
      const auto device_stream = gpusim::to_host(dev, d_cmp, res.bytes);
      ASSERT_TRUE(
          std::equal(stream.begin(), stream.end(), device_stream.begin()));
    }
  }
}

TEST(FuzzConfigs, FiftyRandomF64Configurations) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.next_below(8000);
    std::vector<double> data(n);
    double acc = 0;
    for (auto& v : data) {
      acc += rng.normal();
      v = acc + rng.normal() * 1e-4;
    }
    Params p;
    static const unsigned kLens[] = {8, 32, 128};
    p.block_len = kLens[rng.next_below(3)];
    p.lorenzo = rng.next_below(2) == 0;
    p.lorenzo_layers = 1 + static_cast<unsigned>(rng.next_below(2));
    p.bit_shuffle = rng.next_below(2) == 0;
    p.outlier_mode = rng.next_below(2) == 0;
    p.mode = ErrorMode::kAbs;
    p.error_bound = std::pow(10.0, -2.0 - static_cast<double>(rng.next_below(3)));
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const auto stream = compress_serial_f64(data, p);
    const auto recon = decompress_serial_f64(stream);
    ASSERT_EQ(recon.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_LE(std::abs(data[i] - recon[i]), p.error_bound + 1e-10) << i;
    }
  }
}

}  // namespace
}  // namespace szp::core
