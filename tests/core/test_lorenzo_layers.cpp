// 2-layer Lorenzo (paper §4.1's "higher layers" discussion): correctness
// and the paper's claim that it performs similarly to the 1-layer choice.
#include <gtest/gtest.h>

#include "szp/core/serial.hpp"
#include "szp/core/stages.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

TEST(Lorenzo2, ForwardInverseIdentity) {
  Rng rng(51);
  std::vector<std::int32_t> v(256);
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.next_below(1u << 27)) - (1 << 26);
  }
  auto w = v;
  lorenzo2_forward(w);
  lorenzo2_inverse(w);
  EXPECT_EQ(w, v);
}

TEST(Lorenzo2, LinearRampBecomesSparse) {
  // A perfect linear ramp has zero second differences (beyond the two
  // boundary terms) — the case where 2 layers beat 1.
  std::vector<std::int32_t> ramp(64);
  for (size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::int32_t>(1000 + 7 * i);
  }
  auto v = ramp;
  lorenzo2_forward(v);
  for (size_t i = 2; i < v.size(); ++i) EXPECT_EQ(v[i], 0) << i;
  lorenzo2_inverse(v);
  EXPECT_EQ(v, ramp);
}

TEST(Lorenzo2, OverflowThrows) {
  std::vector<std::int32_t> v = {1 << 29, -(1 << 29), 1 << 29};
  EXPECT_THROW(lorenzo2_forward(v), format_error);
}

TEST(Lorenzo2, CodecRoundtripHoldsBound) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 2, 0.03);
  Params p;
  p.error_bound = 1e-3;
  p.lorenzo_layers = 2;
  const double range = field.value_range();
  const auto stream = compress_serial(field.values, p, range);
  EXPECT_TRUE(Header::deserialize(stream).lorenzo2());
  const auto recon = decompress_serial(stream);
  const auto stats = metrics::compare(field.values, recon);
  EXPECT_LE(stats.max_rel_err, 1e-3 * (1 + 1e-6));
}

TEST(Lorenzo2, ParamsValidation) {
  Params p;
  p.lorenzo_layers = 3;
  EXPECT_THROW(p.validate(), format_error);
  p.lorenzo_layers = 0;
  EXPECT_THROW(p.validate(), format_error);
}

TEST(Lorenzo2, SimilarCompressionToOneLayer) {
  // The paper's stated (unshown) experimental finding: within blocks of
  // smooth data, 1-layer and higher-layer Lorenzo perform similarly —
  // which is why cuSZp picks the cheaper one.
  for (const auto suite :
       {data::Suite::kHurricane, data::Suite::kNyx, data::Suite::kCesmAtm}) {
    const auto field = data::make_field(suite, 0, 0.03);
    const double range = field.value_range();
    Params p;
    p.error_bound = 1e-3;
    p.lorenzo_layers = 1;
    const auto one = compress_serial(field.values, p, range);
    p.lorenzo_layers = 2;
    const auto two = compress_serial(field.values, p, range);
    const double ratio = static_cast<double>(two.size()) /
                         static_cast<double>(one.size());
    EXPECT_GT(ratio, 0.75) << data::suite_info(suite).name;
    EXPECT_LT(ratio, 1.35) << data::suite_info(suite).name;
  }
}

}  // namespace
}  // namespace szp::core
