// Adversarial header fuzz: random 32-byte headers and every truncation
// length must either parse or throw format_error — never crash, hang, or
// read out of bounds (run under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "szp/core/format.hpp"
#include "szp/core/serial.hpp"
#include "szp/robust/try_decode.hpp"
#include "szp/util/rng.hpp"

namespace {

using namespace szp;

/// Feed `bytes` to every header-consuming entry point; anything other
/// than clean success or format_error is a bug.
void poke(std::span<const byte_t> bytes) {
  try {
    (void)core::Header::deserialize(bytes);
  } catch (const format_error&) {
  }
  try {
    (void)core::inspect_stream(bytes);
  } catch (const format_error&) {
  }
  try {
    (void)core::decompress_serial(bytes);
  } catch (const format_error&) {
  }
  // The no-throw API must swallow even what the above reject.
  std::vector<float> out;
  (void)robust::try_decompress(bytes, out, {});
}

TEST(AdversarialHeaders, RandomBytesNeverCrash) {
  Rng rng(0xBADC0DEULL);
  std::vector<byte_t> buf(core::Header::kSize);
  for (int it = 0; it < 3000; ++it) {
    for (auto& b : buf) b = static_cast<byte_t>(rng.next_u64());
    if (it % 2 == 0) {
      // Valid magic so the fuzz reaches the field validation paths.
      const std::uint32_t magic = core::Header::kMagic;
      std::memcpy(buf.data(), &magic, sizeof(magic));
    }
    if (it % 4 == 0) {
      // Valid v1 version too: v1 skips the CRC gate, so random field
      // values flow into the deeper structural checks.
      buf[4] = 1;
      buf[5] = 0;
    }
    poke(buf);
  }
}

TEST(AdversarialHeaders, EveryTruncationOfAValidHeaderThrows) {
  const std::vector<float> data(64, 1.5f);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  const auto stream = core::compress_serial(data, p);

  for (size_t len = 0; len < core::Header::kSize; ++len) {
    const std::span<const byte_t> prefix(stream.data(), len);
    EXPECT_THROW((void)core::Header::deserialize(prefix), format_error)
        << "len " << len;
    EXPECT_THROW((void)core::inspect_stream(prefix), format_error)
        << "len " << len;
    std::vector<float> out;
    EXPECT_FALSE(robust::try_decompress(prefix, out, {}).ok())
        << "len " << len;
  }
  // The untruncated header parses.
  EXPECT_NO_THROW((void)core::Header::deserialize(stream));
}

TEST(AdversarialHeaders, ElementCountOverflowRejected) {
  // num_blocks() computes div_ceil(n, L); n near 2^64 would wrap the sum
  // and bypass the truncation checks, so deserialize must reject it.
  core::Header h;
  h.version = core::Header::kVersionV1;
  h.num_elements = ~std::uint64_t{0};
  h.eb_abs = 1e-3;
  h.block_len = 32;
  h.checksum_group_blocks = 0;
  std::vector<byte_t> buf(core::Header::kSize);
  h.serialize(buf);
  EXPECT_THROW((void)core::Header::deserialize(buf), format_error);
}

TEST(AdversarialHeaders, RandomTailAfterValidHeaderNeverCrashes) {
  // A well-formed v1 header followed by random garbage exercises the
  // length-byte validation and payload bounds checks.
  core::Header h;
  h.version = core::Header::kVersionV1;
  h.num_elements = 512;
  h.eb_abs = 1e-3;
  h.block_len = 32;
  h.flags = 0x07;
  h.checksum_group_blocks = 0;

  Rng rng(0xFEEDFACEULL);
  for (int it = 0; it < 500; ++it) {
    std::vector<byte_t> buf(core::Header::kSize + 16 +
                            rng.next_below(256));
    for (auto& b : buf) b = static_cast<byte_t>(rng.next_u64());
    h.serialize(buf);
    poke(buf);
  }
}

}  // namespace
