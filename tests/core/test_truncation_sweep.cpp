// Truncation robustness and backward compatibility:
//   * every possible truncation of a v2 stream must throw format_error
//     from the throwing decoders (and report non-kOk from the try_ API),
//   * a golden v1 stream captured from the pre-integrity encoder must
//     still be produced and decoded bit-for-bit by today's code.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "szp/core/random_access.hpp"
#include "szp/core/serial.hpp"
#include "szp/robust/try_decode.hpp"

namespace {

using namespace szp;

std::vector<byte_t> make_v2_stream(std::vector<float>* data_out = nullptr) {
  std::vector<float> data(600);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(0.05 * static_cast<double>(i)) * 3.0f;
  }
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = 4;
  if (data_out != nullptr) *data_out = data;
  return core::compress_serial(data, p);
}

TEST(TruncationSweep, SerialDecodeThrowsAtEveryByte) {
  const auto stream = make_v2_stream();
  for (size_t len = 0; len < stream.size(); ++len) {
    const std::span<const byte_t> prefix(stream.data(), len);
    EXPECT_THROW((void)core::decompress_serial(prefix), format_error)
        << "len " << len;
    std::vector<float> out;
    EXPECT_FALSE(robust::try_decompress(prefix, out, {}).ok())
        << "len " << len;
  }
  EXPECT_NO_THROW((void)core::decompress_serial(stream));
}

TEST(TruncationSweep, RangeDecodeThrowsAtEveryByte) {
  const auto stream = make_v2_stream();
  for (size_t len = 0; len < stream.size(); ++len) {
    const std::span<const byte_t> prefix(stream.data(), len);
    EXPECT_THROW((void)core::decompress_range(prefix, 50, 250), format_error)
        << "len " << len;
  }
  EXPECT_NO_THROW((void)core::decompress_range(stream, 50, 250));
}

// Golden v1 stream captured from the encoder before the integrity footer
// existed (100 floats, ABS bound 1e-2, one all-zero block). Guards both
// directions of backward compatibility: today's encoder must still emit
// these exact bytes for checksum_group_blocks = 0, and today's decoders
// must accept them.
constexpr byte_t kGoldenV1[] = {
    0x53, 0x5a, 0x35, 0x70, 0x01, 0x00, 0x20, 0x00, 0x64, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x7b, 0x14, 0xae, 0x47, 0xe1, 0x7a, 0x84, 0x3f,
    0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x06, 0x09, 0x08, 0x07,
    0x00, 0x00, 0xfe, 0xff, 0x0c, 0xd9, 0xbf, 0x9e, 0x5c, 0x0a, 0x7e, 0xaa,
    0x3c, 0xa1, 0x54, 0xb3, 0x02, 0x67, 0x98, 0x43, 0x00, 0x1f, 0xe0, 0x03,
    0xfe, 0x00, 0x00, 0xfc, 0xff, 0x00, 0x00, 0x00, 0x75, 0x01, 0x00, 0x00,
    0xad, 0x01, 0x00, 0x00, 0x9d, 0x00, 0x00, 0x00, 0x82, 0x00, 0x00, 0x00,
    0x81, 0x01, 0x00, 0x00, 0x7e, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0xff, 0xff,
    0xaf, 0x87, 0xf8, 0x3d, 0x87, 0x06, 0x38, 0x37, 0x1f, 0x52, 0xad, 0x39,
    0x01, 0x31, 0xce, 0xc1, 0x80, 0x0f, 0xf0, 0x01, 0xff, 0x00, 0x00, 0xfe,
    0x00, 0x00, 0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x0e, 0x00, 0x00, 0x00,
    0x12, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00, 0x0e, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x1e, 0x00, 0x00, 0x00,
    0x01, 0x00, 0x00, 0x00,
};

std::vector<float> golden_input() {
  std::vector<float> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.1 * static_cast<double>(i)) * 8.0f +
              (i > 70 ? 3.0f : 0.0f);
  }
  for (size_t i = 40; i < 64; ++i) data[i] = 0.0f;  // a run of zeros
  return data;
}

TEST(GoldenV1, EncoderStillEmitsIdenticalBytes) {
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  p.checksum_group_blocks = 0;  // legacy v1 stream
  const auto stream = core::compress_serial(golden_input(), p);
  ASSERT_EQ(stream.size(), sizeof(kGoldenV1));
  EXPECT_EQ(std::memcmp(stream.data(), kGoldenV1, sizeof(kGoldenV1)), 0);
}

TEST(GoldenV1, AllDecodersAgreeBitForBit) {
  const std::span<const byte_t> golden(kGoldenV1);
  const auto input = golden_input();

  const auto ref = core::decompress_serial(golden);
  ASSERT_EQ(ref.size(), input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_NEAR(ref[i], input[i], 1e-2 + 1e-6) << "element " << i;
  }
  for (size_t i = 40; i < 64; ++i) ASSERT_EQ(ref[i], 0.0f);

  std::vector<float> out;
  const auto rep = robust::try_decompress(golden, out);
  EXPECT_EQ(rep.status, robust::Status::kOk);
  EXPECT_FALSE(rep.checksummed);
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * 4), 0);

  const auto range = core::decompress_range(golden, 10, 90);
  ASSERT_EQ(range.size(), 80u);
  EXPECT_EQ(std::memcmp(range.data(), ref.data() + 10, 80 * 4), 0);

  const auto stats = core::inspect_stream(golden);
  EXPECT_EQ(stats.version, 1);
  EXPECT_EQ(stats.num_blocks, 4u);
  // The zero run (elements 40..63) straddles block 1 without filling it,
  // so no block takes the zero bypass.
  EXPECT_EQ(stats.zero_blocks, 0u);
  EXPECT_EQ(stats.footer_bytes, 0u);
  EXPECT_EQ(stats.checksum_groups, 0u);
}

}  // namespace
