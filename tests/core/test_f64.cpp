// Double-precision extension: same stream layout, f64 pre-quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/core/device.hpp"
#include "szp/core/serial.hpp"
#include "szp/gpusim/buffer.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

std::vector<double> smooth_f64(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * 0.002;
    v[i] = std::sin(x) * 100 + std::sin(x * 17.3) * 0.5;
  }
  return v;
}

TEST(F64, RoundtripRespectsBound) {
  const auto data = smooth_f64(50000);
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-4;
  const auto stream = compress_serial_f64(data, p);
  const auto recon = decompress_serial_f64(stream);
  ASSERT_EQ(recon.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - recon[i]), p.error_bound + 1e-12) << i;
  }
}

TEST(F64, TighterBoundsThanF32UlpArePossible) {
  // The point of f64 support: bounds below the f32 ULP of the data.
  std::vector<double> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 1000.0 + std::sin(i * 0.01) * 1e-3;
  }
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-5;  // below the f32 ULP at 1000 (~6.1e-5)
  const auto recon = decompress_serial_f64(compress_serial_f64(data, p));
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - recon[i]), 1e-5 + 1e-13);
  }
}

TEST(F64, HeaderCarriesTypeFlag) {
  const auto data = smooth_f64(100);
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-3;
  const auto stream = compress_serial_f64(data, p);
  const Header h = Header::deserialize(stream);
  EXPECT_TRUE(h.is_f64());
  // Decoding with the wrong type throws instead of mis-reading.
  EXPECT_THROW((void)decompress_serial(stream), format_error);

  const std::vector<float> f32_data(100, 1.0f);
  const auto f32_stream = compress_serial(f32_data, p);
  EXPECT_FALSE(Header::deserialize(f32_stream).is_f64());
  EXPECT_THROW((void)decompress_serial_f64(f32_stream), format_error);
}

TEST(F64, RelModeAndIdempotence) {
  Rng rng(77);
  std::vector<double> data(10000);
  for (auto& v : data) v = rng.normal() * 5 + std::sin(v);
  Params p;
  p.mode = ErrorMode::kRel;
  p.error_bound = 1e-5;
  const auto s1 = compress_serial_f64(data, p);
  const auto r1 = decompress_serial_f64(s1);
  const auto s2 = compress_serial_f64(r1, p);
  EXPECT_EQ(decompress_serial_f64(s2), r1);
}

TEST(F64, DeviceMatchesSerialByteForByte) {
  const auto data = smooth_f64(30000);
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-5;
  const auto serial = compress_serial_f64(data, p);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<double>(dev, data);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, max_compressed_bytes(data.size(), p.block_len));
  const auto res =
      compress_device_f64(dev, d_in, data.size(), p, p.error_bound, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  EXPECT_EQ(res.trace.kernel_launches, 1u);  // still single-kernel
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << i;
  }

  gpusim::DeviceBuffer<double> d_out(dev, data.size());
  (void)decompress_device_f64(dev, d_cmp, d_out, res.bytes);
  const auto recon = gpusim::to_host(dev, d_out);
  EXPECT_EQ(recon, decompress_serial_f64(serial));

  // Type-mismatched device decompression throws.
  gpusim::DeviceBuffer<float> d_wrong(dev, data.size());
  EXPECT_THROW((void)decompress_device(dev, d_cmp, d_wrong, res.bytes),
               format_error);
}

TEST(F64, ZeroBlocksStillBypass) {
  std::vector<double> zeros(1024, 0.0);
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-6;
  const auto stream = compress_serial_f64(zeros, p);
  EXPECT_EQ(stream.size(),
            Header::kSize + 1024 / 32 +
                ChecksumFooter::bytes_for(
                    num_checksum_groups(1024 / 32, kChecksumGroupBlocks)));
}

}  // namespace
}  // namespace szp::core
