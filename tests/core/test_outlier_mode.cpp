// Outlier-tolerant fixed-length extension: correctness, CR benefit on
// spiky data, device equivalence, range-decoding compatibility.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/core/block_codec.hpp"
#include "szp/core/compressor.hpp"
#include "szp/core/random_access.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

/// Smooth signal with isolated spikes: the workload outlier mode targets.
std::vector<float> spiky(size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(i * 0.01) +
                              rng.normal() * 0.002);
  }
  for (size_t i = 0; i < n; i += 256) {  // one spike per 8 blocks
    v[i + rng.next_below(256) % std::min<size_t>(256, n - i)] +=
        static_cast<float>(rng.uniform(50, 500));
  }
  return v;
}

Params outlier_params(double eb) {
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = eb;
  p.outlier_mode = true;
  return p;
}

TEST(OutlierMode, ErrorBoundHolds) {
  const auto data = spiky(20000, 1);
  const auto p = outlier_params(1e-3);
  const auto stream = compress_serial(data, p);
  const auto recon = decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(data, recon, 1e-3 + 600 * 1.2e-7));
  EXPECT_TRUE(Header::deserialize(stream).outlier_mode());
}

TEST(OutlierMode, ImprovesCrOnSpikyData) {
  const auto data = spiky(100000, 2);
  auto p = outlier_params(1e-3);
  const auto with = compress_serial(data, p);
  p.outlier_mode = false;
  const auto without = compress_serial(data, p);
  EXPECT_LT(with.size(), without.size());
  const auto stats = inspect_stream(with);
  EXPECT_GT(stats.outlier_blocks, 0u);
}

TEST(OutlierMode, NeverHurtsByMoreThanSideRecord) {
  // On smooth data outlier blocks are simply not selected, so the stream
  // is identical to the plain mode (only the header flag differs).
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.02);
  auto p = outlier_params(1e-4);
  p.mode = ErrorMode::kRel;
  const auto with = compress_serial(field.values, p, field.value_range());
  p.outlier_mode = false;
  const auto without = compress_serial(field.values, p, field.value_range());
  EXPECT_LE(with.size(), without.size());
}

TEST(OutlierMode, DeviceMatchesSerialByteForByte) {
  const auto data = spiky(30000, 3);
  const auto p = outlier_params(1e-3);
  const auto serial = compress_serial(data, p);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, data);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, max_compressed_bytes(data.size(), p.block_len));
  const auto res =
      compress_device(dev, d_in, data.size(), p, p.error_bound, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << i;
  }

  gpusim::DeviceBuffer<float> d_out(dev, data.size());
  (void)decompress_device(dev, d_cmp, d_out, res.bytes);
  EXPECT_EQ(gpusim::to_host(dev, d_out), decompress_serial(serial));
}

TEST(OutlierMode, RandomAccessDecodesOutlierBlocks) {
  const auto data = spiky(50000, 4);
  const auto p = outlier_params(1e-3);
  const auto stream = compress_serial(data, p);
  const auto full = decompress_serial(stream);
  const auto part = decompress_range(stream, 10000, 20000);
  for (size_t i = 0; i < part.size(); ++i) {
    ASSERT_EQ(part[i], full[10000 + i]);
  }
}

TEST(OutlierMode, IdempotentRecompression) {
  const auto data = spiky(10000, 5);
  const auto p = outlier_params(1e-2);
  const auto r1 = decompress_serial(compress_serial(data, p));
  const auto s2 = compress_serial(r1, p);
  EXPECT_EQ(decompress_serial(s2), r1);
}

TEST(OutlierMode, RejectsLongBlocks) {
  Params p;
  p.outlier_mode = true;
  p.block_len = 512;  // u8 positions cannot address past 256
  EXPECT_THROW(p.validate(), format_error);
  p.block_len = 256;
  EXPECT_NO_THROW(p.validate());
}

TEST(OutlierBlockCodec, FirstElementOffsetSelectsOutlierEncoding) {
  // After the per-block Lorenzo reset, l_0 = r_0 carries the block's full
  // offset from zero while the other deltas stay tiny — the single-delta
  // outlier the mode is built to absorb (this is where most of its CR
  // gain comes from in practice).
  std::vector<float> block(32);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = 1000.0f + 0.002f * static_cast<float>(i);
  }
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.outlier_mode = true;
  BlockScratch scratch;
  size_t elems = 0;
  const std::uint8_t lb = encode_block<float>(block, block.size(), 0, 32,
                                              p.error_bound, p, scratch, elems);
  ASSERT_GE(lb, kOutlierFlag);
  EXPECT_EQ(scratch.outlier_pos, 0u);
  // F covers only the 1-quantum deltas, not the 500000-quanta offset.
  EXPECT_LT(lb - kOutlierFlag, 4);
}

TEST(OutlierBlockCodec, MidBlockValueSpikeMakesTwoDeltasAndStaysPlain) {
  // A value spike in the middle of a block turns into TWO large Lorenzo
  // deltas (up and back down); a single-outlier record cannot pay off, so
  // the encoder must keep the plain fixed length.
  std::vector<float> block(32, 0.001f);
  block[17] = 1000.0f;
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.outlier_mode = true;
  BlockScratch scratch;
  size_t elems = 0;
  const std::uint8_t lb = encode_block<float>(block, block.size(), 0, 32,
                                              p.error_bound, p, scratch, elems);
  EXPECT_LT(lb, kOutlierFlag);
}

TEST(OutlierMode, WorksWithF64) {
  std::vector<double> data(5000);
  Rng rng(6);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(i * 0.01) + rng.normal() * 1e-4;
  }
  data[1234] = 7e5;
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-2;
  p.outlier_mode = true;
  const auto stream = compress_serial_f64(data, p);
  const auto recon = decompress_serial_f64(stream);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - recon[i]), 1e-2 + 1e-9) << i;
  }
  EXPECT_GT(inspect_stream(stream).outlier_blocks, 0u);
}

}  // namespace
}  // namespace szp::core
