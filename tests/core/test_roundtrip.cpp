// End-to-end roundtrip properties of the cuSZp codec: error bound
// guarantee, serial/device equivalence, zero blocks, edge cases.
#include <gtest/gtest.h>

#include "szp/core/compressor.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

std::vector<float> random_data(size_t n, double amp, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal() * amp);
  return v;
}

TEST(Roundtrip, ErrorBoundHoldsAbs) {
  const auto data = random_data(10000, 50.0, 1);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  Compressor c(p);
  const auto stream = c.compress(data);
  const auto recon = c.decompress(stream);
  ASSERT_EQ(recon.size(), data.size());
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound));
}

TEST(Roundtrip, ErrorBoundHoldsRel) {
  const auto data = random_data(10000, 50.0, 2);
  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = 1e-3;
  Compressor c(p);
  const auto stream = c.compress(data);
  const auto recon = c.decompress(stream);
  const auto stats = metrics::compare(data, recon);
  EXPECT_LE(stats.max_rel_err, 1e-3 + 1e-12);
}

TEST(Roundtrip, DeviceMatchesSerialByteForByte) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.1);
  core::Params p;
  p.error_bound = 1e-3;
  Compressor c(p);
  const double range = field.value_range();
  const auto serial = c.compress(field.values, range);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_out(
      dev, core::max_compressed_bytes(field.count(), p.block_len));
  const auto res =
      c.compress_on_device(dev, d_in, field.count(), range, d_out);

  ASSERT_EQ(res.bytes, serial.size());
  const auto device_bytes = gpusim::to_host(dev, d_out, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(device_bytes[i], serial[i]) << "mismatch at byte " << i;
  }
}

TEST(Roundtrip, DeviceDecompressMatchesSerial) {
  const auto field = data::make_field(data::Suite::kNyx, 2, 0.1);
  core::Params p;
  p.error_bound = 1e-2;
  Compressor c(p);
  const auto stream = c.compress(field.values, field.value_range());
  const auto recon_serial = c.decompress(stream);

  gpusim::Device dev;
  auto d_cmp = gpusim::to_device<byte_t>(dev, stream);
  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto res = c.decompress_on_device(dev, d_cmp, d_out);
  ASSERT_EQ(res.bytes, field.count());
  const auto recon_device = gpusim::to_host(dev, d_out);
  for (size_t i = 0; i < recon_serial.size(); ++i) {
    ASSERT_EQ(recon_serial[i], recon_device[i]) << "at " << i;
  }
}

TEST(Roundtrip, AllZeroInputIsOneByteMetadataPerBlock) {
  const std::vector<float> zeros(4096, 0.0f);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-4;
  Compressor c(p);
  const auto stream = c.compress(zeros);
  // Header + 1 length byte per block, zero payload, checksum footer:
  // CR ~= 128 for L=32.
  EXPECT_EQ(stream.size(),
            core::Header::kSize + 4096 / 32 +
                core::ChecksumFooter::bytes_for(core::num_checksum_groups(
                    4096 / 32, core::kChecksumGroupBlocks)));
  const auto recon = c.decompress(stream);
  for (const float v : recon) EXPECT_EQ(v, 0.0f);
}

TEST(Roundtrip, PartialLastBlock) {
  for (const size_t n : {1u, 7u, 31u, 33u, 100u, 1023u}) {
    const auto data = random_data(n, 10.0, n);
    core::Params p;
    p.mode = core::ErrorMode::kAbs;
    p.error_bound = 1e-3;
    Compressor c(p);
    const auto recon = c.decompress(c.compress(data));
    ASSERT_EQ(recon.size(), n);
    EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound)) << n;
  }
}

TEST(Roundtrip, EmptyInput) {
  core::Params p;
  Compressor c(p);
  const std::vector<float> empty;
  const auto stream = c.compress(empty);
  EXPECT_EQ(c.decompress(stream).size(), 0u);
}

TEST(Roundtrip, IdempotentRecompression) {
  // Compressing the reconstruction at the same ABS bound reproduces the
  // identical stream (quantization is a projection).
  const auto data = random_data(5000, 20.0, 9);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  Compressor c(p);
  const auto s1 = c.compress(data);
  const auto r1 = c.decompress(s1);
  const auto s2 = c.compress(r1);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace szp
