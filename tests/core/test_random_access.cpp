// Random-access decompression: range equality with full decompression,
// partial-read accounting, bounds handling.
#include <gtest/gtest.h>

#include "szp/core/random_access.hpp"
#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

struct Fixture {
  std::vector<float> data;
  std::vector<byte_t> stream;
  std::vector<float> full;

  explicit Fixture(size_t n, double eb = 1e-3) {
    Rng rng(n);
    data.resize(n);
    double acc = 0;
    for (auto& v : data) {
      acc += rng.normal() * 0.05;
      v = static_cast<float>(acc + rng.normal() * 0.001);
    }
    Params p;
    p.mode = ErrorMode::kAbs;
    p.error_bound = eb;
    stream = compress_serial(data, p);
    full = decompress_serial(stream);
  }
};

class RangeSweep : public ::testing::TestWithParam<std::pair<size_t, size_t>> {
};

TEST_P(RangeSweep, MatchesFullDecompressionExactly) {
  static const Fixture fx(10000);
  const auto [begin, end] = GetParam();
  const auto part = decompress_range(fx.stream, begin, end);
  ASSERT_EQ(part.size(), end - begin);
  for (size_t i = 0; i < part.size(); ++i) {
    ASSERT_EQ(part[i], fx.full[begin + i]) << "element " << begin + i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeSweep,
    ::testing::Values(std::pair<size_t, size_t>{0, 10000},   // everything
                      std::pair<size_t, size_t>{0, 1},       // first element
                      std::pair<size_t, size_t>{9999, 10000}, // last element
                      std::pair<size_t, size_t>{31, 33},     // block boundary
                      std::pair<size_t, size_t>{32, 64},     // exact block
                      std::pair<size_t, size_t>{100, 100},   // empty
                      std::pair<size_t, size_t>{4000, 6000},
                      std::pair<size_t, size_t>{1, 9999}));

TEST(RandomAccess, RandomizedRangesAgainstFull) {
  const Fixture fx(50000, 1e-2);
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t a = rng.next_below(50000);
    const size_t b = a + rng.next_below(50000 - a + 1);
    const auto part = decompress_range(fx.stream, a, b);
    ASSERT_EQ(part.size(), b - a);
    for (size_t i = 0; i < part.size(); i += 97) {
      ASSERT_EQ(part[i], fx.full[a + i]);
    }
  }
}

TEST(RandomAccess, PayloadBytesScaleWithRange) {
  const Fixture fx(100000);
  const size_t tiny = range_payload_bytes(fx.stream, 0, 32);
  const size_t half = range_payload_bytes(fx.stream, 0, 50000);
  const size_t all = range_payload_bytes(fx.stream, 0, 100000);
  EXPECT_LT(tiny, half);
  EXPECT_LT(half, all);
  // The whole point: a small range reads a small fraction of the payload.
  EXPECT_LT(tiny * 100, all);
  // Full range touches exactly the whole payload.
  const auto stats = inspect_stream(fx.stream);
  EXPECT_EQ(all, stats.payload_bytes);
}

TEST(RandomAccess, OutOfBoundsThrows) {
  const Fixture fx(1000);
  EXPECT_THROW((void)decompress_range(fx.stream, 0, 1001), format_error);
  EXPECT_THROW((void)decompress_range(fx.stream, 500, 400), format_error);
}

TEST(RandomAccess, WorksOnSuiteFieldsWithZeroBlocks) {
  const auto field = data::make_field(data::Suite::kRtm, 0, 0.05);
  Params p;
  p.error_bound = 1e-2;
  const auto stream = compress_serial(field.values, p, field.value_range());
  const auto full = decompress_serial(stream);
  const size_t mid = field.count() / 2;
  const auto part = decompress_range(stream, mid - 500, mid + 500);
  for (size_t i = 0; i < part.size(); ++i) {
    ASSERT_EQ(part[i], full[mid - 500 + i]);
  }
}

}  // namespace
}  // namespace szp::core
