// Stream format: header serialization, validation, Eq. 2, stream
// inspection, and robustness against malformed inputs.
#include <gtest/gtest.h>

#include "szp/core/format.hpp"
#include "szp/core/serial.hpp"
#include "szp/util/rng.hpp"

namespace szp::core {
namespace {

TEST(Format, HeaderRoundtrip) {
  Header h;
  h.num_elements = 123456789;
  h.eb_abs = 3.25e-4;
  h.block_len = 64;
  h.flags = 0b101;
  std::vector<byte_t> buf(Header::kSize);
  h.serialize(buf);
  const Header g = Header::deserialize(buf);
  EXPECT_EQ(g.num_elements, h.num_elements);
  EXPECT_DOUBLE_EQ(g.eb_abs, h.eb_abs);
  EXPECT_EQ(g.block_len, h.block_len);
  EXPECT_EQ(g.flags, h.flags);
  EXPECT_TRUE(g.lorenzo());
  EXPECT_FALSE(g.zero_block_bypass());
  EXPECT_TRUE(g.bit_shuffle());
}

TEST(Format, HeaderRejectsBadMagicAndFields) {
  Header h;
  h.num_elements = 10;
  h.eb_abs = 1e-3;
  std::vector<byte_t> buf(Header::kSize);
  h.serialize(buf);
  auto bad = buf;
  bad[0] ^= 0xFF;
  EXPECT_THROW((void)Header::deserialize(bad), format_error);
  EXPECT_THROW((void)Header::deserialize(std::span<const byte_t>(buf.data(), 8)),
               format_error);
}

TEST(Format, ParamsValidation) {
  Params p;
  p.block_len = 12;  // not a multiple of 8
  EXPECT_THROW(p.validate(), format_error);
  p.block_len = 32;
  p.error_bound = 0;
  EXPECT_THROW(p.validate(), format_error);
  p.error_bound = 1.5;
  p.mode = ErrorMode::kRel;
  EXPECT_THROW(p.validate(), format_error);  // REL must be < 1
  p.mode = ErrorMode::kAbs;
  EXPECT_NO_THROW(p.validate());
}

TEST(Format, ResolveEb) {
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 0.25;
  EXPECT_DOUBLE_EQ(resolve_eb(p, 100.0), 0.25);
  p.mode = ErrorMode::kRel;
  p.error_bound = 1e-3;
  EXPECT_DOUBLE_EQ(resolve_eb(p, 100.0), 0.1);
  EXPECT_GT(resolve_eb(p, 0.0), 0);  // constant data: still positive
}

TEST(Format, Equation2BlockBytes) {
  // CmpL = (F + 1) * L / 8 (paper Eq. 2); zero-block bypass -> 0.
  EXPECT_EQ(block_cmp_bytes(8, 8), 9u);  // the paper's worked example
  EXPECT_EQ(block_cmp_bytes(4, 32), 20u);
  EXPECT_EQ(block_cmp_bytes(0, 32, true), 0u);
  EXPECT_EQ(block_cmp_bytes(0, 32, false), 4u);  // sign map only
  EXPECT_EQ(num_blocks(100, 32), 4u);
  EXPECT_EQ(num_blocks(0, 32), 0u);
}

TEST(Format, InspectStreamCountsZeroBlocks) {
  std::vector<float> data(320, 0.0f);
  for (size_t i = 64; i < 96; ++i) data[i] = 5.0f;  // one loud block
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-2;
  const auto stream = compress_serial(data, p);
  const auto stats = inspect_stream(stream);
  EXPECT_EQ(stats.num_blocks, 10u);
  EXPECT_EQ(stats.zero_blocks, 9u);
  EXPECT_GT(stats.mean_fixed_length, 0.0);
  EXPECT_GT(stats.payload_bytes, 0u);
}

TEST(Format, DecompressRejectsTruncatedStreams) {
  Rng rng(17);
  std::vector<float> data(1000);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-3;
  const auto stream = compress_serial(data, p);
  // Truncate at many boundaries: must throw format_error, never crash or
  // return silently wrong sizes.
  for (const size_t keep :
       {size_t{0}, size_t{8}, Header::kSize - 1, Header::kSize,
        Header::kSize + 5, stream.size() - 1}) {
    EXPECT_THROW(
        (void)decompress_serial(std::span<const byte_t>(stream.data(), keep)),
        format_error)
        << "keep=" << keep;
  }
}

TEST(Format, DecompressSurvivesBitFlipsInLengthArea) {
  // Corrupted length bytes may change sizes arbitrarily; decompression
  // must either succeed (flip was benign) or throw format_error.
  Rng rng(18);
  std::vector<float> data(2048);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 1e-2;
  const auto stream = compress_serial(data, p);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = stream;
    const size_t pos =
        lengths_offset() + rng.next_below(num_blocks(2048, 32));
    corrupted[pos] = static_cast<byte_t>(rng.next_below(256));
    try {
      const auto out = decompress_serial(corrupted);
      EXPECT_EQ(out.size(), data.size());
    } catch (const format_error&) {
      // acceptable
    }
  }
}

TEST(Format, StreamSizeMatchesInspectAccounting) {
  Rng rng(19);
  std::vector<float> data(5000);
  for (auto& v : data) v = static_cast<float>(rng.normal() * 3);
  Params p;
  p.mode = ErrorMode::kAbs;
  p.error_bound = 5e-3;
  const auto stream = compress_serial(data, p);
  const auto stats = inspect_stream(stream);
  EXPECT_EQ(stream.size(), payload_offset(stats.num_blocks) +
                               stats.payload_bytes + stats.footer_bytes);
  EXPECT_EQ(stats.version, Header::kVersion);
  EXPECT_EQ(stats.checksum_groups,
            num_checksum_groups(stats.num_blocks, kChecksumGroupBlocks));
}

}  // namespace
}  // namespace szp::core
