// Parameterized property sweeps over the whole cuSZp configuration space:
// every (suite, REL bound, block length, feature toggles) combination must
// respect the error bound, roundtrip through the device path identically,
// and be stable under recompression.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "szp/core/compressor.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

using ParamTuple = std::tuple<data::Suite, double /*rel*/,
                              unsigned /*block_len*/, bool /*lorenzo*/,
                              bool /*shuffle*/>;

class CodecProperty : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(CodecProperty, ErrorBoundAndDeviceEquivalence) {
  const auto [suite, rel, block_len, lorenzo, shuffle] = GetParam();
  const auto field = data::make_field(suite, 0, 0.02);
  const double range = field.value_range();

  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = rel;
  p.block_len = block_len;
  p.lorenzo = lorenzo;
  p.bit_shuffle = shuffle;
  Compressor c(p);

  // 1. Error bound holds on the serial reference. The guarantee is
  // eb plus one float ULP of the reconstruction (as in the original SZ
  // family: the final r*2eb product is rounded to f32).
  const auto stream = c.compress(field.values, range);
  const auto recon = c.decompress(stream);
  ASSERT_EQ(recon.size(), field.count());
  const double eb = core::resolve_eb(p, range);
  double max_abs = 0;
  for (const float v : field.values) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(v)));
  }
  const double ulp_slack = max_abs * 1.2e-7;
  EXPECT_TRUE(metrics::error_bounded(field.values, recon, eb + ulp_slack));

  // 2. The single-kernel device path emits byte-identical streams.
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(field.count(), block_len));
  const auto res = c.compress_on_device(dev, d_in, field.count(), range, d_cmp);
  ASSERT_EQ(res.bytes, stream.size());
  const auto device_stream = gpusim::to_host(dev, d_cmp, res.bytes);
  ASSERT_TRUE(std::equal(stream.begin(), stream.end(), device_stream.begin()));

  // 3. Device decompression matches the serial reconstruction exactly.
  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  (void)c.decompress_on_device(dev, d_cmp, d_out, res.bytes);
  const auto device_recon = gpusim::to_host(dev, d_out);
  for (size_t i = 0; i < recon.size(); ++i) {
    ASSERT_EQ(device_recon[i], recon[i]) << i;
  }

  // 4. Idempotence: recompressing the reconstruction is a fixed point.
  const auto stream2 = c.compress(recon, range);
  const auto recon2 = c.decompress(stream2);
  EXPECT_EQ(recon2, recon);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecProperty,
    ::testing::Combine(
        ::testing::Values(data::Suite::kHurricane, data::Suite::kNyx,
                          data::Suite::kRtm, data::Suite::kHacc,
                          data::Suite::kCesmAtm),
        ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4),
        ::testing::Values(32u), ::testing::Values(true),
        ::testing::Values(true)));

INSTANTIATE_TEST_SUITE_P(
    BlockLengths, CodecProperty,
    ::testing::Combine(::testing::Values(data::Suite::kHurricane,
                                         data::Suite::kHacc),
                       ::testing::Values(1e-2),
                       ::testing::Values(8u, 16u, 64u, 128u),
                       ::testing::Values(true), ::testing::Values(true)));

INSTANTIATE_TEST_SUITE_P(
    Toggles, CodecProperty,
    ::testing::Combine(::testing::Values(data::Suite::kNyx,
                                         data::Suite::kRtm),
                       ::testing::Values(1e-2, 1e-4), ::testing::Values(32u),
                       ::testing::Bool(), ::testing::Bool()));

class ScanEquivalence : public ::testing::TestWithParam<data::Suite> {};

TEST_P(ScanEquivalence, ChainedAndTwoPassEmitIdenticalStreams) {
  const auto field = data::make_field(GetParam(), 0, 0.02);
  const double range = field.value_range();
  core::Params p;
  p.error_bound = 1e-3;

  auto run = [&](core::ScanAlgo algo) {
    p.scan = algo;
    gpusim::Device dev;
    auto d_in = gpusim::to_device<float>(dev, field.values);
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev, core::max_compressed_bytes(field.count(), p.block_len));
    const auto res = core::compress_device(dev, d_in, field.count(), p,
                                           core::resolve_eb(p, range), d_cmp);
    return gpusim::to_host(dev, d_cmp, res.bytes);
  };

  EXPECT_EQ(run(core::ScanAlgo::kChained), run(core::ScanAlgo::kTwoPass));
}

INSTANTIATE_TEST_SUITE_P(Suites, ScanEquivalence,
                         ::testing::Values(data::Suite::kHurricane,
                                           data::Suite::kNyx,
                                           data::Suite::kRtm));

TEST(CodecProperty, SingleKernelClaimHolds) {
  // The paper's central claim: one kernel for compression, one for
  // decompression, zero host stages, zero full-size PCIe round trips.
  const auto field = data::make_field(data::Suite::kNyx, 0, 0.02);
  core::Params p;
  Compressor c(p);
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(field.count(), p.block_len));
  const auto comp = c.compress_on_device(dev, d_in, field.count(),
                                         field.value_range(), d_cmp);
  EXPECT_EQ(comp.trace.kernel_launches, 1u);
  EXPECT_EQ(comp.trace.host_stages, 0u);
  EXPECT_LT(comp.trace.total_memcpy_bytes(), 64u);  // size readback only

  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto dec = c.decompress_on_device(dev, d_cmp, d_out, comp.bytes);
  EXPECT_EQ(dec.trace.kernel_launches, 1u);
  EXPECT_EQ(dec.trace.host_stages, 0u);
}

TEST(CodecProperty, WorstCaseIncompressibleInputFits) {
  // White noise at a tiny bound: CR < 1 is possible; the stream must stay
  // within max_compressed_bytes and still roundtrip.
  Rng rng(23);
  std::vector<float> data(4096);
  for (auto& v : data) v = static_cast<float>(rng.normal() * 1e3);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  Compressor c(p);
  const auto stream = c.compress(data);
  EXPECT_LE(stream.size(), core::max_compressed_bytes(4096, 32));
  const auto recon = c.decompress(stream);
  // Bound modulo one float ULP of the reconstruction (see sweep test).
  EXPECT_TRUE(
      metrics::error_bounded(data, recon, p.error_bound + 1e3 * 6 * 1.2e-7));
}

TEST(CodecProperty, NegatedInputNegatesReconstruction) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 1, 0.02);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  Compressor c(p);
  const auto recon = c.decompress(c.compress(field.values));
  auto negated = field.values;
  for (auto& v : negated) v = -v;
  const auto recon_neg = c.decompress(c.compress(negated));
  for (size_t i = 0; i < recon.size(); ++i) {
    ASSERT_FLOAT_EQ(recon_neg[i], -recon[i]);
  }
}

}  // namespace
}  // namespace szp
