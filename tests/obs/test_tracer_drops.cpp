// Satellite: tracer ring overflow must be *reported*, not silent. When a
// ring wraps, dropped_events() sums the per-thread overwrite counts and
// both metrics exporters (JSON and text) surface them, so a truncated
// trace can't masquerade as a complete one.
#include <gtest/gtest.h>

#include <sstream>

#include "szp/obs/metrics.hpp"
#include "szp/obs/tracer.hpp"
#include "support/mini_json.hpp"

namespace {

using namespace szp;
using testsupport::JsonParser;
using testsupport::JsonValue;

class TracerDropsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    default_capacity_ = obs::Tracer::instance().ring_capacity();
    obs::Tracer::instance().set_ring_capacity(16);
    obs::Tracer::instance().clear();  // re-applies the new capacity
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().set_ring_capacity(default_capacity_);
    obs::Tracer::instance().clear();
  }

  std::size_t default_capacity_ = 0;
};

TEST_F(TracerDropsTest, OverflowIsCountedAndSurvivesCollect) {
  EXPECT_EQ(obs::Tracer::instance().dropped_events(), 0u);
  constexpr int kEvents = 100;  // > ring capacity of 16
  for (int i = 0; i < kEvents; ++i) {
    obs::instant("test", "overflow", "i", static_cast<std::uint64_t>(i));
  }
  const std::uint64_t dropped = obs::Tracer::instance().dropped_events();
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(kEvents) - 16u);

  // collect() reports the same loss per thread.
  std::uint64_t collected_dropped = 0;
  std::size_t collected_events = 0;
  for (const auto& te : obs::Tracer::instance().collect()) {
    collected_dropped += te.overwritten;
    collected_events += te.events.size();
  }
  EXPECT_EQ(collected_dropped, dropped);
  EXPECT_EQ(collected_events, 16u);

  // clear() resets the loss counter with the rings.
  obs::Tracer::instance().clear();
  EXPECT_EQ(obs::Tracer::instance().dropped_events(), 0u);
}

TEST_F(TracerDropsTest, MetricsJsonReportsTracerDrops) {
  for (int i = 0; i < 40; ++i) obs::instant("test", "overflow");
  ASSERT_GT(obs::Tracer::instance().dropped_events(), 0u);

  std::ostringstream os;
  obs::Registry::instance().write_json(os);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str();
  const JsonValue* tracer = doc.find("tracer");
  ASSERT_NE(tracer, nullptr);
  const JsonValue* dropped = tracer->find("dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->num,
            static_cast<double>(obs::Tracer::instance().dropped_events()));
  const JsonValue* events = tracer->find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->num, 0.0);
}

TEST_F(TracerDropsTest, MetricsTextWarnsOnDrops) {
  {
    std::ostringstream os;
    obs::Registry::instance().write_text(os);
    EXPECT_EQ(os.str().find("tracer.dropped_events"), std::string::npos)
        << "no drops yet, no warning expected";
  }
  for (int i = 0; i < 40; ++i) obs::instant("test", "overflow");
  std::ostringstream os;
  obs::Registry::instance().write_text(os);
  EXPECT_NE(os.str().find("tracer.dropped_events"), std::string::npos);
  EXPECT_NE(os.str().find("WARNING"), std::string::npos);
}

}  // namespace
