// Host execution profiler suite: attribution accounting on real
// parallel-backend runs, deterministic-counter fingerprints, the JSON
// schema, and the disabled-path branch-cost guard (the hostprof analogue
// of obs/test_overhead.cpp).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "support/mini_json.hpp"
#include "szp/core/format.hpp"
#include "szp/data/registry.hpp"
#include "szp/engine/engine.hpp"
#include "szp/obs/hostprof/hostprof.hpp"
#include "szp/obs/hostprof/report.hpp"

namespace {

using namespace szp;
namespace hostprof = obs::hostprof;
using testsupport::JsonParser;
using testsupport::JsonValue;

core::Params test_params() {
  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = 1e-3;
  return p;
}

data::Field test_field() {
  // ~250k elements: enough blocks for every lane to claim work, fast
  // enough to roundtrip many times.
  return data::make_field(data::Suite::kHacc, 0, 0.25);
}

/// reset → one profiled compress+decompress roundtrip → snapshot.
hostprof::Snapshot profiled_roundtrip(const data::Field& field,
                                      unsigned threads) {
  auto& prof = hostprof::Profiler::instance();
  prof.reset();
  engine::Engine eng({.params = test_params(),
                      .backend = engine::BackendKind::kParallelHost,
                      .threads = threads});
  const double range = field.value_range();
  auto stream = eng.compress(field.values, range);
  const auto recon = eng.decompress(stream.bytes);
  EXPECT_EQ(recon.size(), field.values.size());
  return prof.snapshot();
}

class HostprofTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hostprof::Profiler::instance().set_enabled(true);
    hostprof::Profiler::instance().reset();
  }
  void TearDown() override {
    hostprof::Profiler::instance().set_enabled(false);
    hostprof::Profiler::instance().reset();
  }
};

TEST_F(HostprofTest, OptionsParsing) {
  EXPECT_FALSE(hostprof::options_from_string("").enabled);
  EXPECT_FALSE(hostprof::options_from_string("0").enabled);
  EXPECT_FALSE(hostprof::options_from_string("off").enabled);
  EXPECT_TRUE(hostprof::options_from_string("1").enabled);
  EXPECT_TRUE(hostprof::options_from_string("1").export_path.empty());
  EXPECT_TRUE(hostprof::options_from_string("on").enabled);
  const auto o = hostprof::options_from_string("/tmp/hp.json");
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.export_path, "/tmp/hp.json");
}

TEST_F(HostprofTest, FourThreadRunAttributesEveryLane) {
  const data::Field field = test_field();
  const auto snap = profiled_roundtrip(field, 4);

  // One caller lane plus three worker lanes, all labeled.
  ASSERT_GE(snap.threads.size(), 4u);
  size_t workers = 0, callers = 0;
  for (const auto& t : snap.threads) {
    if (t.label.rfind("szp-worker-", 0) == 0) ++workers;
    if (t.label.rfind("szp-caller-", 0) == 0) ++callers;
  }
  EXPECT_EQ(workers, 3u);
  EXPECT_EQ(callers, 1u);

  // Attribution closes: every lane's wall is exactly bucket time + idle,
  // so percentages sum to 100 by construction.
  for (const auto& t : snap.threads) {
    std::uint64_t attributed = 0;
    for (const auto ns : t.bucket_ns) attributed += ns;
    EXPECT_EQ(t.wall_ns, attributed + t.idle_ns) << t.label;
  }

  // The codec stages all ran somewhere.
  const auto agg = hostprof::aggregate_attribution(snap);
  EXPECT_GT(agg.bucket(hostprof::Bucket::kQP), 0u);
  EXPECT_GT(agg.bucket(hostprof::Bucket::kFE), 0u);
  EXPECT_GT(agg.bucket(hostprof::Bucket::kBB), 0u);
  EXPECT_GT(agg.work_ns(), 0u);
  // A 4-lane run pays real executor overhead (dispatch + waits), so the
  // dominant non-work bucket is nameable.
  EXPECT_GT(agg.overhead_ns(), 0u);
  EXPECT_NE(hostprof::dominant_overhead(agg), "none");
}

TEST_F(HostprofTest, CountersAreExact) {
  const data::Field field = test_field();
  const auto snap = profiled_roundtrip(field, 4);
  const size_t nblocks =
      core::num_blocks(field.values.size(), test_params().block_len);

  EXPECT_EQ(snap.counter(hostprof::HostCounter::kCompressCalls), 1u);
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kDecompressCalls), 1u);
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kBlocksEncoded), nblocks);
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kBlocksDecoded), nblocks);
  // compress reads raw + writes stream; decompress reads stream + writes
  // raw — the two totals are equal for a full roundtrip.
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kBytesRead),
            snap.counter(hostprof::HostCounter::kBytesWritten));
  EXPECT_GT(snap.counter(hostprof::HostCounter::kBytesRead),
            field.size_bytes());
  // One compress + one decompress, each split into width-many chunks.
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kChunks), 2u * 4u);
  EXPECT_GT(snap.counter(hostprof::HostCounter::kBatches), 0u);
  EXPECT_GT(snap.counter(hostprof::HostCounter::kTasks), 0u);
  // Compress observed its 4 chunks in the size histograms.
  EXPECT_EQ(snap.chunk_blocks.count, 4u);
  std::uint64_t blocks_sum = snap.chunk_blocks.sum;
  EXPECT_EQ(blocks_sum, nblocks);
}

TEST_F(HostprofTest, FingerprintIsRunToRunIdentical) {
  const data::Field field = test_field();
  for (const unsigned threads : {1u, 4u}) {
    const std::string a =
        hostprof::counter_fingerprint(profiled_roundtrip(field, threads));
    const std::string b =
        hostprof::counter_fingerprint(profiled_roundtrip(field, threads));
    EXPECT_EQ(a, b) << "threads=" << threads;
    EXPECT_NE(a.find("\"blocks_encoded\""), std::string::npos);
  }
}

TEST_F(HostprofTest, JsonReportParsesWithSchemaV1) {
  const data::Field field = test_field();
  const auto snap = profiled_roundtrip(field, 4);
  std::ostringstream os;
  hostprof::write_hostprof_json(os, snap);
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(os.str()).parse());

  const JsonValue* version = doc.find("szp_hostprof_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->num, 1.0);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* blocks = counters->find("blocks_encoded");
  ASSERT_NE(blocks, nullptr);
  EXPECT_EQ(static_cast<size_t>(blocks->num),
            core::num_blocks(field.values.size(), test_params().block_len));
  const JsonValue* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->arr.size(), snap.threads.size());

  // Per-lane and summary attribution percentages must sum to ~100.
  const auto pct_sum = [](const JsonValue& attribution) {
    double sum = 0;
    for (const auto& [key, v] : attribution.obj) sum += v.num;
    return sum;
  };
  for (const auto& t : threads->arr) {
    const JsonValue* attr = t.find("attribution_pct");
    ASSERT_NE(attr, nullptr);
    EXPECT_NEAR(pct_sum(*attr), 100.0, 0.1);
  }
  const JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  const JsonValue* attr = summary->find("attribution_pct");
  ASSERT_NE(attr, nullptr);
  EXPECT_NEAR(pct_sum(*attr), 100.0, 0.1);
  const JsonValue* dom = summary->find("dominant_overhead");
  ASSERT_NE(dom, nullptr);
  EXPECT_TRUE(dom->str == "queue_wait" || dom->str == "dispatch" ||
              dom->str == "barrier")
      << dom->str;
}

TEST_F(HostprofTest, ResetDropsDeadLanesAndZeroesCounters) {
  const data::Field field = test_field();
  (void)profiled_roundtrip(field, 4);  // pool destroyed: 3 dead lanes
  auto& prof = hostprof::Profiler::instance();
  prof.reset();
  const auto snap = prof.snapshot();
  for (const auto& t : snap.threads) EXPECT_TRUE(t.alive) << t.label;
  for (unsigned c = 0; c < hostprof::kNumHostCounters; ++c) {
    EXPECT_EQ(snap.counters[c], 0u);
  }
  EXPECT_EQ(snap.chunk_blocks.count, 0u);
}

// --- disabled-path guard (same contract as obs/test_overhead.cpp) -------

using Clock = std::chrono::steady_clock;
constexpr int kIters = 2'000'000;
constexpr double kMaxDisabledNsPerSite = 100.0;

double ns_per_iter(Clock::time_point t0, int iters) {
  const auto dt = Clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                 .count()) /
         iters;
}

TEST(HostprofOverhead, DisabledTimersAreBranchCheap) {
  hostprof::Profiler::instance().set_enabled(false);
  hostprof::Profiler::instance().reset();
  ASSERT_FALSE(hostprof::enabled());
  auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    const hostprof::ScopedTimer t(hostprof::Bucket::kQP);
  }
  double ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_scoped_timer", std::to_string(ns));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);

  t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    hostprof::SplitTimer t(hostprof::Bucket::kQP);
    t.split(hostprof::Bucket::kFE);
  }
  ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_split_timer", std::to_string(ns));
  // ctor + split + dtor: three disabled sites.
  EXPECT_LT(ns, 3 * kMaxDisabledNsPerSite);
}

TEST(HostprofOverhead, DisabledCounterSitesAreBranchCheapAndRecordNothing) {
  auto& prof = hostprof::Profiler::instance();
  prof.set_enabled(false);
  prof.reset();
  ASSERT_FALSE(hostprof::enabled());
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    // The product-code guard pattern around every counter update.
    if (hostprof::enabled()) {
      prof.count(hostprof::HostCounter::kTasks);
      prof.observe_chunk(1, 1);
    }
  }
  const double ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_guarded_site", std::to_string(ns));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);
  const auto snap = prof.snapshot();
  EXPECT_EQ(snap.counter(hostprof::HostCounter::kTasks), 0u);
  EXPECT_EQ(snap.chunk_blocks.count, 0u);
  for (const auto& t : snap.threads) {
    for (const auto b : t.bucket_ns) EXPECT_EQ(b, 0u);
  }
}

}  // namespace
