// Schema test for the Chrome trace exporter: run the real device codec
// with tracing on, export, parse the JSON with a minimal validating
// parser, and check the events the acceptance contract requires — 'X'
// spans for every cuSZp stage (QP/FE/GS/BB), kernel 'B'/'E' pairs,
// memcpy spans and chained-scan lookback events.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "szp/core/compressor.hpp"
#include "szp/gpusim/buffer.hpp"
#include "szp/obs/chrome_trace.hpp"
#include "szp/obs/tracer.hpp"
#include "support/mini_json.hpp"

namespace {

using namespace szp;
using testsupport::JsonParser;
using testsupport::JsonValue;

// ------------------------------------------------------------ fixture ----

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }

  /// Run a real compress+decompress through the device path.
  static void run_pipeline() {
    std::vector<float> data(64 * 1024);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = std::sin(static_cast<double>(i) * 0.001) * 10.0;
    }
    core::Params params;
    params.mode = core::ErrorMode::kRel;
    params.error_bound = 1e-3;
    Compressor c(params);
    gpusim::Device dev;
    auto d_in = gpusim::to_device<float>(dev, std::span<const float>(data));
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev, core::max_compressed_bytes(data.size(), params.block_len));
    gpusim::DeviceBuffer<float> d_out(dev, data.size());
    const auto comp =
        c.compress_on_device(dev, d_in, data.size(), 20.0, d_cmp);
    (void)c.decompress_on_device(dev, d_cmp, d_out, comp.bytes);
    (void)gpusim::to_host(dev, d_out);
  }
};

TEST_F(ChromeTraceTest, ExportParsesAndSatisfiesSchema) {
  run_pipeline();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string text = os.str();
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(text).parse()) << text.substr(0, 400);

  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_GT(events->arr.size(), 0u);

  // Count events per (cat, name, ph); validate required fields as we go.
  std::map<std::string, size_t> seen;
  double last_ts = -1;
  for (const auto& e : events->arr) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    const JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->str == "M") continue;  // metadata events carry no ts
    const JsonValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->num, 0.0);
    if (ph->str == "X") {
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->num, 0.0);
      EXPECT_GE(ts->num, last_ts);  // sorted by timestamp
      last_ts = ts->num;
    }
    const JsonValue* cat = e.find("cat");
    const std::string c = cat != nullptr ? cat->str : "";
    seen[c + "/" + name->str + "/" + ph->str] += 1;
  }

  // Acceptance schema: X spans for every stage of the paper's pipeline...
  for (const char* stage : {"QP", "FE", "GS", "BB"}) {
    EXPECT_GE(seen[std::string("stage/") + stage + "/X"], 1u) << stage;
  }
  // ...kernel B/E pairs for both codec kernels...
  for (const char* kernel : {"szp_compress", "szp_decompress"}) {
    EXPECT_EQ(seen[std::string("kernel/") + kernel + "/B"], 1u) << kernel;
    EXPECT_EQ(seen[std::string("kernel/") + kernel + "/E"], 1u) << kernel;
    EXPECT_GE(seen[std::string("block/") + kernel + "/X"], 1u) << kernel;
  }
  // ...memcpy spans and the chained-scan lookback events.
  EXPECT_GE(seen["memcpy/h2d/X"], 1u);
  EXPECT_GE(seen["memcpy/d2h/X"], 1u);
  EXPECT_GE(seen["gs/lookback/X"], 1u);
  // API entry points recorded on the host lane.
  EXPECT_EQ(seen["api/compress_on_device/X"], 1u);
  EXPECT_EQ(seen["api/decompress_on_device/X"], 1u);
}

TEST_F(ChromeTraceTest, WorkerThreadsAreNamedLanes) {
  run_pipeline();
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t worker_lanes = 0;
  size_t process_names = 0;
  for (const auto& e : events->arr) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->str != "M") continue;
    const JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue* label = args->find("name");
    ASSERT_NE(label, nullptr);
    if (name->str == "process_name") {
      EXPECT_EQ(label->str, "szp");
      ++process_names;
      continue;
    }
    EXPECT_EQ(name->str, "thread_name");
    if (label->str.find("gpusim-worker") != std::string::npos) ++worker_lanes;
  }
  EXPECT_GE(worker_lanes, 1u);
  EXPECT_EQ(process_names, 1u);
}

TEST_F(ChromeTraceTest, EmptyRecordingStillParses) {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only this thread's (empty or missing) lane metadata may be present;
  // no timed events.
  for (const auto& e : events->arr) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "M");
  }
}

}  // namespace
