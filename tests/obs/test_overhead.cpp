// Benchmark guard for the disabled-path overhead contract: with tracing
// and metrics off, an instrumentation site is one relaxed atomic load and
// a branch. The guard times a large batch of disabled sites and fails if
// the per-site cost is orders of magnitude above that — i.e. if someone
// accidentally adds a clock read, lock or allocation to the fast path.
// The bound is deliberately generous (~100x a branch+load) so it never
// flakes on slow CI machines, while still catching a clock_gettime call
// (which would blow past it).
#include <gtest/gtest.h>

#include <chrono>

#include "szp/obs/metrics.hpp"
#include "szp/obs/tracer.hpp"

namespace {

using namespace szp;
using Clock = std::chrono::steady_clock;

constexpr int kIters = 2'000'000;
// 100 ns per disabled site ~= 100x the expected cost on any machine this
// test runs on; a stray now_ns() alone costs ~20-30 ns per span *plus*
// ring-buffer work, and enabled spans measure >100 ns (checked below).
constexpr double kMaxDisabledNsPerSite = 100.0;

double ns_per_iter(Clock::time_point t0, int iters) {
  const auto dt = Clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         iters;
}

TEST(ObsOverhead, DisabledSpansAreBranchCheap) {
  ASSERT_FALSE(obs::tracing_enabled());
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    const obs::Span s("bench", "disabled", "i", static_cast<std::uint64_t>(i));
  }
  const double ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_span", std::to_string(ns));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);
}

TEST(ObsOverhead, DisabledMetricsAreBranchCheap) {
  ASSERT_FALSE(obs::metrics_enabled());
  auto& c = obs::Registry::instance().counter("bench.disabled");
  auto& h = obs::Registry::instance().histogram(
      "bench.disabled.h", obs::Histogram::pow2_bounds(16));
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    c.add();
    h.observe(static_cast<double>(i));
  }
  const double ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_update", std::to_string(ns));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);
  EXPECT_EQ(c.value(), 0u);  // nothing recorded while disabled
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsOverhead, DisabledInstantAndCompleteAreBranchCheap) {
  ASSERT_FALSE(obs::tracing_enabled());
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    obs::instant("bench", "disabled");
    obs::complete("bench", "disabled", 0, 0);
  }
  const double ns = ns_per_iter(t0, kIters);
  RecordProperty("ns_per_pair", std::to_string(ns));
  EXPECT_LT(ns, 2 * kMaxDisabledNsPerSite);
}

}  // namespace
