// Unit tests for the span tracer and the metrics registry.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "szp/obs/metrics.hpp"
#include "szp/obs/tracer.hpp"

namespace {

using namespace szp;

/// Every test runs with a clean, enabled tracer and restores the
/// disabled default afterwards (other suites in this binary assume it).
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_ring_capacity(1 << 15);
  }
};

TEST_F(TracerTest, SpanRecordsCompleteEvent) {
  { const obs::Span s("cat", "work", "items", 7); }
  const auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  const auto& e = threads[0].events[0];
  EXPECT_STREQ(e.name, "work");
  EXPECT_STREQ(e.cat, "cat");
  EXPECT_EQ(e.ph, obs::Phase::kComplete);
  EXPECT_STREQ(e.arg1_name, "items");
  EXPECT_EQ(e.arg1, 7u);
}

TEST_F(TracerTest, SpanCloseIsIdempotent) {
  obs::Span s("cat", "once");
  s.close();
  s.close();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 1u);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer::instance().set_enabled(false);
  { const obs::Span s("cat", "ignored"); }
  obs::instant("cat", "ignored");
  { const obs::BeginEndSpan be("cat", "ignored"); }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(TracerTest, SpanOpenedWhileDisabledDoesNotRecordOnClose) {
  obs::Tracer::instance().set_enabled(false);
  obs::Span s("cat", "late");
  obs::Tracer::instance().set_enabled(true);
  s.close();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(TracerTest, BeginEndSpanEmitsPair) {
  { const obs::BeginEndSpan be("cat", "phase", "arg", 3); }
  const auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 2u);
  EXPECT_EQ(threads[0].events[0].ph, obs::Phase::kBegin);
  EXPECT_EQ(threads[0].events[1].ph, obs::Phase::kEnd);
  EXPECT_GE(threads[0].events[1].ts_ns, threads[0].events[0].ts_ns);
}

TEST_F(TracerTest, RingWrapCountsOverwrittenEvents) {
  obs::Tracer::instance().set_ring_capacity(16);
  obs::Tracer::instance().clear();  // re-applies capacity to this thread
  for (int i = 0; i < 40; ++i) obs::instant("cat", "tick");
  const auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 16u);
  EXPECT_EQ(threads[0].overwritten, 24u);
}

TEST_F(TracerTest, EventsComeOutInRecordingOrderAfterWrap) {
  obs::Tracer::instance().set_ring_capacity(16);
  obs::Tracer::instance().clear();
  for (std::uint64_t i = 0; i < 20; ++i) obs::instant("cat", "tick", "i", i);
  const auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 16u);
  for (size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(threads[0].events[k].arg1, 4 + k);  // oldest surviving first
  }
}

TEST_F(TracerTest, BuffersOfExitedThreadsSurviveUntilClear) {
  obs::instant("cat", "from-main");  // register the main thread's lane
  std::thread([] {
    obs::set_thread_name("worker");
    obs::instant("cat", "from-worker");
  }).join();
  auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 2u);  // main + exited worker
  bool found = false;
  for (const auto& t : threads) {
    if (t.thread_name == "worker") {
      found = true;
      EXPECT_EQ(t.events.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
  obs::Tracer::instance().clear();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(TracerTest, ThreadsGetDistinctTids) {
  obs::instant("cat", "main");
  std::thread([] { obs::instant("cat", "worker"); }).join();
  const auto threads = obs::Tracer::instance().collect();
  ASSERT_EQ(threads.size(), 2u);
  EXPECT_NE(threads[0].tid, threads[1].tid);
}

/// Metrics fixture: clean, enabled registry; disabled afterwards.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::Registry::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Registry::instance().set_enabled(false);
    obs::Registry::instance().reset();
  }
};

TEST_F(MetricsTest, CounterCountsAndFindsByName) {
  auto& c = obs::Registry::instance().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  const auto* found = obs::Registry::instance().find_counter("test.counter");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 42u);
  EXPECT_EQ(obs::Registry::instance().find_counter("absent"), nullptr);
}

TEST_F(MetricsTest, FindOrCreateReturnsSameInstrument) {
  auto& a = obs::Registry::instance().counter("test.same");
  auto& b = obs::Registry::instance().counter("test.same");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, GaugeTracksLastValueAndSetFlag) {
  auto& g = obs::Registry::instance().gauge("test.gauge");
  EXPECT_FALSE(g.has_value());
  g.set(1.5);
  g.set(2.5);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(MetricsTest, DisabledInstrumentsIgnoreUpdates) {
  auto& c = obs::Registry::instance().counter("test.off");
  auto& g = obs::Registry::instance().gauge("test.off.g");
  auto& h = obs::Registry::instance().histogram(
      "test.off.h", obs::Histogram::linear_bounds(0, 10, 10));
  obs::Registry::instance().set_enabled(false);
  c.add(5);
  g.set(3.0);
  h.observe(4.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  auto& h = obs::Registry::instance().histogram(
      "test.hist", obs::Histogram::linear_bounds(0, 10, 10));
  for (double v : {0.5, 1.5, 1.9, 9.5, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.sum(), 113.4, 1e-9);
  EXPECT_EQ(h.num_buckets(), 11u);      // bounds 1..10 + overflow
  EXPECT_EQ(h.bucket_count(0), 1u);     // (-inf,1): 0.5
  EXPECT_EQ(h.bucket_count(1), 2u);     // [1,2): 1.5, 1.9
  EXPECT_EQ(h.bucket_count(9), 1u);     // [9,10): 9.5
  EXPECT_EQ(h.bucket_count(10), 1u);    // overflow: 100
}

TEST_F(MetricsTest, Pow2BoundsClassifyPowers) {
  auto& h = obs::Registry::instance().histogram("test.pow2",
                                                obs::Histogram::pow2_bounds(4));
  // bounds 1,2,4,8: buckets (-inf,1) [1,2) [2,4) [4,8) [8,inf)
  for (double v : {0.0, 1.0, 3.0, 7.0, 8.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 2u);
}

TEST_F(MetricsTest, QuantilesInterpolateWithinBuckets) {
  auto& h = obs::Registry::instance().histogram(
      "test.quantile", obs::Histogram::linear_bounds(0, 100, 100));
  // 1..100 uniformly: one observation per [k, k+1) bucket.
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v) - 0.5);
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST_F(MetricsTest, QuantileEdgeCases) {
  auto& empty = obs::Registry::instance().histogram(
      "test.quantile.empty", obs::Histogram::linear_bounds(0, 10, 10));
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // Everything in the overflow bucket: the tracked max bounds the answer.
  auto& over = obs::Registry::instance().histogram(
      "test.quantile.over", obs::Histogram::linear_bounds(0, 10, 10));
  over.observe(1000.0);
  over.observe(2000.0);
  EXPECT_GE(over.quantile(0.99), 1000.0);
  EXPECT_LE(over.quantile(0.99), 2000.0);

  // A single observation is every quantile.
  auto& one = obs::Registry::instance().histogram(
      "test.quantile.one", obs::Histogram::linear_bounds(0, 10, 10));
  one.observe(3.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.0);
}

TEST_F(MetricsTest, ExportersIncludeQuantiles) {
  auto& h = obs::Registry::instance().histogram(
      "test.quantile.json", obs::Histogram::linear_bounds(0, 10, 10));
  h.observe(5.0);
  std::ostringstream js;
  obs::Registry::instance().write_json(js);
  EXPECT_NE(js.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(js.str().find("\"p90\""), std::string::npos);
  EXPECT_NE(js.str().find("\"p99\""), std::string::npos);
  std::ostringstream txt;
  obs::Registry::instance().write_text(txt);
  EXPECT_NE(txt.str().find("p50="), std::string::npos);
  EXPECT_NE(txt.str().find("p99="), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesButKeepsInstruments) {
  auto& c = obs::Registry::instance().counter("test.reset");
  c.add(7);
  obs::Registry::instance().reset();
  obs::Registry::instance().set_enabled(true);  // reset leaves enable alone
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(obs::Registry::instance().find_counter("test.reset"), &c);
}

TEST_F(MetricsTest, WriteJsonIsWellFormedEnough) {
  obs::Registry::instance().counter("json.counter").add(3);
  obs::Registry::instance().gauge("json.gauge").set(1.25);
  obs::Registry::instance()
      .histogram("json.hist", obs::Histogram::linear_bounds(0, 4, 4))
      .observe(2.0);
  std::ostringstream os;
  obs::Registry::instance().write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"json.counter\": 3"), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"json.gauge\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"json.hist\""), std::string::npos);
  // Balanced braces (cheap structural sanity; the chrome-trace test runs
  // a real parser over exporter output).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
}

TEST_F(MetricsTest, WriteTextSkipsEmptyInstruments) {
  obs::Registry::instance().counter("text.used").add(1);
  obs::Registry::instance().counter("text.unused");
  std::ostringstream os;
  obs::Registry::instance().write_text(os);
  EXPECT_NE(os.str().find("text.used"), std::string::npos);
  EXPECT_EQ(os.str().find("text.unused"), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentCounterAddsAreLossless) {
  auto& c = obs::Registry::instance().counter("test.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

}  // namespace
