// Production-telemetry suite: flight recorder semantics and dump schema,
// structured-log JSON-lines sink, Prometheus exposition, the TCP/snapshot
// telemetry server, crash-bundle death tests, the disabled-path overhead
// guard, and the end-to-end trace-ID contract (one ID follows a
// compress_batch() request from the API span through the stream lanes
// into logs, metrics exemplars and chrome-trace flow events).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "szp/engine/engine.hpp"
#include "szp/obs/chrome_trace.hpp"
#include "szp/obs/log.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/crash_handler.hpp"
#include "szp/obs/telemetry/exposition.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/server.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/obs/trace_id.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/mini_json.hpp"

namespace {

using namespace szp;
using util::JsonParser;
using util::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fresh_dir(const char* tag) {
  const std::string dir = "/tmp/szp_telemetry_test_" + std::string(tag) +
                          "." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

JsonValue parse_json(const std::string& text) {
  JsonValue v;
  EXPECT_NO_THROW(v = JsonParser(text).parse()) << text.substr(0, 400);
  return v;
}

/// RAII: flight recorder on for the test body, off + cleared after.
struct RecorderOn {
  RecorderOn() {
    obs::fr::set_enabled(true);
    obs::fr::clear();
  }
  ~RecorderOn() {
    obs::fr::set_enabled(false);
    obs::fr::clear();
  }
};

// -------------------------------------------------- flight recorder ----

TEST(FlightRecorder, DisabledByDefaultAndRecordsNothing) {
  ASSERT_FALSE(obs::fr::recording_enabled());
  const std::uint64_t before = obs::fr::event_count();
  obs::fr::record(obs::fr::Kind::kKernel, "noop");
  { const obs::fr::Span s("noop"); }
  EXPECT_EQ(obs::fr::event_count(), before);
}

TEST(FlightRecorder, DumpSchemaParsesAndCarriesEvents) {
  const RecorderOn on;
  const obs::TraceIdScope trace(obs::next_trace_id());
  obs::fr::set_thread_name("telemetry-test");
  obs::fr::record(obs::fr::Kind::kKernel, "fr_test_kernel", 42, 7);
  {
    const obs::fr::Span s("fr_test_span");
    obs::fr::record(obs::fr::Kind::kFault, "fr_test_fault", 3);
  }

  std::ostringstream os;
  obs::fr::write_json(os);
  const JsonValue doc = parse_json(os.str());
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "szp.flight_recorder.v1");
  const JsonValue* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(threads->kind, JsonValue::Kind::kArray);

  // Find this thread's ring by name and check the event record shape.
  bool found_kernel = false;
  bool found_span_pair = false;
  for (const JsonValue& t : threads->arr) {
    const JsonValue* name = t.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str != "telemetry-test") continue;
    const JsonValue* events = t.find("events");
    ASSERT_NE(events, nullptr);
    int begins = 0;
    int ends = 0;
    for (const JsonValue& e : events->arr) {
      const JsonValue* kind = e.find("kind");
      ASSERT_NE(kind, nullptr);
      ASSERT_NE(e.find("ts_ns"), nullptr);
      ASSERT_NE(e.find("trace_id"), nullptr);
      if (kind->str == "kernel" && e.find("name")->str == "fr_test_kernel") {
        found_kernel = true;
        EXPECT_EQ(e.find("a")->num, 42);
        EXPECT_EQ(e.find("b")->num, 7);
        EXPECT_EQ(static_cast<std::uint64_t>(e.find("trace_id")->num),
                  trace.id());
      }
      if (kind->str == "span_begin" && e.find("name")->str == "fr_test_span") {
        ++begins;
      }
      if (kind->str == "span_end" && e.find("name")->str == "fr_test_span") {
        ++ends;
      }
    }
    found_span_pair = begins == 1 && ends == 1;
  }
  EXPECT_TRUE(found_kernel);
  EXPECT_TRUE(found_span_pair);
}

TEST(FlightRecorder, FdDumpMatchesOstreamDump) {
  const RecorderOn on;
  obs::fr::record(obs::fr::Kind::kStreamOp, "fd_dump_probe", 1, 2);

  const std::string path = fresh_dir("fddump") + "/dump.json";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(obs::fr::dump_to_fd(fd));
  ::close(fd);

  std::ostringstream os;
  obs::fr::write_json(os);
  // Byte-identical apart from live-thread timing is too strict (another
  // ring can gain events between the two dumps); the schema contract is
  // that both parse and both carry the probe event.
  const std::string fd_text = read_file(path);
  EXPECT_NE(fd_text.find("\"fd_dump_probe\""), std::string::npos);
  parse_json(fd_text);
  parse_json(os.str());
}

TEST(FlightRecorder, WrapAroundCountsDroppedEvents) {
  const RecorderOn on;
  // A dedicated thread owns a fresh (or at least freshly cleared) ring,
  // so the drop count is exact.
  std::thread([] {
    obs::fr::set_thread_name("wraptest");
    for (std::size_t i = 0; i < obs::fr::kRingCapacity + 10; ++i) {
      obs::fr::record(obs::fr::Kind::kLog, "wrap_probe", i);
    }
  }).join();

  std::ostringstream os;
  obs::fr::write_json(os);
  const JsonValue doc = parse_json(os.str());
  bool found = false;
  for (const JsonValue& t : doc.find("threads")->arr) {
    if (t.find("name")->str != "wraptest") continue;
    found = true;
    EXPECT_EQ(t.find("dropped")->num, 10);
    EXPECT_EQ(t.find("events")->arr.size(), obs::fr::kRingCapacity);
    // Oldest events were overwritten: the first retained one is #10.
    EXPECT_EQ(t.find("events")->arr.front().find("a")->num, 10);
    EXPECT_FALSE(t.find("alive")->b);
  }
  EXPECT_TRUE(found);
  EXPECT_GE(obs::fr::dropped_events(), 10u);
}

TEST(FlightRecorder, DeepSpanNestingIsBoundedButBalanced) {
  const RecorderOn on;
  constexpr std::size_t kDepth = obs::fr::kMaxSpanDepth + 4;
  std::thread([] {
    obs::fr::set_thread_name("deepspans");
    std::vector<std::unique_ptr<obs::fr::Span>> spans;
    for (std::size_t i = 0; i < kDepth; ++i) {
      spans.push_back(std::make_unique<obs::fr::Span>("deep"));
    }
    // Mid-flight the dump shows at most kMaxSpanDepth names.
    std::ostringstream os;
    obs::fr::write_json(os);
    const JsonValue doc = JsonParser(os.str()).parse();
    for (const JsonValue& t : doc.find("threads")->arr) {
      if (t.find("name")->str != "deepspans") continue;
      EXPECT_EQ(t.find("active_spans")->arr.size(), obs::fr::kMaxSpanDepth);
    }
    spans.clear();  // unwind; depth must return to zero
    std::ostringstream os2;
    obs::fr::write_json(os2);
    const JsonValue doc2 = JsonParser(os2.str()).parse();
    for (const JsonValue& t : doc2.find("threads")->arr) {
      if (t.find("name")->str != "deepspans") continue;
      EXPECT_TRUE(t.find("active_spans")->arr.empty());
    }
  }).join();
}

// --------------------------------------------------- structured logs ----

TEST(StructuredLog, JsonSinkEmitsParseableRecordsWithTraceIds) {
  const std::string path = fresh_dir("log") + "/log.jsonl";
  auto& logger = obs::Logger::instance();
  ASSERT_TRUE(logger.set_json_sink(path));
  logger.set_stderr_sink(false);
  const obs::LogLevel prev = logger.level();
  logger.set_level(obs::LogLevel::kDebug);

  const obs::TraceIdScope trace(obs::next_trace_id());
  SZP_LOG_INFO("testcomp", "hello %d \"quoted\"", 42);
  SZP_LOG_DEBUG("testcomp", "debug line");
  logger.flush();
  logger.set_level(prev);
  logger.set_stderr_sink(true);
  logger.set_json_sink("");

  std::ifstream in(path);
  std::string line;
  int matched = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue rec = parse_json(line);  // every line is strict JSON
    ASSERT_NE(rec.find("ts_ns"), nullptr);
    ASSERT_NE(rec.find("level"), nullptr);
    ASSERT_NE(rec.find("component"), nullptr);
    ASSERT_NE(rec.find("msg"), nullptr);
    if (rec.find("component")->str != "testcomp") continue;
    EXPECT_EQ(static_cast<std::uint64_t>(rec.find("trace_id")->num),
              trace.id());
    if (rec.find("msg")->str == "hello 42 \"quoted\"") {
      EXPECT_EQ(rec.find("level")->str, "info");
      ++matched;
    }
    if (rec.find("msg")->str == "debug line") {
      EXPECT_EQ(rec.find("level")->str, "debug");
      ++matched;
    }
  }
  EXPECT_EQ(matched, 2);
}

TEST(StructuredLog, BelowLevelRecordsAreDroppedByTheMacro) {
  auto& logger = obs::Logger::instance();
  const obs::LogLevel prev = logger.level();
  logger.set_level(obs::LogLevel::kError);
  const std::uint64_t before = logger.records();
  SZP_LOG_INFO("testcomp", "should not be emitted");
  SZP_LOG_WARN("testcomp", "nor this");
  EXPECT_EQ(logger.records(), before);
  logger.set_level(prev);
}

TEST(StructuredLog, RateLimitSuppressesAndReportsTheCount) {
  const std::string path = fresh_dir("ratelimit") + "/log.jsonl";
  auto& logger = obs::Logger::instance();
  ASSERT_TRUE(logger.set_json_sink(path));
  logger.set_stderr_sink(false);
  logger.set_rate_limit(5);
  const std::uint64_t suppressed_before = logger.suppressed();
  for (int i = 0; i < 50; ++i) SZP_LOG_ERROR("floodcomp", "flood %d", i);
  logger.flush();
  logger.set_rate_limit(200);
  logger.set_stderr_sink(true);
  logger.set_json_sink("");

  EXPECT_GT(logger.suppressed(), suppressed_before);
  // No more than the bucket's worth of floodcomp lines landed on disk.
  std::ifstream in(path);
  std::string line;
  int flood_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("floodcomp") != std::string::npos) ++flood_lines;
  }
  EXPECT_GT(flood_lines, 0);
  // One extra bucket refill can land if a wall-second boundary crosses
  // the loop, so allow two buckets' worth.
  EXPECT_LE(flood_lines, 10);
}

TEST(StructuredLog, WarnAndErrorRecordsLandInTheFlightRecorder) {
  const RecorderOn on;
  auto& logger = obs::Logger::instance();
  logger.set_stderr_sink(false);
  SZP_LOG_WARN("warncomp", "a warning");
  SZP_LOG_ERROR("errcomp", "an error");
  logger.set_stderr_sink(true);

  std::ostringstream os;
  obs::fr::write_json(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"warncomp\""), std::string::npos);
  EXPECT_NE(dump.find("\"errcomp\""), std::string::npos);
}

// ------------------------------------------------ metrics exposition ----

TEST(Exposition, BuiltinsRenderAsPrometheusText) {
  auto& b = obs::telemetry::builtins();
  b.requests.fetch_add(1, std::memory_order_relaxed);
  b.last_trace_id.store(987654, std::memory_order_relaxed);
  const std::string text = obs::telemetry::prometheus_text();

  for (const char* metric :
       {"szp_uptime_seconds", "szp_requests_total", "szp_errors_total",
        "szp_bytes_in_total", "szp_bytes_out_total", "szp_queue_depth",
        "szp_pool_in_use", "szp_log_records_total",
        "szp_recorder_events_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + metric),
              std::string::npos)
        << metric;
    EXPECT_NE(text.find(std::string("\n") + metric + " "), std::string::npos)
        << metric;
  }
  // The exemplar joins the scrape to the most recent request's trace.
  EXPECT_NE(text.find("# {trace_id=\"987654\"} 1"), std::string::npos);

  // Format sanity: every non-comment line is `name[{labels}] value`.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    // Exemplar suffixes were handled above; a plain sample's last token
    // must parse as a number.
    if (line.find(" # ") != std::string::npos) continue;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }
}

TEST(Exposition, RegistryInstrumentsAppearWhenMetricsAreOn) {
  obs::Registry::instance().set_enabled(true);
  auto& c = obs::Registry::instance().counter("telemetry.test.counter");
  c.add(3);
  const std::string text = obs::telemetry::prometheus_text();
  obs::Registry::instance().set_enabled(false);
  EXPECT_NE(text.find("telemetry_test_counter_total"), std::string::npos);
}

// ------------------------------------------------- telemetry server ----

TEST(TelemetryServer, TcpScrapeAndSnapshotFile) {
  const std::string dir = fresh_dir("server");
  const std::string snap = dir + "/metrics.prom";
  auto& srv = obs::telemetry::TelemetryServer::instance();
  obs::telemetry::TelemetryServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.snapshot_path = snap;
  opts.snapshot_period_ms = 50;
  ASSERT_TRUE(srv.start(opts));
  ASSERT_TRUE(srv.running());
  const int port = srv.port();
  ASSERT_GT(port, 0);

  // Plain TCP scrape: connect, read everything, expect an HTTP 200 with
  // the exposition body.
  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(sock, 0);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(sock, reinterpret_cast<::sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::write(sock, req, sizeof(req) - 1), 0);
  std::string resp;
  char buf[4096];
  ::ssize_t n = 0;
  while ((n = ::read(sock, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(sock);
  EXPECT_NE(resp.find("200"), std::string::npos);
  EXPECT_NE(resp.find("szp_uptime_seconds"), std::string::npos);

  // stop() writes one final snapshot even if the period never elapsed.
  srv.stop();
  EXPECT_FALSE(srv.running());
  const std::string snapshot = read_file(snap);
  EXPECT_NE(snapshot.find("szp_requests_total"), std::string::npos);
}

// --------------------------------------------------- always-on builtins ----

TEST(Builtins, EngineRequestsBumpCountersWithTelemetryOff) {
  ASSERT_FALSE(obs::fr::recording_enabled());
  auto& b = obs::telemetry::builtins();
  const std::uint64_t requests = b.requests.load(std::memory_order_relaxed);
  const std::uint64_t bytes_in = b.bytes_in.load(std::memory_order_relaxed);

  engine::Engine eng;  // serial backend
  std::vector<float> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(static_cast<double>(i) * 0.01f);
  }
  const auto cmp = eng.compress(data);
  (void)eng.decompress(cmp.bytes);

  EXPECT_EQ(b.requests.load(std::memory_order_relaxed), requests + 2);
  EXPECT_EQ(b.bytes_in.load(std::memory_order_relaxed),
            bytes_in + data.size() * sizeof(float));
  EXPECT_GT(b.bytes_out.load(std::memory_order_relaxed), 0u);
  EXPECT_NE(b.last_trace_id.load(std::memory_order_relaxed), 0u);
}

// ------------------------------------------- end-to-end trace ID ----

// The PR's acceptance contract: one trace ID minted at (or adopted by) a
// compress_batch() call is observable in (a) the flight recorder on
// more than one thread (API span on the caller, ops on stream lanes),
// (b) the JSON log sink, (c) the exposition exemplar, and (d) chrome
// trace flow events connecting the request across lanes.
TEST(TraceIdEndToEnd, OneIdFollowsACompressBatchRequestEverywhere) {
  const RecorderOn on;
  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  const std::string log_path = fresh_dir("e2e") + "/log.jsonl";
  auto& logger = obs::Logger::instance();
  ASSERT_TRUE(logger.set_json_sink(log_path));
  logger.set_stderr_sink(false);
  const obs::LogLevel prev = logger.level();
  logger.set_level(obs::LogLevel::kDebug);

  engine::EngineConfig cfg;
  cfg.backend = engine::BackendKind::kDevice;
  cfg.devices = 1;
  cfg.streams = 2;
  cfg.params.mode = core::ErrorMode::kRel;
  cfg.params.error_bound = 1e-3;
  engine::Engine eng(cfg);

  std::vector<float> a(32 * 1024);
  std::vector<float> b(32 * 1024);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(static_cast<double>(i) * 0.001) * 10.0f;
    b[i] = std::cos(static_cast<double>(i) * 0.002) * 5.0f;
  }
  const std::vector<std::span<const float>> fields = {a, b};

  // The caller establishes the request ID; the engine must adopt it
  // (ensure_trace_id), not mint a fresh one.
  std::uint64_t id = 0;
  {
    const obs::TraceIdScope request(obs::next_trace_id());
    id = request.id();
    const auto out = eng.compress_batch(fields, 20.0);
    ASSERT_EQ(out.size(), 2u);
  }
  logger.flush();
  logger.set_level(prev);
  logger.set_stderr_sink(true);
  logger.set_json_sink("");
  obs::Tracer::instance().set_enabled(false);
  ASSERT_NE(id, 0u);

  // (a) Flight recorder: the ID appears on >= 2 threads, covering both
  // the API span and at least one stream-lane op.
  std::ostringstream fr_os;
  obs::fr::write_json(fr_os);
  const JsonValue fr_doc = parse_json(fr_os.str());
  std::set<double> tids_with_id;
  std::set<std::string> kinds_with_id;
  for (const JsonValue& t : fr_doc.find("threads")->arr) {
    for (const JsonValue& e : t.find("events")->arr) {
      if (static_cast<std::uint64_t>(e.find("trace_id")->num) != id) continue;
      tids_with_id.insert(t.find("tid")->num);
      kinds_with_id.insert(e.find("kind")->str);
    }
  }
  EXPECT_GE(tids_with_id.size(), 2u) << "trace ID not visible on stream lanes";
  EXPECT_TRUE(kinds_with_id.count("span_begin") == 1);
  EXPECT_TRUE(kinds_with_id.count("kernel") == 1 ||
              kinds_with_id.count("stream_op") == 1 ||
              kinds_with_id.count("memcpy") == 1)
      << "no device-side event carries the request's trace ID";

  // (b) The engine's debug log record carries the same ID.
  std::ifstream log_in(log_path);
  std::string line;
  bool logged = false;
  while (std::getline(log_in, line)) {
    if (line.empty()) continue;
    const JsonValue rec = parse_json(line);
    if (rec.find("component")->str == "engine" &&
        static_cast<std::uint64_t>(rec.find("trace_id")->num) == id) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);

  // (c) The exposition exemplar points at this request.
  EXPECT_EQ(obs::telemetry::builtins().last_trace_id.load(
                std::memory_order_relaxed),
            id);
  const std::string prom = obs::telemetry::prometheus_text();
  EXPECT_NE(prom.find("trace_id=\"" + std::to_string(id) + "\""),
            std::string::npos);

  // (d) Chrome trace: flow events with this ID connect >= 2 steps.
  std::ostringstream ct_os;
  obs::write_chrome_trace(ct_os);
  obs::Tracer::instance().clear();
  const JsonValue trace_doc = parse_json(ct_os.str());
  int flow_steps = 0;
  bool flow_start = false;
  bool flow_finish = false;
  for (const JsonValue& e : trace_doc.find("traceEvents")->arr) {
    const JsonValue* cat = e.find("cat");
    if (cat == nullptr || cat->str != "flow") continue;
    const JsonValue* fid = e.find("id");
    ASSERT_NE(fid, nullptr);
    if (static_cast<std::uint64_t>(fid->num) != id) continue;
    ++flow_steps;
    const std::string ph = e.find("ph")->str;
    flow_start = flow_start || ph == "s";
    flow_finish = flow_finish || ph == "f";
  }
  EXPECT_GE(flow_steps, 2);
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_finish);
}

// ------------------------------------------------ crash-bundle tests ----

/// Death-test dirs must NOT embed the pid: under the threadsafe style
/// the child re-executes the test body, so a pid-suffixed path would
/// diverge between parent and child. Names are unique per test case and
/// this binary is not in the devcheck re-run list, so there is no
/// concurrent user.
std::string crash_dir(const char* tag) {
  const std::string dir = std::string("/tmp/szp_telemetry_crash_") + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Scan `dir` for the (single) bundle the crashed child wrote. The
/// child's pid differs from ours, so match the filename prefix.
std::string find_bundle(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("szp_crash_", 0) == 0) return entry.path().string();
  }
  return {};
}

/// Everything the crashing child does before dying: install the handler,
/// arm the recorder, leave a recognizable event trail and an open span.
void arm_crash_scenario(const std::string& dir) {
  obs::crash::Options opts;
  opts.dir = dir;
  if (!obs::crash::install(opts)) std::_Exit(97);
  obs::fr::set_enabled(true);
  obs::fr::set_thread_name("crash-victim");
  obs::fr::record(obs::fr::Kind::kKernel, "pre_crash_kernel", 11);
}

/// Shared assertions over a parsed bundle: schema, manifest, recorder
/// payload with the events leading up to the fault and the still-open
/// span.
void check_bundle(const std::string& path, const std::string& reason) {
  ASSERT_FALSE(path.empty()) << "no crash bundle written";
  const JsonValue doc = parse_json(read_file(path));
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.find("schema")->str, "szp.crash_bundle.v1");
  EXPECT_EQ(doc.find("reason")->str, reason);
  ASSERT_NE(doc.find("version"), nullptr);
  ASSERT_NE(doc.find("build"), nullptr);
  ASSERT_NE(doc.find("uptime_ns"), nullptr);
  ASSERT_NE(doc.find("env"), nullptr);
  ASSERT_NE(doc.find("env")->find("SZP_TELEMETRY"), nullptr);
  const JsonValue* builtins = doc.find("builtins");
  ASSERT_NE(builtins, nullptr);
  ASSERT_NE(builtins->find("requests"), nullptr);
  ASSERT_NE(builtins->find("errors"), nullptr);

  const JsonValue* rec = doc.find("recorder");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->find("schema")->str, "szp.flight_recorder.v1");
  bool found_event = false;
  bool found_span = false;
  for (const JsonValue& t : rec->find("threads")->arr) {
    if (t.find("name")->str != "crash-victim") continue;
    for (const JsonValue& e : t.find("events")->arr) {
      if (e.find("name")->str == "pre_crash_kernel") found_event = true;
    }
    for (const JsonValue& s : t.find("active_spans")->arr) {
      if (s.str == "doomed_request") found_span = true;
    }
  }
  EXPECT_TRUE(found_event) << "events leading up to the fault are missing";
  EXPECT_TRUE(found_span) << "active span stack is missing";
}

TEST(CrashBundleDeathTest, SegvWritesSchemaValidBundle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = crash_dir("segv");
  EXPECT_EXIT(
      {
        arm_crash_scenario(dir);
        const obs::fr::Span doomed("doomed_request");
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  check_bundle(find_bundle(dir), "signal:11");
}

TEST(CrashBundleDeathTest, AbortWritesSchemaValidBundle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = crash_dir("abort");
  EXPECT_EXIT(
      {
        arm_crash_scenario(dir);
        const obs::fr::Span doomed("doomed_request");
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  check_bundle(find_bundle(dir), "signal:6");
}

TEST(CrashBundleDeathTest, UnhandledExceptionWritesBundle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = crash_dir("terminate");
  EXPECT_EXIT(
      {
        arm_crash_scenario(dir);
        const obs::fr::Span doomed("doomed_request");
        const auto boom = []() noexcept {
          throw std::runtime_error("unhandled");
        };
        boom();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  check_bundle(find_bundle(dir), "unhandled_exception");
}

TEST(CrashBundle, ManualBundleIncludesMetricsSection) {
  const RecorderOn on;
  obs::fr::set_thread_name("crash-victim");
  obs::fr::record(obs::fr::Kind::kKernel, "pre_crash_kernel", 11);
  const std::string dir = fresh_dir("manual");
  // install() so the env manifest is captured; no crash follows.
  obs::crash::Options opts;
  opts.dir = dir;
  ASSERT_TRUE(obs::crash::install(opts));
  const std::string path = dir + "/manual_bundle.json";
  {
    const obs::fr::Span doomed("doomed_request");
    ASSERT_TRUE(obs::crash::write_bundle_file(path, "recovery_suite"));
  }
  const JsonValue doc = parse_json(read_file(path));
  EXPECT_EQ(doc.find("schema")->str, "szp.crash_bundle.v1");
  EXPECT_EQ(doc.find("reason")->str, "recovery_suite");
  ASSERT_NE(doc.find("metrics"), nullptr);  // manual path adds the registry
  ASSERT_NE(doc.find("recorder"), nullptr);
}

// ---------------------------------------------- disabled-path guard ----

// Mirror of tests/obs/test_overhead.cpp for the new instrumentation:
// with the recorder off and the level above the site, each site is one
// relaxed load and a branch. 100 ns/site is ~100x that cost; a stray
// clock read or lock would blow past it.
TEST(TelemetryOverhead, DisabledRecorderSitesAreBranchCheap) {
  ASSERT_FALSE(obs::fr::recording_enabled());
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 2'000'000;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    obs::fr::record(obs::fr::Kind::kKernel, "bench",
                    static_cast<std::uint64_t>(i));
    const obs::fr::Span s("bench");
  }
  const auto dt = Clock::now() - t0;
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
      kIters;
  RecordProperty("ns_per_site_pair", std::to_string(ns));
  EXPECT_LT(ns, 2 * 100.0);  // two sites per iteration
}

TEST(TelemetryOverhead, BelowLevelLogSitesAreBranchCheap) {
  auto& logger = obs::Logger::instance();
  const obs::LogLevel prev = logger.level();
  logger.set_level(obs::LogLevel::kError);
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 2'000'000;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    SZP_LOG_DEBUG("bench", "never formatted %d", i);
  }
  const auto dt = Clock::now() - t0;
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
      kIters;
  logger.set_level(prev);
  RecordProperty("ns_per_site", std::to_string(ns));
  EXPECT_LT(ns, 100.0);
}

}  // namespace
