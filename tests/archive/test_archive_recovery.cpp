// Crash-consistency and damage-recovery suite for the sharded archive
// (ctest label: recovery).
//
//   * Corruption matrix — index header, index entry table, shard payload
//     and checksum-group footer damage must each be detected, classified,
//     and repaired without ever crashing the reader.
//   * Kill-point sweep — an ingest killed at EVERY mutating I/O operation
//     (torn writes included) leaves the archive openable at a committed
//     generation (the previous or the new one), and the ingest retries to
//     completion on the survivor.
//   * Archive-level fuzz — thousands of seeded mutations (burst mode)
//     against the directory; scrub/repair/reopen never crash and repair
//     restores every entry scrub called salvageable. Failing seeds are
//     written to $SZP_FAULT_SEED_DIR for CI artifact upload.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "szp/archive/archive_v2.hpp"
#include "szp/archive/layout.hpp"
#include "szp/archive/scrub.hpp"
#include "szp/data/field.hpp"
#include "szp/obs/telemetry/crash_handler.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/robust/fault.hpp"
#include "szp/robust/io.hpp"
#include "szp/robust/io_fault.hpp"
#include "szp/util/rng.hpp"

namespace szp::archive {
namespace {

// The flight recorder is armed for the whole suite: decode faults and
// salvage events record themselves (see robust::record_decode_report),
// so the bundle dumped next to a failing fuzz seed carries the event
// trail leading up to the failure, not just the seed number.
class RecorderEnv : public ::testing::Environment {
 public:
  void SetUp() override { obs::fr::set_enabled(true); }
  void TearDown() override { obs::fr::set_enabled(false); }
};
const auto* const g_recorder_env =
    ::testing::AddGlobalTestEnvironment(new RecorderEnv);

data::Field make_field(const std::string& name, size_t n,
                       std::uint64_t seed) {
  data::Field f;
  f.name = name;
  f.dims.extents = {n};
  f.values.resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    f.values[i] = static_cast<float>(rng.normal() * 8.0);
  }
  return f;
}

WriterOptions small_options() {
  WriterOptions o;
  o.params.mode = core::ErrorMode::kAbs;
  o.params.error_bound = 1e-2;
  // Small checksum groups so single streams span several groups (the
  // footer matters) and a tight shard budget so archives hold 2+ shards.
  o.params.checksum_group_blocks = 8;
  o.shard_budget_bytes = 4096;
  return o;
}

/// Build the pristine three-field archive every case starts from.
robust::MemFs pristine_archive() {
  robust::MemFs fs;
  ArchiveWriter w(fs, "arc", small_options());
  w.add(make_field("alpha", 2048, 1));
  w.add(make_field("beta", 2048, 2));
  w.add(make_field("gamma", 2048, 3));
  EXPECT_EQ(w.commit(), 1u);
  return fs;
}

/// Reader-side contract on an arbitrarily damaged directory: either the
/// open reports (throws format_error) or every entry access resolves to
/// data or a report — never a crash, never an unhandled error.
void expect_reader_survives(robust::MemFs fs) {
  try {
    const ArchiveReader r(fs, "arc");
    for (size_t i = 0; i < r.entries().size(); ++i) {
      data::Field out;
      (void)r.try_extract(i, out);
      try {
        if (r.entries()[i].dtype == Dtype::kF32) (void)r.extract(i);
      } catch (const format_error&) {
      } catch (const robust::io_error&) {
      }
    }
  } catch (const format_error&) {
    // Unopenable is a legal *reported* outcome for a damaged index.
  }
}

void corrupt_byte(robust::MemFs& fs, const std::string& path, size_t offset) {
  auto* file = fs.find(path);
  ASSERT_NE(file, nullptr) << path;
  ASSERT_LT(offset, file->size()) << path;
  (*file)[offset] = static_cast<byte_t>((*file)[offset] ^ 0x5A);
}

std::string only_shard_path(robust::MemFs& fs, size_t which = 0) {
  const auto files = fs.list_dir(layout::shard_dir("arc"));
  EXPECT_GT(files.size(), which);
  return layout::shard_path("arc", files[which]);
}

// ----------------------------------------------- corruption matrix ----

TEST(ArchiveRecovery, IndexHeaderCorruption) {
  auto fs = pristine_archive();
  corrupt_byte(fs, layout::index_path("arc"), 4);  // version field
  expect_reader_survives(fs);

  const auto report = scrub(fs, "arc");
  EXPECT_TRUE(report.index_present);
  EXPECT_FALSE(report.index_ok);
  EXPECT_TRUE(report.has_damage());
  EXPECT_TRUE(report.fully_salvageable()) << report.to_string();

  const auto res = repair(fs, "arc");
  EXPECT_TRUE(res.changed);
  EXPECT_TRUE(res.index_rebuilt);
  EXPECT_EQ(res.entries_lost, 0u);
  const ArchiveReader r(fs, "arc");
  EXPECT_EQ(r.entries().size(), 3u);
  EXPECT_EQ(r.extract("alpha").values.size(), 2048u);
  EXPECT_FALSE(scrub(fs, "arc").has_damage());
}

TEST(ArchiveRecovery, IndexEntryTableCorruption) {
  auto fs = pristine_archive();
  const auto* index = fs.find(layout::index_path("arc"));
  ASSERT_NE(index, nullptr);
  // Middle of the entry table, clear of header and trailing CRC.
  corrupt_byte(fs, layout::index_path("arc"), index->size() / 2);
  expect_reader_survives(fs);

  const auto report = scrub(fs, "arc");
  EXPECT_FALSE(report.index_ok);
  EXPECT_TRUE(report.rebuilt_from_shards);
  EXPECT_TRUE(report.fully_salvageable()) << report.to_string();

  const auto res = repair(fs, "arc");
  EXPECT_TRUE(res.index_rebuilt);
  EXPECT_EQ(res.entries_lost, 0u);
  const ArchiveReader r(fs, "arc");
  std::set<std::string> names;
  for (const auto& e : r.entries()) names.insert(e.name);
  EXPECT_EQ(names, (std::set<std::string>{"alpha", "beta", "gamma"}));
}

TEST(ArchiveRecovery, ShardPayloadCorruption) {
  auto fs = pristine_archive();
  const auto victim = only_shard_path(fs);
  const auto* shard = fs.find(victim);
  ASSERT_NE(shard, nullptr);
  corrupt_byte(fs, victim, shard->size() / 2);
  expect_reader_survives(fs);

  const auto report = scrub(fs, "arc");
  EXPECT_TRUE(report.index_ok);
  EXPECT_TRUE(report.has_damage());
  bool crc_mismatch = false;
  for (const auto& s : report.shards) {
    crc_mismatch |= s.state == ShardState::kCrcMismatch;
  }
  EXPECT_TRUE(crc_mismatch) << report.to_string();

  const auto res = repair(fs, "arc");
  EXPECT_TRUE(res.changed);
  EXPECT_GT(res.shards_quarantined, 0u);
  EXPECT_EQ(res.entries_lost, 0u) << "single-byte rot must be salvageable";
  const ArchiveReader r(fs, "arc");
  EXPECT_EQ(r.entries().size(), 3u);
  EXPECT_FALSE(scrub(fs, "arc").has_damage());
  // The damaged shard is preserved under quarantine/, not destroyed.
  EXPECT_FALSE(fs.list_dir(layout::quarantine_dir("arc")).empty());
}

TEST(ArchiveRecovery, GroupFooterCorruption) {
  auto fs = pristine_archive();
  // The checksum footer sits at the tail of a stream; the last stream in
  // a shard ends where the payload ends, so the shard's final bytes are
  // footer bytes. Smash one.
  const auto victim = only_shard_path(fs);
  const auto* shard = fs.find(victim);
  ASSERT_NE(shard, nullptr);
  corrupt_byte(fs, victim, shard->size() - 3);
  expect_reader_survives(fs);

  const auto report = scrub(fs, "arc");
  EXPECT_TRUE(report.has_damage());
  EXPECT_TRUE(report.fully_salvageable()) << report.to_string();

  const auto res = repair(fs, "arc");
  EXPECT_EQ(res.entries_lost, 0u);
  EXPECT_FALSE(scrub(fs, "arc").has_damage());
  const ArchiveReader r(fs, "arc");
  for (const auto& name : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(r.extract(name).values.size(), 2048u) << name;
  }
}

// ----------------------------------------------- kill-point sweeps ----

/// Run one ingest over FaultFs; returns mutating-op count (no crash).
std::uint64_t count_ingest_ops(const robust::MemFs& base,
                               const std::vector<data::Field>& fields) {
  robust::MemFs fs = base;
  robust::FaultFs faulty(fs, robust::FaultFsOptions{});
  ArchiveWriter w(faulty, "arc", small_options());
  for (const auto& f : fields) w.add(f);
  w.commit();
  return faulty.mutating_ops();
}

void sweep_kill_points(const robust::MemFs& base,
                       const std::vector<data::Field>& fields,
                       std::uint64_t prev_generation) {
  const std::uint64_t total_ops = count_ingest_ops(base, fields);
  ASSERT_GT(total_ops, 5u);
  for (std::uint64_t kill = 1; kill <= total_ops; ++kill) {
    SCOPED_TRACE("kill at mutating op " + std::to_string(kill));
    robust::MemFs fs = base;
    robust::FaultFsOptions opts;
    opts.seed = kill;
    opts.crash_at_mutating_op = kill;
    opts.torn_writes = true;
    {
      robust::FaultFs faulty(fs, opts);
      ArchiveWriter w(faulty, "arc", small_options());
      for (const auto& f : fields) w.add(f);
      EXPECT_THROW(w.commit(), robust::io_crash);
    }

    // Invariant: the survivor opens at a committed generation — the
    // previous one or (when the crash hit after the index rename) the
    // new one. Never torn, never unreadable.
    std::uint64_t observed = prev_generation;
    if (prev_generation > 0 || fs.exists(layout::index_path("arc"))) {
      const ArchiveReader r(fs, "arc");
      observed = r.generation();
      EXPECT_TRUE(observed == prev_generation ||
                  observed == prev_generation + 1)
          << "generation " << observed;
      for (size_t i = 0; i < r.entries().size(); ++i) {
        EXPECT_GT(r.extract(i).values.size(), 0u);
      }
    }

    // The ingest retries to completion on the survivor (unless the crash
    // landed after commit, in which case the names already exist).
    if (observed == prev_generation) {
      ArchiveWriter w(fs, "arc", small_options());
      for (const auto& f : fields) w.add(f);
      EXPECT_EQ(w.commit(), prev_generation + 1);
    }
    const ArchiveReader after(fs, "arc");
    EXPECT_EQ(after.generation(), prev_generation + 1);
    for (const auto& f : fields) {
      EXPECT_EQ(after.extract(f.name).values.size(), f.count());
    }

    // Repair clears any leftover journal/temp/orphan garbage; the result
    // scrubs clean.
    (void)repair(fs, "arc");
    const auto report = scrub(fs, "arc");
    EXPECT_FALSE(report.has_damage()) << report.to_string();
    EXPECT_FALSE(report.has_garbage()) << report.to_string();
  }
}

TEST(ArchiveRecovery, KillPointSweepFreshIngest) {
  const std::vector<data::Field> fields = {make_field("alpha", 2048, 1),
                                           make_field("beta", 2048, 2)};
  sweep_kill_points(robust::MemFs{}, fields, 0);
}

TEST(ArchiveRecovery, KillPointSweepAppendIngest) {
  robust::MemFs base;
  {
    ArchiveWriter w(base, "arc", small_options());
    w.add(make_field("alpha", 2048, 1));
    ASSERT_EQ(w.commit(), 1u);
  }
  const std::vector<data::Field> fields = {make_field("delta", 2048, 9),
                                           make_field("epsilon", 2048, 10)};
  sweep_kill_points(base, fields, 1);
}

// --------------------------------------------------- archive fuzz ----

void dump_failing_seed(std::uint64_t seed,
                       const std::vector<robust::FaultInjector::Mutation>&
                           mutations) {
  const char* dir = std::getenv("SZP_FAULT_SEED_DIR");
  if (dir == nullptr || *dir == '\0') return;
  robust::RealFs fs;
  try {
    fs.make_dirs(dir);
    std::string text = "suite: archive_recovery_fuzz\nseed: " +
                       std::to_string(seed) + "\n";
    for (const auto& m : mutations) text += m.describe() + "\n";
    fs.write_file(std::string(dir) + "/archive-fuzz-seed-" +
                      std::to_string(seed) + ".txt",
                  std::span<const byte_t>(
                      reinterpret_cast<const byte_t*>(text.data()),
                      text.size()));
    // Flight-recorder bundle next to the seed dump: the fault/salvage
    // events the failing iteration recorded, plus builtins and metrics.
    (void)obs::crash::write_bundle_file(
        std::string(dir) + "/archive-fuzz-seed-" + std::to_string(seed) +
            ".bundle.json",
        "archive_recovery_fuzz_seed_failure");
  } catch (const robust::io_error&) {
    // Best effort; the assertion failure itself still reports the seed.
  }
}

TEST(ArchiveRecovery, FuzzScrubRepairNeverCrashes) {
  const auto base = pristine_archive();
  // 400 seeds x 5 mutations = 2000 archive-level mutations.
  constexpr std::uint64_t kSeeds = 400;
  constexpr size_t kBurst = 5;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    robust::MemFs fs = base;
    robust::FaultInjector injector(seed);
    const auto mutations = injector.burst_archive(fs, "arc", kBurst);
    SCOPED_TRACE("seed " + std::to_string(seed));

    bool iteration_ok = true;
    try {
      expect_reader_survives(fs);

      const auto before = scrub(fs, "arc");
      std::set<std::string> salvageable;
      for (const auto& e : before.entries) {
        if (e.report.ok() || e.salvageable) salvageable.insert(e.name);
      }

      const auto res = repair(fs, "arc");
      (void)res;

      // Post-repair: damage-free, and every salvageable entry survived.
      const auto after = scrub(fs, "arc");
      EXPECT_FALSE(after.has_damage()) << after.to_string();
      const ArchiveReader r(fs, "arc");
      std::set<std::string> present;
      for (const auto& e : r.entries()) present.insert(e.name);
      for (const auto& name : salvageable) {
        const bool found = present.count(name) > 0;
        EXPECT_TRUE(found) << "salvageable entry lost: " << name;
        iteration_ok &= found;
        if (found) {
          data::Field out;
          (void)r.try_extract(r.entry_index(name), out);
        }
      }
      iteration_ok &= !after.has_damage();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "seed " << seed << " raised: " << e.what();
      iteration_ok = false;
    }
    if (!iteration_ok) dump_failing_seed(seed, mutations);
  }
}

}  // namespace
}  // namespace szp::archive
