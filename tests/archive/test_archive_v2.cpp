// Sharded archive (format v2): journaled ingest, shard packing, point
// queries that touch a sliver of the archive, dtype-aware accounting,
// and error handling on damaged/missing directories.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "szp/archive/archive_v2.hpp"
#include "szp/archive/layout.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/robust/io.hpp"
#include "szp/util/rng.hpp"

namespace szp::archive {
namespace {

WriterOptions rel_options(double rel, size_t shard_budget = 4u << 20) {
  WriterOptions o;
  o.params.mode = core::ErrorMode::kRel;
  o.params.error_bound = rel;
  o.shard_budget_bytes = shard_budget;
  return o;
}

std::vector<data::Field> suite_fields() {
  return data::make_suite(data::Suite::kHurricane, 0.02);
}

TEST(ArchiveV2, MultiFieldRoundtrip) {
  robust::MemFs fs;
  const auto fields = suite_fields();
  ArchiveWriter w(fs, "arc", rel_options(1e-3));
  for (const auto& f : fields) w.add(f);
  EXPECT_EQ(w.num_pending(), fields.size());
  EXPECT_EQ(w.commit(), 1u);

  ArchiveReader r(fs, "arc");
  EXPECT_EQ(r.generation(), 1u);
  ASSERT_EQ(r.entries().size(), fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(r.entries()[i].name, fields[i].name);
    EXPECT_EQ(r.entries()[i].dims, fields[i].dims);
    EXPECT_GT(r.entries()[i].compression_ratio(), 1.0);
    const auto out = r.extract(i);
    const auto stats = metrics::compare(fields[i].values, out.values);
    EXPECT_LE(stats.max_rel_err, 1e-3 * (1 + 1e-9)) << fields[i].name;
  }
  // A committed archive holds no journal and no temp files.
  EXPECT_FALSE(fs.exists(layout::journal_path("arc")));
}

TEST(ArchiveV2, ShardBudgetSplitsAndZeroMeansPerStream) {
  robust::MemFs fs;
  const auto fields = suite_fields();
  {
    ArchiveWriter w(fs, "tiny", rel_options(1e-3, 1));  // 1-byte budget
    for (const auto& f : fields) w.add(f);
    w.commit();
    ArchiveReader r(fs, "tiny");
    EXPECT_EQ(r.index().shards.size(), fields.size());
  }
  {
    ArchiveWriter w(fs, "per-stream", rel_options(1e-3, 0));
    for (const auto& f : fields) w.add(f);
    w.commit();
    ArchiveReader r(fs, "per-stream");
    EXPECT_EQ(r.index().shards.size(), fields.size());
  }
  {
    ArchiveWriter w(fs, "one", rel_options(1e-3, 64u << 20));
    for (const auto& f : fields) w.add(f);
    w.commit();
    ArchiveReader r(fs, "one");
    EXPECT_EQ(r.index().shards.size(), 1u);
  }
}

TEST(ArchiveV2, ParallelIngestMatchesSerialByteForByte) {
  const auto fields = suite_fields();
  robust::MemFs serial_fs;
  robust::MemFs parallel_fs;
  {
    ArchiveWriter w(serial_fs, "a", rel_options(1e-3));
    for (const auto& f : fields) w.add(f);
    w.commit();
  }
  {
    auto opts = rel_options(1e-3);
    opts.threads = 4;
    ArchiveWriter w(parallel_fs, "a", opts);
    for (const auto& f : fields) w.add(f);
    w.commit();
  }
  EXPECT_EQ(serial_fs.read_file(layout::index_path("a")),
            parallel_fs.read_file(layout::index_path("a")));
  const auto shards = serial_fs.list_dir(layout::shard_dir("a"));
  EXPECT_EQ(shards, parallel_fs.list_dir(layout::shard_dir("a")));
  for (const auto& s : shards) {
    EXPECT_EQ(serial_fs.read_file(layout::shard_path("a", s)),
              parallel_fs.read_file(layout::shard_path("a", s)));
  }
}

TEST(ArchiveV2, AppendCommitBumpsGeneration) {
  robust::MemFs fs;
  const auto fields = suite_fields();
  {
    ArchiveWriter w(fs, "arc", rel_options(1e-3));
    w.add(fields[0]);
    EXPECT_EQ(w.commit(), 1u);
  }
  {
    ArchiveWriter w(fs, "arc", rel_options(1e-3));
    w.add(fields[1]);
    EXPECT_EQ(w.commit(), 2u);
  }
  ArchiveReader r(fs, "arc");
  EXPECT_EQ(r.generation(), 2u);
  ASSERT_EQ(r.entries().size(), 2u);
  EXPECT_EQ(r.extract(fields[0].name).values.size(), fields[0].count());
  EXPECT_EQ(r.extract(fields[1].name).values.size(), fields[1].count());
  // Committing against an existing archive rejects committed names too.
  ArchiveWriter w(fs, "arc", rel_options(1e-3));
  w.add(fields[0]);
  EXPECT_THROW(w.commit(), format_error);
}

TEST(ArchiveV2, RangeQueryMatchesFullDecodeAndStaysLocal) {
  robust::MemFs fs;
  // The locality bar needs a realistically sized entry: on a toy archive
  // the fixed per-query overhead (header + per-block length bytes +
  // footer + index) dominates. Noisy data keeps the payload honest.
  data::Field big;
  big.name = "big";
  big.dims.extents = {1u << 19};
  big.values.resize(big.dims.count());
  Rng rng(42);
  for (auto& v : big.values) v = static_cast<float>(rng.normal() * 16.0);

  ArchiveWriter w(fs, "arc", rel_options(1e-3));
  for (const auto& f : suite_fields()) w.add(f);
  w.add(big);
  w.commit();

  ArchiveReader full_reader(fs, "arc");
  const size_t idx = full_reader.entry_index("big");
  const auto full = full_reader.extract(idx);

  ArchiveReader r(fs, "arc");
  const size_t n = full.values.size();
  const size_t begin = n / 3;
  const size_t end = begin + 2048;
  const auto range = r.extract_range(idx, begin, end);
  ASSERT_EQ(range.size(), end - begin);
  for (size_t i = 0; i < range.size(); ++i) {
    EXPECT_EQ(range[i], full.values[begin + i]) << i;
  }
  // The point query must touch a small fraction of the archive: the
  // acceptance bar is < 5% of total committed bytes.
  const double fraction =
      static_cast<double>(r.io_stats().bytes_read) /
      static_cast<double>(r.archive_bytes());
  EXPECT_LT(fraction, 0.05) << "touched " << r.io_stats().bytes_read
                            << " of " << r.archive_bytes();

  // Degenerate ranges and bounds.
  EXPECT_TRUE(r.extract_range(idx, 5, 5).empty());
  EXPECT_THROW((void)r.extract_range(idx, 0, n + 1), format_error);
  EXPECT_THROW((void)r.extract_range(idx, 3, 2), format_error);
}

TEST(ArchiveV2, F64EntriesRoundtripWithHonestRatio) {
  robust::MemFs fs;
  std::vector<double> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.01) * 40.0;
  }
  auto opts = rel_options(1e-4);
  ArchiveWriter w(fs, "arc", opts);
  w.add_f64("pressure", data::Dims{{64, 64}}, values);
  w.add(suite_fields()[0]);
  w.commit();

  ArchiveReader r(fs, "arc");
  const size_t i = r.entry_index("pressure");
  EXPECT_EQ(r.entries()[i].dtype, Dtype::kF64);
  EXPECT_EQ(r.entries()[i].element_bytes(), 8u);
  const auto out = r.extract_f64(i);
  ASSERT_EQ(out.size(), values.size());

  // Regression: the ratio numerator must use 8-byte elements. The v1
  // container hardcoded 4 and halved every f64 ratio.
  const auto& e = r.entries()[i];
  const double expected = static_cast<double>(e.dims.count() * 8) /
                          static_cast<double>(e.stream_bytes);
  EXPECT_DOUBLE_EQ(e.compression_ratio(), expected);
  EXPECT_THROW((void)r.extract(i), format_error);
  EXPECT_THROW((void)r.extract_f64(r.entry_index(suite_fields()[0].name)),
               format_error);
}

TEST(ArchiveV2, DuplicatePendingNameRejected) {
  robust::MemFs fs;
  ArchiveWriter w(fs, "arc", rel_options(1e-3));
  const auto f = suite_fields()[0];
  w.add(f);
  EXPECT_THROW(w.add(f), format_error);
}

TEST(ArchiveV2, OpenErrorsAreDistinct) {
  robust::MemFs fs;
  // Missing archive: format_error naming the directory.
  EXPECT_THROW(ArchiveReader(fs, "nope"), format_error);

  ArchiveWriter w(fs, "arc", rel_options(1e-3));
  w.add(suite_fields()[0]);
  w.commit();
  // Truncated index: rejected at open.
  auto* index = fs.find(layout::index_path("arc"));
  ASSERT_NE(index, nullptr);
  index->resize(index->size() / 2);
  EXPECT_THROW(ArchiveReader(fs, "arc"), format_error);
}

TEST(ArchiveV2, MissingShardFailsExtractionNotOpen) {
  robust::MemFs fs;
  ArchiveWriter w(fs, "arc", rel_options(1e-3, 0));
  const auto fields = suite_fields();
  w.add(fields[0]);
  w.add(fields[1]);
  w.commit();
  ArchiveReader r(fs, "arc");
  const auto victim =
      layout::shard_path("arc",
                         r.index().shards[r.entries()[0].shard_index]
                             .file_name());
  fs.remove(victim);
  EXPECT_THROW((void)r.extract(0), robust::io_error);
  // The other entry still extracts; try_extract reports instead of throwing.
  EXPECT_EQ(r.extract(1).values.size(), fields[1].count());
  data::Field out;
  const auto rep = r.try_extract(0, out);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(out.values.empty());
}

}  // namespace
}  // namespace szp::archive
