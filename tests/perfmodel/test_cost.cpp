// Cost model: structure, monotonicity, hardware preset ordering.
#include <gtest/gtest.h>

#include "szp/perfmodel/cost.hpp"

namespace szp::perfmodel {
namespace {

using gpusim::Stage;
using gpusim::TraceSnapshot;

TEST(CostModel, EmptyTraceCostsNothing) {
  const CostModel model(a100());
  const TraceSnapshot empty{};
  const RunCost c = model.run(empty);
  EXPECT_EQ(c.device_s, 0);
  EXPECT_EQ(c.memcpy_s, 0);
  EXPECT_EQ(c.host_s, 0);
  EXPECT_EQ(c.end_to_end_s(), 0);
}

TEST(CostModel, LaunchOverheadCharged) {
  const CostModel model(a100());
  TraceSnapshot t{};
  t.kernel_launches = 10;
  EXPECT_DOUBLE_EQ(model.run(t).device_s, 10 * a100().kernel_launch_s);
}

TEST(CostModel, StageTimeIsMaxOfTrafficAndCompute) {
  const CostModel model(a100());
  TraceSnapshot t{};
  auto& qp = t.stages[unsigned(Stage::kQuantPredict)];
  // Huge traffic, no ops: bandwidth-bound.
  qp.read_bytes = 1'000'000'000;
  const double bw_bound = model.run(t).device_s;
  EXPECT_NEAR(bw_bound, 1e9 / a100().hbm_bandwidth, 1e-9);
  // Add a few ops: still bandwidth-bound (max, not sum).
  qp.ops = 10;
  EXPECT_DOUBLE_EQ(model.run(t).device_s, bw_bound);
  // Huge ops: compute-bound.
  qp.ops = 1'000'000'000'000ULL;
  EXPECT_GT(model.run(t).device_s, bw_bound * 100);
}

TEST(CostModel, MemcpyAndHostSeparateFromDevice) {
  const CostModel model(a100());
  TraceSnapshot t{};
  t.h2d_bytes = 600'000'000;
  t.d2h_bytes = 600'000'000;
  t.host_bytes = 150'000'000;
  t.host_stages = 2;
  const RunCost c = model.run(t);
  EXPECT_NEAR(c.memcpy_s, 1.2e9 / a100().pcie_bandwidth, 1e-9);
  EXPECT_NEAR(c.host_s,
              1.5e8 / a100().host_bandwidth + 2 * a100().host_stage_s, 1e-9);
  EXPECT_EQ(c.device_s, 0);
  EXPECT_NEAR(c.gpu_fraction() + c.memcpy_fraction() + c.host_fraction(), 1.0,
              1e-12);
}

TEST(CostModel, MonotoneInWork) {
  const CostModel model(a100());
  TraceSnapshot small{}, big{};
  small.stages[0].ops = 1000;
  big.stages[0].ops = 2000;
  EXPECT_LT(model.run(small).device_s, model.run(big).device_s);
}

TEST(Hardware, PresetsOrderedByCapability) {
  // A100 > V100 > RTX3080 in both bandwidth and compute throughput.
  const auto gpus = all_gpus();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_GT(gpus[0].hbm_bandwidth, gpus[1].hbm_bandwidth);
  EXPECT_GT(gpus[1].hbm_bandwidth, gpus[2].hbm_bandwidth);
  for (unsigned s = 0; s < gpusim::kNumStages; ++s) {
    EXPECT_LE(gpus[0].op_cost[s], gpus[1].op_cost[s]);
    EXPECT_LE(gpus[1].op_cost[s], gpus[2].op_cost[s]);
  }
}

TEST(Hardware, SameKernelSlowerOnLowerEndGpu) {
  TraceSnapshot t{};
  t.stages[unsigned(Stage::kQuantPredict)].ops = 1'000'000;
  t.stages[unsigned(Stage::kQuantPredict)].read_bytes = 4'000'000;
  t.kernel_launches = 1;
  const double a = CostModel(a100()).run(t).device_s;
  const double v = CostModel(v100()).run(t).device_s;
  const double r = CostModel(rtx3080()).run(t).device_s;
  EXPECT_LT(a, v);
  EXPECT_LT(v, r);
}

TEST(CostModel, GbpsHelpers) {
  EXPECT_DOUBLE_EQ(gbps(2'000'000'000ULL, 1.0), 2.0);
  EXPECT_EQ(gbps(100, 0.0), 0.0);
  const CostModel model(a100());
  TraceSnapshot t{};
  t.stages[0].ops = 1'000'000'000;
  const double e2e = model.end_to_end_gbps(t, 4'000'000'000ULL);
  const double kern = model.kernel_gbps(t, 4'000'000'000ULL);
  EXPECT_DOUBLE_EQ(e2e, kern);  // no memcpy/host in this trace
  t.h2d_bytes = 1'000'000'000;
  EXPECT_LT(model.end_to_end_gbps(t, 4'000'000'000ULL), kern);
}

}  // namespace
}  // namespace szp::perfmodel
