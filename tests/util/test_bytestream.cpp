// ByteWriter/ByteReader: POD roundtrips, placeholders/patching, overruns.
#include <gtest/gtest.h>

#include <cstring>

#include "szp/util/bytestream.hpp"

namespace szp {
namespace {

TEST(ByteStream, PodRoundtrip) {
  ByteWriter w;
  w.put(std::uint32_t{0xDEADBEEF});
  w.put(std::uint16_t{0x1234});
  w.put(double{3.14159});
  w.put(std::int64_t{-42});
  w.put(byte_t{7});
  const auto bytes = std::move(w).take();

  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x1234u);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<byte_t>(), 7u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, PlaceholderPatch) {
  ByteWriter w;
  w.put(std::uint8_t{1});
  const size_t off = w.put_placeholder(sizeof(std::uint64_t));
  w.put(std::uint8_t{2});
  w.patch(off, std::uint64_t{0xCAFEBABE12345678ULL});
  const auto bytes = std::move(w).take();

  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint8_t>(), 1u);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xCAFEBABE12345678ULL);
  EXPECT_EQ(r.get<std::uint8_t>(), 2u);
}

TEST(ByteStream, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.put(std::uint8_t{1});
  EXPECT_THROW(w.patch(0, std::uint64_t{0}), format_error);
}

TEST(ByteStream, ReadPastEndThrows) {
  const std::vector<byte_t> tiny = {1, 2, 3};
  ByteReader r(tiny);
  EXPECT_EQ(r.get<std::uint16_t>(), 0x0201u);
  EXPECT_THROW((void)r.get<std::uint32_t>(), format_error);
}

TEST(ByteStream, GetBytesSpans) {
  ByteWriter w;
  const std::vector<byte_t> payload = {9, 8, 7, 6};
  w.put_bytes(payload);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  const auto s = r.get_bytes(4);
  EXPECT_TRUE(std::equal(s.begin(), s.end(), payload.begin()));
  EXPECT_THROW((void)r.get_bytes(1), format_error);
}

TEST(ByteStream, LittleEndianLayout) {
  ByteWriter w;
  w.put(std::uint32_t{0x04030201});
  const auto bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(bytes[i], i + 1);
}

TEST(CheckedCast, AcceptsAndRejects) {
  EXPECT_EQ(checked_cast<std::uint8_t>(255), 255u);
  EXPECT_THROW((void)checked_cast<std::uint8_t>(256), std::range_error);
  EXPECT_THROW((void)checked_cast<std::uint32_t>(-1), std::range_error);
  EXPECT_EQ(checked_cast<std::int16_t>(-32768), -32768);
}

TEST(DivCeil, Basics) {
  EXPECT_EQ(div_ceil(0, 8), 0);
  EXPECT_EQ(div_ceil(1, 8), 1);
  EXPECT_EQ(div_ceil(8, 8), 1);
  EXPECT_EQ(div_ceil(9, 8), 2);
  EXPECT_EQ(round_up(9, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
}

}  // namespace
}  // namespace szp
