// BitWriter/BitReader: roundtrips at every width, alignment, error paths.
#include <gtest/gtest.h>

#include "szp/util/bitio.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

class BitIoWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitIoWidth, RoundtripsRandomValues) {
  const unsigned width = GetParam();
  Rng rng(width * 977 + 1);
  std::vector<std::uint64_t> values(257);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (auto& v : values) v = rng.next_u64() & mask;

  BitWriter w;
  for (const auto v : values) w.put(v, width);
  EXPECT_EQ(w.bit_count(), values.size() * width);
  const auto bytes = std::move(w).take();
  EXPECT_EQ(bytes.size(), div_ceil<size_t>(values.size() * width, 8));

  BitReader r(bytes);
  for (const auto v : values) {
    EXPECT_EQ(r.get(width), v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitIoWidth,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 9u, 12u,
                                           15u, 16u, 17u, 23u, 24u, 31u, 32u,
                                           33u, 47u, 53u, 63u, 64u));

TEST(BitIo, MixedWidthSequence) {
  Rng rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> seq;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    const std::uint64_t v = rng.next_u64() & mask;
    seq.emplace_back(v, width);
    w.put(v, width);
  }
  const auto bytes = std::move(w).take();
  BitReader r(bytes);
  for (const auto& [v, width] : seq) {
    ASSERT_EQ(r.get(width), v);
  }
}

TEST(BitIo, ZeroWidthIsNoop) {
  BitWriter w;
  w.put(0xFFFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  w.put(1, 1);
  const auto bytes = std::move(w).take();
  BitReader r(bytes);
  EXPECT_EQ(r.get(0), 0u);
  EXPECT_EQ(r.get(1), 1u);
}

TEST(BitIo, LsbFirstLayoutWithinByte) {
  // Bit k of byte j corresponds to the (8j+k)-th written bit.
  BitWriter w;
  w.put_bit(true);   // bit 0
  w.put_bit(false);  // bit 1
  w.put_bit(true);   // bit 2
  const auto bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b00000101);
}

TEST(BitIo, AlignToByte) {
  BitWriter w;
  w.put(0b101, 3);
  w.align_to_byte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.put(0xAB, 8);
  const auto bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[1], 0xAB);

  BitReader r(bytes);
  EXPECT_EQ(r.get(3), 0b101u);
  r.align_to_byte();
  EXPECT_EQ(r.get(8), 0xABu);
}

TEST(BitIo, ValueBitsAboveWidthAreMasked) {
  BitWriter w;
  w.put(0xFF, 4);  // only low 4 bits should be kept
  w.put(0x0, 4);
  const auto bytes = std::move(w).take();
  BitReader r(bytes);
  EXPECT_EQ(r.get(8), 0x0Fu);
}

TEST(BitIo, ReadPastEndThrows) {
  const std::vector<byte_t> one = {0x5A};
  BitReader r(one);
  EXPECT_EQ(r.get(8), 0x5Au);
  EXPECT_THROW((void)r.get(1), format_error);
}

TEST(BitIo, BitsLeftTracksPosition) {
  const std::vector<byte_t> data(4, 0);
  BitReader r(data);
  EXPECT_EQ(r.bits_left(), 32u);
  (void)r.get(13);
  EXPECT_EQ(r.bits_left(), 19u);
  EXPECT_EQ(r.bit_position(), 13u);
}

}  // namespace
}  // namespace szp
