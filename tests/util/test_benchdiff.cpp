// Bench-diff engine: metric classification, noise thresholds, structural
// findings, and the exit-status contract the CI perf gate depends on
// (identity diff clean, injected 20% throughput drop flagged).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "szp/util/benchdiff.hpp"
#include "szp/util/mini_json.hpp"

namespace {

using namespace szp::util;

JsonValue parse(const std::string& text) { return JsonParser(text).parse(); }

const char* kBaseline = R"({
  "bench": "pr7_hostscale",
  "summary": {
    "comp_gbps": 1.0,
    "wall_comp_s": 2.0,
    "parallel_comp_speedup": 3.0,
    "work_pct": 50.0,
    "ratio": 4.867,
    "elements": 1000000,
    "fingerprint_stable": true
  }
})";

std::string with(const std::string& key, const std::string& value) {
  std::string s = kBaseline;
  const auto at = s.find("\"" + key + "\": ");
  EXPECT_NE(at, std::string::npos) << key;
  const auto start = at + key.size() + 4;
  const auto end = s.find_first_of(",\n}", start);
  return s.replace(start, end - start, value);
}

TEST(BenchDiff, ClassifiesByLeafKey) {
  EXPECT_EQ(classify_metric("comp_gbps"), MetricClass::kHigherBetter);
  EXPECT_EQ(classify_metric("parallel_comp_speedup"),
            MetricClass::kHigherBetter);
  EXPECT_EQ(classify_metric("wall_comp_s"), MetricClass::kLowerBetter);
  EXPECT_EQ(classify_metric("decomp_time_ms"), MetricClass::kLowerBetter);
  EXPECT_EQ(classify_metric("work_pct"), MetricClass::kNoisy);
  EXPECT_EQ(classify_metric("ratio"), MetricClass::kExact);
  EXPECT_EQ(classify_metric("elements"), MetricClass::kExact);
}

TEST(BenchDiff, IdentityDiffIsClean) {
  const JsonValue doc = parse(kBaseline);
  const BenchDiffResult r = diff_bench(doc, doc);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_GT(r.compared, 0u);
}

TEST(BenchDiff, TwentyPercentThroughputDropRegresses) {
  const BenchDiffResult r =
      diff_bench(parse(kBaseline), parse(with("comp_gbps", "0.8")));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.count(DiffSeverity::kFail), 1u);
  EXPECT_EQ(r.findings[0].path, "summary.comp_gbps");
}

TEST(BenchDiff, SmallThroughputWiggleIsTolerated) {
  const BenchDiffResult r =
      diff_bench(parse(kBaseline), parse(with("comp_gbps", "0.95")));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.findings.empty());
}

TEST(BenchDiff, WallTimeIncreaseRegressesAndImprovementDoesNot) {
  EXPECT_FALSE(
      diff_bench(parse(kBaseline), parse(with("wall_comp_s", "2.5"))).ok());
  const BenchDiffResult faster =
      diff_bench(parse(kBaseline), parse(with("wall_comp_s", "1.0")));
  EXPECT_TRUE(faster.ok());
  EXPECT_EQ(faster.count(DiffSeverity::kInfo), 1u);  // noted, not failed
}

TEST(BenchDiff, SpeedupDropRegresses) {
  EXPECT_FALSE(
      diff_bench(parse(kBaseline),
                 parse(with("parallel_comp_speedup", "2.0")))
          .ok());
}

TEST(BenchDiff, WarnTimingDowngradesTimingButNotExact) {
  BenchDiffOptions opts;
  opts.warn_timing_only = true;
  const BenchDiffResult timing =
      diff_bench(parse(kBaseline), parse(with("comp_gbps", "0.5")), opts);
  EXPECT_TRUE(timing.ok());
  EXPECT_EQ(timing.count(DiffSeverity::kWarn), 1u);
  // Exact facts still hard-fail under --warn-timing: a ratio change or a
  // flipped determinism flag is never noise.
  EXPECT_FALSE(
      diff_bench(parse(kBaseline), parse(with("ratio", "4.2")), opts).ok());
  EXPECT_FALSE(
      diff_bench(parse(kBaseline), parse(with("fingerprint_stable", "false")),
                 opts)
          .ok());
}

TEST(BenchDiff, NoisyPctUsesSymmetricThreshold) {
  EXPECT_TRUE(
      diff_bench(parse(kBaseline), parse(with("work_pct", "52.0"))).ok());
  EXPECT_FALSE(
      diff_bench(parse(kBaseline), parse(with("work_pct", "30.0"))).ok());
}

TEST(BenchDiff, IgnorePatternsSkipMetrics) {
  BenchDiffOptions opts;
  opts.ignore = {"comp_gbps"};
  const BenchDiffResult r =
      diff_bench(parse(kBaseline), parse(with("comp_gbps", "0.1")), opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.ignored, 1u);
}

TEST(BenchDiff, StructuralMismatchesFail) {
  // Missing metric fails; a new metric only warns.
  const JsonValue base = parse(kBaseline);
  JsonValue fewer = base;
  fewer.obj["summary"].obj.erase("ratio");
  EXPECT_FALSE(diff_bench(base, fewer).ok());
  const BenchDiffResult extra = diff_bench(fewer, base);
  EXPECT_TRUE(extra.ok());
  EXPECT_EQ(extra.count(DiffSeverity::kWarn), 1u);

  // Type and array-shape changes fail.
  JsonValue retyped = base;
  retyped.obj["summary"].obj["ratio"].kind = JsonValue::Kind::kString;
  EXPECT_FALSE(diff_bench(base, retyped).ok());
  const JsonValue arr_a = parse(R"({"matrix": [1, 2, 3]})");
  const JsonValue arr_b = parse(R"({"matrix": [1, 2]})");
  EXPECT_FALSE(diff_bench(arr_a, arr_b).ok());
}

TEST(BenchDiff, ArraysDiffElementWise) {
  const JsonValue a = parse(R"({"matrix": [{"comp_gbps": 1.0}, {"comp_gbps": 2.0}]})");
  const JsonValue b = parse(R"({"matrix": [{"comp_gbps": 1.0}, {"comp_gbps": 1.0}]})");
  const BenchDiffResult r = diff_bench(a, b);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.count(DiffSeverity::kFail), 1u);
  EXPECT_EQ(r.findings[0].path, "matrix[1].comp_gbps");
}

TEST(BenchDiff, ReportSummarizesFindings) {
  const BenchDiffResult r =
      diff_bench(parse(kBaseline), parse(with("comp_gbps", "0.5")));
  std::ostringstream os;
  write_benchdiff_report(os, r);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("summary.comp_gbps"), std::string::npos);
  EXPECT_NE(os.str().find("1 regressions"), std::string::npos);
}

}  // namespace
