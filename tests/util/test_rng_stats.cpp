// Rng determinism and distribution sanity; stats helpers; table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "szp/util/rng.hpp"
#include "szp/util/stats.hpp"
#include "szp/util/table.hpp"

namespace szp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.5, 2.5);
    ASSERT_GE(d, -3.5);
    ASSERT_LT(d, 2.5);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(10);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (const int h : hits) EXPECT_GT(h, 700);  // roughly uniform
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> xs = {3, -1, 4, 1, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.min, -1);
  EXPECT_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 2.4);
  const Summary empty = summarize(std::span<const double>{});
  EXPECT_EQ(empty.min, 0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> xs = {0.1, 0.2, 0.2, 0.7, 0.9};
  const std::vector<double> pts = {0.0, 0.15, 0.2, 0.5, 1.0};
  const auto cdf = empirical_cdf(xs, pts);
  ASSERT_EQ(cdf.size(), pts.size());
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.2);
  EXPECT_DOUBLE_EQ(cdf[2], 0.6);  // <= 0.2 includes both 0.2 samples
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Stats, Percentile) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 100);
  EXPECT_NEAR(percentile(xs, 90), 90, 1.0);
}

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(static_cast<long long>(42));
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace szp
