// xsz edge cases: REL mode, all-constant data, meta layout, robustness
// against corrupted streams.
#include <gtest/gtest.h>

#include "szp/baselines/xsz/xsz.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

TEST(XszEdge, RelModeResolvesRange) {
  const auto field = data::make_field(data::Suite::kNyx, 2, 0.03);
  xsz::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = 1e-3;
  const auto stream = xsz::compress_serial(field.values, p);
  const auto recon = xsz::decompress_serial(stream);
  const auto stats = metrics::compare(field.values, recon);
  EXPECT_LE(stats.max_rel_err, 1e-3 * (1 + 1e-9));
}

TEST(XszEdge, AllConstantDatasetIsOneFloatPerBlock) {
  const std::vector<float> data(1280, 42.5f);
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  const auto stream = xsz::compress_serial(data, p);
  // Header + 10 meta bytes + 10 * 4-byte midpoints.
  EXPECT_EQ(stream.size(), xsz::Header::kSize + 10 + 40);
  EXPECT_DOUBLE_EQ(xsz::constant_block_fraction(stream), 1.0);
  const auto recon = xsz::decompress_serial(stream);
  for (const float v : recon) EXPECT_EQ(v, 42.5f);
}

TEST(XszEdge, CompressedSizeWithinWorstCaseBound) {
  Rng rng(41);
  std::vector<float> data(10000);
  for (auto& v : data) v = static_cast<float>(rng.normal() * 1e4);
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  const auto stream = xsz::compress_serial(data, p);
  EXPECT_LE(stream.size(), xsz::max_compressed_bytes(10000, p.block_len));
}

TEST(XszEdge, TruncatedStreamsThrow) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.02);
  xsz::Params p;
  const auto stream =
      xsz::compress_serial(field.values, p, field.value_range());
  for (const size_t keep : {size_t{0}, size_t{16}, xsz::Header::kSize,
                            stream.size() / 2}) {
    EXPECT_THROW((void)xsz::decompress_serial(
                     std::span<const byte_t>(stream.data(), keep)),
                 format_error)
        << keep;
  }
}

TEST(XszEdge, CorruptedMetaDoesNotCrash) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.02);
  xsz::Params p;
  const auto stream =
      xsz::compress_serial(field.values, p, field.value_range());
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    auto bad = stream;
    bad[xsz::Header::kSize + rng.next_below(100)] =
        static_cast<byte_t>(rng.next_below(256));
    try {
      const auto out = xsz::decompress_serial(bad);
      EXPECT_EQ(out.size(), field.count());
    } catch (const format_error&) {
      // acceptable outcome for corrupted input
    }
  }
}

TEST(XszEdge, SmallerBlocksTrackDataBetter) {
  // Smaller xsz blocks flush less aggressively -> lower CR, higher PSNR
  // on smooth-but-not-constant data.
  const auto field = data::make_field(data::Suite::kCesmAtm, 1, 0.05);
  const double range = field.value_range();
  xsz::Params small, large;
  small.block_len = 32;
  large.block_len = 256;
  small.error_bound = large.error_bound = 1e-2;
  const auto s_small = xsz::compress_serial(field.values, small, range);
  const auto s_large = xsz::compress_serial(field.values, large, range);
  const auto psnr_small =
      metrics::compare(field.values, xsz::decompress_serial(s_small)).psnr;
  const auto psnr_large =
      metrics::compare(field.values, xsz::decompress_serial(s_large)).psnr;
  EXPECT_GE(psnr_small, psnr_large - 0.5);
}

TEST(XszEdge, DeviceDecompressHasHostPrePostStages) {
  const auto field = data::make_field(data::Suite::kNyx, 1, 0.02);
  xsz::Params p;
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, xsz::max_compressed_bytes(field.count(), p.block_len));
  const auto cres = xsz::compress_device(dev, d_in, field.count(), p,
                                         1e-3 * field.value_range(), d_cmp);
  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto before = dev.snapshot();
  const auto dres = xsz::decompress_device(dev, d_cmp, d_out);
  (void)cres;
  // Paper §5.2: decompression needs CPU pre- AND post-processing.
  EXPECT_GE(dres.trace.host_stages, 2u);
  EXPECT_GT(dres.trace.d2h_bytes, 0u);
  (void)before;
}

}  // namespace
}  // namespace szp
