// cuSZx-style baseline: error bound, constant-block behaviour, device path.
#include <gtest/gtest.h>

#include "szp/baselines/xsz/xsz.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

std::vector<float> noisy(size_t n, double amp, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal() * amp);
  return v;
}

TEST(Xsz, ErrorBoundHolds) {
  const auto data = noisy(20000, 30.0, 3);
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 0.05;
  const auto stream = xsz::compress_serial(data, p);
  const auto recon = xsz::decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound));
}

TEST(Xsz, SmoothRegionsBecomeConstantBlocks) {
  // A slowly varying ramp with a large error bound: most blocks flush.
  std::vector<float> data(128 * 64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 1e-4f;
  }
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 0.5;
  const auto stream = xsz::compress_serial(data, p);
  EXPECT_GT(xsz::constant_block_fraction(stream), 0.9);
  // Constant flush stays error-bounded even so.
  const auto recon = xsz::decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound));
}

TEST(Xsz, ConstantFlushCreatesBlockArtifacts) {
  // Within a flushed block the reconstruction is exactly constant — the
  // mechanism behind the stripe artifacts of paper Fig. 16.
  std::vector<float> data(256);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 1e-3f;
  }
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 0.2;
  p.block_len = 128;
  const auto recon = xsz::decompress_serial(xsz::compress_serial(data, p));
  for (size_t b = 0; b < 2; ++b) {
    for (size_t i = 1; i < 128; ++i) {
      EXPECT_EQ(recon[b * 128 + i], recon[b * 128]);
    }
  }
}

TEST(Xsz, DeviceMatchesSerial) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.1);
  xsz::Params p;
  p.error_bound = 1e-3;
  const double range = field.value_range();
  const double eb = p.error_bound * range;
  const auto serial = xsz::compress_serial(field.values, p, range);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, xsz::max_compressed_bytes(field.count(), p.block_len));
  const auto res =
      xsz::compress_device(dev, d_in, field.count(), p, eb, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << "byte " << i;
  }

  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto dres = xsz::decompress_device(dev, d_cmp, d_out);
  ASSERT_EQ(dres.bytes, field.count());
  const auto recon = gpusim::to_host(dev, d_out);
  const auto recon_serial = xsz::decompress_serial(serial);
  for (size_t i = 0; i < recon_serial.size(); ++i) {
    ASSERT_EQ(recon[i], recon_serial[i]);
  }
}

TEST(Xsz, DevicePathUsesHostRoundTrips) {
  // The structural property the paper measures: xsz cannot stay on the
  // device — its trace must show host stages and PCIe traffic.
  const auto field = data::make_field(data::Suite::kHurricane, 1, 0.05);
  xsz::Params p;
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, xsz::max_compressed_bytes(field.count(), p.block_len));
  const auto res = xsz::compress_device(dev, d_in, field.count(), p,
                                        1e-3 * field.value_range(), d_cmp);
  EXPECT_GT(res.trace.host_stages, 0u);
  EXPECT_GT(res.trace.d2h_bytes, field.size_bytes() / 2);  // scratch D2H
  EXPECT_GT(res.trace.h2d_bytes, 0u);
  EXPECT_GE(res.trace.kernel_launches, 1u);
}

TEST(Xsz, PartialBlockAndEmpty) {
  xsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  for (const size_t n : {1u, 127u, 129u, 1000u}) {
    const auto data = noisy(n, 5.0, n);
    const auto recon = xsz::decompress_serial(xsz::compress_serial(data, p));
    ASSERT_EQ(recon.size(), n);
    EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound));
  }
  const std::vector<float> empty;
  EXPECT_EQ(xsz::decompress_serial(xsz::compress_serial(empty, p)).size(), 0u);
}

}  // namespace
}  // namespace szp
