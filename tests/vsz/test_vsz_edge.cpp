// vsz edge cases: chunk boundaries, radius sweep, adversarial Huffman
// inputs, corrupted streams.
#include <gtest/gtest.h>

#include "szp/baselines/vsz/vsz.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

using vsz::Grid;

std::vector<float> smooth(size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  double acc = 0;
  for (auto& x : v) {
    acc += rng.normal() * 0.1;
    x = static_cast<float>(acc);
  }
  return v;
}

class VszChunkBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(VszChunkBoundary, RoundtripAtBoundary) {
  const size_t n = GetParam();
  const auto data = smooth(n, n);
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.chunk = 1024;
  Grid g{{n}};
  const auto stream = vsz::compress_serial(data, g, p);
  const auto recon = vsz::decompress_serial(stream);
  ASSERT_EQ(recon.size(), n);
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VszChunkBoundary,
                         ::testing::Values(1u, 1023u, 1024u, 1025u, 2048u,
                                           10000u));

class VszRadius : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VszRadius, BoundHoldsAcrossRadii) {
  const auto data = smooth(20000, 5);
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-2;
  p.radius = GetParam();
  Grid g{{200, 100}};
  const auto stream = vsz::compress_serial(data, g, p);
  const auto recon = vsz::decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Radii, VszRadius,
                         ::testing::Values(2u, 16u, 128u, 512u, 4096u));

TEST(VszEdge, SmallRadiusMeansMoreOutliersSameBound) {
  const auto data = smooth(20000, 6);
  Grid g{{20000}};
  auto outliers_at = [&](std::uint32_t radius) {
    vsz::Params p;
    p.mode = core::ErrorMode::kAbs;
    p.error_bound = 1e-3;
    p.radius = radius;
    const auto stream = vsz::compress_serial(data, g, p);
    return vsz::Header::deserialize(stream).num_outliers;
  };
  EXPECT_GE(outliers_at(4), outliers_at(4096));
}

TEST(VszEdge, EmptyInput) {
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  Grid g{{0}};
  const std::vector<float> empty;
  const auto stream = vsz::compress_serial(empty, g, p);
  EXPECT_EQ(vsz::decompress_serial(stream).size(), 0u);
}

TEST(VszEdge, GridMismatchThrows) {
  vsz::Params p;
  const std::vector<float> data(100);
  EXPECT_THROW((void)vsz::compress_serial(data, Grid{{99}}, p), format_error);
  EXPECT_THROW((void)vsz::compress_serial(data, Grid{{2, 5, 5, 2}}, p),
               format_error);
}

TEST(VszHuffmanEdge, AdversarialFibonacciFrequencies) {
  // Fibonacci-like frequencies maximize code lengths; the length limiter
  // must keep everything decodable within kMaxCodeLength.
  std::vector<std::uint64_t> freq(64);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto book = vsz::HuffmanCodebook::build(freq);
  unsigned max_len = 0;
  for (const auto l : book.lengths) max_len = std::max<unsigned>(max_len, l);
  EXPECT_LE(max_len, vsz::HuffmanCodebook::kMaxCodeLength);
  EXPECT_LE(book.kraft_sum(),
            std::uint64_t{1} << vsz::HuffmanCodebook::kMaxCodeLength);

  // Still decodes correctly after limiting.
  Rng rng(77);
  std::vector<std::uint16_t> symbols(5000);
  for (auto& s : symbols) s = static_cast<std::uint16_t>(rng.next_below(64));
  const auto bits = vsz::huffman_encode(symbols, book);
  EXPECT_EQ(vsz::huffman_decode(bits, book, symbols.size()), symbols);
}

TEST(VszHuffmanEdge, EncodedBitsMatchesEncodeOutput) {
  Rng rng(78);
  std::vector<std::uint64_t> freq(256);
  for (auto& f : freq) f = 1 + rng.next_below(100);
  const auto book = vsz::HuffmanCodebook::build(freq);
  std::vector<std::uint16_t> symbols(3000);
  for (auto& s : symbols) s = static_cast<std::uint16_t>(rng.next_below(256));
  const auto bits = vsz::huffman_encoded_bits(symbols, book);
  const auto bytes = vsz::huffman_encode(symbols, book);
  EXPECT_EQ(bytes.size(), (bits + 7) / 8);
}

TEST(VszHuffmanEdge, UnknownSymbolThrows) {
  std::vector<std::uint64_t> freq(16, 0);
  freq[1] = freq[2] = 10;
  const auto book = vsz::HuffmanCodebook::build(freq);
  const std::vector<std::uint16_t> bad = {1, 2, 9};
  EXPECT_THROW((void)vsz::huffman_encode(bad, book), format_error);
}

TEST(VszEdge, CorruptedStreamDoesNotCrash) {
  const auto data = smooth(8192, 9);
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  Grid g{{8192}};
  const auto stream = vsz::compress_serial(data, g, p);
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    auto bad = stream;
    bad[rng.next_below(bad.size())] ^=
        static_cast<byte_t>(1u << rng.next_below(8));
    try {
      (void)vsz::decompress_serial(bad);
    } catch (const format_error&) {
      // fine
    }
  }
}

TEST(VszEdge, NdLorenzoImprovesOver1DOnSmooth3D) {
  // The reason cuSZ reaches high quality: multi-dimensional prediction.
  const auto field = data::make_field(data::Suite::kNyx, 2, 0.05);
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-4 * field.value_range();
  const auto s3d =
      vsz::compress_serial(field.values, Grid{field.dims.extents}, p);
  const auto s1d =
      vsz::compress_serial(field.values, Grid{{field.count()}}, p);
  EXPECT_LT(s3d.size(), s1d.size() * 1.05);
}

}  // namespace
}  // namespace szp
