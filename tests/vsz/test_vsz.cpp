// cuSZ-style baseline: Huffman, N-D Lorenzo, outliers, device pipeline.
#include <gtest/gtest.h>

#include <numeric>

#include "szp/baselines/vsz/vsz.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

using vsz::Grid;

std::vector<float> noisy(size_t n, double amp, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal() * amp);
  return v;
}

TEST(VszHuffman, RoundtripRandomSymbols) {
  Rng rng(7);
  std::vector<std::uint64_t> freq(1024, 0);
  std::vector<std::uint16_t> symbols(50000);
  for (auto& s : symbols) {
    // Geometric-ish distribution around 512 (like quant codes).
    const double g = rng.normal() * 20 + 512;
    s = static_cast<std::uint16_t>(std::clamp(g, 0.0, 1023.0));
    ++freq[s];
  }
  const auto book = vsz::HuffmanCodebook::build(freq);
  const auto bits = vsz::huffman_encode(symbols, book);
  const auto decoded = vsz::huffman_decode(bits, book, symbols.size());
  EXPECT_EQ(decoded, symbols);
  // Entropy coding should beat the 10-bit flat code on this skew.
  EXPECT_LT(bits.size() * 8, symbols.size() * 10);
}

TEST(VszHuffman, KraftInequalityHolds) {
  Rng rng(8);
  std::vector<std::uint64_t> freq(4096);
  for (auto& f : freq) f = rng.next_below(1000);
  const auto book = vsz::HuffmanCodebook::build(freq);
  EXPECT_LE(book.kraft_sum(),
            std::uint64_t{1} << vsz::HuffmanCodebook::kMaxCodeLength);
}

TEST(VszHuffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq(16, 0);
  freq[5] = 100;
  const auto book = vsz::HuffmanCodebook::build(freq);
  std::vector<std::uint16_t> symbols(100, 5);
  const auto bits = vsz::huffman_encode(symbols, book);
  EXPECT_EQ(vsz::huffman_decode(bits, book, 100), symbols);
}

TEST(VszHuffman, SerializationRebuildsCanonicalCodes) {
  std::vector<std::uint64_t> freq = {5, 9, 12, 13, 16, 45};
  const auto book = vsz::HuffmanCodebook::build(freq);
  const auto book2 = vsz::HuffmanCodebook::deserialize(book.serialize());
  EXPECT_EQ(book.lengths, book2.lengths);
  EXPECT_EQ(book.codes, book2.codes);
}

TEST(VszLorenzo, ForwardInverse3D) {
  Rng rng(11);
  Grid g{{7, 9, 11}};
  std::vector<std::int32_t> v(g.count());
  for (auto& x : v) {
    x = static_cast<std::int32_t>(rng.next_below(1 << 20)) - (1 << 19);
  }
  auto w = v;
  vsz::lorenzo_nd_forward(w, g);
  vsz::lorenzo_nd_inverse(w, g);
  EXPECT_EQ(w, v);
}

TEST(VszLorenzo, DiffThenSumIsIdentityPerAxis) {
  Rng rng(12);
  Grid g{{5, 6, 7}};
  std::vector<std::int32_t> v(g.count());
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_below(1000));
  for (size_t axis = 0; axis < 3; ++axis) {
    auto w = v;
    vsz::axis_diff(w, g, axis);
    vsz::axis_prefix_sum(w, g, axis);
    EXPECT_EQ(w, v) << "axis " << axis;
  }
}

TEST(Vsz, ErrorBoundHolds3D) {
  const auto field = data::make_field(data::Suite::kNyx, 2, 0.05);
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = field.value_range() * 1e-3;
  Grid g{field.dims.extents};
  const auto stream = vsz::compress_serial(field.values, g, p);
  const auto recon = vsz::decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(field.values, recon, p.error_bound));
}

TEST(Vsz, OutliersAreHandled) {
  // Rough data with spikes: many deltas exceed the radius.
  auto data = noisy(10000, 1000.0, 13);
  data[137] = 1e6f;
  data[9000] = -1e6f;
  vsz::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 0.5;
  p.radius = 16;  // tiny radius to force outliers
  Grid g{{data.size()}};
  const auto stream = vsz::compress_serial(data, g, p);
  const auto h = vsz::Header::deserialize(stream);
  EXPECT_GT(h.num_outliers, 0u);
  const auto recon = vsz::decompress_serial(stream);
  EXPECT_TRUE(metrics::error_bounded(data, recon, p.error_bound));
}

TEST(Vsz, DeviceMatchesSerial) {
  const auto field = data::make_field(data::Suite::kHurricane, 2, 0.05);
  vsz::Params p;
  const double eb = 1e-3 * field.value_range();
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = eb;
  Grid g{field.dims.extents};
  const auto serial = vsz::compress_serial(field.values, g, p);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev,
                                     vsz::max_compressed_bytes(field.count()));
  const auto res = vsz::compress_device(dev, d_in, g, p, eb, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << "byte " << i;
  }

  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto dres = vsz::decompress_device(dev, d_cmp, d_out);
  ASSERT_EQ(dres.bytes, field.count());
  const auto recon = gpusim::to_host(dev, d_out);
  const auto recon_serial = vsz::decompress_serial(serial);
  for (size_t i = 0; i < recon.size(); ++i) {
    ASSERT_EQ(recon[i], recon_serial[i]);
  }
}

TEST(Vsz, DevicePathIsMultiKernelWithHostWork) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.05);
  vsz::Params p;
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev,
                                     vsz::max_compressed_bytes(field.count()));
  Grid g{field.dims.extents};
  const auto res = vsz::compress_device(dev, d_in, g, p,
                                        1e-3 * field.value_range(), d_cmp);
  EXPECT_GE(res.trace.kernel_launches, 4u);  // quant, 3x lorenzo, hist, ...
  EXPECT_GT(res.trace.host_stages, 0u);
  EXPECT_GT(res.trace.d2h_bytes, field.size_bytes() / 4);
}

TEST(Vsz, CompressionBeatsRawOnSmoothData) {
  const auto field = data::make_field(data::Suite::kNyx, 0, 0.05);
  vsz::Params p;
  p.error_bound = 1e-3;
  Grid g{field.dims.extents};
  const auto stream =
      vsz::compress_serial(field.values, g, p, field.value_range());
  EXPECT_LT(stream.size(), field.size_bytes() / 4);
}

}  // namespace
}  // namespace szp
