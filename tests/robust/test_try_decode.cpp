// No-throw decode + salvage semantics (szp/robust/try_decode.hpp): clean
// streams report kOk, single-group corruption loses exactly that group,
// and archives with one rotten entry still yield the others.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "szp/archive/archive.hpp"
#include "szp/core/compressor.hpp"
#include "szp/core/serial.hpp"
#include "szp/robust/try_decode.hpp"

namespace {

using namespace szp;

std::vector<float> make_data(size_t n) {
  std::vector<float> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = std::sin(0.02 * static_cast<double>(i)) * 5.0f +
              std::cos(0.13 * static_cast<double>(i)) * 0.5f;
  }
  // A run of zero blocks exercises the zero-bypass path inside a group.
  for (size_t i = 96; i < 160 && i < n; ++i) data[i] = 0.0f;
  return data;
}

core::Params small_group_params(unsigned group_blocks = 4) {
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = group_blocks;
  return p;
}

/// Elements [first_block*L, last_block*L) of `got` must be bit-identical
/// to `ref`; used to pin down exactly which blocks salvage recovered.
void expect_blocks_equal(const std::vector<float>& got,
                         const std::vector<float>& ref, size_t first_block,
                         size_t last_block, unsigned block_len) {
  const size_t lo = first_block * block_len;
  const size_t hi = std::min(last_block * block_len, ref.size());
  for (size_t i = lo; i < hi; ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &ref[i], sizeof(float)), 0)
        << "element " << i;
  }
}

TEST(TryDecode, CleanV2StreamReportsOk) {
  const auto data = make_data(500);
  const auto params = small_group_params();
  const auto stream = core::compress_serial(data, params);
  const auto ref = core::decompress_serial(stream);

  std::vector<float> out;
  const auto rep = robust::try_decompress(stream, out);
  EXPECT_EQ(rep.status, robust::Status::kOk);
  EXPECT_TRUE(rep.checksummed);
  EXPECT_FALSE(rep.salvaged);
  EXPECT_EQ(rep.num_elements, data.size());
  EXPECT_TRUE(rep.corrupt_blocks.empty());
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * 4), 0);
}

TEST(TryDecode, CleanV1StreamReportsOk) {
  const auto data = make_data(500);
  auto params = small_group_params();
  params.checksum_group_blocks = 0;  // legacy v1, no footer
  const auto stream = core::compress_serial(data, params);
  const auto ref = core::decompress_serial(stream);

  std::vector<float> out;
  const auto rep = robust::try_decompress(stream, out);
  EXPECT_EQ(rep.status, robust::Status::kOk);
  EXPECT_FALSE(rep.checksummed);
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * 4), 0);
}

TEST(TryDecode, SalvageLosesExactlyTheCorruptGroup) {
  const auto data = make_data(640);  // 20 blocks -> 5 groups of 4
  const auto params = small_group_params(4);
  const auto stream = core::compress_serial(data, params);
  const auto ref = core::decompress_serial(stream);
  const auto h = core::Header::deserialize(stream);
  const auto spans = core::checksum_group_spans(stream, h, 4);
  ASSERT_EQ(spans.size(), 5u);

  // Smash one payload byte in the middle group.
  auto bad = stream;
  ASSERT_GT(spans[2].payload_end, spans[2].payload_begin);
  bad[spans[2].payload_begin] ^= 0xFF;

  robust::DecodeOptions opts;
  opts.want_groups = true;
  std::vector<float> out;
  const auto rep = robust::try_decompress(bad, out, opts);
  EXPECT_EQ(rep.status, robust::Status::kChecksumMismatch);
  EXPECT_TRUE(rep.salvaged);
  EXPECT_EQ(rep.groups_total, 5u);
  EXPECT_EQ(rep.groups_bad, 1u);
  ASSERT_EQ(rep.corrupt_blocks.size(), 1u);
  EXPECT_EQ(rep.corrupt_blocks[0],
            (robust::CorruptRange{spans[2].first_block, spans[2].last_block}));

  ASSERT_EQ(rep.groups.size(), 5u);
  for (size_t g = 0; g < rep.groups.size(); ++g) {
    EXPECT_EQ(rep.groups[g].ok, g != 2) << "group " << g;
    EXPECT_EQ(rep.groups[g].first_block, spans[g].first_block);
    EXPECT_EQ(rep.groups[g].last_block, spans[g].last_block);
  }

  // Healthy groups decode bit-identically; the lost group is zero-filled.
  ASSERT_EQ(out.size(), ref.size());
  expect_blocks_equal(out, ref, 0, spans[2].first_block, h.block_len);
  expect_blocks_equal(out, ref, spans[2].last_block, spans.back().last_block,
                      h.block_len);
  for (size_t i = spans[2].first_block * h.block_len;
       i < spans[2].last_block * h.block_len; ++i) {
    ASSERT_EQ(out[i], 0.0f) << "element " << i;
  }
}

TEST(TryDecode, SalvageDisabledLeavesOutputEmpty) {
  const auto data = make_data(640);
  const auto stream = core::compress_serial(data, small_group_params());
  auto bad = stream;
  bad[bad.size() / 2] ^= 0x55;

  robust::DecodeOptions opts;
  opts.salvage = false;
  std::vector<float> out;
  const auto rep = robust::try_decompress(bad, out, opts);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(out.empty());
}

TEST(TryDecode, HeaderDefectsAreClassified) {
  const auto stream = core::compress_serial(make_data(100),
                                            small_group_params());
  std::vector<float> out;

  {  // empty input
    const auto rep = robust::try_decompress({}, out);
    EXPECT_EQ(rep.status, robust::Status::kTruncated);
  }
  {  // wrong magic
    auto bad = stream;
    bad[0] ^= 0x01;
    const auto rep = robust::try_decompress(bad, out);
    EXPECT_EQ(rep.status, robust::Status::kBadMagic);
  }
  {  // future version (breaks the CRC too, but version is checked first)
    auto bad = stream;
    bad[4] = 0x09;
    const auto rep = robust::try_decompress(bad, out);
    EXPECT_TRUE(rep.status == robust::Status::kUnsupportedVersion ||
                rep.status == robust::Status::kHeaderCorrupt);
  }
  {  // flipped bit inside the CRC-protected region
    auto bad = stream;
    bad[9] ^= 0x40;  // num_elements
    const auto rep = robust::try_decompress(bad, out);
    EXPECT_EQ(rep.status, robust::Status::kHeaderCorrupt);
    EXPECT_TRUE(out.empty());
  }
}

TEST(TryDecode, TypeMismatchIsReportedNotThrown) {
  std::vector<double> d64(200);
  for (size_t i = 0; i < d64.size(); ++i) d64[i] = std::sin(0.05 * i);
  const auto stream = core::compress_serial_f64(d64, small_group_params());

  std::vector<float> out32;
  EXPECT_EQ(robust::try_decompress(stream, out32).status,
            robust::Status::kTypeMismatch);
  EXPECT_TRUE(out32.empty());

  std::vector<double> out64;
  const auto rep = robust::try_decompress_f64(stream, out64);
  EXPECT_EQ(rep.status, robust::Status::kOk);
  const auto ref = core::decompress_serial_f64(stream);
  ASSERT_EQ(out64.size(), ref.size());
  EXPECT_EQ(std::memcmp(out64.data(), ref.data(), ref.size() * 8), 0);
}

TEST(TryDecode, VerifyStreamMatchesDecodeVerdict) {
  const auto stream = core::compress_serial(make_data(640),
                                            small_group_params());
  EXPECT_TRUE(robust::verify_stream(stream).ok());

  auto bad = stream;
  bad[bad.size() - 7] ^= 0x10;  // inside the footer -> self-CRC fails
  const auto rep = robust::verify_stream(bad, /*want_groups=*/true);
  EXPECT_FALSE(rep.ok());
}

TEST(TryDecode, V1StructuralDefectSalvagesPrefix) {
  const auto data = make_data(640);
  auto params = small_group_params();
  params.checksum_group_blocks = 0;
  const auto stream = core::compress_serial(data, params);
  const auto ref = core::decompress_serial(stream);
  const auto h = core::Header::deserialize(stream);

  // Length byte 10 set to a value no encoder can produce (33..63 range).
  auto bad = stream;
  bad[core::lengths_offset() + 10] = 0x3F;

  std::vector<float> out;
  const auto rep = robust::try_decompress(bad, out);
  EXPECT_EQ(rep.status, robust::Status::kBadLengthByte);
  EXPECT_TRUE(rep.salvaged);
  ASSERT_EQ(out.size(), ref.size());
  // Blocks before the defect survive; the rest is unrecoverable in v1.
  expect_blocks_equal(out, ref, 0, 10, h.block_len);
  ASSERT_EQ(rep.corrupt_blocks.size(), 1u);
  EXPECT_EQ(rep.corrupt_blocks[0].first_block, 10u);
  EXPECT_EQ(rep.corrupt_blocks[0].last_block, rep.num_blocks);
}

TEST(TryDecode, CompressorMemberEntryPoint) {
  Compressor c(small_group_params());
  const auto data = make_data(300);
  const auto stream = c.compress(data);
  std::vector<float> out;
  EXPECT_TRUE(c.try_decompress(stream, out).ok());
  EXPECT_EQ(out.size(), data.size());
}

TEST(TryDecode, ArchiveOneCorruptEntryDoesNotSinkOthers) {
  archive::Writer w(small_group_params());
  const auto d0 = make_data(320);
  const auto d1 = make_data(480);
  const auto d2 = make_data(256);
  w.add(data::Field{"alpha", data::Dims{{320}}, d0});
  w.add(data::Field{"beta", data::Dims{{480}}, d1});
  w.add(data::Field{"gamma", data::Dims{{256}}, d2});
  auto blob = std::move(w).finish();

  // Corrupt the middle of beta's stream (payload area, past its header).
  archive::Reader clean(blob);
  const auto& e1 = clean.entries()[1];
  blob[e1.stream_offset + e1.stream_bytes / 2] ^= 0xA5;

  const archive::Reader reader(std::move(blob));
  const auto reports = reader.verify(/*want_groups=*/true);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_TRUE(reports[0].ok());
  EXPECT_FALSE(reports[1].ok());
  EXPECT_TRUE(reports[2].ok());

  data::Field f0;
  EXPECT_TRUE(reader.try_extract(0, f0).ok());
  EXPECT_EQ(f0.name, "alpha");
  EXPECT_EQ(f0.values.size(), d0.size());

  data::Field f1;
  const auto rep1 = reader.try_extract(1, f1);
  EXPECT_FALSE(rep1.ok());
  EXPECT_GT(rep1.corrupt_block_count(), 0u);

  data::Field f2;
  EXPECT_TRUE(reader.try_extract(2, f2).ok());
  EXPECT_EQ(f2.values.size(), d2.size());

  data::Field oob;
  EXPECT_EQ(reader.try_extract(99, oob).status,
            robust::Status::kInternalError);
}

TEST(TryDecode, FooterTornOffIsDetected) {
  const auto stream = core::compress_serial(make_data(640),
                                            small_group_params());
  const auto h = core::Header::deserialize(stream);
  const auto stats = core::inspect_stream(stream);
  ASSERT_GT(stats.footer_bytes, 0u);

  // Chop the entire footer: the stream now ends exactly at the payload.
  const std::span<const byte_t> torn(stream.data(),
                                     stream.size() - stats.footer_bytes);
  (void)h;
  const auto rep = robust::verify_stream(torn);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.status == robust::Status::kTruncated ||
              rep.status == robust::Status::kFooterMissing);
}

}  // namespace
