// Fault-injection fuzz harness: thousands of seeded mutations against the
// serial, device, and random-access decoders. The contract under test:
//
//   * v2 streams — every single mutation is detected: the throwing
//     decoders raise format_error, and try_decompress reports non-kOk
//     while salvaging bit-identical data outside the reported corrupt
//     blocks.
//   * random access — a mutated stream either fails verification or the
//     returned range is bit-identical to the clean decode (mutations
//     outside the verified region are legitimately invisible).
//   * v1 streams — no checksums, so silent corruption is allowed, but
//     nothing may crash, hang, or trip the sanitizers.
//
// Every case replays from its loop index (the injector seed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "szp/core/compressor.hpp"
#include "szp/core/random_access.hpp"
#include "szp/core/serial.hpp"
#include "szp/gpusim/buffer.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/robust/fault.hpp"
#include "szp/robust/try_decode.hpp"
#include "szp/util/rng.hpp"

namespace {

using namespace szp;

std::vector<float> make_data(size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(0.03 * static_cast<double>(i)) *
                                     4.0 +
                                 rng.normal() * 0.1);
  }
  for (size_t i = n / 4; i < n / 4 + 64 && i < n; ++i) data[i] = 0.0f;
  return data;
}

struct Golden {
  std::vector<float> data;
  std::vector<byte_t> stream;
  std::vector<float> ref;  // clean decode of `stream`
  unsigned block_len = 32;
};

Golden make_golden(size_t n, unsigned group_blocks) {
  Golden g;
  g.data = make_data(n, 0xD00DULL + n);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = group_blocks;
  g.stream = core::compress_serial(g.data, p);
  g.ref = core::decompress_serial(g.stream);
  g.block_len = p.block_len;
  return g;
}

/// try_decompress must never throw, must flag the mutation, and whatever
/// it does not list as corrupt must match the clean decode bit for bit.
void check_salvage_contract(const std::vector<byte_t>& mutated,
                            const Golden& g, const std::string& what) {
  std::vector<float> out;
  const auto rep = robust::try_decompress(mutated, out, {});
  EXPECT_NE(rep.status, robust::Status::kOk) << what;
  if (out.empty()) return;  // unrecoverable; nothing vouched for
  ASSERT_EQ(out.size(), g.ref.size()) << what;
  size_t r = 0;  // corrupt_blocks is merged and ascending
  const size_t nblocks = core::num_blocks(g.ref.size(), g.block_len);
  for (size_t b = 0; b < nblocks; ++b) {
    while (r < rep.corrupt_blocks.size() &&
           rep.corrupt_blocks[r].last_block <= b) {
      ++r;
    }
    const bool corrupt = r < rep.corrupt_blocks.size() &&
                         rep.corrupt_blocks[r].first_block <= b;
    if (corrupt) continue;
    const size_t lo = b * g.block_len;
    const size_t hi = std::min(lo + g.block_len, g.ref.size());
    ASSERT_EQ(std::memcmp(&out[lo], &g.ref[lo], (hi - lo) * sizeof(float)),
              0)
        << what << " block " << b << " not reported corrupt yet differs";
  }
}

TEST(FaultFuzz, SerialV2EveryMutationDetected) {
  const auto g = make_golden(4096, 8);
  for (std::uint64_t seed = 0; seed < 700; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = g.stream;
    const auto mut = inj.mutate(m);
    const std::string what = "seed " + std::to_string(seed) + ": " +
                             mut.describe();
    EXPECT_THROW((void)core::decompress_serial(m), format_error) << what;
    check_salvage_contract(m, g, what);
  }
}

TEST(FaultFuzz, SerialF64V2EveryMutationDetected) {
  std::vector<double> data(2048);
  Rng rng(0xF64F64ULL);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.04 * static_cast<double>(i)) + rng.normal() * 0.05;
  }
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-4;
  p.checksum_group_blocks = 8;
  const auto stream = core::compress_serial_f64(data, p);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = stream;
    const auto mut = inj.mutate(m);
    const std::string what = "seed " + std::to_string(seed) + ": " +
                             mut.describe();
    EXPECT_THROW((void)core::decompress_serial_f64(m), format_error) << what;
    std::vector<double> out;
    EXPECT_NE(robust::try_decompress_f64(m, out, {}).status,
              robust::Status::kOk)
        << what;
  }
}

TEST(FaultFuzz, RandomAccessV2DetectsOrReadsExactly) {
  const auto g = make_golden(4096, 8);
  const size_t n = g.ref.size();
  for (std::uint64_t seed = 0; seed < 600; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = g.stream;
    const auto mut = inj.mutate(m);
    const size_t begin = inj.rng().next_below(n);
    const size_t end = begin + 1 + inj.rng().next_below(n - begin);
    const std::string what = "seed " + std::to_string(seed) + ": " +
                             mut.describe();
    try {
      const auto got = core::decompress_range(m, begin, end);
      // Verification passed: the covered region must be untouched.
      ASSERT_EQ(got.size(), end - begin) << what;
      ASSERT_EQ(std::memcmp(got.data(), g.ref.data() + begin,
                            got.size() * sizeof(float)),
                0)
          << what << " range [" << begin << ", " << end
          << ") silently corrupted";
    } catch (const format_error&) {
      // Detected — the expected outcome for mutations in the read path.
    }
  }
}

TEST(FaultFuzz, DeviceV2EveryMutationDetected) {
  const auto g = make_golden(2048, 8);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = 8;
  const Compressor comp(p);
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = g.stream;
    const auto mut = inj.mutate(m);
    gpusim::Device dev(2);
    const auto d_cmp = gpusim::to_device<byte_t>(dev, m);
    gpusim::DeviceBuffer<float> d_out(dev, g.data.size());
    EXPECT_THROW((void)comp.decompress_on_device(dev, d_cmp, d_out),
                 format_error)
        << "seed " << seed << ": " << mut.describe();
  }
}

TEST(FaultFuzz, V1StreamsNeverCrash) {
  Golden g;
  g.data = make_data(4096, 0xBEEFULL);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = 0;  // legacy v1: no checksums
  g.stream = core::compress_serial(g.data, p);
  g.ref = core::decompress_serial(g.stream);
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = g.stream;
    (void)inj.mutate(m);
    // Without checksums a mutation may decode silently; the contract is
    // only "no crash, no hang, no UB" for the throwing path...
    try {
      (void)core::decompress_serial(m);
    } catch (const format_error&) {
    }
    try {
      (void)core::decompress_range(m, 100, 400);
    } catch (const format_error&) {
    }
    // ...while the try_ API additionally must never throw at all.
    std::vector<float> out;
    (void)robust::try_decompress(m, out, {});
  }
}

// Device-side fault injection: the post-kernel hook corrupts the
// compressed buffer the moment the compression kernel retires (modeling a
// DMA/storage fault between pipeline stages); every downstream consumer
// must detect it.
TEST(FaultFuzz, PostKernelHookCorruptionIsDetectedDownstream) {
  const auto data = make_data(2048, 0xCAFEULL);
  core::Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = 8;
  const Compressor comp(p);
  const size_t nblocks = core::num_blocks(data.size(), p.block_len);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    robust::FaultInjector inj(seed);
    gpusim::Device dev(2);
    const auto d_in = gpusim::to_device<float>(dev, data);
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev, core::max_compressed_bytes(data.size(), p.block_len,
                                        p.checksum_group_blocks));
    int fired = 0;
    dev.set_post_kernel_hook([&](const std::string& kernel) {
      if (kernel != "szp_compress") return;
      ++fired;
      // Header + length bytes are always part of the stream, whatever
      // the compressed size turns out to be.
      (void)inj.corrupt_buffer(
          d_cmp.span().first(core::payload_offset(nblocks)));
    });
    const auto res = comp.compress_on_device(dev, d_in, data.size(), 0.0,
                                             d_cmp);
    dev.clear_post_kernel_hook();
    ASSERT_EQ(fired, 1) << "seed " << seed;

    const std::vector<byte_t> m(d_cmp.data(), d_cmp.data() + res.bytes);
    EXPECT_THROW((void)core::decompress_serial(m), format_error)
        << "seed " << seed;
    std::vector<float> out;
    EXPECT_NE(robust::try_decompress(m, out, {}).status,
              robust::Status::kOk)
        << "seed " << seed;
  }
}

// Fuzz runs surface their aggregate salvage behaviour through the
// metrics registry: every try_decompress call is counted, mutations show
// up as failed calls with corrupt groups/blocks, and salvage mode counts
// the streams it recovered.
TEST(FaultFuzz, SalvageCountersFlowThroughMetricsRegistry) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.set_enabled(true);

  const auto g = make_golden(4096, 8);
  robust::DecodeOptions opts;
  opts.salvage = true;
  const std::uint64_t kSeeds = 50;
  std::uint64_t expect_failed = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    robust::FaultInjector inj(seed);
    auto m = g.stream;
    (void)inj.mutate(m);
    std::vector<float> out;
    const auto rep = robust::try_decompress(m, out, opts);
    if (!rep.ok()) ++expect_failed;
  }
  // One clean decode on top, so both ok and failed are exercised.
  {
    std::vector<float> out;
    EXPECT_EQ(robust::try_decompress(g.stream, out, opts).status,
              robust::Status::kOk);
  }

  const auto* calls = reg.find_counter("robust.try_decompress.calls");
  const auto* ok = reg.find_counter("robust.try_decompress.ok");
  const auto* failed = reg.find_counter("robust.try_decompress.failed");
  const auto* groups = reg.find_counter("robust.corrupt_groups");
  const auto* blocks = reg.find_counter("robust.corrupt_blocks");
  const auto* salvaged = reg.find_counter("robust.salvaged_streams");
  ASSERT_NE(calls, nullptr);
  ASSERT_NE(ok, nullptr);
  ASSERT_NE(failed, nullptr);
  ASSERT_NE(groups, nullptr);
  ASSERT_NE(blocks, nullptr);
  ASSERT_NE(salvaged, nullptr);
  EXPECT_EQ(calls->value(), kSeeds + 1);
  EXPECT_EQ(failed->value(), expect_failed);
  EXPECT_EQ(ok->value(), kSeeds + 1 - expect_failed);
  // v2 mutations are always detected, so the fuzz batch must have failed
  // calls, corrupt groups/blocks, and salvaged streams to report.
  EXPECT_GT(expect_failed, 0u);
  EXPECT_GT(groups->value(), 0u);
  EXPECT_GT(blocks->value(), 0u);
  EXPECT_GT(salvaged->value(), 0u);
  EXPECT_LE(salvaged->value(), failed->value());

  reg.set_enabled(false);
  reg.reset();
}

}  // namespace
