// CRC32C (Castagnoli) correctness: known vectors and the streaming
// accumulator that the per-group footer checksums rely on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "szp/util/crc32c.hpp"
#include "szp/util/rng.hpp"

namespace {

using szp::byte_t;

std::vector<byte_t> bytes_of(const std::string& s) {
  return std::vector<byte_t>(s.begin(), s.end());
}

TEST(Crc32c, KnownVectors) {
  // iSCSI / ext4 reference value (RFC 3720 appendix B.4).
  EXPECT_EQ(szp::crc32c(bytes_of("123456789")), 0xE3069283u);
  // CRC of the empty message is the init XOR final-xor, i.e. zero.
  EXPECT_EQ(szp::crc32c(std::span<const byte_t>{}), 0x00000000u);
  // 32 zero bytes (RFC 3720 appendix B.4 test pattern).
  EXPECT_EQ(szp::crc32c(std::vector<byte_t>(32, 0)), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(szp::crc32c(std::vector<byte_t>(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  szp::Rng rng(0x5EED5EEDULL);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.next_below(4096);
    std::vector<byte_t> data(n);
    for (auto& b : data) b = static_cast<byte_t>(rng.next_u64());
    const std::uint32_t expect = szp::crc32c(data);

    szp::Crc32c acc;
    size_t pos = 0;
    while (pos < n) {
      const size_t chunk = 1 + rng.next_below(n - pos);
      acc.update(std::span<const byte_t>(data).subspan(pos, chunk));
      pos += chunk;
    }
    ASSERT_EQ(acc.value(), expect) << "trial " << trial << " n=" << n;
  }
}

TEST(Crc32c, ValueIsNonDestructiveAndResetWorks) {
  const auto data = bytes_of("123456789");
  szp::Crc32c acc;
  acc.update(std::span<const byte_t>(data).first(4));
  (void)acc.value();  // peeking must not disturb the accumulator
  acc.update(std::span<const byte_t>(data).subspan(4));
  EXPECT_EQ(acc.value(), 0xE3069283u);
  acc.reset();
  acc.update(data);
  EXPECT_EQ(acc.value(), 0xE3069283u);
}

TEST(Crc32c, EveryBitFlipChangesTheChecksum) {
  auto data = bytes_of("cuSZp stream integrity");
  const std::uint32_t base = szp::crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<byte_t>(1u << bit);
      EXPECT_NE(szp::crc32c(data), base) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<byte_t>(1u << bit);
    }
  }
}

}  // namespace
