// robust::Fs backends and the fault-injecting decorator: MemFs semantics
// mirror RealFs, FaultFs is seed-deterministic, kill points fire at exact
// mutating-op boundaries, and torn writes persist a strict prefix.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "szp/robust/io.hpp"
#include "szp/robust/io_fault.hpp"
#include "szp/util/common.hpp"

namespace {

using namespace szp;
using robust::FaultFs;
using robust::FaultFsOptions;
using robust::Fs;
using robust::IoOp;
using robust::MemFs;
using robust::RealFs;

std::vector<byte_t> bytes_of(const std::string& s) {
  return std::vector<byte_t>(s.begin(), s.end());
}

/// The behavioral contract shared by every backend.
void exercise_fs(Fs& fs, const std::string& root) {
  fs.make_dirs(root + "/sub/deep");
  EXPECT_TRUE(fs.exists(root + "/sub/deep"));

  fs.write_file(root + "/a.bin", bytes_of("hello world"));
  EXPECT_TRUE(fs.exists(root + "/a.bin"));
  EXPECT_EQ(fs.file_size(root + "/a.bin"), 11u);
  EXPECT_EQ(fs.read_file(root + "/a.bin"), bytes_of("hello world"));

  // pread semantics: past-EOF reads return what exists.
  EXPECT_EQ(fs.read_range(root + "/a.bin", 6, 5), bytes_of("world"));
  EXPECT_EQ(fs.read_range(root + "/a.bin", 6, 100), bytes_of("world"));
  EXPECT_TRUE(fs.read_range(root + "/a.bin", 100, 5).empty());

  // Atomic-replace rename.
  fs.write_file(root + "/b.bin", bytes_of("old"));
  fs.rename(root + "/a.bin", root + "/b.bin");
  EXPECT_FALSE(fs.exists(root + "/a.bin"));
  EXPECT_EQ(fs.read_file(root + "/b.bin"), bytes_of("hello world"));

  fs.write_file(root + "/sub/c.bin", bytes_of("c"));
  const auto listing = fs.list_dir(root);
  ASSERT_EQ(listing.size(), 1u);  // b.bin only; sub/ is a directory
  EXPECT_EQ(listing[0], "b.bin");
  EXPECT_TRUE(fs.list_dir(root + "/does-not-exist").empty());

  fs.sync_file(root + "/b.bin");
  fs.remove(root + "/b.bin");
  EXPECT_FALSE(fs.exists(root + "/b.bin"));

  // Errors carry op + path.
  try {
    (void)fs.read_file(root + "/missing.bin");
    FAIL() << "read of missing file must throw";
  } catch (const robust::io_error& e) {
    EXPECT_EQ(e.op(), IoOp::kRead);
    EXPECT_EQ(e.path(), root + "/missing.bin");
    EXPECT_NE(std::string(e.what()).find(root + "/missing.bin"),
              std::string::npos);
  }
}

TEST(IoFs, MemFsContract) {
  MemFs fs;
  exercise_fs(fs, "arc");
}

TEST(IoFs, RealFsContract) {
  RealFs fs;
  const auto root =
      (std::filesystem::temp_directory_path() / "szp_io_fs_test").string();
  std::filesystem::remove_all(root);
  exercise_fs(fs, root);
  std::filesystem::remove_all(root);
}

TEST(IoFs, MemFsIsCopyable) {
  MemFs fs;
  fs.write_file("f", bytes_of("one"));
  MemFs snapshot = fs;
  fs.write_file("f", bytes_of("two"));
  EXPECT_EQ(snapshot.read_file("f"), bytes_of("one"));
  EXPECT_EQ(fs.read_file("f"), bytes_of("two"));
}

TEST(IoFs, MemFsRealErrnoIsZeroRealFsNonzero) {
  MemFs mem;
  try {
    (void)mem.read_file("nope");
    FAIL();
  } catch (const robust::io_error& e) {
    EXPECT_EQ(e.err(), 0);
  }
  RealFs real;
  try {
    (void)real.read_file("/definitely/not/a/path/nope");
    FAIL();
  } catch (const robust::io_error& e) {
    EXPECT_NE(e.err(), 0);  // ENOENT, reported with strerror context
    EXPECT_NE(std::string(e.what()).find("No such file"), std::string::npos);
  }
}

TEST(IoFault, CountsOnlyMutatingOps) {
  MemFs mem;
  FaultFs fs(mem, FaultFsOptions{});
  fs.write_file("a", bytes_of("x"));   // 1
  (void)fs.read_file("a");             // reads don't count
  (void)fs.exists("a");
  (void)fs.list_dir(".");
  fs.sync_file("a");                   // 2
  fs.rename("a", "b");                 // 3
  fs.remove("b");                      // 4
  fs.make_dirs("d");                   // 5
  EXPECT_EQ(fs.mutating_ops(), 5u);
}

TEST(IoFault, KillPointFiresAtExactOp) {
  for (std::uint64_t kill = 1; kill <= 3; ++kill) {
    MemFs mem;
    FaultFsOptions opts;
    opts.crash_at_mutating_op = kill;
    opts.torn_writes = false;
    FaultFs fs(mem, opts);
    std::uint64_t completed = 0;
    try {
      fs.write_file("a", bytes_of("aa"));
      ++completed;
      fs.sync_file("a");
      ++completed;
      fs.rename("a", "b");
      ++completed;
    } catch (const robust::io_crash& e) {
      EXPECT_EQ(e.op_index(), kill);
    }
    EXPECT_EQ(completed, kill - 1);
  }
}

TEST(IoFault, TornWriteLeavesStrictPrefix) {
  MemFs mem;
  mem.write_file("f", bytes_of("previous"));
  FaultFsOptions opts;
  opts.seed = 7;
  opts.crash_at_mutating_op = 1;
  opts.torn_writes = true;
  FaultFs fs(mem, opts);
  const auto payload = bytes_of("the-new-longer-content");
  EXPECT_THROW(fs.write_file("f", payload), robust::io_crash);
  const auto after = mem.read_file("f");
  EXPECT_LT(after.size(), payload.size());
  EXPECT_TRUE(std::equal(after.begin(), after.end(), payload.begin()));
}

TEST(IoFault, DeterministicAcrossRuns) {
  const auto run = [](std::uint64_t seed) {
    MemFs mem;
    mem.write_file("f", std::vector<byte_t>(256, byte_t{0xAB}));
    FaultFsOptions opts;
    opts.seed = seed;
    opts.short_read_rate = 0.5;
    opts.read_bitrot_rate = 0.5;
    FaultFs fs(mem, opts);
    std::vector<std::vector<byte_t>> reads;
    for (int i = 0; i < 8; ++i) reads.push_back(fs.read_file("f"));
    return reads;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(IoFault, BitrotFlipsExactlyOneBit) {
  MemFs mem;
  const std::vector<byte_t> original(64, byte_t{0x55});
  mem.write_file("f", original);
  FaultFsOptions opts;
  opts.seed = 3;
  opts.read_bitrot_rate = 1.0;
  FaultFs fs(mem, opts);
  const auto got = fs.read_file("f");
  ASSERT_EQ(got.size(), original.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    auto diff = static_cast<unsigned>(got[i] ^ original[i]);
    while (diff != 0) {
      flipped_bits += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  // The backing store is untouched — rot happens on the wire.
  EXPECT_EQ(mem.read_file("f"), original);
}

TEST(IoFault, WriteFailureReportsEnospc) {
  MemFs mem;
  FaultFsOptions opts;
  opts.seed = 11;
  opts.write_fail_rate = 1.0;
  FaultFs fs(mem, opts);
  try {
    fs.write_file("f", std::vector<byte_t>(100, byte_t{1}));
    FAIL() << "injected write failure expected";
  } catch (const robust::io_error& e) {
    EXPECT_EQ(e.op(), IoOp::kWrite);
    EXPECT_EQ(e.err(), 28);  // ENOSPC
  }
  // The failed write left a half-written file behind, like a full disk.
  EXPECT_TRUE(mem.exists("f"));
  EXPECT_LT(mem.file_size("f"), 100u);
}

}  // namespace
