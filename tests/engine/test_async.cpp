// Async batch path: byte-identity with the serial backend at every
// device/stream count, overlap-model sanity, and the pipeline's
// double-buffered worker. `ctest -L async` selects this binary (CI runs
// it under ThreadSanitizer as well).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"
#include "szp/engine/engine.hpp"
#include "szp/perfmodel/hardware.hpp"
#include "szp/perfmodel/overlap.hpp"
#include "szp/pipeline/pipeline.hpp"

namespace szp::engine {
namespace {

std::vector<data::Field> test_fields() {
  std::vector<data::Field> fields;
  for (size_t f = 0; f < 4; ++f) {
    fields.push_back(data::make_field(data::Suite::kCesmAtm, f, 0.02));
  }
  fields.push_back(data::make_field(data::Suite::kHacc, 0, 0.02));
  fields.push_back(data::make_field(data::Suite::kRtm, 0, 0.02));
  return fields;
}

std::vector<std::span<const float>> views_of(
    const std::vector<data::Field>& fields) {
  std::vector<std::span<const float>> v;
  v.reserve(fields.size());
  for (const auto& f : fields) v.emplace_back(f.values);
  return v;
}

core::Params test_params() {
  core::Params p;
  p.error_bound = 1e-3;
  return p;
}

TEST(AsyncBatch, ByteIdenticalToSerialAtEveryShardShape) {
  const auto fields = test_fields();
  const auto views = views_of(fields);
  const core::Params params = test_params();

  Engine serial({.params = params, .backend = BackendKind::kSerial});
  const auto reference = serial.compress_batch(views);
  ASSERT_EQ(reference.size(), fields.size());

  for (const unsigned devices : {1u, 2u, 3u}) {
    for (const unsigned streams : {1u, 2u}) {
      Engine eng({.params = params,
                  .backend = BackendKind::kDevice,
                  .devices = devices,
                  .streams = streams});
      const auto got = eng.compress_batch(views);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].bytes, reference[i].bytes)
            << "field " << i << " at devices=" << devices
            << " streams=" << streams;
      }
    }
  }
}

TEST(AsyncBatch, RepeatedBatchesReuseLeasesSafely) {
  // Second batch reuses the pooled buffers the first released from the
  // stream threads; results must stay identical run over run.
  const auto fields = test_fields();
  const auto views = views_of(fields);
  Engine eng({.params = test_params(),
              .backend = BackendKind::kDevice,
              .devices = 2,
              .streams = 2});
  const auto first = eng.compress_batch(views);
  const auto second = eng.compress_batch(views);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].bytes, second[i].bytes) << i;
  }
}

TEST(AsyncBatch, DecompressRoundtripsWithinBound) {
  const auto fields = test_fields();
  const auto views = views_of(fields);
  const core::Params params = test_params();
  Engine eng({.params = params,
              .backend = BackendKind::kDevice,
              .devices = 2,
              .streams = 2});
  const auto batch = eng.compress_batch(views);
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto recon = eng.decompress(batch[i].bytes);
    ASSERT_EQ(recon.size(), fields[i].values.size());
    const double eb =
        core::resolve_eb(params, fields[i].value_range()) * (1.0 + 1e-6);
    for (size_t j = 0; j < recon.size(); ++j) {
      ASSERT_NEAR(recon[j], fields[i].values[j], eb) << "field " << i;
    }
  }
}

TEST(AsyncBatch, OverlapModelShowsSavingsAndDeviceScaling) {
  const auto fields = test_fields();
  const auto views = views_of(fields);
  const perfmodel::CostModel model(perfmodel::a100());

  auto run = [&](unsigned devices, unsigned streams) {
    Engine eng({.params = test_params(),
                .backend = BackendKind::kDevice,
                .devices = devices,
                .streams = streams});
    auto* devb = eng.device_backend();
    devb->set_timeline_enabled(true);
    (void)eng.compress_batch(views);
    devb->set_timeline_enabled(false);
    const auto timelines = devb->take_timelines();
    EXPECT_EQ(timelines.size(), devices);
    std::vector<perfmodel::OverlapReport> reps;
    for (const auto& tl : timelines) {
      EXPECT_FALSE(tl.empty());
      reps.push_back(perfmodel::model_overlap(tl, model));
    }
    return perfmodel::combine_devices(reps);
  };

  // Two streams on one device: transfers hide behind kernels, so the
  // overlapped makespan is strictly below the serialized wall.
  const auto one_dev = run(1, 2);
  EXPECT_EQ(one_dev.ops, fields.size() * 3);  // h2d + kernel + d2h each
  EXPECT_GT(one_dev.serialized_s, 0.0);
  EXPECT_GT(one_dev.overlapped_s, 0.0);
  EXPECT_LT(one_dev.overlapped_s, one_dev.serialized_s);
  EXPECT_GT(one_dev.overlap_fraction(), 0.0);
  EXPECT_LT(one_dev.overlap_fraction(), 1.0);
  EXPECT_FALSE(one_dev.lanes.empty());

  // Two devices: the serialized wall is the same work, but the modeled
  // makespan splits across devices — the paper-style multi-GPU scaling.
  const auto two_dev = run(2, 2);
  EXPECT_GE(two_dev.serialized_s / two_dev.overlapped_s, 1.5);
}

TEST(AsyncBatch, SingleDeviceSingleStreamTakesSerialPath) {
  // devices=1 streams=1 must not spin up stream threads; it goes through
  // the base-class loop and still matches the reference bytes.
  const auto fields = test_fields();
  const auto views = views_of(fields);
  Engine serial({.params = test_params(), .backend = BackendKind::kSerial});
  Engine eng({.params = test_params(),
              .backend = BackendKind::kDevice,
              .devices = 1,
              .streams = 1});
  const auto a = serial.compress_batch(views);
  const auto b = eng.compress_batch(views);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bytes, b[i].bytes);
}

TEST(AsyncPipeline, DoubleBufferedWorkerIsByteExact) {
  pipeline::Config cfg;
  cfg.workers = 1;  // one worker, overlap comes from its two streams
  cfg.device_streams = 2;
  cfg.params.error_bound = 1e-2;
  pipeline::InlinePipeline pipe(cfg);
  std::vector<data::Field> snapshots;
  for (const size_t step : {300u, 900u, 1500u, 2100u, 2700u}) {
    snapshots.push_back(data::make_rtm_snapshot(step, 0.03));
    pipe.submit(snapshots.back());
  }
  const auto results = pipe.finish();
  ASSERT_EQ(results.size(), snapshots.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, snapshots[i].name);
    const auto reference = core::compress_serial(
        snapshots[i].values, cfg.params, snapshots[i].value_range());
    EXPECT_EQ(results[i].stream, reference) << i;
  }
}

TEST(AsyncPipeline, WorkerErrorStillPropagatesWithStreams) {
  pipeline::Config cfg;
  cfg.workers = 2;
  cfg.device_streams = 2;
  cfg.params.mode = core::ErrorMode::kAbs;
  cfg.params.error_bound = 1e-30;  // quantization overflow on any data
  pipeline::InlinePipeline pipe(cfg);
  try {
    for (int i = 0; i < 4; ++i) {
      pipe.submit(data::make_field(data::Suite::kCesmAtm, 0, 0.01));
    }
  } catch (const format_error&) {
    return;  // submit may already observe the closed pipeline
  }
  EXPECT_THROW((void)pipe.finish(), format_error);
}

}  // namespace
}  // namespace szp::engine
