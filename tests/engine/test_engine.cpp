// Engine and backend tests: every backend must produce byte-identical
// streams and identical reconstructions on every registry dataset, for
// both stream format versions; the pools must actually reuse their
// entries; the thread pool must propagate task exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"
#include "szp/engine/engine.hpp"
#include "szp/gpusim/pool.hpp"

namespace szp::engine {
namespace {

std::vector<data::Field> sample_fields() {
  std::vector<data::Field> fields;
  for (const auto& info : data::all_suites()) {
    fields.push_back(data::make_field(info.id, 0, 0.02));
  }
  return fields;
}

core::Params rel_params(unsigned group_blocks = core::kChecksumGroupBlocks) {
  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = 1e-3;
  p.checksum_group_blocks = group_blocks;
  return p;
}

// ------------------------------------------------ backend equivalence ----

class BackendEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(BackendEquivalence, StreamsByteIdenticalAcrossBackends) {
  // GetParam() = checksum group size; 0 exercises format v1 (no footer).
  const core::Params p = rel_params(GetParam());
  Engine serial({.params = p, .backend = BackendKind::kSerial});
  Engine parallel(
      {.params = p, .backend = BackendKind::kParallelHost, .threads = 4});
  Engine device({.params = p, .backend = BackendKind::kDevice});

  for (const auto& field : sample_fields()) {
    const double range = field.value_range();
    const auto ref = serial.compress(field.values, range);
    const auto par = parallel.compress(field.values, range);
    const auto dev = device.compress(field.values, range);
    EXPECT_EQ(ref.bytes, par.bytes) << field.name;
    EXPECT_EQ(ref.bytes, dev.bytes) << field.name;
    // And identical to the legacy serial entry point.
    EXPECT_EQ(ref.bytes, core::compress_serial(field.values, p, range))
        << field.name;

    const auto rec_ref = serial.decompress(ref.bytes);
    const auto rec_par = parallel.decompress(ref.bytes);
    const auto rec_dev = device.decompress(ref.bytes);
    EXPECT_EQ(rec_ref, rec_par) << field.name;
    EXPECT_EQ(rec_ref, rec_dev) << field.name;
  }
}

INSTANTIATE_TEST_SUITE_P(FormatVersions, BackendEquivalence,
                         ::testing::Values(0u, 16u,
                                           core::kChecksumGroupBlocks));

TEST(BackendEquivalenceF64, StreamsByteIdentical) {
  const core::Params p = rel_params();
  Engine serial({.params = p, .backend = BackendKind::kSerial});
  Engine parallel(
      {.params = p, .backend = BackendKind::kParallelHost, .threads = 4});
  Engine device({.params = p, .backend = BackendKind::kDevice});

  const auto field = data::make_field(data::Suite::kNyx, 1, 0.05);
  std::vector<double> values(field.values.begin(), field.values.end());
  const double range = field.value_range();

  const auto ref = serial.compress_f64(values, range);
  const auto par = parallel.compress_f64(values, range);
  const auto dev = device.compress_f64(values, range);
  EXPECT_EQ(ref.bytes, par.bytes);
  EXPECT_EQ(ref.bytes, dev.bytes);

  const auto rec_ref = serial.decompress_f64(ref.bytes);
  EXPECT_EQ(rec_ref, parallel.decompress_f64(ref.bytes));
  EXPECT_EQ(rec_ref, device.decompress_f64(ref.bytes));
}

TEST(BackendEquivalence, ManyThreadCountsAgree) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 2, 0.05);
  const core::Params p = rel_params();
  const double range = field.value_range();
  const auto ref = core::compress_serial(field.values, p, range);
  for (const unsigned threads : {2u, 3u, 5u, 8u}) {
    Engine eng({.params = p,
                .backend = BackendKind::kParallelHost,
                .threads = threads});
    EXPECT_EQ(eng.compress(field.values, range).bytes, ref)
        << threads << " threads";
    EXPECT_EQ(eng.decompress(ref), core::decompress_serial(ref))
        << threads << " threads";
  }
}

TEST(BackendEquivalence, OutlierAndLorenzo2Configs) {
  // Non-default codec configs flow through the shared host codec too.
  const auto field = data::make_field(data::Suite::kHacc, 1, 0.03);
  const double range = field.value_range();
  for (const bool outlier : {false, true}) {
    core::Params p = rel_params();
    p.outlier_mode = outlier;
    p.lorenzo_layers = outlier ? 1 : 2;
    const auto ref = core::compress_serial(field.values, p, range);
    Engine par(
        {.params = p, .backend = BackendKind::kParallelHost, .threads = 4});
    EXPECT_EQ(par.compress(field.values, range).bytes, ref);
    EXPECT_EQ(par.decompress(ref), core::decompress_serial(ref));
  }
}

// --------------------------------------------------------- batch API ----

TEST(EngineBatch, MatchesPerFieldCompression) {
  const core::Params p = rel_params();
  Engine eng(
      {.params = p, .backend = BackendKind::kParallelHost, .threads = 4});
  const auto fields = sample_fields();
  std::vector<std::span<const float>> views;
  views.reserve(fields.size());
  for (const auto& f : fields) views.push_back(f.values);

  const auto batch = eng.compress_batch(views);
  ASSERT_EQ(batch.size(), fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(batch[i].bytes,
              core::compress_serial(fields[i].values, p,
                                    fields[i].value_range()))
        << fields[i].name;
  }
}

TEST(EngineBatch, SharedValueRangeAppliesToEveryField) {
  const core::Params p = rel_params();
  Engine eng({.params = p, .backend = BackendKind::kSerial});
  const auto fields = sample_fields();
  std::vector<std::span<const float>> views;
  for (const auto& f : fields) views.push_back(f.values);

  const double shared = 42.5;
  const auto batch = eng.compress_batch(views, shared);
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(batch[i].bytes,
              core::compress_serial(fields[i].values, p, shared))
        << fields[i].name;
  }
}

// ------------------------------------------------------ device engine ----

TEST(EngineDevice, RoundtripMatchesHostPath) {
  const core::Params p = rel_params();
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.05);
  const double range = field.value_range();
  Engine eng({.params = p, .backend = BackendKind::kDevice});
  auto rt = eng.device_roundtrip(field.values, range, /*keep_stream=*/true);
  EXPECT_EQ(rt.stream, core::compress_serial(field.values, p, range));
  EXPECT_EQ(rt.compressed_bytes, rt.stream.size());
  EXPECT_EQ(rt.reconstruction, core::decompress_serial(rt.stream));
  EXPECT_GT(rt.comp_trace.kernel_launches, 0u);
  EXPECT_GT(rt.decomp_trace.kernel_launches, 0u);
  EXPECT_DOUBLE_EQ(rt.eb_abs, core::resolve_eb(p, range));
}

TEST(EngineDevice, DeviceAccessorThrowsOnHostBackends) {
  Engine host({.params = rel_params(), .backend = BackendKind::kSerial});
  EXPECT_THROW((void)host.device(), format_error);
  Engine dev({.params = rel_params(), .backend = BackendKind::kDevice});
  EXPECT_NO_THROW((void)dev.device());
  EXPECT_THROW((void)host.device_roundtrip(std::vector<float>(64, 1.f)),
               format_error);
}

TEST(EngineDevice, PrecisionMismatchRejected) {
  Engine eng({.params = rel_params(), .backend = BackendKind::kDevice});
  const std::vector<float> data(256, 1.5f);
  const auto f32_stream = eng.compress(data, 10.0);
  EXPECT_THROW((void)eng.decompress_f64(f32_stream.bytes), format_error);
}

// ------------------------------------------------------- buffer pool ----

TEST(BufferPool, ReusesIdleBuffers) {
  gpusim::Device dev;
  gpusim::BufferPool<float> pool(dev);
  { auto a = pool.acquire(1024); }
  { auto b = pool.acquire(512); }   // fits in the idle 1024 entry
  { auto c = pool.acquire(1024); }
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 2u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPool, GrowsIdleEntryInsteadOfLeaking) {
  gpusim::Device dev;
  gpusim::BufferPool<float> pool(dev);
  { auto a = pool.acquire(100); }
  { auto b = pool.acquire(5000); }  // idle entry too small: grown in place
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.allocations(), 2u);
  { auto c = pool.acquire(5000); }
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, ConcurrentLeases) {
  gpusim::Device dev;
  gpusim::BufferPool<float> pool(dev);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        auto lease = pool.acquire(64 + (t * 37 + i) % 512);
        auto& buf = lease.buffer();
        if (buf.size() < 64) failed = true;
        buf[0] = static_cast<float>(t);
        if (buf[0] != static_cast<float>(t)) failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed);
  // At most one entry per concurrently-live lease.
  EXPECT_LE(pool.size(), 8u);
  EXPECT_GT(pool.reuses(), 0u);
}

TEST(BufferPool, DevicePoolsReusedAcrossEngineCalls) {
  Engine eng({.params = rel_params(), .backend = BackendKind::kDevice});
  auto* backend = dynamic_cast<DeviceBackend*>(&eng.backend());
  ASSERT_NE(backend, nullptr);
  const auto field = data::make_field(data::Suite::kNyx, 0, 0.02);
  const double range = field.value_range();
  for (int i = 0; i < 4; ++i) {
    (void)eng.compress(field.values, range);
  }
  // First call allocates, later calls only reuse.
  EXPECT_GE(backend->byte_pool().reuses(), 3u);
  EXPECT_GE(backend->f32_pool().reuses(), 3u);
}

// ------------------------------------------------------ scratch pool ----

TEST(ScratchPool, HitsOnRepeatedShape) {
  ScratchPool pool;
  { auto a = pool.acquire(4096, 32); }
  { auto b = pool.acquire(4096, 32); }
  { auto c = pool.acquire(4096, 32); }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ScratchPool, ConcurrentLeasesGetDistinctArenas) {
  ScratchPool pool;
  auto a = pool.acquire(100, 32);
  auto b = pool.acquire(100, 32);
  EXPECT_NE(&a.scratch(), &b.scratch());
  EXPECT_EQ(pool.size(), 2u);
}

// ------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.run(counts.size(), [&](size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(64,
               [&](size_t i) {
                 if (i == 13) throw format_error("boom");
               }),
      format_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ran{0};
  pool.run(8, [&](size_t) { ran++; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(17, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

}  // namespace
}  // namespace szp::engine
