// Cross-codec integration: every codec on every suite through the harness,
// checking error bounds, throughput structure and relative behaviours the
// paper's evaluation depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "szp/harness/runner.hpp"
#include "szp/metrics/error.hpp"
#include "szp/baselines/vzfp/vzfp.hpp"
#include "szp/perfmodel/hardware.hpp"

namespace szp {
namespace {

using harness::CodecId;

class CodecOnSuite
    : public ::testing::TestWithParam<std::tuple<CodecId, data::Suite>> {};

TEST_P(CodecOnSuite, RunsAndRespectsBound) {
  const auto [codec, suite] = GetParam();
  const auto field = data::make_field(suite, 0, 0.02);
  harness::CodecSetting s;
  s.id = codec;
  s.rel = 1e-3;
  s.rate = 8;
  const auto r = harness::run_codec(s, field);
  ASSERT_EQ(r.reconstruction.size(), field.count());
  ASSERT_GT(r.compressed_bytes, 0u);
  for (const float v : r.reconstruction) ASSERT_TRUE(std::isfinite(v));

  if (codec != CodecId::kZfp) {
    // Error-bounded codecs must respect REL 1e-3 exactly.
    const auto stats = metrics::compare(field.values, r.reconstruction);
    EXPECT_LE(stats.max_rel_err, 1e-3 * (1 + 1e-9))
        << harness::codec_name(codec);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecOnSuite,
    ::testing::Combine(
        ::testing::Values(CodecId::kSzp, CodecId::kSz, CodecId::kSzx,
                          CodecId::kZfp),
        ::testing::Values(data::Suite::kHurricane, data::Suite::kNyx,
                          data::Suite::kQmcpack, data::Suite::kRtm,
                          data::Suite::kHacc, data::Suite::kCesmAtm)));

TEST(CrossCodec, SingleKernelCodecsHaveEqualKernelAndE2eThroughput) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.02);
  const perfmodel::CostModel model(perfmodel::a100());
  for (const auto codec : {CodecId::kSzp, CodecId::kZfp}) {
    harness::CodecSetting s;
    s.id = codec;
    const auto r = harness::run_codec(s, field);
    const auto t = harness::throughput_of(r, model);
    EXPECT_NEAR(t.e2e_comp_gbps, t.kernel_comp_gbps,
                t.kernel_comp_gbps * 0.02)
        << harness::codec_name(codec);
  }
}

TEST(CrossCodec, HybridCodecsCollapseEndToEnd) {
  // The paper's Fig. 13 vs 15 structure: cuSZ/cuSZx kernel throughput is
  // decent, but end-to-end drops by >10x; cuSZp does not.
  const auto field = data::make_field(data::Suite::kNyx, 0, 0.25);
  const perfmodel::CostModel model(perfmodel::a100());
  for (const auto codec : {CodecId::kSz, CodecId::kSzx}) {
    harness::CodecSetting s;
    s.id = codec;
    const auto r = harness::run_codec(s, field);
    const auto t = harness::throughput_of(r, model);
    EXPECT_GT(t.kernel_comp_gbps / t.e2e_comp_gbps, 10.0)
        << harness::codec_name(codec);
  }
  harness::CodecSetting s;
  s.id = CodecId::kSzp;
  const auto r = harness::run_codec(s, field);
  const auto t = harness::throughput_of(r, model);
  EXPECT_LT(t.kernel_comp_gbps / t.e2e_comp_gbps, 1.1);
}

TEST(CrossCodec, SzpEndToEndDominatesHybrids) {
  const auto field = data::make_field(data::Suite::kHurricane, 1, 0.05);
  const perfmodel::CostModel model(perfmodel::a100());
  auto e2e = [&](CodecId id) {
    harness::CodecSetting s;
    s.id = id;
    const auto r = harness::run_codec(s, field);
    return harness::throughput_of(r, model).e2e_comp_gbps;
  };
  const double szp = e2e(CodecId::kSzp);
  EXPECT_GT(szp / e2e(CodecId::kSz), 20.0);
  EXPECT_GT(szp / e2e(CodecId::kSzx), 10.0);
}

TEST(CrossCodec, TighterBoundsCostMoreBits) {
  const auto field = data::make_field(data::Suite::kQmcpack, 0, 0.05);
  for (const auto codec : {CodecId::kSzp, CodecId::kSz, CodecId::kSzx}) {
    double prev_cr = 1e30;
    for (const double rel : harness::rel_bounds()) {
      harness::CodecSetting s;
      s.id = codec;
      s.rel = rel;
      const auto r = harness::run_codec(s, field);
      EXPECT_LE(r.compression_ratio(), prev_cr * 1.001)
          << harness::codec_name(codec) << " rel=" << rel;
      prev_cr = r.compression_ratio();
    }
  }
}

TEST(CrossCodec, TighterBoundsImprovePsnr) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.05);
  for (const auto codec : harness::error_bounded_codecs()) {
    double prev_psnr = 0;
    for (const double rel : harness::rel_bounds()) {
      harness::CodecSetting s;
      s.id = codec;
      s.rel = rel;
      const auto r = harness::run_codec(s, field);
      const auto stats = metrics::compare(field.values, r.reconstruction);
      EXPECT_GE(stats.psnr, prev_psnr - 0.5) << harness::codec_name(codec);
      prev_psnr = stats.psnr;
    }
  }
}

TEST(CrossCodec, ZfpFixedRateBytesExactlyMatchShape) {
  // Fixed-rate: the compressed size is a pure function of shape and rate
  // (edge blocks are padded, so the per-*valid*-element bit rate can sit
  // slightly above the nominal rate on non-multiple-of-4 dims).
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.02);
  harness::CodecSetting s;
  s.id = CodecId::kZfp;
  s.rate = 8;
  const auto r1 = harness::run_codec(s, field);
  vzfp::Params p;
  p.rate = 8;
  EXPECT_EQ(r1.compressed_bytes,
            vzfp::compressed_bytes(harness::fuse_dims(field.dims, 3), p));
  EXPECT_GE(r1.bit_rate(), 8.0);
  EXPECT_LT(r1.bit_rate(), 11.0);
}

TEST(FuseDims, CollapsesLeadingAxes) {
  const data::Dims d4{{6, 29, 69, 69}};
  const data::Dims fused = harness::fuse_dims(d4, 3);
  EXPECT_EQ(fused.to_string(), "174x69x69");
  EXPECT_EQ(fused.count(), d4.count());
  EXPECT_EQ(harness::fuse_dims(d4, 4), d4);
  const data::Dims d1{{100}};
  EXPECT_EQ(harness::fuse_dims(d1, 3), d1);
}

TEST(Harness, RunResultAccounting) {
  const auto field = data::make_field(data::Suite::kHacc, 0, 0.02);
  harness::CodecSetting s;
  s.id = CodecId::kSzp;
  s.rel = 1e-2;
  const auto r = harness::run_codec(s, field);
  EXPECT_EQ(r.original_bytes, field.size_bytes());
  EXPECT_GT(r.eb_abs, 0);
  EXPECT_NEAR(r.bit_rate(),
              8.0 * static_cast<double>(r.compressed_bytes) /
                  static_cast<double>(field.count()),
              1e-9);
  EXPECT_GT(r.wall_comp_s, 0);
  EXPECT_GT(r.wall_decomp_s, 0);
}

}  // namespace
}  // namespace szp
