// InlinePipeline failure modes: worker exceptions must surface from
// finish(), back-pressure must actually block at max_queue (and wake up if
// the pipeline closes underneath the waiter), and a finished pipeline must
// reject reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"
#include "szp/pipeline/pipeline.hpp"

namespace szp::pipeline {
namespace {

Config tiny_config(unsigned workers) {
  Config c;
  c.workers = workers;
  c.params.error_bound = 1e-2;
  return c;
}

data::Field small_field(const std::string& name) {
  auto f = data::make_field(data::Suite::kHacc, 0, 0.01);
  f.name = name;
  return f;
}

TEST(PipelineFailure, WorkerExceptionPropagatesFromFinish) {
  Config cfg = tiny_config(2);
  cfg.params.mode = core::ErrorMode::kAbs;
  cfg.params.error_bound = 1e-30;  // quantization overflow on any data
  InlinePipeline pipe(cfg);
  bool submit_threw = false;
  try {
    for (int i = 0; i < 6; ++i) pipe.submit(small_field("s"));
  } catch (const format_error&) {
    submit_threw = true;  // pipeline already closed by the failing worker
  }
  if (!submit_threw) {
    EXPECT_THROW((void)pipe.finish(), format_error);
  } else {
    // finish() still reports the original worker error.
    EXPECT_THROW((void)pipe.finish(), format_error);
  }
}

TEST(PipelineFailure, FinishAfterFinishThrows) {
  InlinePipeline pipe(tiny_config(1));
  pipe.submit(small_field("a"));
  (void)pipe.finish();
  EXPECT_THROW((void)pipe.finish(), format_error);
}

TEST(PipelineFailure, SubmitAfterFinishThrows) {
  InlinePipeline pipe(tiny_config(1));
  (void)pipe.finish();
  EXPECT_THROW(pipe.submit(small_field("late")), format_error);
}

TEST(PipelineFailure, BackPressureBlocksAtMaxQueue) {
  // A pipeline whose single worker is wedged on a huge backlog item can't
  // drain; verify that submit #max_queue+1 actually blocks until space
  // frees, by timing a submitter thread against a gate.
  Config cfg = tiny_config(1);
  cfg.max_queue = 1;
  InlinePipeline pipe(cfg);

  // Occupy the worker and fill the queue.
  pipe.submit(small_field("w0"));
  pipe.submit(small_field("w1"));

  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    pipe.submit(small_field("w2"));  // must block while backlog == max_queue
    third_submitted = true;
  });
  // The worker drains the queue quickly here; all we can assert without
  // races is that the blocked submitter eventually gets through and every
  // snapshot is compressed in order.
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  const auto results = pipe.finish();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "w0");
  EXPECT_EQ(results[2].name, "w2");
}

TEST(PipelineFailure, BlockedSubmitterWakesWhenWorkerDies) {
  // One worker that will fail on the first job; a submitter blocked on
  // back-pressure must be released (with "pipeline: closed") rather than
  // deadlocking when the worker exits.
  Config cfg = tiny_config(1);
  cfg.max_queue = 1;
  cfg.params.mode = core::ErrorMode::kAbs;
  cfg.params.error_bound = 1e-30;
  InlinePipeline pipe(cfg);

  std::atomic<int> threw{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      try {
        for (int i = 0; i < 4; ++i) {
          pipe.submit(data::make_field(data::Suite::kCesmAtm, 0, 0.01));
        }
      } catch (const format_error&) {
        threw++;
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_THROW((void)pipe.finish(), format_error);
}

TEST(PipelineBackends, HostBackendsProduceIdenticalStreams) {
  const auto snapshots = std::vector<data::Field>{
      data::make_field(data::Suite::kCesmAtm, 0, 0.02),
      data::make_field(data::Suite::kNyx, 0, 0.02),
  };
  auto run = [&](engine::BackendKind kind) {
    Config cfg = tiny_config(2);
    cfg.backend = kind;
    cfg.threads = 4;
    InlinePipeline pipe(cfg);
    for (const auto& s : snapshots) pipe.submit(s);
    return pipe.finish();
  };
  const auto dev = run(engine::BackendKind::kDevice);
  const auto ser = run(engine::BackendKind::kSerial);
  const auto par = run(engine::BackendKind::kParallelHost);
  ASSERT_EQ(dev.size(), snapshots.size());
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(dev[i].stream, ser[i].stream);
    EXPECT_EQ(dev[i].stream, par[i].stream);
    // Only the device backend reports kernel traffic.
    EXPECT_GT(dev[i].comp_trace.kernel_launches, 0u);
    EXPECT_EQ(ser[i].comp_trace.kernel_launches, 0u);
  }
}

TEST(PipelineValueRange, PrecomputedRangeSkipsRescanAndMatches) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.02);
  const double range = field.value_range();

  Config cfg = tiny_config(1);
  InlinePipeline pipe(cfg);
  pipe.submit(field, range);
  pipe.submit(field);  // worker derives the range itself
  const auto results = pipe.finish();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, results[1].stream);
  EXPECT_EQ(results[0].stream,
            core::compress_serial(field.values, cfg.params, range));

  // A deliberately different range must change the resolved bound (proof
  // that the supplied range is actually used, not recomputed).
  InlinePipeline pipe2(tiny_config(1));
  pipe2.submit(field, range * 1000);
  const auto scaled = pipe2.finish();
  EXPECT_NE(scaled[0].stream, results[0].stream);
}

}  // namespace
}  // namespace szp::pipeline
