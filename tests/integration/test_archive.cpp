// Archive container: multi-field roundtrip, random access, file IO,
// malformed-blob handling.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "szp/archive/archive.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"

namespace szp::archive {
namespace {

core::Params rel_params(double rel) {
  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = rel;
  return p;
}

TEST(Archive, MultiFieldRoundtrip) {
  const auto fields = data::make_suite(data::Suite::kHurricane, 0.02);
  Writer w(rel_params(1e-3));
  for (const auto& f : fields) w.add(f);
  EXPECT_EQ(w.num_fields(), fields.size());
  const auto blob = std::move(w).finish();

  Reader r(blob);
  ASSERT_EQ(r.entries().size(), fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(r.entries()[i].name, fields[i].name);
    EXPECT_EQ(r.entries()[i].dims, fields[i].dims);
    EXPECT_GT(r.entries()[i].compression_ratio(), 1.0);
    const auto out = r.extract(i);
    const auto stats = metrics::compare(fields[i].values, out.values);
    EXPECT_LE(stats.max_rel_err, 1e-3 * (1 + 1e-9)) << fields[i].name;
  }
}

TEST(Archive, ExtractByName) {
  Writer w(rel_params(1e-2));
  w.add(data::make_field(data::Suite::kNyx, 0, 0.01));
  w.add(data::make_field(data::Suite::kNyx, 2, 0.01));
  Reader r(std::move(w).finish());
  EXPECT_EQ(r.extract("velocity_x").name, "velocity_x");
  EXPECT_THROW((void)r.extract("nope"), format_error);
}

TEST(Archive, F64RatioUsesEightByteElements) {
  // Regression: compression_ratio() hardcoded count()*4, halving the
  // reported ratio of every f64 entry.
  std::vector<double> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.01) * 40.0;
  }
  Writer w(rel_params(1e-4));
  w.add_f64("pressure", data::Dims{{64, 64}}, values);
  w.add(data::make_field(data::Suite::kNyx, 0, 0.01));
  Reader r(std::move(w).finish());

  const size_t i = 0;
  ASSERT_TRUE(r.entries()[i].f64);
  EXPECT_EQ(r.entries()[i].element_bytes(), 8u);
  const auto& e = r.entries()[i];
  const double expected = static_cast<double>(e.dims.count() * 8) /
                          static_cast<double>(e.stream_bytes);
  EXPECT_DOUBLE_EQ(e.compression_ratio(), expected);

  const auto out = r.extract_f64(i);
  ASSERT_EQ(out.size(), values.size());
  for (size_t k = 0; k < out.size(); ++k) {
    ASSERT_NEAR(out[k], values[k], 80.0 * 1e-4 * (1 + 1e-9));
  }
  // f32 entries are unaffected and dtype mismatches are rejected.
  EXPECT_FALSE(r.entries()[1].f64);
  EXPECT_EQ(r.entries()[1].element_bytes(), 4u);
  EXPECT_THROW((void)r.extract(i), format_error);
  EXPECT_THROW((void)r.extract_f64(1), format_error);
}

TEST(Archive, DuplicateNameRejected) {
  Writer w(rel_params(1e-2));
  const auto f = data::make_field(data::Suite::kHacc, 0, 0.01);
  w.add(f);
  EXPECT_THROW(w.add(f), format_error);
}

TEST(Archive, RangeExtractionMatchesFull) {
  Writer w(rel_params(1e-3));
  const auto f = data::make_field(data::Suite::kCesmAtm, 0, 0.05);
  w.add(f);
  Reader r(std::move(w).finish());
  const auto full = r.extract(0);
  const auto part = r.extract_range(0, 100, 1100);
  ASSERT_EQ(part.size(), 1000u);
  for (size_t i = 0; i < part.size(); ++i) {
    ASSERT_EQ(part[i], full.values[100 + i]);
  }
}

TEST(Archive, FileRoundtrip) {
  Writer w(rel_params(1e-2));
  w.add(data::make_field(data::Suite::kQmcpack, 0, 0.02));
  const auto blob = std::move(w).finish();
  const std::string path = "/tmp/szp_test.szpa";
  save_archive(path, blob);
  const Reader r = load_archive(path);
  EXPECT_EQ(r.entries().size(), 1u);
  EXPECT_EQ(r.extract(0).count(), r.entries()[0].dims.count());
  std::filesystem::remove(path);
}

TEST(Archive, MalformedBlobsThrow) {
  EXPECT_THROW((void)Reader(std::vector<byte_t>{1, 2, 3}), format_error);
  Writer w(rel_params(1e-2));
  w.add(data::make_field(data::Suite::kHacc, 1, 0.01));
  auto blob = std::move(w).finish();
  blob[0] ^= 0xFF;  // magic
  EXPECT_THROW((void)Reader(blob), format_error);
  blob[0] ^= 0xFF;
  blob.resize(blob.size() / 2);  // truncated streams
  EXPECT_THROW((void)Reader(std::move(blob)), format_error);
}

TEST(Archive, EmptyArchive) {
  Writer w(rel_params(1e-2));
  const Reader r(std::move(w).finish());
  EXPECT_TRUE(r.entries().empty());
  EXPECT_THROW((void)r.extract(size_t{0}), format_error);
}

}  // namespace
}  // namespace szp::archive
