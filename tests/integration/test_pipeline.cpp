// Inline pipeline: ordering, equality with direct compression, back-
// pressure, error propagation.
#include <gtest/gtest.h>

#include "szp/core/serial.hpp"
#include "szp/data/registry.hpp"
#include "szp/pipeline/pipeline.hpp"

namespace szp::pipeline {
namespace {

Config small_config(unsigned workers) {
  Config c;
  c.workers = workers;
  c.params.error_bound = 1e-2;
  return c;
}

TEST(Pipeline, ResultsInSubmissionOrderAndByteExact) {
  Config cfg = small_config(3);
  InlinePipeline pipe(cfg);
  std::vector<data::Field> snapshots;
  for (const size_t step : {300u, 900u, 1500u, 2100u, 2700u, 3300u}) {
    snapshots.push_back(data::make_rtm_snapshot(step, 0.03));
    pipe.submit(snapshots.back());
  }
  const auto results = pipe.finish();
  ASSERT_EQ(results.size(), snapshots.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, snapshots[i].name);
    // Identical to the serial reference compression of the same field.
    const auto reference = core::compress_serial(
        snapshots[i].values, cfg.params, snapshots[i].value_range());
    EXPECT_EQ(results[i].stream, reference) << i;
    EXPECT_GT(results[i].compression_ratio(), 1.0);
  }
}

TEST(Pipeline, SingleWorkerAndManyWorkersAgree) {
  std::vector<data::Field> snapshots;
  for (size_t f = 0; f < 4; ++f) {
    snapshots.push_back(data::make_field(data::Suite::kCesmAtm, f, 0.02));
  }
  auto run = [&](unsigned workers) {
    InlinePipeline pipe(small_config(workers));
    for (const auto& s : snapshots) pipe.submit(s);
    return pipe.finish();
  };
  const auto one = run(1);
  const auto many = run(4);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].stream, many[i].stream);
  }
}

TEST(Pipeline, BackPressureBoundsQueue) {
  Config cfg = small_config(1);
  cfg.max_queue = 2;
  InlinePipeline pipe(cfg);
  // Submissions beyond the backlog block until the worker drains; the
  // test just checks this completes (no deadlock) and preserves order.
  for (int i = 0; i < 10; ++i) {
    auto f = data::make_field(data::Suite::kHacc, 0, 0.01);
    f.name = "snap" + std::to_string(i);
    pipe.submit(std::move(f));
  }
  const auto results = pipe.finish();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[i].name, "snap" + std::to_string(i));
  }
}

TEST(Pipeline, SubmitAfterFinishThrows) {
  InlinePipeline pipe(small_config(1));
  pipe.submit(data::make_field(data::Suite::kHacc, 0, 0.005));
  (void)pipe.finish();
  EXPECT_THROW(pipe.submit(data::make_field(data::Suite::kHacc, 0, 0.005)),
               format_error);
}

TEST(Pipeline, PropagatesWorkerErrors) {
  Config cfg = small_config(2);
  cfg.params.mode = core::ErrorMode::kAbs;
  cfg.params.error_bound = 1e-30;  // quantization overflow on any data
  InlinePipeline pipe(cfg);
  try {
    for (int i = 0; i < 4; ++i) {
      auto f = data::make_field(data::Suite::kCesmAtm, 0, 0.01);
      f.name = "s" + std::to_string(i);
      pipe.submit(std::move(f));
    }
  } catch (const format_error&) {
    // submit may already observe the closed pipeline — acceptable.
    return;
  }
  EXPECT_THROW((void)pipe.finish(), format_error);
}

TEST(Pipeline, EmptyFinish) {
  InlinePipeline pipe(small_config(2));
  EXPECT_TRUE(pipe.finish().empty());
}

}  // namespace
}  // namespace szp::pipeline
