// Harness aggregation helpers and a smoke test of the CLI tools (the
// artifact workflow) driven through std::system.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "szp/harness/runner.hpp"
#include "szp/perfmodel/hardware.hpp"
#include "szp/util/mini_json.hpp"

namespace szp {
namespace {

TEST(HarnessRunner, SweepCodecAveragesAreSane) {
  const perfmodel::CostModel model(perfmodel::a100());
  std::vector<data::Field> fields;
  fields.push_back(data::make_field(data::Suite::kCesmAtm, 0, 0.02));
  const auto st = harness::sweep_codec(fields, harness::CodecId::kSzp, model);
  EXPECT_GT(st.avg.e2e_comp_gbps, 0);
  EXPECT_GT(st.avg.e2e_decomp_gbps, 0);
  EXPECT_GT(st.avg_compression_ratio, 1.0);
  // Single-kernel codec: kernel == e2e.
  EXPECT_NEAR(st.avg.e2e_comp_gbps, st.avg.kernel_comp_gbps,
              st.avg.kernel_comp_gbps * 0.02);
}

TEST(HarnessRunner, CrStatsOrdering) {
  const auto fields = data::make_suite(data::Suite::kHacc, 0.02);
  const auto s =
      harness::cr_over_fields(fields, harness::CodecId::kSzp, 1e-2);
  EXPECT_LE(s.min, s.avg);
  EXPECT_LE(s.avg, s.max);
  EXPECT_GT(s.min, 0);
}

TEST(HarnessRunner, SuiteListMatchesPaperOrder) {
  const auto& ids = harness::all_suite_ids();
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(data::suite_info(ids.front()).name, "Hurricane");
  EXPECT_EQ(data::suite_info(ids.back()).name, "CESM-ATM");
}

TEST(HarnessRunner, RelBoundsAndRatesMatchPaper) {
  EXPECT_EQ(harness::rel_bounds(),
            (std::vector<double>{1e-1, 1e-2, 1e-3, 1e-4}));
  EXPECT_EQ(harness::fixed_rates(), (std::vector<double>{4, 8, 16, 24}));
}

class CliSmoke : public ::testing::Test {
 protected:
  // ctest runs tests from build/tests; direct invocation often happens
  // from the repo root — try both layouts.
  static std::string tool(const std::string& name) {
    for (const char* prefix : {"build/tools/", "../tools/", "tools/"}) {
      const std::string candidate = prefix + name;
      if (std::filesystem::exists(candidate)) return candidate;
    }
    return {};
  }
  static bool tool_exists(const std::string& name) {
    return !tool(name).empty();
  }
};

TEST_F(CliSmoke, SzpCliDemoWorkflow) {
  if (!tool_exists("szp_cli")) GTEST_SKIP() << "tools not built here";
  // Per-process dir: the devcheck variant of this binary runs the same
  // test and ctest may schedule both concurrently.
  const std::string dir =
      "/tmp/szp_cli_smoke." + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const std::string cmd = "cd " + dir + " && " +
                          std::filesystem::absolute(tool("szp_cli")).string() +
                          " --demo CESM-ATM 1e-3 > cli.log 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/CESM-ATM_CLDHGH.szp.cmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/CESM-ATM_CLDHGH.szp.dec"));
  std::ifstream log(dir + "/cli.log");
  const std::string contents((std::istreambuf_iterator<char>(log)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("Pass error check!"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(CliSmoke, CompareAndSsimAndPlot) {
  if (!tool_exists("compare_data")) GTEST_SKIP() << "tools not built here";
  const std::string dir =
      "/tmp/szp_tools_smoke." + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.05);
  data::save_f32(dir + "/a.f32", field);
  data::save_f32(dir + "/b.f32", field);

  auto run = [&](const std::string& c) {
    return std::system((c + " > /dev/null 2>&1").c_str());
  };
  const auto abs = [&](const std::string& t) {
    return std::filesystem::absolute(tool(t)).string();
  };
  EXPECT_EQ(run(abs("compare_data") + " " + dir + "/a.f32 " + dir + "/b.f32"),
            0);
  EXPECT_EQ(run(abs("calculate_ssim") + " " + dir + "/a.f32 " + dir +
                "/b.f32 " + std::to_string(field.dims[0]) + " " +
                std::to_string(field.dims[1])),
            0);
  EXPECT_EQ(run(abs("plot_slice") + " " + dir + "/a.f32 " +
                std::to_string(field.dims[0]) + " " +
                std::to_string(field.dims[1]) + " 0 " + dir + "/s.pgm"),
            0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/s.pgm"));
  std::filesystem::remove_all(dir);
}

// Regression: `--metrics-json -` must keep stdout pure JSON even with
// diagnostics forced on (SZP_LOG=debug + telemetry enabled) — every
// human-readable line belongs on stderr. A single interleaved progress
// line would break any pipeline parsing the scrape.
TEST_F(CliSmoke, MetricsJsonOnStdoutStaysParseableWithDiagnosticsOn) {
  if (!tool_exists("szp_cli")) GTEST_SKIP() << "tools not built here";
  const std::string dir =
      "/tmp/szp_cli_stdout_purity." + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const std::string cmd =
      "cd " + dir + " && SZP_LOG=debug SZP_TELEMETRY=1 " +
      std::filesystem::absolute(tool("szp_cli")).string() +
      " --demo CESM-ATM 1e-3 --stats --metrics-json - > out.json 2> err.txt";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  std::ifstream out(dir + "/out.json");
  const std::string json((std::istreambuf_iterator<char>(out)),
                         std::istreambuf_iterator<char>());
  ASSERT_FALSE(json.empty());
  // stdout is exactly one strict-JSON document.
  EXPECT_NO_THROW((void)util::JsonParser(json).parse())
      << json.substr(0, 400);

  // The diagnostics did happen — they just went to stderr.
  std::ifstream err(dir + "/err.txt");
  const std::string diag((std::istreambuf_iterator<char>(err)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(diag.find("Pass error check!"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace szp
