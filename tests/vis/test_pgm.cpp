// PGM rendering: file structure, normalization, diff maps.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "szp/vis/pgm.hpp"

namespace szp::vis {
namespace {

data::Slice2D make_slice(size_t h, size_t w) {
  data::Slice2D s;
  s.height = h;
  s.width = w;
  s.values.resize(h * w);
  for (size_t i = 0; i < s.values.size(); ++i) {
    s.values[i] = static_cast<float>(i);
  }
  return s;
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(Pgm, WritesValidHeaderAndSize) {
  const auto s = make_slice(5, 7);
  const std::string path = "/tmp/szp_test.pgm";
  write_pgm(path, s);
  const auto bytes = read_all(path);
  ASSERT_GT(bytes.size(), 10u);
  EXPECT_EQ(bytes[0], 'P');
  EXPECT_EQ(bytes[1], '5');
  const std::string content(bytes.begin(), bytes.end());
  EXPECT_NE(content.find("7 5"), std::string::npos);
  // Header + exactly h*w payload bytes.
  const size_t header_end = content.find("255\n") + 4;
  EXPECT_EQ(bytes.size() - header_end, 35u);
  std::filesystem::remove(path);
}

TEST(Pgm, NormalizationSpansFullRange) {
  const auto s = make_slice(4, 8);
  const std::string path = "/tmp/szp_norm.pgm";
  write_pgm(path, s);
  const auto bytes = read_all(path);
  const std::string content(bytes.begin(), bytes.end());
  const size_t off = content.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(bytes[off]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(bytes.back()), 255u);
  std::filesystem::remove(path);
}

TEST(Pgm, DiffMapZeroForIdentical) {
  const auto s = make_slice(4, 4);
  const std::string path = "/tmp/szp_diff.pgm";
  write_diff_pgm(path, s, s, 100.0);
  const auto bytes = read_all(path);
  const std::string content(bytes.begin(), bytes.end());
  const size_t off = content.find("255\n") + 4;
  for (size_t i = off; i < bytes.size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), 0u);
  }
  std::filesystem::remove(path);
}

TEST(Pgm, DiffMapSizeMismatchThrows) {
  const auto a = make_slice(4, 4);
  const auto b = make_slice(4, 5);
  EXPECT_THROW(write_diff_pgm("/tmp/x.pgm", a, b, 1.0), format_error);
}

TEST(Pgm, MeanAbsDiff) {
  auto a = make_slice(2, 2);
  auto b = a;
  b.values[0] += 4.0f;
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, a), 0.0);
}

TEST(Pgm, UnwritablePathThrows) {
  const auto s = make_slice(2, 2);
  EXPECT_THROW(write_pgm("/nonexistent_dir/x.pgm", s), format_error);
}

}  // namespace
}  // namespace szp::vis
