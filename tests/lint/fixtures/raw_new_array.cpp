// Fixture (rule: raw-new-array). The scalar new below must NOT be
// reported; only the array form loses its size.
namespace szp::core {
void fixture(unsigned n) {
  int* arr = new int[n];
  delete[] arr;
  int* one = new int(7);
  delete one;
}
}  // namespace szp::core
