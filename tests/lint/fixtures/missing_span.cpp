// Fixture (rule: missing-span). Linted as if it were
// src/szp/engine/engine.cpp: every public Engine entry point is defined
// here without opening an obs::Span.
namespace szp::engine {
struct Buf {};
struct Engine {};

Buf Engine::compress(const float* d, unsigned long n) { return {}; }
Buf Engine::compress_f64(const double* d, unsigned long n) { return {}; }
void Engine::decompress(const Buf& b, float* out) {}
void Engine::decompress_f64(const Buf& b, double* out) {}
Buf Engine::compress_batch(const float* d, unsigned long n) { return {}; }

}  // namespace szp::engine
