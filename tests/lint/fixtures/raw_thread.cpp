// Fixture (rule: raw-thread). Spawning a std::thread outside the
// runtime whitelist; the hardware_concurrency() query below is exempt
// and must NOT be reported.
#include <thread>

namespace szp::core {
void fixture() {
  std::thread t([] {});
  t.join();
  const unsigned n = std::thread::hardware_concurrency();
  (void)n;
}
}  // namespace szp::core
