// Fixture (rule: assert-decode). Linted as if it lived in src/szp/robust/:
// assert() on a decode path vanishes in release builds. The static_assert
// must NOT be reported.
#include <cassert>

namespace szp::robust {
static_assert(sizeof(unsigned) >= 4, "fixture");
void parse(const unsigned char* p, unsigned long n) {
  assert(n >= 8);
  (void)p;
}
}  // namespace szp::robust
