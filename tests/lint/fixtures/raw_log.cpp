// Fixture (rule: raw-log). Raw stream/printf output in library code;
// the snprintf below formats into a caller buffer and must NOT be
// reported.
#include <cstdio>
#include <iostream>

namespace szp::core {
void fixture() {
  std::printf("hello\n");
  std::cerr << "diagnostic\n";
  char buf[8];
  std::snprintf(buf, sizeof buf, "x");
  (void)buf;
}
}  // namespace szp::core
