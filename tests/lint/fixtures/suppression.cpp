// Fixture (suppression mechanics). The first call carries an allow()
// with a reason and must be reported as suppressed; the second allow()
// has no reason and must NOT be honored.
#include <cstdlib>

namespace szp::core {
// szp-lint: allow(banned-fn) fixture exercising a valid suppression
int suppressed_call(const char* s) { return std::atoi(s); }

int unsuppressed_call(const char* s) {
  return std::atoi(s);  // szp-lint: allow(banned-fn)
}
}  // namespace szp::core
