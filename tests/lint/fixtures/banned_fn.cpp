// Fixture (rule: banned-fn). std::atoi has no error reporting; the
// snprintf call must NOT be reported (only sprintf is banned).
#include <cstdio>
#include <cstdlib>

namespace szp::core {
int fixture(const char* s, char* buf) {
  std::snprintf(buf, 8, "%d", 1);
  return std::atoi(s);
}
}  // namespace szp::core
