// Fixture (rule: tsa-escape). An analysis escape without the mandatory
// `tsa-escape: <reason>` comment.
#include "szp/util/thread_annotations.hpp"

namespace szp::core {
void fixture_fast_path() SZP_NO_THREAD_SAFETY_ANALYSIS;
}  // namespace szp::core
