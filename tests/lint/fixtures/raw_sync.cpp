// Fixture (rule: raw-sync). A raw std::mutex outside
// thread_annotations.hpp is invisible to -Wthread-safety.
#include <mutex>

namespace szp::core {
std::mutex fixture_mutex;
}  // namespace szp::core
