// Fixture (rule: layering). Linted as if it lived in src/szp/obs/: the
// obs module may depend only on util, so an engine include is a DAG
// violation.
#include "szp/engine/engine.hpp"

namespace szp::obs {
void fixture() {}
}  // namespace szp::obs
