// szp_lint self-tests: every fixture under tests/lint/fixtures/ triggers
// exactly its rule, and the real tree (src/ + tools/) lints clean.
//
// Fixtures are read from disk and fed to lint_file() under a synthetic
// path, because module and whitelist decisions key off "src/szp/<module>/"
// path shapes the fixture tree cannot have.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

using szp::lint::Finding;
using szp::lint::Result;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SZP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result lint_fixture(const std::string& name,
                    const std::string& synthetic_path) {
  Result r;
  szp::lint::lint_file(synthetic_path, read_fixture(name), r);
  return r;
}

Result lint_text(const std::string& synthetic_path, const std::string& text) {
  Result r;
  szp::lint::lint_file(synthetic_path, text, r);
  return r;
}

std::set<std::string> rules_of(const Result& r) {
  std::set<std::string> out;
  for (const Finding& f : r.findings) out.insert(f.rule);
  return out;
}

}  // namespace

TEST(LintFixtures, LayeringViolationReported) {
  const Result r =
      lint_fixture("layering.cpp", "src/szp/obs/fixture_layering.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layering");
  EXPECT_EQ(r.findings[0].line, 4);
}

TEST(LintFixtures, LayeringAllowedEdgeIsClean) {
  // gpusim -> obs is in the table.
  const Result r = lint_text("src/szp/gpusim/ok.cpp",
                             "#include \"szp/obs/tracer.hpp\"\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFixtures, LayeringHeaderRestrictionEnforced) {
  // core -> robust is legal only through szp/robust/status.hpp.
  const Result ok = lint_text("src/szp/core/ok.cpp",
                              "#include \"szp/robust/status.hpp\"\n");
  EXPECT_TRUE(ok.findings.empty());
  const Result bad = lint_text("src/szp/core/bad.cpp",
                               "#include \"szp/robust/decode.hpp\"\n");
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].rule, "layering");
}

TEST(LintFixtures, RawSyncReported) {
  const Result r =
      lint_fixture("raw_sync.cpp", "src/szp/core/fixture_raw_sync.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-sync");
  EXPECT_EQ(r.findings[0].line, 6);
}

TEST(LintFixtures, RawSyncWhitelistedInWrapperHeader) {
  const Result r = lint_text("src/szp/util/thread_annotations.hpp",
                             "std::mutex mu_;\nstd::condition_variable cv_;\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFixtures, RawThreadReportedButQueryExempt) {
  const Result r =
      lint_fixture("raw_thread.cpp", "src/szp/core/fixture_raw_thread.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-thread");
  EXPECT_EQ(r.findings[0].line, 8);  // hardware_concurrency() not reported
}

TEST(LintFixtures, RawNewArrayReportedScalarNewExempt) {
  const Result r = lint_fixture("raw_new_array.cpp",
                                "src/szp/core/fixture_raw_new_array.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-new-array");
  EXPECT_EQ(r.findings[0].line, 5);
}

TEST(LintFixtures, MissingSpanReportedForEveryEntryPoint) {
  const Result r =
      lint_fixture("missing_span.cpp", "src/szp/engine/engine.cpp");
  ASSERT_EQ(r.findings.size(), 5u);
  for (const Finding& f : r.findings) EXPECT_EQ(f.rule, "missing-span");
}

TEST(LintFixtures, SpanPresentIsClean) {
  const std::string text =
      "namespace szp::engine {\n"
      "Buf Engine::compress(const float* d, unsigned long n) {\n"
      "  const obs::Span span(\"api\", \"compress\");\n"
      "  return {};\n"
      "}\n"
      "Buf Engine::compress_f64(const double* d, unsigned long n) {\n"
      "  const obs::Span span(\"api\", \"compress_f64\");\n"
      "  return {};\n"
      "}\n"
      "void Engine::decompress(const Buf& b, float* o) {\n"
      "  const obs::Span span(\"api\", \"decompress\");\n"
      "}\n"
      "void Engine::decompress_f64(const Buf& b, double* o) {\n"
      "  const obs::Span span(\"api\", \"decompress_f64\");\n"
      "}\n"
      "Buf Engine::compress_batch(const float* d, unsigned long n) {\n"
      "  const obs::Span span(\"api\", \"compress_batch\");\n"
      "  return {};\n"
      "}\n"
      "}\n";
  const Result r = lint_text("src/szp/engine/engine.cpp", text);
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].message;
}

TEST(LintFixtures, AssertOnDecodePathReported) {
  const Result r =
      lint_fixture("assert_decode.cpp", "src/szp/robust/fixture_decode.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "assert-decode");
  EXPECT_EQ(r.findings[0].line, 9);  // static_assert not reported
}

TEST(LintFixtures, AssertOffDecodePathIsClean) {
  const Result r = lint_fixture("assert_decode.cpp",
                                "src/szp/util/fixture_not_decode.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFixtures, UndocumentedTsaEscapeReported) {
  const Result r =
      lint_fixture("tsa_escape.cpp", "src/szp/core/fixture_tsa.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "tsa-escape");
  EXPECT_EQ(r.findings[0].line, 6);
}

TEST(LintFixtures, DocumentedTsaEscapeIsClean) {
  const Result r = lint_text(
      "src/szp/core/ok_tsa.cpp",
      "// tsa-escape: lock held across the callback, unprovable to TSA\n"
      "void f() SZP_NO_THREAD_SAFETY_ANALYSIS;\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFixtures, BannedFnReportedSnprintfExempt) {
  const Result r =
      lint_fixture("banned_fn.cpp", "src/szp/core/fixture_banned.cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "banned-fn");
  EXPECT_EQ(r.findings[0].line, 9);
}

TEST(LintFixtures, RawLogReportedSnprintfExempt) {
  const Result r =
      lint_fixture("raw_log.cpp", "src/szp/core/fixture_raw_log.cpp");
  ASSERT_EQ(r.findings.size(), 2u);
  std::set<int> lines;
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.rule, "raw-log");
    lines.insert(f.line);
  }
  // std::printf on 9, std::cerr on 10; snprintf on 12 is not reported.
  EXPECT_EQ(lines, (std::set<int>{9, 10}));
}

TEST(LintFixtures, RawLogWhitelistedInLogSink) {
  const Result r = lint_text("src/szp/obs/log.cpp",
                             "#include <iostream>\nstd::ostream& os = "
                             "std::cerr;\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFixtures, RawLogToolsAndTestsExempt) {
  // Tools own their stdout/stderr; the rule scopes to src/szp modules.
  const Result tool = lint_text("tools/szp_cli.cpp",
                                "int f() { return std::printf(\"x\"); }\n");
  EXPECT_TRUE(tool.findings.empty());
  const Result test = lint_text("tests/obs/test_x.cpp",
                                "int f() { return std::printf(\"x\"); }\n");
  EXPECT_TRUE(test.findings.empty());
}

TEST(LintFixtures, SuppressionWithReasonHonoredWithoutReasonNot) {
  const Result r =
      lint_fixture("suppression.cpp", "src/szp/core/fixture_suppress.cpp");
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "banned-fn");
  EXPECT_EQ(r.suppressed[0].line, 8);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 11);
  EXPECT_NE(r.findings[0].message.find("lacks a reason"), std::string::npos);
}

TEST(LintFixtures, CommentsAndStringsAreNotCode) {
  const Result r = lint_text(
      "src/szp/core/strings.cpp",
      "// std::mutex in a comment\n"
      "const char* s = \"std::thread atoi(\";\n"
      "/* assert( new int[3] */\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintCatalog, NineStableRuleIds) {
  const auto catalog = szp::lint::rule_catalog();
  std::set<std::string> ids;
  for (const auto& [id, desc] : catalog) {
    ids.insert(id);
    EXPECT_FALSE(desc.empty());
  }
  const std::set<std::string> expected = {
      "layering",      "raw-sync",      "raw-thread",
      "raw-new-array", "missing-span",  "assert-decode",
      "tsa-escape",    "raw-log",       "banned-fn"};
  EXPECT_EQ(ids, expected);
}

TEST(LintJson, ReportShapeStable) {
  Result r;
  r.files_scanned = 1;
  r.findings.push_back({"a.cpp", 3, "banned-fn", "msg \"quoted\""});
  std::ostringstream os;
  szp::lint::write_json(os, r);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"finding_count\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"rule\": \"banned-fn\""), std::string::npos);
  EXPECT_NE(j.find("msg \\\"quoted\\\""), std::string::npos);
}

// The gate the CI job enforces: the real tree has zero unsuppressed
// findings. If this fails, either fix the violation or add a
// `// szp-lint: allow(<rule>) <reason>` with a real justification.
TEST(LintTree, SrcAndToolsAreClean) {
  const Result r =
      szp::lint::lint_paths({SZP_LINT_SRC_DIR, SZP_LINT_TOOLS_DIR});
  EXPECT_TRUE(r.errors.empty());
  EXPECT_GT(r.files_scanned, 100);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  // Every suppression in the tree carries a reason (an allow() without
  // one lands in findings, so reaching here means they all do).
  for (const Finding& f : r.suppressed) {
    EXPECT_FALSE(f.rule.empty()) << f.file;
  }
}
