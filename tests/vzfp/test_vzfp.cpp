// cuZFP-style baseline: transform invertibility, fixed-rate property,
// rate-distortion monotonicity, device equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/baselines/vzfp/block_codec.hpp"
#include "szp/baselines/vzfp/transform.hpp"
#include "szp/baselines/vzfp/vzfp.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/util/rng.hpp"

namespace szp {
namespace {

// ZFP's integer lift is deliberately not bit-exact: each ">> 1" drops a
// parity bit (the transform is part of the lossy path). The invariant is
// bounded round-off, a few units in the fixed-point grid.
TEST(VzfpTransform, LiftRoundoffIsBounded) {
  Rng rng(21);
  for (int iter = 0; iter < 1000; ++iter) {
    std::int32_t v[4];
    for (auto& x : v) {
      x = static_cast<std::int32_t>(rng.next_below(1u << 27)) - (1 << 26);
    }
    std::int32_t w[4] = {v[0], v[1], v[2], v[3]};
    vzfp::fwd_lift4(w, 1);
    vzfp::inv_lift4(w, 1);
    for (int i = 0; i < 4; ++i) {
      EXPECT_LE(std::abs(static_cast<std::int64_t>(w[i]) - v[i]), 8);
    }
  }
}

TEST(VzfpTransform, BlockTransformRoundoffBounded123D) {
  Rng rng(22);
  for (unsigned dims = 1; dims <= 3; ++dims) {
    const size_t m = dims == 1 ? 4 : dims == 2 ? 16 : 64;
    std::vector<std::int32_t> v(m);
    for (auto& x : v) {
      x = static_cast<std::int32_t>(rng.next_below(1u << 26)) - (1 << 25);
    }
    auto w = v;
    vzfp::fwd_transform(w, dims);
    vzfp::inv_transform(w, dims);
    for (size_t i = 0; i < m; ++i) {
      // Round-off compounds per axis; stays tiny vs. the 2^26 value scale.
      EXPECT_LE(std::abs(static_cast<std::int64_t>(w[i]) - v[i]), 64)
          << "dims " << dims;
    }
  }
}

TEST(VzfpTransform, NegabinaryRoundtrip) {
  Rng rng(23);
  for (int iter = 0; iter < 1000; ++iter) {
    const auto x = static_cast<std::int32_t>(rng.next_u64());
    EXPECT_EQ(vzfp::from_negabinary(vzfp::to_negabinary(x)), x);
  }
  EXPECT_EQ(vzfp::to_negabinary(0), 0u);
}

TEST(VzfpTransform, TotalOrderIsAPermutationByDegree) {
  for (unsigned dims = 1; dims <= 3; ++dims) {
    const auto perm = vzfp::total_order(dims);
    const size_t m = dims == 1 ? 4 : dims == 2 ? 16 : 64;
    ASSERT_EQ(perm.size(), m);
    std::vector<bool> seen(m, false);
    unsigned prev_degree = 0;
    for (const auto idx : perm) {
      ASSERT_LT(idx, m);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
      unsigned g = 0, v = idx;
      for (unsigned a = 0; a < dims; ++a) {
        g += v % 4;
        v /= 4;
      }
      EXPECT_GE(g, prev_degree);
      prev_degree = g;
    }
  }
}

TEST(VzfpBlock, ExactBudgetConsumption) {
  Rng rng(24);
  std::vector<float> block(64);
  for (auto& v : block) v = static_cast<float>(rng.normal());
  for (const size_t budget : {64u, 128u, 256u, 512u, 1024u}) {
    std::vector<byte_t> slot((budget + 7) / 8, byte_t{0});
    vzfp::encode_block(block, 3, budget, slot);
    std::vector<float> out(64);
    vzfp::decode_block(slot, 3, budget, out);  // must not throw / overrun
  }
}

TEST(VzfpBlock, HighRateIsNearLossless) {
  Rng rng(25);
  std::vector<float> block(64);
  for (auto& v : block) v = static_cast<float>(rng.normal());
  std::vector<byte_t> slot(64 * 4, byte_t{0});
  vzfp::encode_block(block, 3, 64 * 32, slot);
  std::vector<float> out(64);
  vzfp::decode_block(slot, 3, 64 * 32, out);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(out[i], block[i], 1e-5);
  }
}

TEST(Vzfp, FixedRateProperty) {
  // Compressed size depends only on shape and rate, never on content.
  const data::Dims dims{{32, 48, 20}};
  vzfp::Params p;
  p.rate = 8;
  const auto a = data::make_field(data::Suite::kNyx, 0, 0.02);
  std::vector<float> zeros(dims.count(), 0.0f);
  std::vector<float> content(dims.count());
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = a.values[i % a.values.size()];
  }
  const auto s1 = vzfp::compress_serial(zeros, dims, p);
  const auto s2 = vzfp::compress_serial(content, dims, p);
  EXPECT_EQ(s1.size(), s2.size());
  EXPECT_EQ(s1.size(), vzfp::compressed_bytes(dims, p));
}

TEST(Vzfp, PsnrImprovesWithRate) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.05);
  double prev_psnr = 0;
  for (const double rate : {2.0, 4.0, 8.0, 16.0}) {
    vzfp::Params p;
    p.rate = rate;
    const auto stream = vzfp::compress_serial(field.values, field.dims, p);
    const auto recon = vzfp::decompress_serial(stream);
    const auto stats = metrics::compare(field.values, recon);
    EXPECT_GT(stats.psnr, prev_psnr) << "rate " << rate;
    prev_psnr = stats.psnr;
  }
  EXPECT_GT(prev_psnr, 60.0);  // rate 16 should be high quality
}

TEST(Vzfp, DeviceMatchesSerial) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 1, 0.1);
  vzfp::Params p;
  p.rate = 8;
  const auto serial = vzfp::compress_serial(field.values, field.dims, p);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev,
                                     vzfp::compressed_bytes(field.dims, p));
  const auto res = vzfp::compress_device(dev, d_in, field.dims, p, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << "byte " << i;
  }

  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  (void)vzfp::decompress_device(dev, d_cmp, d_out);
  const auto recon = gpusim::to_host(dev, d_out);
  const auto recon_serial = vzfp::decompress_serial(serial);
  for (size_t i = 0; i < recon.size(); ++i) {
    ASSERT_EQ(recon[i], recon_serial[i]);
  }
}

TEST(Vzfp, SingleKernelEachWay) {
  const auto field = data::make_field(data::Suite::kNyx, 1, 0.02);
  vzfp::Params p;
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev,
                                     vzfp::compressed_bytes(field.dims, p));
  const auto c = vzfp::compress_device(dev, d_in, field.dims, p, d_cmp);
  EXPECT_EQ(c.trace.kernel_launches, 1u);
  EXPECT_EQ(c.trace.host_stages, 0u);
  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  const auto d = vzfp::decompress_device(dev, d_cmp, d_out);
  EXPECT_EQ(d.trace.kernel_launches, 1u);
}

TEST(Vzfp, PartialBlocksAtEdges) {
  const data::Dims dims{{5, 7}};  // not multiples of 4
  std::vector<float> data(35);
  Rng rng(26);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  vzfp::Params p;
  p.rate = 24;
  const auto recon = vzfp::decompress_serial(vzfp::compress_serial(data, dims, p));
  ASSERT_EQ(recon.size(), data.size());
  const auto stats = metrics::compare(data, recon);
  EXPECT_GT(stats.psnr, 40.0);
}

}  // namespace
}  // namespace szp
