// vzfp device/serial equivalence across rates and dimensionalities.
#include <gtest/gtest.h>

#include <tuple>

#include "szp/baselines/vzfp/vzfp.hpp"
#include "szp/data/registry.hpp"
#include "szp/harness/codecs.hpp"

namespace szp::vzfp {
namespace {

class RateDims
    : public ::testing::TestWithParam<std::tuple<double, data::Suite>> {};

TEST_P(RateDims, DeviceAndSerialAgreeEverywhere) {
  const auto [rate, suite] = GetParam();
  const auto field = data::make_field(suite, 0, 0.02);
  const data::Dims dims = harness::fuse_dims(field.dims, 3);
  Params p;
  p.rate = rate;

  const auto serial = compress_serial(field.values, dims, p);
  ASSERT_EQ(serial.size(), compressed_bytes(dims, p));

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev, serial.size());
  const auto res = compress_device(dev, d_in, dims, p, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  ASSERT_TRUE(std::equal(serial.begin(), serial.end(), bytes.begin()));

  gpusim::DeviceBuffer<float> d_out(dev, field.count());
  (void)decompress_device(dev, d_cmp, d_out);
  const auto device_recon = gpusim::to_host(dev, d_out);
  const auto serial_recon = decompress_serial(serial);
  for (size_t i = 0; i < serial_recon.size(); ++i) {
    ASSERT_EQ(device_recon[i], serial_recon[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateDims,
    ::testing::Combine(::testing::Values(2.0, 4.0, 8.0, 16.0, 24.0),
                       ::testing::Values(data::Suite::kHacc,      // 1D
                                         data::Suite::kCesmAtm,   // 2D
                                         data::Suite::kNyx,       // 3D
                                         data::Suite::kQmcpack))); // 4D fused

TEST(VzfpDevice, NonByteAlignedRate) {
  // rate * block_elems not divisible by 8: slots round up, still lossy-
  // roundtrips identically between paths.
  const auto field = data::make_field(data::Suite::kHurricane, 1, 0.02);
  const data::Dims dims = field.dims;
  Params p;
  p.rate = 3.3;
  const auto serial = compress_serial(field.values, dims, p);
  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev, compressed_bytes(dims, p));
  const auto res = compress_device(dev, d_in, dims, p, d_cmp);
  EXPECT_EQ(res.bytes, serial.size());
}

}  // namespace
}  // namespace szp::vzfp
