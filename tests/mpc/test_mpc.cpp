// MPC lossless baseline: bit-exact roundtrips, CR behaviour, device path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "szp/baselines/mpc/mpc.hpp"
#include "szp/data/registry.hpp"
#include "szp/util/rng.hpp"

namespace szp::mpc {
namespace {

bool bit_identical(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size() * 4) == 0;
}

TEST(Mpc, LosslessOnEverySuite) {
  for (const auto& info : data::all_suites()) {
    const auto field = data::make_field(info.id, 0, 0.02);
    const auto stream = compress_serial(field.values);
    const auto recon = decompress_serial(stream);
    ASSERT_TRUE(bit_identical(field.values, recon)) << info.name;
  }
}

TEST(Mpc, LosslessOnHostileBitPatterns) {
  Rng rng(3);
  std::vector<float> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    // Random bit patterns, including NaNs/infinities and denormals —
    // lossless means every payload survives.
    std::uint32_t w = static_cast<std::uint32_t>(rng.next_u64());
    std::memcpy(&data[i], &w, 4);
  }
  const auto recon = decompress_serial(compress_serial(data));
  EXPECT_TRUE(bit_identical(data, recon));
}

TEST(Mpc, ChunkBoundarySizes) {
  Rng rng(4);
  for (const size_t n : {0u, 1u, 31u, 32u, 1023u, 1024u, 1025u, 5000u}) {
    std::vector<float> data(n);
    for (auto& v : data) v = static_cast<float>(rng.normal());
    const auto recon = decompress_serial(compress_serial(data));
    ASSERT_TRUE(bit_identical(data, recon)) << n;
  }
}

TEST(Mpc, CompressesSmoothDataAndNotNoise) {
  // Smooth ramp: deltas tiny, most bit planes zero -> CR well above 1.
  std::vector<float> smooth(100000);
  for (size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = static_cast<float>(i) * 0.25f;
  }
  const auto s1 = compress_serial(smooth);
  EXPECT_GT(static_cast<double>(smooth.size() * 4) /
                static_cast<double>(s1.size()),
            2.0);

  // White noise: essentially incompressible (bitmap overhead only).
  Rng rng(5);
  std::vector<float> noise(100000);
  for (auto& v : noise) v = static_cast<float>(rng.normal() * 1e9);
  const auto s2 = compress_serial(noise);
  const double cr = static_cast<double>(noise.size() * 4) /
                    static_cast<double>(s2.size());
  EXPECT_GT(cr, 0.9);
  EXPECT_LT(cr, 1.3);
}

TEST(Mpc, StrideHelpsInterleavedVectors) {
  // xyzxyz... interleaving: stride-3 prediction beats stride-1.
  Rng rng(6);
  std::vector<float> data(30000);
  double x = 0, y = 1000, z = -500;
  for (size_t i = 0; i < data.size(); i += 3) {
    x += rng.normal() * 0.01;
    y += rng.normal() * 0.01;
    z += rng.normal() * 0.01;
    data[i] = static_cast<float>(x);
    data[i + 1] = static_cast<float>(y);
    data[i + 2] = static_cast<float>(z);
  }
  Params p1, p3;
  p1.stride = 1;
  p3.stride = 3;
  const auto s1 = compress_serial(data, p1);
  const auto s3 = compress_serial(data, p3);
  EXPECT_LT(s3.size(), s1.size());
  EXPECT_TRUE(bit_identical(data, decompress_serial(s3)));
}

TEST(Mpc, DeviceMatchesSerial) {
  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 0.05);
  const auto serial = compress_serial(field.values);

  gpusim::Device dev;
  auto d_in = gpusim::to_device<float>(dev, field.values);
  gpusim::DeviceBuffer<byte_t> d_cmp(dev, max_compressed_bytes(field.count()));
  const auto res = compress_device(dev, d_in, field.count(), {}, d_cmp);
  ASSERT_EQ(res.bytes, serial.size());
  EXPECT_EQ(res.trace.kernel_launches, 1u);
  const auto bytes = gpusim::to_host(dev, d_cmp, res.bytes);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(bytes[i], serial[i]) << i;
  }
}

TEST(Mpc, TruncatedStreamThrows) {
  std::vector<float> data(2048, 1.5f);
  const auto stream = compress_serial(data);
  for (const size_t keep : {size_t{4}, size_t{20}, stream.size() - 3}) {
    EXPECT_THROW((void)decompress_serial(
                     std::span<const byte_t>(stream.data(), keep)),
                 format_error)
        << keep;
  }
}

}  // namespace
}  // namespace szp::mpc
