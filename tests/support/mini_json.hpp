// Test-support alias for the library JSON parser. The parser started
// life here; it now lives in szp/util/mini_json.hpp so tools
// (szp_benchdiff) can use it too. Existing tests keep the
// szp::testsupport spelling.
#pragma once

#include "szp/util/mini_json.hpp"

namespace szp::testsupport {

using szp::util::JsonParser;
using szp::util::JsonValue;

}  // namespace szp::testsupport
