// Tests for the device trace counters: saturating snapshot diffs,
// stage_name exhaustiveness, and the snapshot/reset quiescence guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/trace.hpp"

namespace {

using namespace szp;
using gpusim::Stage;
using gpusim::TraceSnapshot;

TEST(TraceSnapshotDiff, SubtractsComponentwise) {
  TraceSnapshot a, b;
  a.stages[0].read_bytes = 100;
  b.stages[0].read_bytes = 30;
  a.h2d_bytes = 10;
  b.h2d_bytes = 4;
  a.kernel_launches = 5;
  b.kernel_launches = 2;
  const TraceSnapshot d = a - b;
  EXPECT_EQ(d.stages[0].read_bytes, 70u);
  EXPECT_EQ(d.h2d_bytes, 6u);
  EXPECT_EQ(d.kernel_launches, 3u);
}

TEST(TraceSnapshotDiff, UnderflowSaturatesToZeroInsteadOfWrapping) {
  TraceSnapshot a, b;
  // Every field smaller in the minuend: a reversed diff (a - b with b the
  // later snapshot) must clamp to 0, not wrap to ~2^64.
  for (unsigned i = 0; i < gpusim::kNumStages; ++i) {
    a.stages[i].read_bytes = 1;
    a.stages[i].write_bytes = 2;
    a.stages[i].ops = 3;
    b.stages[i].read_bytes = 10;
    b.stages[i].write_bytes = 20;
    b.stages[i].ops = 30;
  }
  a.kernel_launches = 0;
  b.kernel_launches = 7;
  a.h2d_bytes = 0;
  b.h2d_bytes = std::numeric_limits<std::uint64_t>::max();
  a.d2h_bytes = 5;
  b.d2h_bytes = 6;
  a.d2d_bytes = 0;
  b.d2d_bytes = 1;
  a.host_bytes = 0;
  b.host_bytes = 2;
  a.host_stages = 0;
  b.host_stages = 3;
  const TraceSnapshot d = a - b;
  for (unsigned i = 0; i < gpusim::kNumStages; ++i) {
    EXPECT_EQ(d.stages[i].read_bytes, 0u);
    EXPECT_EQ(d.stages[i].write_bytes, 0u);
    EXPECT_EQ(d.stages[i].ops, 0u);
  }
  EXPECT_EQ(d.kernel_launches, 0u);
  EXPECT_EQ(d.h2d_bytes, 0u);
  EXPECT_EQ(d.d2h_bytes, 0u);
  EXPECT_EQ(d.d2d_bytes, 0u);
  EXPECT_EQ(d.host_bytes, 0u);
  EXPECT_EQ(d.host_stages, 0u);
  // Totals of a saturated diff stay small instead of exploding.
  EXPECT_EQ(d.total_device_read_bytes(), 0u);
  EXPECT_EQ(d.total_ops(), 0u);
  EXPECT_EQ(d.total_memcpy_bytes(), 0u);
}

TEST(TraceSnapshotDiff, MixedDirectionsClampPerField) {
  TraceSnapshot a, b;
  a.stages[1].ops = 50;
  b.stages[1].ops = 20;  // forward: 30
  a.stages[2].ops = 20;
  b.stages[2].ops = 50;  // reversed: clamps to 0
  const TraceSnapshot d = a - b;
  EXPECT_EQ(d.stages[1].ops, 30u);
  EXPECT_EQ(d.stages[2].ops, 0u);
}

TEST(StageName, EveryEnumeratorHasADistinctName) {
  for (unsigned i = 0; i < gpusim::kNumStages; ++i) {
    const auto name = gpusim::stage_name(static_cast<Stage>(i));
    EXPECT_FALSE(name.empty()) << "stage " << i;
    EXPECT_NE(name, "?") << "stage " << i;
    for (unsigned j = i + 1; j < gpusim::kNumStages; ++j) {
      EXPECT_NE(name, gpusim::stage_name(static_cast<Stage>(j)))
          << "stages " << i << " and " << j;
    }
  }
  // The paper's four pipeline stages keep their Fig. 21 abbreviations.
  EXPECT_EQ(gpusim::stage_name(Stage::kQuantPredict), "QP");
  EXPECT_EQ(gpusim::stage_name(Stage::kFixedLenEncode), "FE");
  EXPECT_EQ(gpusim::stage_name(Stage::kGlobalSync), "GS");
  EXPECT_EQ(gpusim::stage_name(Stage::kBitShuffle), "BB");
  // The sentinel is not a reportable stage.
  EXPECT_EQ(gpusim::stage_name(Stage::kCount_), "?");
}

TEST(DeviceTraceGuard, SnapshotAndResetThrowWhileLaunchInFlight) {
  gpusim::Device dev(2);
  EXPECT_EQ(dev.launches_in_flight(), 0u);
  gpusim::launch(dev, "guard_probe", 4, [&](const gpusim::BlockCtx& ctx) {
    if (ctx.block_idx != 0) return;
    // Observed from inside a kernel, the launch is in flight and both
    // trace accessors refuse the torn read.
    EXPECT_GE(dev.launches_in_flight(), 1u);
    EXPECT_THROW((void)dev.snapshot(), std::logic_error);
    EXPECT_THROW(dev.reset_trace(), std::logic_error);
  });
  // Quiesced again: both succeed.
  EXPECT_EQ(dev.launches_in_flight(), 0u);
  EXPECT_NO_THROW((void)dev.snapshot());
  EXPECT_NO_THROW(dev.reset_trace());
  EXPECT_EQ(dev.snapshot().kernel_launches, 0u);  // reset happened
}

TEST(DeviceTraceGuard, ResetZeroesAllCounters) {
  gpusim::Device dev(2);
  dev.trace().add_read(Stage::kQuantPredict, 123);
  dev.trace().add_h2d(456);
  dev.trace().add_kernel_launch();
  dev.reset_trace();
  const TraceSnapshot s = dev.snapshot();
  EXPECT_EQ(s.total_device_read_bytes(), 0u);
  EXPECT_EQ(s.h2d_bytes, 0u);
  EXPECT_EQ(s.kernel_launches, 0u);
}

}  // namespace
