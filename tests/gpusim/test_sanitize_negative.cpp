// Negative kernels for the gpusim sanitizer: each test commits exactly
// one class of defect and asserts the matching checker (and only that
// checker) reports it. These are the simulated-runtime analogues of the
// compute-sanitizer demo kernels (OOB store, use-after-free, missing
// __syncthreads, divergent __ballot_sync, ...).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/pool.hpp"
#include "szp/gpusim/view.hpp"
#include "szp/gpusim/warp_sync.hpp"

namespace szp::gpusim {
namespace {

using sanitize::Kind;
using sanitize::Tool;
using sanitize::Tools;

/// Asserts the report contains `kind` and nothing from the other tools
/// — "each negative kernel triggers exactly its intended checker".
void expect_only(const sanitize::Report& r, Kind kind) {
  EXPECT_GE(r.count(kind), 1u) << r.to_string();
  for (const auto t : {Tool::kMemcheck, Tool::kRacecheck, Tool::kSynccheck}) {
    if (t == kind_tool(kind)) {
      EXPECT_EQ(r.count(t), r.total()) << r.to_string();
    } else {
      EXPECT_EQ(r.count(t), 0u) << r.to_string();
    }
  }
}

TEST(SanitizeNegative, OobWriteIsCaughtAndSuppressed) {
  Device dev(1, Tools::all());
  DeviceBuffer<std::uint32_t> buf(dev, 8, 0u);
  launch(dev, "oob_write_kernel", 1, [&](const BlockCtx& ctx) {
    const auto v = device_view(buf, ctx);
    v.store(8, 0xdeadbeefu);  // one past the end
  });
  expect_only(dev.sanitize_report(), Kind::kOobWrite);
  // The store was suppressed, so the redzone stayed intact and no
  // corruption finding follows at free.
  dev.clear_sanitize_findings();
}

TEST(SanitizeNegative, OobReadIsCaughtAndReturnsZero) {
  Device dev(1, Tools::all());
  DeviceBuffer<std::uint32_t> buf(dev, 4, 7u);
  std::uint32_t got = 1;
  launch(dev, "oob_read_kernel", 1, [&](const BlockCtx& ctx) {
    const auto v = device_view(std::as_const(buf), ctx);
    got = v.load(100);
  });
  EXPECT_EQ(got, 0u);  // suppressed load value-initializes
  expect_only(dev.sanitize_report(), Kind::kOobRead);
}

TEST(SanitizeNegative, UninitReadIsCaught) {
  Device dev(1, Tools::all());
  DeviceBuffer<float> buf(dev, 16);  // no fill: uninitialized
  launch(dev, "uninit_read_kernel", 1, [&](const BlockCtx& ctx) {
    const auto v = device_view(std::as_const(buf), ctx);
    (void)v.load(3);
  });
  expect_only(dev.sanitize_report(), Kind::kUninitRead);
}

TEST(SanitizeNegative, UseAfterFreeIsCaughtAndSuppressed) {
  Device dev(1, Tools::all());
  std::optional<DeviceBuffer<int>> buf(std::in_place, dev, 4, 5);
  auto view = host_view(std::as_const(*buf));  // keeps the shadow alive
  buf.reset();                                 // ... but not the storage
  EXPECT_EQ(view.load(0), 0);                  // suppressed, not 5
  expect_only(dev.sanitize_report(), Kind::kUseAfterFree);
}

TEST(SanitizeNegative, RedzoneCorruptionIsCaughtAtFree) {
  Device dev(1, Tools::all());
  {
    DeviceBuffer<std::uint8_t> buf(dev, 8, std::uint8_t{0});
    buf.data()[8] = 0x00;  // scribble one byte past the payload
  }
  expect_only(dev.sanitize_report(), Kind::kRedzoneCorruption);
}

TEST(SanitizeNegative, LeakSweepFindsLiveBuffers) {
  Device dev(1, Tools::all());
  DeviceBuffer<double> buf(dev, 32, 0.0);
  dev.sanitize_finalize();  // buffer still alive here
  expect_only(dev.sanitize_report(), Kind::kLeak);
  dev.clear_sanitize_findings();
}

TEST(SanitizeNegative, HostAccessDuringKernelIsCaught) {
  Device dev(2, Tools::all());
  DeviceBuffer<float> buf(dev, 4, 0.f);
  std::atomic<bool> kernel_running{false};
  std::atomic<bool> host_done{false};
  std::thread host([&] {
    while (!kernel_running.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    (void)std::as_const(buf).span();  // host poke while the kernel runs
    host_done.store(true, std::memory_order_release);
  });
  launch(dev, "long_kernel", 1, [&](const BlockCtx&) {
    kernel_running.store(true, std::memory_order_release);
    while (!host_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  host.join();
  expect_only(dev.sanitize_report(), Kind::kHostAccessDuringKernel);
}

TEST(SanitizeNegative, UnsynchronizedWritesRace) {
  Device dev(2, Tools::all());
  DeviceBuffer<std::uint32_t> buf(dev, 1, 0u);
  // Two blocks store the same cell with no ordering between them. The
  // vector-clock detector flags this on any schedule, even if the blocks
  // happen to run back to back.
  launch(dev, "racy_store_kernel", 2, [&](const BlockCtx& ctx) {
    const auto v = device_view(buf, ctx);
    v.store(0, ctx.actor());
  });
  expect_only(dev.sanitize_report(), Kind::kRace);
}

TEST(SanitizeNegative, LookbackWithoutAcquireRaces) {
  Device dev(2, Tools::all());
  DeviceBuffer<std::uint64_t> buf(dev, 1, std::uint64_t{0});
  std::atomic<int> flag{0};
  // Block 0 publishes with a release edge; block 1 spins on the flag but
  // never declares the acquire — the exact bug class the chained-scan
  // lookback would have if it skipped ctx.sync_acquire.
  launch(dev, "lookback_no_acquire", 2, [&](const BlockCtx& ctx) {
    const auto v = device_view(buf, ctx);
    if (ctx.block_idx == 0) {
      v.store(0, 42u);
      ctx.sync_release(&flag);
      flag.store(1, std::memory_order_release);
    } else {
      while (flag.load(std::memory_order_acquire) == 0) {
        if (ctx.aborted()) return;
        std::this_thread::yield();
      }
      // Missing: ctx.sync_acquire(&flag);
      (void)v.load(0);
    }
  });
  expect_only(dev.sanitize_report(), Kind::kRace);
}

TEST(SanitizeNegative, AcquireEdgeSilencesTheRace) {
  Device dev(2, Tools::all());
  DeviceBuffer<std::uint64_t> buf(dev, 1, std::uint64_t{0});
  std::atomic<int> flag{0};
  launch(dev, "lookback_with_acquire", 2, [&](const BlockCtx& ctx) {
    const auto v = device_view(buf, ctx);
    if (ctx.block_idx == 0) {
      v.store(0, 42u);
      ctx.sync_release(&flag);
      flag.store(1, std::memory_order_release);
    } else {
      while (flag.load(std::memory_order_acquire) == 0) {
        if (ctx.aborted()) return;
        std::this_thread::yield();
      }
      ctx.sync_acquire(&flag);
      (void)v.load(0);
    }
  });
  EXPECT_TRUE(dev.sanitize_report().empty())
      << dev.sanitize_report().to_string();
}

TEST(SanitizeNegative, BarrierDivergenceIsCaught) {
  Device dev(1, Tools::all());
  launch(dev, "divergent_barrier", 1, [&](const BlockCtx& ctx) {
    ctx.set_active_mask(0xffffffffu);
    ctx.block_barrier(0x0000ffffu);  // upper half never arrives
  });
  expect_only(dev.sanitize_report(), Kind::kBarrierDivergence);
}

TEST(SanitizeNegative, DivergentBallotIsCaught) {
  Device dev(1, Tools::all());
  launch(dev, "divergent_ballot", 1, [&](const BlockCtx& ctx) {
    ctx.set_active_mask(0x0000ffffu);  // half the warp diverged away
    warp::Lanes<bool> pred{};
    (void)warp::ballot_sync(ctx, warp::kFullMask, pred);
  });
  expect_only(dev.sanitize_report(), Kind::kMaskMismatch);
}

TEST(SanitizeNegative, PoolReuseStaleReadIsCaught) {
  Device dev(1, Tools::all());
  BufferPool<std::uint32_t> pool(dev);
  {
    auto lease = pool.acquire(64);
    launch(dev, "fill_kernel", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(*lease, ctx);
      for (std::uint32_t& slot : v.store_span(0, 64)) slot = 1;
    });
  }  // released back to the pool fully initialized
  {
    auto lease = pool.acquire(64);  // same storage, stale contents
    launch(dev, "stale_read_kernel", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(std::as_const(*lease), ctx);
      (void)v.load(0);  // read before any write of this lease
    });
  }
  expect_only(dev.sanitize_report(), Kind::kUninitRead);
}

}  // namespace
}  // namespace szp::gpusim
