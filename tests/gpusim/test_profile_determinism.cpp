// Determinism contract for the kernel profiler: two identical runs
// produce byte-identical deterministic-counter sections (the
// counter_fingerprint — profile JSON with the schedule/timing/derived
// sections omitted), across both scan algorithms and both stream format
// versions (checksummed v2 and plain v1). Wall clocks, lookback
// depth/spin histograms and block stats legitimately vary run to run and
// are excluded by construction.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "szp/core/compressor.hpp"
#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/profile/report.hpp"

namespace {

using namespace szp;
namespace gs = gpusim;
namespace prof = gpusim::profile;

std::vector<float> make_data(size_t n = 48 * 1024) {
  std::vector<float> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::cos(static_cast<double>(i) * 0.0017) *
                                 5.0);
  }
  return data;
}

/// One full device roundtrip on a fresh profiled Device; returns the
/// deterministic-counter fingerprint of everything collected.
std::string fingerprint_run(const core::Params& params,
                            const std::vector<float>& data) {
  gs::Device dev(4, gs::sanitize::Tools::none(), prof::Options::on());
  Compressor c(params);
  auto d_in = gs::to_device<float>(dev, std::span<const float>(data));
  gs::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(data.size(), params.block_len));
  gs::DeviceBuffer<float> d_out(dev, data.size());
  const auto comp = c.compress_on_device(dev, d_in, data.size(), 10.0, d_cmp);
  (void)c.decompress_on_device(dev, d_cmp, d_out, comp.bytes);
  (void)gs::to_host(dev, d_out);
  const prof::SessionProfile sessions[] = {dev.profile_snapshot()};
  return prof::counter_fingerprint(sessions);
}

using ScanFormatParam = std::tuple<core::ScanAlgo, unsigned>;

class ProfileDeterminism : public ::testing::TestWithParam<ScanFormatParam> {};

std::string param_name(const ::testing::TestParamInfo<ScanFormatParam>& info) {
  const auto scan = std::get<0>(info.param);
  const auto groups = std::get<1>(info.param);
  std::string name = scan == core::ScanAlgo::kChained ? "Chained" : "TwoPass";
  name += groups == 0 ? "_v1" : "_v2";
  return name;
}

TEST_P(ProfileDeterminism, RepeatRunsFingerprintIdentically) {
  const auto [scan, checksum_groups] = GetParam();
  core::Params params;
  params.mode = core::ErrorMode::kRel;
  params.error_bound = 1e-3;
  params.scan = scan;
  params.checksum_group_blocks = checksum_groups;

  const auto data = make_data();
  const std::string a = fingerprint_run(params, data);
  const std::string b = fingerprint_run(params, data);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The fingerprint must not leak timing: two runs can share it only if
  // the schedule/timing sections are genuinely absent.
  EXPECT_EQ(a.find("wall_ns"), std::string::npos);
  EXPECT_EQ(a.find("lookback_depth"), std::string::npos);
  EXPECT_EQ(a.find("\"timing\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    ScanAndFormat, ProfileDeterminism,
    ::testing::Combine(::testing::Values(core::ScanAlgo::kChained,
                                         core::ScanAlgo::kTwoPass),
                       ::testing::Values(256u, 0u)),
    param_name);

}  // namespace
