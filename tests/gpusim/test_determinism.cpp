// Scheduling determinism: the compressed stream must be byte-identical no
// matter how many workers execute the kernels (the chained scan resolves
// the same prefixes under any schedule).
#include <gtest/gtest.h>

#include "szp/core/compressor.hpp"
#include "szp/data/registry.hpp"

namespace szp {
namespace {

class WorkerCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(WorkerCount, StreamIndependentOfPoolSize) {
  const auto field = data::make_field(data::Suite::kHurricane, 0, 0.03);
  const double range = field.value_range();
  core::Params p;
  p.error_bound = 1e-3;
  Compressor c(p);

  auto run = [&](unsigned workers) {
    gpusim::Device dev(workers);
    auto d_in = gpusim::to_device<float>(dev, field.values);
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev, core::max_compressed_bytes(field.count(), p.block_len));
    const auto res = c.compress_on_device(dev, d_in, field.count(), range,
                                          d_cmp);
    return gpusim::to_host(dev, d_cmp, res.bytes);
  };

  const auto reference = run(1);
  EXPECT_EQ(run(GetParam()), reference);
}

INSTANTIATE_TEST_SUITE_P(Pools, WorkerCount,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u));

TEST(WorkerCount, DecompressionDeterministicToo) {
  const auto field = data::make_field(data::Suite::kRtm, 1, 0.03);
  core::Params p;
  p.error_bound = 1e-2;
  Compressor c(p);
  const auto stream = c.compress(field.values, field.value_range());

  std::vector<float> reference;
  for (const unsigned workers : {1u, 7u, 13u}) {
    gpusim::Device dev(workers);
    auto d_cmp = gpusim::to_device<byte_t>(dev, stream);
    gpusim::DeviceBuffer<float> d_out(dev, field.count());
    (void)c.decompress_on_device(dev, d_cmp, d_out);
    const auto out = gpusim::to_host(dev, d_out);
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << workers << " workers";
    }
  }
}

TEST(WorkerCount, TraceCountersIndependentOfSchedule) {
  const auto field = data::make_field(data::Suite::kNyx, 1, 0.02);
  core::Params p;
  Compressor c(p);
  gpusim::TraceSnapshot first{};
  bool have_first = false;
  for (const unsigned workers : {1u, 6u}) {
    gpusim::Device dev(workers);
    auto d_in = gpusim::to_device<float>(dev, field.values);
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev, core::max_compressed_bytes(field.count(), p.block_len));
    const auto res = c.compress_on_device(dev, d_in, field.count(),
                                          field.value_range(), d_cmp);
    if (!have_first) {
      first = res.trace;
      have_first = true;
      continue;
    }
    // All deterministic counters must match; only the chained-scan
    // lookback read count is schedule-dependent.
    for (unsigned s = 0; s < gpusim::kNumStages; ++s) {
      if (s == unsigned(gpusim::Stage::kGlobalSync)) continue;
      EXPECT_EQ(res.trace.stages[s].read_bytes, first.stages[s].read_bytes);
      EXPECT_EQ(res.trace.stages[s].write_bytes, first.stages[s].write_bytes);
      EXPECT_EQ(res.trace.stages[s].ops, first.stages[s].ops);
    }
    EXPECT_EQ(res.trace.stages[unsigned(gpusim::Stage::kGlobalSync)].ops,
              first.stages[unsigned(gpusim::Stage::kGlobalSync)].ops);
  }
}

}  // namespace
}  // namespace szp
