// Positive coverage for the gpusim sanitizer: the real codec runs clean
// under every tool, activation parsing behaves, and the disabled path
// stays branch-cheap (the same contract tests/obs/test_overhead.cpp
// enforces for tracing).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "szp/core/device.hpp"
#include "szp/engine/engine.hpp"
#include "szp/gpusim/device.hpp"
#include "szp/gpusim/view.hpp"

namespace szp {
namespace {

using core::Params;
using core::ScanAlgo;
using gpusim::sanitize::Tool;
using gpusim::sanitize::Tools;
using gpusim::sanitize::tools_from_string;

std::vector<float> smooth(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.01) * 40.0f;
  }
  return v;
}

std::vector<double> smooth_f64(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::cos(static_cast<double>(i) * 0.003) * 7.0;
  }
  return v;
}

/// One full device compress+decompress with every checker armed; the
/// acceptance bar is a byte-empty report.
void roundtrip_checked(ScanAlgo scan, unsigned checksum_group_blocks) {
  const auto data = smooth(20000);
  Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-3;
  p.scan = scan;
  p.checksum_group_blocks = checksum_group_blocks;

  gpusim::Device dev(4, Tools::all());
  ASSERT_NE(dev.checker(), nullptr);
  auto d_in = gpusim::to_device<float>(dev, data);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(data.size(), p.block_len,
                                      p.checksum_group_blocks));
  const auto comp =
      core::compress_device(dev, d_in, data.size(), p, p.error_bound, d_cmp);
  gpusim::DeviceBuffer<float> d_out(dev, data.size());
  const auto dec =
      core::decompress_device(dev, d_cmp, d_out, comp.bytes);
  ASSERT_EQ(dec.bytes, data.size());

  const auto recon = gpusim::to_host(dev, d_out);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(recon[i] - data[i]), 1e-3 + 1e-12) << i;
  }
  EXPECT_TRUE(dev.sanitize_report().empty())
      << dev.sanitize_report().to_string();
}

TEST(SanitizeClean, ChainedScanV2RunsClean) {
  roundtrip_checked(ScanAlgo::kChained, core::kChecksumGroupBlocks);
}

TEST(SanitizeClean, ChainedScanV1RunsClean) {
  roundtrip_checked(ScanAlgo::kChained, 0);
}

TEST(SanitizeClean, TwoPassScanV2RunsClean) {
  roundtrip_checked(ScanAlgo::kTwoPass, core::kChecksumGroupBlocks);
}

TEST(SanitizeClean, TwoPassScanV1RunsClean) {
  roundtrip_checked(ScanAlgo::kTwoPass, 0);
}

TEST(SanitizeClean, F64PipelineRunsClean) {
  const auto data = smooth_f64(15000);
  Params p;
  p.mode = core::ErrorMode::kAbs;
  p.error_bound = 1e-6;

  gpusim::Device dev(3, Tools::all());
  auto d_in = gpusim::to_device<double>(dev, data);
  gpusim::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(data.size(), p.block_len));
  const auto comp = core::compress_device_f64(dev, d_in, data.size(), p,
                                              p.error_bound, d_cmp);
  gpusim::DeviceBuffer<double> d_out(dev, data.size());
  const auto dec = core::decompress_device_f64(dev, d_cmp, d_out, comp.bytes);
  ASSERT_EQ(dec.bytes, data.size());
  EXPECT_TRUE(dev.sanitize_report().empty())
      << dev.sanitize_report().to_string();
}

TEST(SanitizeClean, EngineDeviceBackendRunsCleanUnderEnvActivation) {
  // Env activation is what the devcheck CI job uses; abort_on_teardown is
  // armed, so a finding here would abort loudly rather than merely fail.
  ASSERT_EQ(setenv("SZP_DEVCHECK", "memcheck,racecheck,synccheck", 1), 0);
  {
    const auto data = smooth(8192);
    Params p;
    p.mode = core::ErrorMode::kRel;
    p.error_bound = 1e-3;
    engine::Engine eng(
        {.params = p, .backend = engine::BackendKind::kDevice, .threads = 2});
    const auto stream = eng.compress(data, 80.0);
    const auto recon = eng.decompress(stream.bytes);
    ASSERT_EQ(recon.size(), data.size());
  }
  ASSERT_EQ(unsetenv("SZP_DEVCHECK"), 0);
}

TEST(SanitizeTools, SpecParsing) {
  EXPECT_FALSE(tools_from_string("").any());
  EXPECT_FALSE(tools_from_string("0").any());
  EXPECT_FALSE(tools_from_string("off").any());
  EXPECT_FALSE(tools_from_string("none").any());

  const auto all = tools_from_string("all");
  EXPECT_TRUE(all.memcheck && all.racecheck && all.synccheck);
  const auto one = tools_from_string("racecheck");
  EXPECT_FALSE(one.memcheck);
  EXPECT_TRUE(one.racecheck);
  EXPECT_FALSE(one.synccheck);
  const auto two = tools_from_string("memcheck,synccheck");
  EXPECT_TRUE(two.memcheck && two.synccheck);
  EXPECT_FALSE(two.racecheck);

  EXPECT_THROW((void)tools_from_string("initcheck"), format_error);
  EXPECT_THROW((void)tools_from_string("memcheck,bogus"), format_error);
}

TEST(SanitizeOverhead, DisabledDeviceCarriesNoChecker) {
  gpusim::Device dev(1, Tools::none());
  EXPECT_EQ(dev.checker(), nullptr);
  gpusim::DeviceBuffer<float> buf(dev, 8, 1.f);
  EXPECT_EQ(buf.shadow(), nullptr);  // no shadow, no redzones, no bitmap
  EXPECT_TRUE(dev.sanitize_report().empty());
}

TEST(SanitizeOverhead, DisabledViewAccessIsBranchCheap) {
  // Same guard as ObsOverhead: with checking off a view access must cost
  // one null compare over the raw access. The generous 100 ns bound only
  // trips if someone adds a lock, map lookup or allocation to the path.
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 2'000'000;
  constexpr double kMaxDisabledNsPerSite = 100.0;

  gpusim::Device dev(1, Tools::none());
  gpusim::DeviceBuffer<std::uint64_t> buf(dev, 1024, std::uint64_t{1});
  auto view = gpusim::host_view(buf);
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink += view.load(static_cast<size_t>(i) & 1023u);
  }
  const auto dt = Clock::now() - t0;
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
      kIters;
  RecordProperty("ns_per_load", std::to_string(ns));
  EXPECT_EQ(sink, static_cast<std::uint64_t>(kIters));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);
}

}  // namespace
}  // namespace szp
