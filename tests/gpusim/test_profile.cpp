// gpusim kernel profiler tests: counter collection on the real device
// codec, JSON/text report schema, the derived perf-model section, the
// disabled fast path (empty snapshots + overhead budget) and composition
// with the sanitizer (profile counters identical with every checker on).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "szp/core/compressor.hpp"
#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/profile/report.hpp"
#include "support/mini_json.hpp"

namespace {

using namespace szp;
namespace gs = gpusim;
namespace prof = gpusim::profile;
using testsupport::JsonParser;
using testsupport::JsonValue;

std::vector<float> make_data(size_t n = 64 * 1024) {
  std::vector<float> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.001) *
                                 10.0);
  }
  return data;
}

/// Compress + decompress the test field on `dev`; returns nothing — the
/// caller reads the profiler.
void run_codec(gs::Device& dev, const core::Params& params) {
  const auto data = make_data();
  Compressor c(params);
  auto d_in = gs::to_device<float>(dev, std::span<const float>(data));
  gs::DeviceBuffer<byte_t> d_cmp(
      dev, core::max_compressed_bytes(data.size(), params.block_len));
  gs::DeviceBuffer<float> d_out(dev, data.size());
  const auto comp = c.compress_on_device(dev, d_in, data.size(), 20.0, d_cmp);
  (void)c.decompress_on_device(dev, d_cmp, d_out, comp.bytes);
  (void)gs::to_host(dev, d_out);
}

core::Params default_params() {
  core::Params p;
  p.mode = core::ErrorMode::kRel;
  p.error_bound = 1e-3;
  return p;
}

const prof::LaunchProfile* find_launch(const prof::SessionProfile& s,
                                       const std::string& kernel) {
  for (const auto& lp : s.launches) {
    if (lp.kernel == kernel) return &lp;
  }
  return nullptr;
}

TEST(Profile, DeviceCodecCountersAreNonzero) {
  gs::Device dev(4, gs::sanitize::Tools::none(), prof::Options::on());
  ASSERT_NE(dev.profiler(), nullptr);
  run_codec(dev, default_params());
  const auto session = dev.profile_snapshot();

  ASSERT_GE(session.launches.size(), 2u);
  for (const char* kernel : {"szp_compress", "szp_decompress"}) {
    const auto* lp = find_launch(session, kernel);
    ASSERT_NE(lp, nullptr) << kernel;
    EXPECT_GT(lp->grid_blocks, 0u);
    EXPECT_EQ(lp->blocks.executed, lp->grid_blocks);
    EXPECT_GT(lp->wall_ns, 0u);
    // Every paper stage must be attributed: bytes/ops and wall time.
    for (const gs::Stage st :
         {gs::Stage::kQuantPredict, gs::Stage::kFixedLenEncode,
          gs::Stage::kGlobalSync, gs::Stage::kBitShuffle}) {
      const auto& sp = lp->stages[static_cast<unsigned>(st)];
      EXPECT_FALSE(sp.counters_empty())
          << kernel << " stage " << gs::stage_name(st);
      EXPECT_GT(sp.ns, 0u) << kernel << " stage " << gs::stage_name(st);
    }
    // Warp primitives fire in QP/FE (shuffles) and the block reductions.
    std::uint64_t warp_total = 0;
    for (const auto c : lp->warp_ops) warp_total += c;
    EXPECT_GT(warp_total, 0u) << kernel;
    // cuSZp's kernels are warp-synchronous (one warp per block): any
    // nonzero barrier count would mean an accounting bug.
    EXPECT_EQ(lp->barriers, 0u) << kernel;
  }

  // The default chained scan publishes descriptors with release stores
  // and walks predecessors in the compression kernel.
  const auto* comp = find_launch(session, "szp_compress");
  EXPECT_GT(comp->atomic_stores, 0u);
  EXPECT_GT(comp->lookback_calls, 0u);
  EXPECT_EQ(comp->lookback_depth.count, comp->lookback_calls);

  // Buffer traffic and PCIe transfers were attributed.
  ASSERT_FALSE(session.buffers.empty());
  std::uint64_t buf_traffic = 0;
  for (const auto& b : session.buffers) {
    buf_traffic += b.read_bytes + b.write_bytes;
  }
  EXPECT_GT(buf_traffic, 0u);
  EXPECT_GT(session.memcpy.h2d_bytes, 0u);
  EXPECT_GT(session.memcpy.d2h_bytes, 0u);
  EXPECT_GT(session.memcpy.h2d_count, 0u);
}

TEST(Profile, BarriersAndWarpOpsCountedInSyntheticKernel) {
  gs::Device dev(2, gs::sanitize::Tools::none(), prof::Options::on());
  gs::launch(dev, "synthetic", 4, [](const gs::BlockCtx& ctx) {
    ctx.block_barrier();
    ctx.warp_op("ballot_sync", prof::WarpOp::kBallot, 0xffffffffu);
    ctx.block_barrier();
  });
  const auto session = dev.profile_snapshot();
  const auto* lp = find_launch(session, "synthetic");
  ASSERT_NE(lp, nullptr);
  EXPECT_EQ(lp->barriers, 8u);  // 2 per block x 4 blocks
  EXPECT_EQ(lp->warp_ops[static_cast<unsigned>(prof::WarpOp::kBallot)], 4u);
}

TEST(Profile, JsonReportParsesAndSatisfiesSchema) {
  gs::Device dev(4, gs::sanitize::Tools::none(), prof::Options::on());
  run_codec(dev, default_params());
  const auto session = dev.profile_snapshot();

  std::ostringstream os;
  const prof::SessionProfile sessions[] = {session};
  prof::write_profile_json(os, sessions, prof::ReportOptions{});
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str().substr(0, 400);

  const JsonValue* version = doc.find("szp_profile_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->num, 1.0);
  const JsonValue* sess = doc.find("sessions");
  ASSERT_NE(sess, nullptr);
  ASSERT_EQ(sess->arr.size(), 1u);
  const JsonValue* launches = sess->arr[0].find("launches");
  ASSERT_NE(launches, nullptr);
  ASSERT_GE(launches->arr.size(), 2u);
  bool saw_compress = false;
  for (const auto& l : launches->arr) {
    const JsonValue* kernel = l.find("kernel");
    ASSERT_NE(kernel, nullptr);
    const JsonValue* counters = l.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue* timing = l.find("timing");
    ASSERT_NE(timing, nullptr);
    EXPECT_GT(timing->find("wall_ns")->num, 0.0);
    if (kernel->str != "szp_compress") continue;
    saw_compress = true;
    const JsonValue* stages = counters->find("stages");
    ASSERT_NE(stages, nullptr);
    for (const char* st : {"QP", "FE", "GS", "BB"}) {
      ASSERT_NE(stages->find(st), nullptr) << st;
    }
    const JsonValue* sched = l.find("schedule");
    ASSERT_NE(sched, nullptr);
    const JsonValue* depth = sched->find("lookback_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_GT(depth->find("count")->num, 0.0);
  }
  EXPECT_TRUE(saw_compress);
  ASSERT_NE(sess->arr[0].find("buffers"), nullptr);
  ASSERT_NE(sess->arr[0].find("memcpy"), nullptr);
}

TEST(Profile, DerivedSectionUsesModelParams) {
  gs::Device dev(4, gs::sanitize::Tools::none(), prof::Options::on());
  run_codec(dev, default_params());
  const auto session = dev.profile_snapshot();

  prof::ModelParams model;
  model.gpu = "TestGPU";
  model.hbm_bandwidth = 1.5e12;
  model.pcie_bandwidth = 25e9;
  model.kernel_launch_s = 4e-6;
  model.op_cost.fill(1e-10);
  prof::ReportOptions opts;
  opts.model = &model;

  std::ostringstream os;
  const prof::SessionProfile sessions[] = {session};
  prof::write_profile_json(os, sessions, opts);
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonValue& launch0 = doc.find("sessions")->arr[0].find("launches")->arr[0];
  const JsonValue* derived = launch0.find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(derived->find("gpu")->str, "TestGPU");
  EXPECT_GT(derived->find("device_s")->num, 0.0);
  EXPECT_GT(derived->find("effective_gbps")->num, 0.0);
  EXPECT_GT(derived->find("arithmetic_intensity")->num, 0.0);
  const std::string bound = derived->find("bound")->str;
  EXPECT_TRUE(bound == "memory" || bound == "compute") << bound;

  // Same inputs through the direct API agree with the JSON.
  const auto dl = prof::derive_launch(session.launches[0], model);
  EXPECT_NEAR(dl.device_s, derived->find("device_s")->num,
              dl.device_s * 1e-6);
}

TEST(Profile, TextReportNamesKernelsAndStages) {
  gs::Device dev(2, gs::sanitize::Tools::none(), prof::Options::on());
  run_codec(dev, default_params());
  const auto session = dev.profile_snapshot();
  std::ostringstream os;
  const prof::SessionProfile sessions[] = {session};
  prof::write_profile_text(os, sessions, prof::ReportOptions{});
  const std::string text = os.str();
  EXPECT_NE(text.find("szp_compress"), std::string::npos);
  EXPECT_NE(text.find("szp_decompress"), std::string::npos);
  EXPECT_NE(text.find("QP"), std::string::npos);
  EXPECT_NE(text.find("lookback"), std::string::npos);
}

TEST(Profile, DisabledDeviceCollectsNothing) {
  gs::Device dev(2, gs::sanitize::Tools::none());  // env ignored, profiler off
  EXPECT_EQ(dev.profiler(), nullptr);
  run_codec(dev, default_params());
  const auto session = dev.profile_snapshot();
  EXPECT_TRUE(session.launches.empty());
  EXPECT_TRUE(session.buffers.empty());
  EXPECT_EQ(session.memcpy.h2d_bytes, 0u);
}

// Disabled-path budget, same contract (and bound) as the obs tracer: an
// instrumentation site with the profiler off is a null-pointer branch.
TEST(Profile, DisabledSitesAreBranchCheap) {
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 2'000'000;
  constexpr double kMaxDisabledNsPerSite = 100.0;

  gs::Device dev(2, gs::sanitize::Tools::none());
  gs::BlockCtx ctx;
  ctx.trace = &dev.trace();
  ASSERT_EQ(ctx.prof, nullptr);

  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    ctx.stage_ns(gs::Stage::kQuantPredict, 1);
    ctx.atomic_store_op();
    ctx.lookback(1, 0);
    ctx.warp_op("shfl_sync", prof::WarpOp::kShfl, 0xffffffffu);
  }
  const auto dt = Clock::now() - t0;
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
      (4.0 * kIters);
  RecordProperty("ns_per_site", std::to_string(ns));
  EXPECT_LT(ns, kMaxDisabledNsPerSite);
}

// Satellite: profiler and sanitizer compose. Armed together they must
// neither deadlock nor double-count — the deterministic counters are
// identical with and without every checker on (views book requested
// bytes exactly once, before any shadow interaction).
TEST(Profile, ComposesWithSanitizer) {
  gs::Device plain(4, gs::sanitize::Tools::none(), prof::Options::on());
  run_codec(plain, default_params());
  const auto plain_session = plain.profile_snapshot();

  gs::Device checked(4, gs::sanitize::Tools::all(), prof::Options::on());
  run_codec(checked, default_params());
  const auto checked_session = checked.profile_snapshot();
  EXPECT_TRUE(checked.sanitize_report().empty())
      << checked.sanitize_report().to_string();

  const prof::SessionProfile a[] = {plain_session};
  const prof::SessionProfile b[] = {checked_session};
  EXPECT_EQ(prof::counter_fingerprint(a), prof::counter_fingerprint(b));
}

TEST(Profile, ResetProfileDropsCollectedData) {
  gs::Device dev(2, gs::sanitize::Tools::none(), prof::Options::on());
  run_codec(dev, default_params());
  ASSERT_FALSE(dev.profile_snapshot().launches.empty());
  dev.reset_profile();
  const auto session = dev.profile_snapshot();
  EXPECT_TRUE(session.launches.empty());
  EXPECT_EQ(session.memcpy.h2d_bytes, 0u);
}

TEST(ProfileOptions, SpecParsing) {
  EXPECT_FALSE(prof::options_from_string("").enabled);
  EXPECT_FALSE(prof::options_from_string("0").enabled);
  EXPECT_FALSE(prof::options_from_string("off").enabled);
  const auto collect = prof::options_from_string("1");
  EXPECT_TRUE(collect.enabled);
  EXPECT_TRUE(collect.export_path.empty());
  EXPECT_TRUE(prof::options_from_string("on").enabled);
  const auto path = prof::options_from_string("/tmp/p.json");
  EXPECT_TRUE(path.enabled);
  EXPECT_EQ(path.export_path, "/tmp/p.json");
}

}  // namespace
