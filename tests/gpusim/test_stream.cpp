// Stream/event semantics of the simulated async runtime: FIFO ordering,
// cross-stream event edges, synchronize draining and error recovery,
// default-stream inline semantics, op-timeline records, and the
// racecheck happens-before model across streams (a missing Event::wait
// between dependent launches is a reportable race).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/stream.hpp"
#include "szp/gpusim/view.hpp"

namespace szp::gpusim {
namespace {

using sanitize::Kind;
using sanitize::Tools;

Tools racecheck_only() {
  Tools t;
  t.racecheck = true;
  return t;
}

TEST(Stream, FifoOrderOnOneStream) {
  Device dev(1);
  Stream s(dev, "fifo");
  std::vector<int> order;  // touched only by the stream thread, then sync
  for (int i = 0; i < 64; ++i) {
    s.host_task("append", [&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(Stream, OpsRunOffTheCallersThread) {
  Device dev(1);
  Stream s(dev);
  std::thread::id op_tid;
  s.host_task("who", [&] { op_tid = std::this_thread::get_id(); });
  s.synchronize();
  EXPECT_NE(op_tid, std::this_thread::get_id());
  EXPECT_TRUE(s.idle());
}

TEST(Stream, AsyncCopyLaunchCopyMatchesSyncPath) {
  const size_t n = 256;
  std::vector<float> src(n);
  for (size_t i = 0; i < n; ++i) src[i] = static_cast<float>(i) * 0.5f;

  Device dev(2);
  DeviceBuffer<float> a(dev, n);
  DeviceBuffer<float> b(dev, n);
  std::vector<float> got(n, -1.0f);
  {
    Stream s(dev, "roundtrip");
    s.memcpy_h2d(a, std::span<const float>(src));
    s.launch("double_kernel", 4, [&](const BlockCtx& ctx) {
      const auto in = device_view(std::as_const(a), ctx);
      const auto out = device_view(b, ctx);
      const size_t per = n / ctx.grid_blocks;
      for (size_t i = ctx.block_idx * per; i < (ctx.block_idx + 1) * per; ++i) {
        out.store(i, in.load(i) * 2.0f);
      }
    });
    s.memcpy_d2h(std::span<float>(got), b, n);
    s.synchronize();
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], src[i] * 2.0f) << i;
  // FIFO made the h2d -> kernel -> d2h chain behave exactly like the
  // synchronous API; the device counters agree.
  const auto t = dev.snapshot();
  EXPECT_EQ(t.h2d_bytes, n * sizeof(float));
  EXPECT_EQ(t.d2h_bytes, n * sizeof(float));
  EXPECT_EQ(t.kernel_launches, 1u);
}

TEST(Event, CrossStreamEdgeOrdersWork) {
  Device dev(1);
  Stream prod(dev, "producer");
  Stream cons(dev, "consumer");
  std::atomic<int> value{0};
  prod.host_task("produce", [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    value.store(42, std::memory_order_release);
  });
  Event ev;
  prod.record(ev);
  cons.wait(ev);
  int seen = -1;
  cons.host_task("consume",
                 [&] { seen = value.load(std::memory_order_acquire); });
  cons.synchronize();
  EXPECT_EQ(seen, 42);  // the wait held the consumer until the record ran
  prod.synchronize();
}

TEST(Event, NeverRecordedIsCompleteAndWaitIsNoOp) {
  Event ev;
  EXPECT_TRUE(ev.query());
  ev.synchronize();  // no-op, returns immediately

  Device dev(1);
  Stream s(dev);
  s.wait(ev);  // never recorded: no-op, like cudaStreamWaitEvent
  bool ran = false;
  s.host_task("go", [&] { ran = true; });
  s.synchronize();
  EXPECT_TRUE(ran);

  s.record(ev);
  s.synchronize();
  EXPECT_TRUE(ev.query());
  ev.synchronize();
}

TEST(Stream, SynchronizeRethrowsFirstErrorThenStreamIsReusable) {
  Device dev(1);
  Stream s(dev);
  std::atomic<int> ran{0};
  s.host_task("boom", [] { throw format_error("boom"); });
  s.host_task("skipped", [&] { ran.fetch_add(1); });  // poisoned: skipped
  EXPECT_THROW(s.synchronize(), format_error);
  EXPECT_EQ(ran.load(), 0);
  // The error was observed; the stream accepts and runs new work.
  s.host_task("after", [&] { ran.fetch_add(1); });
  s.synchronize();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Stream, PoisonedStreamStillCompletesEventRecords) {
  Device dev(1);
  Stream a(dev, "bad");
  Stream b(dev, "waiter");
  a.host_task("boom", [] { throw format_error("boom"); });
  Event ev;
  a.record(ev);  // after the poisoning op — must still complete
  b.wait(ev);
  std::atomic<bool> ran{false};
  b.host_task("go", [&] { ran.store(true); });
  b.synchronize();  // would deadlock if the record were skipped
  EXPECT_TRUE(ran.load());
  EXPECT_THROW(a.synchronize(), format_error);
}

TEST(Device, SynchronizeDrainsEveryStreamAndRethrows) {
  Device dev(1);
  Stream a(dev);
  Stream b(dev);
  std::atomic<int> n{0};
  a.host_task("x", [&] { n.fetch_add(1); });
  b.host_task("y", [&] { n.fetch_add(1); });
  dev.synchronize();
  EXPECT_EQ(n.load(), 2);
  EXPECT_EQ(dev.async_ops_pending(), 0u);
  a.host_task("err", [] { throw format_error("bad"); });
  EXPECT_THROW(dev.synchronize(), format_error);
}

TEST(Device, SnapshotThrowsWhileAsyncOpsPending) {
  Device dev(1);
  Stream s(dev);
  std::atomic<bool> release{false};
  s.host_task("gate", [&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // The op is submitted and not retired: the counters are not quiescent.
  EXPECT_THROW((void)dev.snapshot(), std::logic_error);
  EXPECT_THROW(dev.reset_trace(), std::logic_error);
  release.store(true);
  s.synchronize();
  (void)dev.snapshot();  // quiescent again
}

TEST(Stream, DefaultStreamIsInlineAndSynchronous) {
  Device dev(1);
  std::thread::id op_tid;
  dev.default_stream().host_task("inline",
                                 [&] { op_tid = std::this_thread::get_id(); });
  EXPECT_EQ(op_tid, std::this_thread::get_id());
  // Exceptions surface at submission, exactly like the legacy sync API.
  EXPECT_THROW(
      dev.default_stream().host_task("x", [] { throw format_error("e"); }),
      format_error);
  dev.default_stream().synchronize();  // no retained error
  EXPECT_TRUE(dev.default_stream().idle());
}

TEST(Timeline, RecordsOpsWithLanesKindsAndPerOpTraces) {
  Device dev(1);
  dev.set_timeline_enabled(true);
  const size_t n = 16;
  DeviceBuffer<float> buf(dev, n);
  std::vector<float> host(n, 1.0f);
  Stream s(dev, "lane0");
  s.memcpy_h2d(buf, std::span<const float>(host));
  s.launch("tl_kernel", 2, [&](const BlockCtx& ctx) {
    const auto v = device_view(buf, ctx);
    const size_t per = n / ctx.grid_blocks;
    for (size_t i = ctx.block_idx * per; i < (ctx.block_idx + 1) * per; ++i) {
      v.store(i, 2.0f);
    }
  });
  s.host_task("ht", [] {});
  Event ev;
  s.record(ev);
  s.synchronize();
  dev.set_timeline_enabled(false);

  const auto tl = dev.timeline();
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl[0].kind, OpKind::kMemcpyH2D);
  EXPECT_EQ(tl[1].kind, OpKind::kKernel);
  EXPECT_EQ(tl[2].kind, OpKind::kHostTask);
  EXPECT_EQ(tl[3].kind, OpKind::kEventRecord);
  for (size_t i = 0; i < tl.size(); ++i) {
    EXPECT_EQ(tl[i].stream, "lane0");
    EXPECT_GE(tl[i].t_end_ns, tl[i].t_begin_ns);
    if (i > 0) {
      EXPECT_GT(tl[i].seq, tl[i - 1].seq);
    }
  }
  EXPECT_EQ(tl[0].trace.h2d_bytes, n * sizeof(float));
  EXPECT_EQ(tl[1].trace.kernel_launches, 1u);
  EXPECT_EQ(tl[3].event_id, ev.id());

  dev.clear_timeline();
  EXPECT_TRUE(dev.timeline().empty());
}

// --- racecheck happens-before across streams ----------------------------

TEST(StreamRace, MissingEventEdgeBetweenStreamsIsReported) {
  Device dev(1, racecheck_only());
  DeviceBuffer<std::uint32_t> buf(dev, 32, 0u);
  {
    Stream a(dev, "writer");
    Stream b(dev, "reader");
    a.launch("race_writer", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(buf, ctx);
      for (size_t i = 0; i < 32; ++i) v.store(i, 7u);
    });
    // No record/wait edge: the reader's launch has no happens-before path
    // from the writer's, so every cell is an unordered cross-launch pair.
    b.launch("race_reader", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(std::as_const(buf), ctx);
      std::uint32_t sum = 0;
      for (size_t i = 0; i < 32; ++i) sum += v.load(i);
      (void)sum;
    });
    a.synchronize();
    b.synchronize();
  }
  const auto rep = dev.sanitize_report();
  EXPECT_GE(rep.count(Kind::kRace), 1u) << rep.to_string();
  dev.clear_sanitize_findings();
}

TEST(StreamRace, EventEdgeMakesTheSameScheduleClean) {
  Device dev(1, racecheck_only());
  DeviceBuffer<std::uint32_t> buf(dev, 32, 0u);
  {
    Stream a(dev, "writer");
    Stream b(dev, "reader");
    a.launch("ordered_writer", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(buf, ctx);
      for (size_t i = 0; i < 32; ++i) v.store(i, 7u);
    });
    Event done;
    a.record(done);
    b.wait(done);  // the happens-before edge the twin above is missing
    b.launch("ordered_reader", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(std::as_const(buf), ctx);
      std::uint32_t sum = 0;
      for (size_t i = 0; i < 32; ++i) sum += v.load(i);
      EXPECT_EQ(sum, 7u * 32u);
    });
    a.synchronize();
    b.synchronize();
  }
  const auto rep = dev.sanitize_report();
  EXPECT_EQ(rep.count(Kind::kRace), 0u) << rep.to_string();
  dev.clear_sanitize_findings();
}

TEST(StreamRace, StreamSynchronizeOrdersHostAgainstStreamWork) {
  Device dev(1, racecheck_only());
  DeviceBuffer<std::uint32_t> buf(dev, 8, 0u);
  {
    Stream a(dev, "writer");
    a.launch("sync_writer", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(buf, ctx);
      for (size_t i = 0; i < 8; ++i) v.store(i, 3u);
    });
    a.synchronize();
    // Host-side launch (default stream) after synchronize: ordered.
    launch(dev, "host_reader", 1, [&](const BlockCtx& ctx) {
      const auto v = device_view(std::as_const(buf), ctx);
      for (size_t i = 0; i < 8; ++i) EXPECT_EQ(v.load(i), 3u);
    });
  }
  const auto rep = dev.sanitize_report();
  EXPECT_EQ(rep.count(Kind::kRace), 0u) << rep.to_string();
  dev.clear_sanitize_findings();
}

}  // namespace
}  // namespace szp::gpusim
