// Warp-primitive emulation vs. straightforward references.
#include <gtest/gtest.h>

#include <numeric>

#include "szp/gpusim/warp.hpp"
#include "szp/util/rng.hpp"

namespace szp::gpusim::warp {
namespace {

Lanes<std::uint64_t> random_lanes(std::uint64_t seed, std::uint64_t max) {
  Rng rng(seed);
  Lanes<std::uint64_t> v{};
  for (auto& x : v) x = rng.next_below(max);
  return v;
}

TEST(Warp, ShflBroadcast) {
  Lanes<int> v{};
  std::iota(v.begin(), v.end(), 100);
  EXPECT_EQ(shfl(v, 0), 100);
  EXPECT_EQ(shfl(v, 31), 131);
  EXPECT_EQ(shfl(v, 35), 103);  // wraps modulo warp size (CUDA semantics)
}

TEST(Warp, ShflUpKeepsLowLanes) {
  Lanes<int> v{};
  std::iota(v.begin(), v.end(), 0);
  const auto s = shfl_up(v, 4);
  for (unsigned lane = 0; lane < 4; ++lane) EXPECT_EQ(s[lane], int(lane));
  for (unsigned lane = 4; lane < kWarpSize; ++lane) {
    EXPECT_EQ(s[lane], int(lane - 4));
  }
}

TEST(Warp, ShflDownKeepsHighLanes) {
  Lanes<int> v{};
  std::iota(v.begin(), v.end(), 0);
  const auto s = shfl_down(v, 3);
  for (unsigned lane = 0; lane < kWarpSize - 3; ++lane) {
    EXPECT_EQ(s[lane], int(lane + 3));
  }
  for (unsigned lane = kWarpSize - 3; lane < kWarpSize; ++lane) {
    EXPECT_EQ(s[lane], int(lane));
  }
}

TEST(Warp, BallotMatchesBits) {
  Lanes<bool> pred{};
  pred[0] = pred[5] = pred[31] = true;
  const std::uint32_t mask = ballot(pred);
  EXPECT_EQ(mask, (1u << 0) | (1u << 5) | (1u << 31));
  Lanes<bool> none{};
  EXPECT_EQ(ballot(none), 0u);
}

class WarpScan : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WarpScan, InclusiveMatchesReference) {
  const auto v = random_lanes(GetParam(), 1u << 20);
  const auto scanned = inclusive_scan(v);
  std::uint64_t acc = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    acc += v[lane];
    ASSERT_EQ(scanned[lane], acc) << "lane " << lane;
  }
}

TEST_P(WarpScan, ExclusiveMatchesReference) {
  const auto v = random_lanes(GetParam() ^ 0xABCD, 1u << 20);
  const auto scanned = exclusive_scan(v);
  std::uint64_t acc = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    ASSERT_EQ(scanned[lane], acc) << "lane " << lane;
    acc += v[lane];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarpScan,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Warp, Reductions) {
  const auto v = random_lanes(99, 1000);
  std::uint64_t mx = 0, sum = 0;
  for (const auto x : v) {
    mx = std::max(mx, x);
    sum += x;
  }
  EXPECT_EQ(reduce_max(v), mx);
  EXPECT_EQ(reduce_add(v), sum);
}

TEST(Warp, ScanAllZeros) {
  Lanes<std::uint64_t> zeros{};
  const auto inc = inclusive_scan(zeros);
  for (const auto x : inc) EXPECT_EQ(x, 0u);
}

}  // namespace
}  // namespace szp::gpusim::warp
