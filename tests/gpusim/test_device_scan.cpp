// Device runtime: buffers, launches, trace accounting, and both prefix-sum
// implementations against std::exclusive_scan under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string_view>

#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/scan.hpp"
#include "szp/util/rng.hpp"

namespace szp::gpusim {
namespace {

TEST(Device, AllocationLedger) {
  Device dev;
  EXPECT_EQ(dev.bytes_allocated(), 0u);
  {
    DeviceBuffer<float> a(dev, 1000);
    EXPECT_EQ(dev.bytes_allocated(), 4000u);
    DeviceBuffer<std::uint64_t> b(dev, 10);
    EXPECT_EQ(dev.bytes_allocated(), 4080u);
    DeviceBuffer<float> c = std::move(a);
    EXPECT_EQ(dev.bytes_allocated(), 4080u);  // move does not double-count
  }
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Device, CopiesAccountPcieTraffic) {
  Device dev;
  const std::vector<float> host(256, 1.5f);
  auto buf = to_device<float>(dev, host);
  EXPECT_EQ(dev.snapshot().h2d_bytes, 1024u);
  const auto back = to_host(dev, buf);
  EXPECT_EQ(dev.snapshot().d2h_bytes, 1024u);
  EXPECT_EQ(back, host);

  DeviceBuffer<float> other(dev, 256);
  copy_d2d(dev, other, buf, 256);
  EXPECT_EQ(dev.snapshot().d2d_bytes, 1024u);
}

TEST(Device, CopyOverflowThrows) {
  Device dev;
  DeviceBuffer<float> small(dev, 4);
  const std::vector<float> big(8, 0.0f);
  EXPECT_THROW(copy_h2d<float>(dev, small, big), format_error);
  std::vector<float> dst(2);
  EXPECT_THROW(copy_d2h<float>(dev, dst, small, 4), format_error);
}

TEST(Launch, CoversEveryBlockExactlyOnce) {
  Device dev;
  const size_t grid = 1000;
  std::vector<std::atomic<int>> hits(grid);
  launch(dev, "coverage", grid, [&](const BlockCtx& ctx) {
    hits[ctx.block_idx].fetch_add(1);
    EXPECT_EQ(ctx.grid_blocks, grid);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(dev.snapshot().kernel_launches, 1u);
}

TEST(Launch, LogsKernelNames) {
  Device dev;
  launch(dev, "alpha", 3, [](const BlockCtx&) {});
  launch(dev, "beta", 7, [](const BlockCtx&) {});
  const auto log = dev.launch_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].name, "alpha");
  EXPECT_EQ(log[0].grid_blocks, 3u);
  EXPECT_EQ(log[1].name, "beta");
}

TEST(Launch, PropagatesExceptions) {
  Device dev;
  EXPECT_THROW(launch(dev, "boom", 64,
                      [](const BlockCtx& ctx) {
                        if (ctx.block_idx == 13) {
                          throw format_error("boom");
                        }
                      }),
               format_error);
}

TEST(Launch, ZeroGridIsNoop) {
  Device dev;
  launch(dev, "empty", 0, [](const BlockCtx&) { FAIL(); });
  EXPECT_EQ(dev.snapshot().kernel_launches, 1u);
}

TEST(Trace, StageAccountingAndDiff) {
  Device dev;
  const auto before = dev.snapshot();
  launch(dev, "acct", 4, [&](const BlockCtx& ctx) {
    ctx.read(Stage::kQuantPredict, 100);
    ctx.write(Stage::kBitShuffle, 50);
    ctx.ops(Stage::kGlobalSync, 7);
  });
  const auto diff = dev.snapshot() - before;
  EXPECT_EQ(diff.stages[unsigned(Stage::kQuantPredict)].read_bytes, 400u);
  EXPECT_EQ(diff.stages[unsigned(Stage::kBitShuffle)].write_bytes, 200u);
  EXPECT_EQ(diff.stages[unsigned(Stage::kGlobalSync)].ops, 28u);
  EXPECT_EQ(diff.total_device_read_bytes(), 400u);
  EXPECT_EQ(diff.total_device_write_bytes(), 200u);
  EXPECT_EQ(diff.total_ops(), 28u);
}

TEST(Trace, StageNamesAreDistinct) {
  std::set<std::string_view> names;
  for (unsigned i = 0; i < kNumStages; ++i) {
    names.insert(stage_name(static_cast<Stage>(i)));
  }
  EXPECT_EQ(names.size(), kNumStages);
}

class ScanSize : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanSize, ChainedMatchesStdExclusiveScan) {
  const size_t n = GetParam();
  Device dev;
  Rng rng(n);
  std::vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.next_below(1000);
  std::vector<std::uint64_t> expected(n);
  std::exclusive_scan(host.begin(), host.end(), expected.begin(),
                      std::uint64_t{0});
  const std::uint64_t expected_total =
      std::accumulate(host.begin(), host.end(), std::uint64_t{0});

  auto buf = to_device<std::uint64_t>(dev, host);
  const auto total =
      chained_exclusive_scan(dev, buf, Stage::kGlobalSync, 64);
  EXPECT_EQ(total, expected_total);
  const auto out = to_host(dev, buf);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected[i]) << i;
}

TEST_P(ScanSize, TwoPassMatchesStdExclusiveScan) {
  const size_t n = GetParam();
  Device dev;
  Rng rng(n ^ 0x777);
  std::vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.next_below(1 << 16);
  std::vector<std::uint64_t> expected(n);
  std::exclusive_scan(host.begin(), host.end(), expected.begin(),
                      std::uint64_t{0});

  auto buf = to_device<std::uint64_t>(dev, host);
  const auto total = twopass_exclusive_scan(dev, buf, Stage::kGlobalSync, 64);
  EXPECT_EQ(total,
            std::accumulate(host.begin(), host.end(), std::uint64_t{0}));
  const auto out = to_host(dev, buf);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSize,
                         ::testing::Values(0u, 1u, 2u, 63u, 64u, 65u, 1000u,
                                           4096u, 100000u));

TEST(Scan, ChainedUsesOneKernelTwoPassUsesThree) {
  Device dev;
  DeviceBuffer<std::uint64_t> a(dev, 10000, 1);
  dev.clear_launch_log();
  (void)chained_exclusive_scan(dev, a, Stage::kGlobalSync);
  EXPECT_EQ(dev.launch_log().size(), 1u);

  DeviceBuffer<std::uint64_t> b(dev, 10000, 1);
  dev.clear_launch_log();
  (void)twopass_exclusive_scan(dev, b, Stage::kGlobalSync);
  EXPECT_EQ(dev.launch_log().size(), 3u);
}

TEST(Scan, ChainedStressManyRounds) {
  // Repeated runs exercise different block schedules of the lookback.
  Device dev;
  Rng rng(31337);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 512 + rng.next_below(4096);
    std::vector<std::uint64_t> host(n);
    for (auto& v : host) v = rng.next_below(100);
    const std::uint64_t expect_total =
        std::accumulate(host.begin(), host.end(), std::uint64_t{0});
    auto buf = to_device<std::uint64_t>(dev, host);
    ASSERT_EQ(chained_exclusive_scan(dev, buf, Stage::kGlobalSync, 32),
              expect_total);
  }
}

TEST(Scan, RejectsHugeAggregates) {
  Device dev;
  DeviceBuffer<std::uint64_t> buf(dev, 1, ~std::uint64_t{0});
  EXPECT_THROW((void)chained_exclusive_scan(dev, buf, Stage::kGlobalSync),
               format_error);
}

}  // namespace
}  // namespace szp::gpusim
