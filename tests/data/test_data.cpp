// Dataset substrate: registry consistency, generator determinism and the
// statistical properties the experiments depend on (smoothness, sparsity,
// heavy-tailed amplitudes, RTM time behaviour), plus f32 IO and slicing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "szp/data/generators.hpp"
#include "szp/data/registry.hpp"

namespace szp::data {
namespace {

TEST(Registry, SuiteInfoMatchesPaperTable2) {
  ASSERT_EQ(all_suites().size(), 6u);
  EXPECT_EQ(suite_info(Suite::kHurricane).paper_dims.to_string(),
            "100x500x500");
  EXPECT_EQ(suite_info(Suite::kHurricane).paper_num_fields, 13u);
  EXPECT_EQ(suite_info(Suite::kNyx).paper_dims.to_string(), "512x512x512");
  EXPECT_EQ(suite_info(Suite::kQmcpack).paper_dims.to_string(),
            "288x115x69x69");
  EXPECT_EQ(suite_info(Suite::kRtm).paper_num_fields, 36u);
  EXPECT_EQ(suite_info(Suite::kHacc).paper_dims.count(), 280953867u);
  EXPECT_EQ(suite_info(Suite::kCesmAtm).paper_num_fields, 79u);
}

TEST(Registry, FieldsAreDeterministic) {
  for (const auto& info : all_suites()) {
    const Field a = make_field(info.id, 0, 0.05);
    const Field b = make_field(info.id, 0, 0.05);
    ASSERT_EQ(a.values, b.values) << info.name;
    ASSERT_EQ(a.name, b.name);
  }
}

TEST(Registry, FieldsWithinSuiteDiffer) {
  const Field a = make_field(Suite::kHurricane, 0, 0.05);
  const Field b = make_field(Suite::kHurricane, 1, 0.05);
  EXPECT_NE(a.values, b.values);
}

TEST(Registry, ScaleControlsElementCount) {
  for (const auto& info : all_suites()) {
    const size_t small = scaled_dims(info.id, 0.1).count();
    const size_t large = scaled_dims(info.id, 1.0).count();
    EXPECT_LT(small, large) << info.name;
    // Roughly linear in scale (within integer-rounding slack).
    EXPECT_GT(static_cast<double>(large) / static_cast<double>(small), 4.0);
  }
}

TEST(Registry, AllFieldsFiniteAndNonConstant) {
  for (const auto& info : all_suites()) {
    for (size_t fidx = 0; fidx < info.num_fields; ++fidx) {
      const Field f = make_field(info.id, fidx, 0.03);
      ASSERT_EQ(f.count(), f.dims.count());
      double range = f.value_range();
      ASSERT_TRUE(std::isfinite(range)) << info.name << " " << fidx;
      ASSERT_GT(range, 0) << info.name << " " << fidx;
      for (const float v : f.values) ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Generators, HeavyTailedAmplitude) {
  // The property the CR ladders rely on: most samples are orders of
  // magnitude below the value range.
  const Field f = make_field(Suite::kHurricane, 0, 0.1);
  const double range = f.value_range();
  size_t quiet = 0;
  for (const float v : f.values) {
    if (std::abs(v) < 1e-2 * range) ++quiet;
  }
  EXPECT_GT(static_cast<double>(quiet) / f.count(), 0.5);
}

TEST(Generators, RtmHasExactZerosAheadOfFront) {
  const Field f = make_rtm_snapshot(600, 0.1);
  size_t zeros = 0;
  for (const float v : f.values) {
    if (v == 0.0f) ++zeros;
  }
  // Early timestep: the wave has lit only a small part of the volume.
  EXPECT_GT(static_cast<double>(zeros) / f.count(), 0.5);
}

TEST(Generators, RtmRangeDecaysWithTime) {
  double prev = 1e30;
  for (const size_t t : {600u, 1500u, 2400u, 3300u}) {
    const double r = make_rtm_snapshot(t, 0.05).value_range();
    EXPECT_LT(r, prev) << t;
    prev = r;
  }
}

TEST(Generators, RtmZeroFractionShrinksWithTime) {
  auto zero_frac = [](const Field& f) {
    size_t z = 0;
    for (const float v : f.values) z += (v == 0.0f);
    return static_cast<double>(z) / f.count();
  };
  EXPECT_GT(zero_frac(make_rtm_snapshot(600, 0.05)),
            zero_frac(make_rtm_snapshot(3000, 0.05)));
}

TEST(Generators, ParticleStreamIsRoughAtSampleScale) {
  const Field f = particle_stream("vx", 100000, 7, 7600, 130);
  // Adjacent-sample differences are noise-dominated: their stddev is close
  // to sqrt(2)*noise_sigma within halos.
  double sumsq = 0;
  size_t n = 0;
  for (size_t i = 1; i < f.count(); ++i) {
    if (i % 512 == 0) continue;  // skip halo boundaries
    const double d = f.values[i] - f.values[i - 1];
    sumsq += d * d;
    ++n;
  }
  const double sigma = std::sqrt(sumsq / n);
  EXPECT_NEAR(sigma, 130.0 * std::sqrt(2.0), 10.0);
}

TEST(Generators, CosineMixtureRespectsAmplitudeBound) {
  const Field f =
      cosine_mixture("t", Dims{{64, 64}}, 3, 12, 8, 64, 1.0, 5.0, 2.0);
  for (const float v : f.values) {
    ASSERT_LE(std::abs(v - 2.0f), 5.0f + 1e-4f);
  }
}

TEST(Generators, LogEnvelopeOnlyScalesDown) {
  Field f = cosine_mixture("t", Dims{{64, 64}}, 4, 8, 8, 64, 1.0, 1.0, 0.0);
  const Field orig = f;
  apply_log_envelope(f, 9, -5, 0, 16, 64);
  for (size_t i = 0; i < f.count(); ++i) {
    ASSERT_LE(std::abs(f.values[i]), std::abs(orig.values[i]) + 1e-6);
  }
}

TEST(FieldIo, F32Roundtrip) {
  const Field f = make_field(Suite::kCesmAtm, 0, 0.02);
  const std::string path = "/tmp/szp_test_io.f32";
  save_f32(path, f);
  const Field g = load_f32(path, f.dims, "reloaded");
  EXPECT_EQ(g.values, f.values);
  EXPECT_EQ(g.dims, f.dims);
  std::filesystem::remove(path);
}

TEST(FieldIo, LoadErrors) {
  EXPECT_THROW((void)load_f32("/nonexistent/x.f32", Dims{{4}}), format_error);
  const std::string path = "/tmp/szp_short.f32";
  save_f32(path, Field{"s", Dims{{2}}, {1.0f, 2.0f}});
  EXPECT_THROW((void)load_f32(path, Dims{{100}}), format_error);
  std::filesystem::remove(path);
}

TEST(Field, Slice2D) {
  Field f{"t", Dims{{3, 4, 5}}, std::vector<float>(60)};
  for (size_t i = 0; i < 60; ++i) f.values[i] = static_cast<float>(i);
  const Slice2D s = slice2d(f, 1);
  EXPECT_EQ(s.height, 4u);
  EXPECT_EQ(s.width, 5u);
  ASSERT_EQ(s.values.size(), 20u);
  EXPECT_EQ(s.values[0], 20.0f);
  EXPECT_EQ(s.values[19], 39.0f);
  EXPECT_THROW((void)slice2d(f, 3), format_error);
  Field one_d{"o", Dims{{7}}, std::vector<float>(7)};
  EXPECT_THROW((void)slice2d(one_d, 0), format_error);
}

TEST(Field, DimsHelpers) {
  const Dims d{{2, 3, 4}};
  EXPECT_EQ(d.count(), 24u);
  EXPECT_EQ(d.ndim(), 3u);
  EXPECT_EQ(d.to_string(), "2x3x4");
  EXPECT_EQ(Dims{}.count(), 0u);
}

}  // namespace
}  // namespace szp::data
