// Quality metrics: known values, invariances, and the behaviours the
// rate-distortion benches rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "szp/metrics/error.hpp"
#include "szp/metrics/ssim.hpp"
#include "szp/util/rng.hpp"

namespace szp::metrics {
namespace {

std::vector<float> ramp(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i);
  return v;
}

TEST(ErrorStats, IdenticalDataIsPerfect) {
  const auto a = ramp(1000);
  const auto s = compare(a, a);
  EXPECT_EQ(s.max_abs_err, 0);
  EXPECT_TRUE(std::isinf(s.psnr));
  EXPECT_EQ(s.nrmse, 0);
  EXPECT_DOUBLE_EQ(s.pearson, 1.0);
  EXPECT_DOUBLE_EQ(s.value_range, 999.0);
}

TEST(ErrorStats, KnownUniformError) {
  // b = a + 1 everywhere: RMSE = 1, range = 999 -> PSNR = 20*log10(999).
  const auto a = ramp(1000);
  auto b = a;
  for (auto& v : b) v += 1.0f;
  const auto s = compare(a, b);
  EXPECT_DOUBLE_EQ(s.max_abs_err, 1.0);
  EXPECT_NEAR(s.psnr, 20.0 * std::log10(999.0), 1e-6);
  EXPECT_NEAR(s.nrmse, 1.0 / 999.0, 1e-9);
  EXPECT_NEAR(s.pearson, 1.0, 1e-12);  // shift preserves correlation
}

TEST(ErrorStats, AntiCorrelated) {
  const auto a = ramp(100);
  std::vector<float> b(a.rbegin(), a.rend());
  EXPECT_NEAR(compare(a, b).pearson, -1.0, 1e-12);
}

TEST(ErrorStats, SizeMismatchThrows) {
  const auto a = ramp(10);
  const auto b = ramp(11);
  EXPECT_THROW((void)compare(a, b), std::invalid_argument);
}

TEST(ErrorBounded, ExactThreshold) {
  const std::vector<float> a = {0, 1, 2};
  const std::vector<float> b = {0.5f, 1.5f, 2.5f};
  EXPECT_TRUE(error_bounded(a, b, 0.5));
  EXPECT_FALSE(error_bounded(a, b, 0.4999));
  EXPECT_FALSE(error_bounded(a, ramp(2), 100));  // size mismatch
}

TEST(Ratios, CompressionRatioAndBitRate) {
  EXPECT_DOUBLE_EQ(compression_ratio(4000, 400), 10.0);
  EXPECT_EQ(compression_ratio(4000, 0), 0.0);
  EXPECT_DOUBLE_EQ(bit_rate(1000, 500), 4.0);  // 500 B over 1000 points
  EXPECT_EQ(bit_rate(0, 10), 0.0);
}

TEST(Ssim, IdenticalIsOne) {
  Rng rng(5);
  std::vector<float> a(64 * 64);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  EXPECT_DOUBLE_EQ(ssim_2d(a, a, 64, 64), 1.0);
  EXPECT_DOUBLE_EQ(ssim_1d(a, a), 1.0);
}

TEST(Ssim, DegradesWithNoise) {
  Rng rng(6);
  std::vector<float> a(128 * 128);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(i * 0.01) + std::cos(i * 0.003));
  }
  auto slightly = a, heavily = a;
  for (auto& v : slightly) v += static_cast<float>(rng.normal() * 0.01);
  for (auto& v : heavily) v += static_cast<float>(rng.normal() * 0.5);
  const double s_slight = ssim_2d(a, slightly, 128, 128);
  const double s_heavy = ssim_2d(a, heavily, 128, 128);
  EXPECT_GT(s_slight, 0.95);
  EXPECT_LT(s_heavy, s_slight);
}

TEST(Ssim, DetectsStructuralLoss) {
  // Flattening blocks (the cuSZx failure mode) hurts SSIM even when the
  // pointwise error is moderate.
  std::vector<float> a(64 * 64);
  for (size_t y = 0; y < 64; ++y) {
    for (size_t x = 0; x < 64; ++x) {
      a[y * 64 + x] = static_cast<float>(std::sin(x * 0.4) * std::sin(y * 0.4));
    }
  }
  std::vector<float> flat(a.size());
  for (size_t y0 = 0; y0 < 64; y0 += 8) {
    for (size_t x0 = 0; x0 < 64; x0 += 8) {
      double mean = 0;
      for (size_t y = y0; y < y0 + 8; ++y) {
        for (size_t x = x0; x < x0 + 8; ++x) mean += a[y * 64 + x];
      }
      mean /= 64.0;
      for (size_t y = y0; y < y0 + 8; ++y) {
        for (size_t x = x0; x < x0 + 8; ++x) {
          flat[y * 64 + x] = static_cast<float>(mean);
        }
      }
    }
  }
  EXPECT_LT(ssim_2d(a, flat, 64, 64), 0.5);
}

TEST(Ssim, FieldDispatchByDimension) {
  data::Field f3{"a", data::Dims{{4, 32, 32}}, std::vector<float>(4096)};
  for (size_t i = 0; i < f3.values.size(); ++i) {
    f3.values[i] = static_cast<float>(std::sin(i * 0.02));
  }
  EXPECT_DOUBLE_EQ(ssim(f3, f3), 1.0);
  data::Field f1{"b", data::Dims{{512}}, std::vector<float>(512, 1.0f)};
  EXPECT_DOUBLE_EQ(ssim(f1, f1), 1.0);
  data::Field other{"c", data::Dims{{512, 1}}, std::vector<float>(512)};
  EXPECT_THROW((void)ssim(f3, other), std::invalid_argument);
}

TEST(Ssim, RangeStabilizerFromReference) {
  // A constant pair is perfectly similar regardless of derived range.
  const std::vector<float> c(256, 3.0f);
  EXPECT_DOUBLE_EQ(ssim_2d(c, c, 16, 16), 1.0);
}

}  // namespace
}  // namespace szp::metrics
