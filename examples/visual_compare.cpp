// Visual comparison: decompress one field with all four codecs at a
// matched compression ratio and render slice images (PGM) plus difference
// maps — the paper's Figs. 16/19 workflow, scriptable.
//
//   ./build/examples/visual_compare [outdir]   (default: visual_out)
#include <filesystem>
#include <iostream>
#include <string>

#include "szp/data/registry.hpp"
#include "szp/harness/codecs.hpp"
#include "szp/metrics/error.hpp"
#include "szp/vis/pgm.hpp"

int main(int argc, char** argv) {
  using namespace szp;
  const std::string outdir = argc > 1 ? argv[1] : "visual_out";
  std::filesystem::create_directories(outdir);

  const auto field = data::make_field(data::Suite::kCesmAtm, 0, 1.0);
  const auto orig = data::slice2d(field, 0);
  vis::write_pgm(outdir + "/original.pgm", orig);
  std::cout << "Field " << field.name << " " << field.dims.to_string()
            << ", range " << field.value_range() << "\n\n";

  const harness::CodecSetting settings[] = {
      {harness::CodecId::kSzp, 1e-2, 8},
      {harness::CodecId::kSz, 1e-2, 8},
      {harness::CodecId::kSzx, 1e-2, 8},
      {harness::CodecId::kZfp, 1e-2, 4},
  };
  for (const auto& s : settings) {
    const auto r = harness::run_codec(s, field);
    data::Field recon{field.name, field.dims, r.reconstruction};
    const auto slice = data::slice2d(recon, 0);
    const std::string name = harness::codec_name(s.id);
    vis::write_pgm(outdir + "/" + name + ".pgm", slice);
    vis::write_diff_pgm(outdir + "/" + name + "_diff.pgm", orig, slice,
                        field.value_range());
    const auto stats = metrics::compare(field.values, r.reconstruction);
    std::cout << name << ": CR " << r.compression_ratio() << ", PSNR "
              << stats.psnr << " dB, mean slice diff "
              << vis::mean_abs_diff(orig, slice) << "\n";
  }
  std::cout << "\nImages written to " << outdir
            << "/ — compare *_diff.pgm for artifact patterns.\n";
  return 0;
}
