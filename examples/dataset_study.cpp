// Dataset study: sweep one dataset suite across error bounds and codecs,
// reporting compression ratio and reconstruction quality — the workflow a
// domain scientist uses to pick an error bound before a campaign.
//
//   ./build/examples/dataset_study [suite]     (default: NYX)
// Suites: Hurricane NYX QMCPack RTM HACC CESM-ATM
#include <iostream>
#include <string>

#include "szp/harness/runner.hpp"
#include "szp/metrics/error.hpp"
#include "szp/metrics/ssim.hpp"
#include "szp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace szp;
  const std::string want = argc > 1 ? argv[1] : "NYX";
  data::Suite suite = data::Suite::kNyx;
  for (const auto& info : data::all_suites()) {
    if (info.name == want) suite = info.id;
  }
  const auto& info = data::suite_info(suite);
  std::cout << "Suite: " << info.name << " (" << info.domain
            << "), paper dims " << info.paper_dims.to_string() << ", "
            << info.num_fields << " synthetic fields\n\n";

  Table t({"field", "codec", "REL", "CR", "bit-rate", "PSNR", "SSIM",
           "max rel err"});
  const auto fields = data::make_suite(suite, 0.5);
  for (const auto& field : fields) {
    for (const auto codec : harness::error_bounded_codecs()) {
      for (const double rel : harness::rel_bounds()) {
        harness::CodecSetting s;
        s.id = codec;
        s.rel = rel;
        const auto r = harness::run_codec(s, field);
        const auto stats = metrics::compare(field.values, r.reconstruction);
        data::Field recon{field.name, field.dims, r.reconstruction};
        t.row()
            .cell(field.name)
            .cell(harness::codec_name(codec))
            .cell(format_fixed(rel, 4))
            .cell(r.compression_ratio(), 2)
            .cell(r.bit_rate(), 3)
            .cell(stats.psnr, 1)
            .cell(metrics::ssim(field, recon), 4)
            .cell(stats.max_rel_err, 6);
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery error-bounded run must show max rel err <= its REL "
               "column.\n";
  return 0;
}
