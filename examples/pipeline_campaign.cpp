// Campaign workflow: a time-varying simulation streams snapshots through
// the inline-compression pipeline, and the compressed streams are packed
// into one archive per run — the end-to-end storage path the paper's
// motivation section describes.
//
//   ./build/examples/pipeline_campaign [out.szpa]
#include <iostream>

#include "szp/archive/archive.hpp"
#include "szp/data/registry.hpp"
#include "szp/perfmodel/cost.hpp"
#include "szp/pipeline/pipeline.hpp"
#include "szp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace szp;
  const std::string out = argc > 1 ? argv[1] : "campaign.szpa";

  pipeline::Config cfg;
  cfg.workers = 3;  // three devices compressing concurrently
  cfg.params.mode = core::ErrorMode::kRel;
  cfg.params.error_bound = 1e-3;

  std::cout << "Streaming 9 RTM snapshots through " << cfg.workers
            << " pipeline workers...\n\n";
  pipeline::InlinePipeline pipe(cfg);
  for (size_t step = 400; step <= 3600; step += 400) {
    pipe.submit(data::make_rtm_snapshot(step, 0.4));
  }
  const auto results = pipe.finish();

  const perfmodel::CostModel model(perfmodel::a100());
  Table t({"snapshot", "raw MB", "cmp MB", "CR", "modeled kernel ms"});
  std::uint64_t total_raw = 0, total_cmp = 0;
  for (const auto& r : results) {
    const auto cost = model.run(r.comp_trace);
    t.row()
        .cell(r.name)
        .cell(static_cast<double>(r.raw_bytes) / 1e6, 2)
        .cell(static_cast<double>(r.stream.size()) / 1e6, 2)
        .cell(r.compression_ratio(), 2)
        .cell(cost.end_to_end_s() * 1e3, 3);
    total_raw += r.raw_bytes;
    total_cmp += r.stream.size();
  }
  t.print(std::cout);

  // Pack the already-compressed streams' sources into an archive for the
  // campaign store (independent fields, random-access extractable).
  archive::Writer writer(cfg.params);
  for (size_t step = 400; step <= 3600; step += 400) {
    writer.add(data::make_rtm_snapshot(step, 0.4));
  }
  const auto blob = std::move(writer).finish();
  archive::save_archive(out, blob);

  std::cout << "\nCampaign total: " << static_cast<double>(total_raw) / 1e6
            << " MB raw -> " << static_cast<double>(total_cmp) / 1e6
            << " MB compressed ("
            << static_cast<double>(total_raw) / static_cast<double>(total_cmp)
            << "x); archive written to " << out << " (" << blob.size()
            << " bytes).\n"
            << "Inspect it:  build/tools/szp_archive list " << out << "\n";
  return 0;
}
