// Quickstart: compress and decompress a float array with cuSZp.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cmath>
#include <iostream>
#include <vector>

#include "szp/core/compressor.hpp"
#include "szp/metrics/error.hpp"

int main() {
  // A smooth synthetic signal (a stand-in for your simulation output).
  std::vector<float> data(1 << 20);
  for (size_t i = 0; i < data.size(); ++i) {
    const double x = static_cast<double>(i) / 1000.0;
    data[i] = static_cast<float>(std::sin(x) + 0.3 * std::sin(7.1 * x));
  }

  // Value-range-relative error bound of 1e-3 (paper REL mode).
  szp::core::Params params;
  params.mode = szp::core::ErrorMode::kRel;
  params.error_bound = 1e-3;
  szp::Compressor compressor(params);

  // Host path: the serial reference codec.
  const std::vector<szp::byte_t> stream = compressor.compress(data);
  const std::vector<float> recon = compressor.decompress(stream);

  const auto stats = szp::metrics::compare(data, recon);
  std::cout << "elements          : " << data.size() << "\n"
            << "compressed bytes  : " << stream.size() << "\n"
            << "compression ratio : "
            << static_cast<double>(data.size() * 4) /
                   static_cast<double>(stream.size())
            << "\n"
            << "max abs error     : " << stats.max_abs_err << "\n"
            << "max rel error     : " << stats.max_rel_err
            << "  (bound was 1e-3)\n"
            << "PSNR              : " << stats.psnr << " dB\n";

  // Device path: the paper's single-kernel pipeline on the simulated GPU.
  szp::gpusim::Device dev;
  auto d_in = szp::gpusim::to_device<float>(dev, data);
  szp::gpusim::DeviceBuffer<szp::byte_t> d_cmp(
      dev, szp::core::max_compressed_bytes(data.size(), params.block_len));
  const auto result = compressor.compress_on_device(
      dev, d_in, data.size(), /*value_range=*/2.6, d_cmp);
  std::cout << "device kernels    : " << result.trace.kernel_launches
            << " (single-kernel design)\n";
  return 0;
}
