// Domain scenario (paper §1/§6): inline compression inside a time-varying
// GPU simulation. A seismic RTM run produces one wavefield snapshot per
// timestep in device memory; each snapshot is compressed in place by the
// single cuSZp kernel before being staged out, so the simulation never
// stalls on the CPU.
#include <iostream>

#include "szp/core/compressor.hpp"
#include "szp/data/registry.hpp"
#include "szp/metrics/error.hpp"
#include "szp/perfmodel/cost.hpp"
#include "szp/util/table.hpp"

int main() {
  using namespace szp;
  const perfmodel::CostModel model(perfmodel::a100());
  core::Params params;
  params.mode = core::ErrorMode::kRel;
  params.error_bound = 1e-3;
  Compressor compressor(params);

  std::cout << "Inline compression of an RTM simulation (one snapshot every "
               "400 timesteps)\n\n";
  Table t({"timestep", "snapshot MB", "cmp MB", "CR", "modeled kernel ms",
           "max rel err"});

  gpusim::Device dev;  // one device for the whole simulation
  std::uint64_t total_raw = 0, total_cmp = 0;

  for (size_t step = 400; step <= 3600; step += 400) {
    // "Simulation" produces the next snapshot in device memory.
    const auto snapshot = data::make_rtm_snapshot(step, 0.5);
    auto d_field = gpusim::to_device<float>(dev, snapshot.values);

    // Inline compression: device -> device, one kernel.
    gpusim::DeviceBuffer<byte_t> d_cmp(
        dev,
        core::max_compressed_bytes(snapshot.count(), params.block_len));
    const auto res = compressor.compress_on_device(
        dev, d_field, snapshot.count(), snapshot.value_range(), d_cmp);

    // Decompress to validate the bound (a consumer would do this later).
    gpusim::DeviceBuffer<float> d_recon(dev, snapshot.count());
    (void)compressor.decompress_on_device(dev, d_cmp, d_recon);
    const auto recon = gpusim::to_host(dev, d_recon);
    const auto stats = metrics::compare(snapshot.values, recon);

    const auto cost = model.run(res.trace);
    t.row()
        .cell(static_cast<long long>(step))
        .cell(static_cast<double>(snapshot.size_bytes()) / 1e6, 2)
        .cell(static_cast<double>(res.bytes) / 1e6, 2)
        .cell(static_cast<double>(snapshot.size_bytes()) /
                  static_cast<double>(res.bytes),
              2)
        .cell(cost.end_to_end_s() * 1e3, 3)
        .cell(stats.max_rel_err, 6);
    total_raw += snapshot.size_bytes();
    total_cmp += res.bytes;
  }
  t.print(std::cout);
  std::cout << "\nWhole run: " << static_cast<double>(total_raw) / 1e6
            << " MB raw -> " << static_cast<double>(total_cmp) / 1e6
            << " MB compressed ("
            << static_cast<double>(total_raw) / static_cast<double>(total_cmp)
            << "x), all bounds respected.\n";
  return 0;
}
