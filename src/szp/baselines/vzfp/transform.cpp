#include "szp/baselines/vzfp/transform.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <vector>

#include "szp/util/common.hpp"

namespace szp::vzfp {

// The ZFP non-orthogonal lifted transform (Lindstrom 2014, Fig. 3). All
// shifts are arithmetic on values that stay within ~2 bits of headroom of
// the inputs; callers bound inputs to |x| < 2^27.
void fwd_lift4(std::int32_t* p, size_t stride) {
  std::int32_t x = p[0 * stride], y = p[1 * stride], z = p[2 * stride],
               w = p[3 * stride];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

void inv_lift4(std::int32_t* p, size_t stride) {
  std::int32_t x = p[0 * stride], y = p[1 * stride], z = p[2 * stride],
               w = p[3 * stride];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

namespace {

size_t block_size(unsigned dims) {
  size_t n = 1;
  for (unsigned d = 0; d < dims; ++d) n *= kBlockEdge;
  return n;
}

}  // namespace

void fwd_transform(std::span<std::int32_t> block, unsigned dims) {
  if (dims < 1 || dims > 3 || block.size() != block_size(dims)) {
    throw format_error("vzfp: bad transform block");
  }
  // Lift along x (stride 1), then y (stride 4), then z (stride 16).
  size_t stride = 1;
  for (unsigned d = 0; d < dims; ++d, stride *= kBlockEdge) {
    // Iterate all 4-point lines with this stride.
    const size_t lines = block.size() / kBlockEdge;
    for (size_t l = 0; l < lines; ++l) {
      const size_t outer = l / stride;
      const size_t inner = l % stride;
      fwd_lift4(block.data() + outer * stride * kBlockEdge + inner, stride);
    }
  }
}

void inv_transform(std::span<std::int32_t> block, unsigned dims) {
  if (dims < 1 || dims > 3 || block.size() != block_size(dims)) {
    throw format_error("vzfp: bad transform block");
  }
  size_t stride = block.size() / kBlockEdge;
  for (unsigned d = 0; d < dims; ++d, stride /= kBlockEdge) {
    const size_t lines = block.size() / kBlockEdge;
    for (size_t l = 0; l < lines; ++l) {
      const size_t outer = l / stride;
      const size_t inner = l % stride;
      inv_lift4(block.data() + outer * stride * kBlockEdge + inner, stride);
    }
  }
}

std::span<const std::uint16_t> total_order(unsigned dims) {
  if (dims < 1 || dims > 3) throw format_error("vzfp: bad dims");
  static std::array<std::vector<std::uint16_t>, 3> tables;
  static std::once_flag once;
  std::call_once(once, [] {
    for (unsigned d = 1; d <= 3; ++d) {
      const size_t n = d == 1 ? 4 : d == 2 ? 16 : 64;
      std::vector<std::uint16_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::uint16_t{0});
      auto degree = [d](std::uint16_t idx) {
        unsigned g = 0, v = idx;
        for (unsigned a = 0; a < d; ++a) {
          g += v % kBlockEdge;
          v /= kBlockEdge;
        }
        return g;
      };
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::uint16_t a, std::uint16_t b) {
                         return degree(a) < degree(b);
                       });
      tables[d - 1] = std::move(perm);
    }
  });
  return tables[dims - 1];
}

}  // namespace szp::vzfp
