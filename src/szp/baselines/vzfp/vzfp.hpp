// cuZFP-style baseline ("vzfp"): fixed-rate transform compressor in a
// single kernel. Not error-bounded — every 4^d block is truncated to the
// same bit budget, which is why the paper's rate-distortion plots show it
// losing to error-bounded codecs on hard fields and why low rates produce
// blocky artifacts (Fig. 19).
//
// Stream layout:
//   [Header]
//   [slots: one fixed-size bit slot per block, row-major block order]
// Fixed-size slots mean offsets are known statically — no global
// synchronization is needed, which is what lets cuZFP (and vzfp) run as a
// single kernel.
#pragma once

#include <span>
#include <vector>

#include "szp/data/field.hpp"
#include "szp/gpusim/buffer.hpp"

namespace szp::vzfp {

struct Params {
  double rate = 8.0;  // bits per value

  void validate() const;
};

struct Header {
  static constexpr std::uint32_t kMagic = 0x7A355A53;  // "SZ5z"
  std::uint64_t num_elements = 0;
  std::uint32_t bits_per_block = 0;
  std::uint8_t ndim = 1;
  std::uint64_t dims[3] = {0, 0, 0};
  static constexpr size_t kSize = 48;

  void serialize(std::span<byte_t> out) const;
  [[nodiscard]] static Header deserialize(std::span<const byte_t> in);
  [[nodiscard]] size_t slot_bytes() const { return (bits_per_block + 7) / 8; }
};

/// dims must have 1-3 axes (fuse leading axes of higher-D data first).
[[nodiscard]] std::vector<byte_t> compress_serial(std::span<const float> data,
                                                  const data::Dims& dims,
                                                  const Params& params);

[[nodiscard]] std::vector<float> decompress_serial(
    std::span<const byte_t> stream);

struct DeviceCodecResult {
  size_t bytes = 0;
  gpusim::TraceSnapshot trace;
};

/// Single-kernel device compression (byte-identical to compress_serial).
DeviceCodecResult compress_device(gpusim::Device& dev,
                                  const gpusim::DeviceBuffer<float>& in,
                                  const data::Dims& dims, const Params& params,
                                  gpusim::DeviceBuffer<byte_t>& out);

/// Single-kernel device decompression.
DeviceCodecResult decompress_device(gpusim::Device& dev,
                                    const gpusim::DeviceBuffer<byte_t>& cmp,
                                    gpusim::DeviceBuffer<float>& out);

/// Exact compressed size for `n` elements of shape `dims` at `rate`
/// (fixed-rate property: independent of content).
[[nodiscard]] size_t compressed_bytes(const data::Dims& dims,
                                      const Params& params);

}  // namespace szp::vzfp
