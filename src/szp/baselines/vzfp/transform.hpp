// ZFP-style decorrelating transform primitives for the vzfp baseline:
// the reversible integer lifting transform on 4-point vectors (applied
// per axis over 4^d blocks), the total-degree coefficient ordering, and
// negabinary mapping (Lindstrom 2014).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace szp::vzfp {

inline constexpr size_t kBlockEdge = 4;

/// Forward lifting transform on 4 coefficients (in place).
void fwd_lift4(std::int32_t* p, size_t stride);
/// Inverse lifting transform on 4 coefficients (in place).
void inv_lift4(std::int32_t* p, size_t stride);

/// Forward/inverse transform of a d-dimensional block (4^d values):
/// applies the 4-point lift along each axis.
void fwd_transform(std::span<std::int32_t> block, unsigned dims);
void inv_transform(std::span<std::int32_t> block, unsigned dims);

/// Coefficient permutation for embedded coding: index i of the serialized
/// order maps to block offset perm[i], sorted by total degree (low-
/// frequency coefficients first).
[[nodiscard]] std::span<const std::uint16_t> total_order(unsigned dims);

/// Negabinary mapping: signed -> unsigned with sign information spread
/// across bit planes (what makes plane-truncation graceful).
[[nodiscard]] constexpr std::uint32_t to_negabinary(std::int32_t x) {
  const std::uint32_t u = static_cast<std::uint32_t>(x);
  return (u + 0xAAAAAAAAu) ^ 0xAAAAAAAAu;
}
[[nodiscard]] constexpr std::int32_t from_negabinary(std::uint32_t u) {
  return static_cast<std::int32_t>((u ^ 0xAAAAAAAAu) - 0xAAAAAAAAu);
}

}  // namespace szp::vzfp
