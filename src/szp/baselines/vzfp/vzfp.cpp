#include "szp/baselines/vzfp/vzfp.hpp"

#include <algorithm>
#include <cmath>

#include "szp/baselines/vzfp/block_codec.hpp"
#include "szp/baselines/vzfp/transform.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/util/bytestream.hpp"

namespace szp::vzfp {

namespace gs = gpusim;

namespace {

struct BlockGrid {
  unsigned ndim = 1;
  size_t ext[3] = {1, 1, 1};     // data extents, slowest first
  size_t blocks[3] = {1, 1, 1};  // block counts per axis
  size_t block_elems = 4;
  size_t num_blocks = 1;

  static BlockGrid from(const data::Dims& dims) {
    if (dims.ndim() < 1 || dims.ndim() > 3) {
      throw format_error("vzfp: 1-3 dims supported (fuse leading axes)");
    }
    BlockGrid g;
    g.ndim = static_cast<unsigned>(dims.ndim());
    g.block_elems = 1;
    g.num_blocks = 1;
    for (unsigned a = 0; a < g.ndim; ++a) {
      g.ext[a] = dims[a];
      g.blocks[a] = div_ceil(dims[a], kBlockEdge);
      g.block_elems *= kBlockEdge;
      g.num_blocks *= g.blocks[a];
    }
    return g;
  }
};

/// Gather one block with edge-replication padding.
void gather_block(std::span<const float> data, const BlockGrid& g,
                  size_t block_idx, std::span<float> out) {
  size_t bc[3] = {0, 0, 0};
  size_t rem = block_idx;
  for (unsigned a = g.ndim; a-- > 0;) {
    bc[a] = rem % g.blocks[a];
    rem /= g.blocks[a];
  }
  size_t o = 0;
  // Iterate local coordinates (slowest axis first, like the data layout).
  const size_t l2 = g.ndim > 2 ? kBlockEdge : 1;
  const size_t l1 = g.ndim > 1 ? kBlockEdge : 1;
  for (size_t i2 = 0; i2 < l2; ++i2) {
    for (size_t i1 = 0; i1 < l1; ++i1) {
      for (size_t i0 = 0; i0 < kBlockEdge; ++i0) {
        size_t c[3] = {0, 0, 0};
        const size_t local[3] = {i2, i1, i0};
        // local coordinates map to the last `ndim` axes.
        for (unsigned a = 0; a < g.ndim; ++a) {
          const size_t axis_local = local[3 - g.ndim + a];
          c[a] = std::min(bc[a] * kBlockEdge + axis_local, g.ext[a] - 1);
        }
        size_t idx = 0;
        for (unsigned a = 0; a < g.ndim; ++a) idx = idx * g.ext[a] + c[a];
        out[o++] = data[idx];
      }
    }
  }
}

/// Scatter one decoded block back (skipping padded positions).
void scatter_block(std::span<const float> block, const BlockGrid& g,
                   size_t block_idx, std::span<float> data) {
  size_t bc[3] = {0, 0, 0};
  size_t rem = block_idx;
  for (unsigned a = g.ndim; a-- > 0;) {
    bc[a] = rem % g.blocks[a];
    rem /= g.blocks[a];
  }
  size_t o = 0;
  const size_t l2 = g.ndim > 2 ? kBlockEdge : 1;
  const size_t l1 = g.ndim > 1 ? kBlockEdge : 1;
  for (size_t i2 = 0; i2 < l2; ++i2) {
    for (size_t i1 = 0; i1 < l1; ++i1) {
      for (size_t i0 = 0; i0 < kBlockEdge; ++i0) {
        const size_t local[3] = {i2, i1, i0};
        size_t c[3] = {0, 0, 0};
        bool in_range = true;
        for (unsigned a = 0; a < g.ndim; ++a) {
          c[a] = bc[a] * kBlockEdge + local[3 - g.ndim + a];
          in_range = in_range && c[a] < g.ext[a];
        }
        if (in_range) {
          size_t idx = 0;
          for (unsigned a = 0; a < g.ndim; ++a) idx = idx * g.ext[a] + c[a];
          data[idx] = block[o];
        }
        ++o;
      }
    }
  }
}

std::uint32_t bits_per_block_of(const Params& p, size_t block_elems) {
  return static_cast<std::uint32_t>(
      std::llround(p.rate * static_cast<double>(block_elems)));
}

}  // namespace

void Params::validate() const {
  if (rate <= 0 || rate > 32) throw format_error("vzfp: rate out of range");
}

void Header::serialize(std::span<byte_t> out) const {
  if (out.size() < kSize) throw format_error("vzfp::Header: buffer too small");
  ByteWriter w;
  w.put(kMagic);
  w.put(bits_per_block);
  w.put(num_elements);
  w.put(ndim);
  w.put(std::uint8_t{0});
  w.put(std::uint16_t{0});
  w.put(std::uint32_t{0});
  for (const std::uint64_t d : dims) w.put(d);
  while (w.size() < kSize) w.put(byte_t{0});
  std::copy(w.bytes().begin(), w.bytes().end(), out.begin());
}

Header Header::deserialize(std::span<const byte_t> in) {
  if (in.size() < kSize) throw format_error("vzfp::Header: truncated");
  ByteReader r(in);
  if (r.get<std::uint32_t>() != kMagic) throw format_error("vzfp: bad magic");
  Header h;
  h.bits_per_block = r.get<std::uint32_t>();
  h.num_elements = r.get<std::uint64_t>();
  h.ndim = r.get<std::uint8_t>();
  (void)r.get<std::uint8_t>();
  (void)r.get<std::uint16_t>();
  (void)r.get<std::uint32_t>();
  for (auto& d : h.dims) d = r.get<std::uint64_t>();
  if (h.ndim == 0 || h.ndim > 3) throw format_error("vzfp: bad header");
  return h;
}

size_t compressed_bytes(const data::Dims& dims, const Params& params) {
  params.validate();
  const BlockGrid g = BlockGrid::from(dims);
  const std::uint32_t bits = bits_per_block_of(params, g.block_elems);
  return Header::kSize + g.num_blocks * ((bits + 7) / 8);
}

std::vector<byte_t> compress_serial(std::span<const float> data,
                                    const data::Dims& dims,
                                    const Params& params) {
  params.validate();
  if (data.size() != dims.count()) throw format_error("vzfp: size mismatch");
  const BlockGrid g = BlockGrid::from(dims);
  const std::uint32_t bits = bits_per_block_of(params, g.block_elems);
  const size_t slot = (bits + 7) / 8;

  Header h;
  h.num_elements = data.size();
  h.bits_per_block = bits;
  h.ndim = static_cast<std::uint8_t>(g.ndim);
  for (unsigned a = 0; a < g.ndim; ++a) h.dims[a] = g.ext[a];

  std::vector<byte_t> out(Header::kSize + g.num_blocks * slot, byte_t{0});
  h.serialize(out);
  std::vector<float> block(g.block_elems);
  for (size_t b = 0; b < g.num_blocks; ++b) {
    gather_block(data, g, b, block);
    encode_block(block, g.ndim, bits,
                 std::span(out).subspan(Header::kSize + b * slot, slot));
  }
  return out;
}

std::vector<float> decompress_serial(std::span<const byte_t> stream) {
  const Header h = Header::deserialize(stream);
  data::Dims dims;
  for (unsigned a = 0; a < h.ndim; ++a) dims.extents.push_back(h.dims[a]);
  const BlockGrid g = BlockGrid::from(dims);
  const size_t slot = h.slot_bytes();
  if (stream.size() < Header::kSize + g.num_blocks * slot) {
    throw format_error("vzfp: truncated stream");
  }
  std::vector<float> out(h.num_elements, 0.0f);
  std::vector<float> block(g.block_elems);
  for (size_t b = 0; b < g.num_blocks; ++b) {
    decode_block(stream.subspan(Header::kSize + b * slot, slot), g.ndim,
                 h.bits_per_block, block);
    scatter_block(block, g, b, out);
  }
  return out;
}

DeviceCodecResult compress_device(gs::Device& dev,
                                  const gs::DeviceBuffer<float>& in,
                                  const data::Dims& dims, const Params& params,
                                  gs::DeviceBuffer<byte_t>& out) {
  params.validate();
  const BlockGrid g = BlockGrid::from(dims);
  const std::uint32_t bits = bits_per_block_of(params, g.block_elems);
  const size_t slot = (bits + 7) / 8;
  const size_t total = Header::kSize + g.num_blocks * slot;
  if (in.size() < dims.count() || out.size() < total) {
    throw format_error("vzfp::compress_device: bad buffer sizes");
  }
  const auto before = dev.snapshot();

  Header h;
  h.num_elements = dims.count();
  h.bits_per_block = bits;
  h.ndim = static_cast<std::uint8_t>(g.ndim);
  for (unsigned a = 0; a < g.ndim; ++a) h.dims[a] = g.ext[a];

  std::fill(out.span().begin(), out.span().begin() + static_cast<long>(total),
            byte_t{0});
  const std::span<const float> data = in.span().first(dims.count());
  const std::span<byte_t> stream = out.span();

  constexpr size_t kBlocksPerCta = 32;
  const size_t grid = std::max<size_t>(1, div_ceil(g.num_blocks, kBlocksPerCta));
  gs::launch(dev, "vzfp_compress", grid, [&](const gs::BlockCtx& ctx) {
    if (ctx.block_idx == 0) {
      h.serialize(stream.first(Header::kSize));
      ctx.write(gs::Stage::kOther, Header::kSize);
    }
    std::vector<float> block(g.block_elems);
    size_t done = 0;
    for (size_t k = 0; k < kBlocksPerCta; ++k) {
      const size_t b = ctx.block_idx * kBlocksPerCta + k;
      if (b >= g.num_blocks) break;
      gather_block(data, g, b, block);
      encode_block(block, g.ndim, bits,
                   stream.subspan(Header::kSize + b * slot, slot));
      ++done;
    }
    ctx.read(gs::Stage::kTransform, done * g.block_elems * 4);
    ctx.write(gs::Stage::kTransform, done * slot);
    ctx.ops(gs::Stage::kTransform, done * g.block_elems);
  });

  DeviceCodecResult res;
  res.bytes = total;
  res.trace = dev.snapshot() - before;
  return res;
}

DeviceCodecResult decompress_device(gs::Device& dev,
                                    const gs::DeviceBuffer<byte_t>& cmp,
                                    gs::DeviceBuffer<float>& out) {
  const Header h = Header::deserialize(cmp.span());
  dev.trace().add_d2h(Header::kSize);
  gs::for_each_op_trace([](gs::Trace& t) { t.add_d2h(Header::kSize); });
  data::Dims dims;
  for (unsigned a = 0; a < h.ndim; ++a) dims.extents.push_back(h.dims[a]);
  const BlockGrid g = BlockGrid::from(dims);
  const size_t slot = h.slot_bytes();
  if (out.size() < h.num_elements) throw format_error("vzfp: output too small");
  const auto before = dev.snapshot();

  const std::span<const byte_t> stream = cmp.span();
  const std::span<float> data = out.span().first(h.num_elements);

  constexpr size_t kBlocksPerCta = 32;
  const size_t grid = std::max<size_t>(1, div_ceil(g.num_blocks, kBlocksPerCta));
  gs::launch(dev, "vzfp_decompress", grid, [&](const gs::BlockCtx& ctx) {
    std::vector<float> block(g.block_elems);
    size_t done = 0;
    for (size_t k = 0; k < kBlocksPerCta; ++k) {
      const size_t b = ctx.block_idx * kBlocksPerCta + k;
      if (b >= g.num_blocks) break;
      if (Header::kSize + (b + 1) * slot > stream.size()) {
        throw format_error("vzfp: truncated stream");
      }
      decode_block(stream.subspan(Header::kSize + b * slot, slot), g.ndim,
                   h.bits_per_block, block);
      scatter_block(block, g, b, data);
      ++done;
    }
    ctx.read(gs::Stage::kTransform, done * slot);
    ctx.write(gs::Stage::kTransform, done * g.block_elems * 4);
    ctx.ops(gs::Stage::kTransform, done * g.block_elems);
  });

  DeviceCodecResult res;
  res.bytes = h.num_elements;
  res.trace = dev.snapshot() - before;
  return res;
}

}  // namespace szp::vzfp
