#include "szp/baselines/vzfp/block_codec.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "szp/baselines/vzfp/transform.hpp"

namespace szp::vzfp {

void BitSlot::put_bit(unsigned bit) {
  if (pos_ >= bytes_.size() * 8) throw format_error("BitSlot: overflow");
  if (bit) bytes_[pos_ / 8] |= static_cast<byte_t>(0x80u >> (pos_ % 8));
  ++pos_;
}

unsigned BitSlot::get_bit() {
  if (pos_ >= bytes_.size() * 8) throw format_error("BitSlot: underflow");
  const unsigned b = (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return b;
}

void BitSlot::put_bits(std::uint32_t value, unsigned nbits) {
  for (unsigned i = nbits; i-- > 0;) put_bit((value >> i) & 1u);
}

std::uint32_t BitSlot::get_bits(unsigned nbits) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | get_bit();
  return v;
}

unsigned ConstBitSlot::get_bit() {
  if (pos_ >= bytes_.size() * 8) throw format_error("ConstBitSlot: underflow");
  const unsigned b = (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return b;
}

std::uint32_t ConstBitSlot::get_bits(unsigned nbits) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | get_bit();
  return v;
}

namespace {

size_t block_count_of(unsigned dims) {
  size_t n = 1;
  for (unsigned d = 0; d < dims; ++d) n *= kBlockEdge;
  return n;
}

/// Exponent e with max|x| < 2^e (0 for an all-zero block).
int block_exponent(std::span<const float> block) {
  float mx = 0;
  for (const float v : block) mx = std::max(mx, std::abs(v));
  if (mx == 0) return 0;
  int e = 0;
  (void)std::frexp(mx, &e);  // mx = m * 2^e with m in [0.5, 1)
  return e;
}

}  // namespace

void encode_block(std::span<const float> block, unsigned dims,
                  size_t budget_bits, std::span<byte_t> slot) {
  const size_t m = block_count_of(dims);
  if (block.size() != m) throw format_error("vzfp: bad block size");
  BitSlot bits(slot);
  const size_t limit = budget_bits;
  if (limit == 0) return;

  const int emax = block_exponent(block);
  float mx = 0;
  for (const float v : block) mx = std::max(mx, std::abs(v));
  if (mx == 0) {
    bits.put_bit(0);  // empty block; rest of the budget stays zero
    return;
  }
  bits.put_bit(1);
  if (limit < 17) return;  // degenerate budget: flag only
  bits.put_bits(static_cast<std::uint32_t>(emax + 16384), 16);

  // Block-floating-point, transform, reorder, negabinary.
  std::vector<std::int32_t> fi(m);
  const double scale = std::ldexp(1.0, static_cast<int>(kFracBits) - emax);
  for (size_t i = 0; i < m; ++i) {
    fi[i] = static_cast<std::int32_t>(
        std::llround(static_cast<double>(block[i]) * scale));
  }
  fwd_transform(fi, dims);
  const auto perm = total_order(dims);
  std::vector<std::uint32_t> u(m);
  for (size_t i = 0; i < m; ++i) u[i] = to_negabinary(fi[perm[i]]);

  // Embedded coding: MSB plane first; each plane costs 1 significance bit
  // plus m bits when non-empty. Truncated exactly at the budget.
  for (int k = static_cast<int>(kTopPlane); k >= 0; --k) {
    if (bits.position() >= limit) return;
    std::uint32_t any = 0;
    for (size_t i = 0; i < m; ++i) any |= (u[i] >> k) & 1u;
    bits.put_bit(any);
    if (!any) continue;
    for (size_t i = 0; i < m; ++i) {
      if (bits.position() >= limit) return;
      bits.put_bit((u[i] >> k) & 1u);
    }
  }
}

void decode_block(std::span<const byte_t> slot, unsigned dims,
                  size_t budget_bits, std::span<float> block) {
  const size_t m = block_count_of(dims);
  if (block.size() != m) throw format_error("vzfp: bad block size");
  std::fill(block.begin(), block.end(), 0.0f);
  if (budget_bits == 0) return;
  ConstBitSlot bits(slot);
  const size_t limit = budget_bits;

  if (bits.get_bit() == 0) return;  // empty block
  if (limit < 17) return;
  const int emax = static_cast<int>(bits.get_bits(16)) - 16384;

  std::vector<std::uint32_t> u(m, 0);
  for (int k = static_cast<int>(kTopPlane); k >= 0; --k) {
    if (bits.position() >= limit) break;
    if (bits.get_bit() == 0) continue;
    bool truncated = false;
    for (size_t i = 0; i < m; ++i) {
      if (bits.position() >= limit) {
        truncated = true;
        break;
      }
      u[i] |= static_cast<std::uint32_t>(bits.get_bit()) << k;
    }
    if (truncated) break;
  }

  const auto perm = total_order(dims);
  std::vector<std::int32_t> fi(m, 0);
  for (size_t i = 0; i < m; ++i) fi[perm[i]] = from_negabinary(u[i]);
  inv_transform(fi, dims);
  const double scale = std::ldexp(1.0, emax - static_cast<int>(kFracBits));
  for (size_t i = 0; i < m; ++i) {
    block[i] = static_cast<float>(static_cast<double>(fi[i]) * scale);
  }
}

}  // namespace szp::vzfp
