// Fixed-rate coding of one 4^d block: block-floating-point conversion,
// lifted transform, negabinary, and embedded bit-plane emission truncated
// at an exact per-block bit budget (cuZFP's fixed-rate mode).
#pragma once

#include <cstdint>
#include <span>

#include "szp/util/common.hpp"

namespace szp::vzfp {

/// Fractional bits used in block-floating-point conversion.
inline constexpr unsigned kFracBits = 26;
/// Highest emitted negabinary bit plane (3D transform gain <= 3 bits).
inline constexpr unsigned kTopPlane = 30;

/// MSB-first bit cursor over a fixed byte region (one block's slot).
class BitSlot {
 public:
  explicit BitSlot(std::span<byte_t> bytes) : bytes_(bytes) {}

  void put_bit(unsigned bit);
  [[nodiscard]] unsigned get_bit();
  [[nodiscard]] size_t position() const { return pos_; }
  void put_bits(std::uint32_t value, unsigned nbits);  // MSB first
  [[nodiscard]] std::uint32_t get_bits(unsigned nbits);

 private:
  std::span<byte_t> bytes_;
  size_t pos_ = 0;
};

/// Read-only variant.
class ConstBitSlot {
 public:
  explicit ConstBitSlot(std::span<const byte_t> bytes) : bytes_(bytes) {}
  [[nodiscard]] unsigned get_bit();
  [[nodiscard]] std::uint32_t get_bits(unsigned nbits);
  [[nodiscard]] size_t position() const { return pos_; }

 private:
  std::span<const byte_t> bytes_;
  size_t pos_ = 0;
};

/// Encode one block of 4^dims floats into exactly `budget_bits` bits of
/// `slot` (zero-padded). The slot must hold ceil(budget_bits/8) bytes and
/// arrive zeroed.
void encode_block(std::span<const float> block, unsigned dims,
                  size_t budget_bits, std::span<byte_t> slot);

/// Decode one block (exact mirror of encode_block's bit consumption).
void decode_block(std::span<const byte_t> slot, unsigned dims,
                  size_t budget_bits, std::span<float> block);

}  // namespace szp::vzfp
