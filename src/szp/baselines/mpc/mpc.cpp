#include "szp/baselines/mpc/mpc.hpp"

#include <algorithm>
#include <cstring>

#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/scan.hpp"
#include "szp/util/bytestream.hpp"

namespace szp::mpc {

namespace gs = gpusim;

namespace {

constexpr std::uint32_t kMagic = 0x6D355A53;  // "SZ5m"
constexpr size_t kChunkWords = 1024;
constexpr size_t kBitmapBytes = kChunkWords / 8;
constexpr size_t kHeaderBytes = 24;

std::uint32_t zigzag(std::uint32_t delta) {
  const auto s = static_cast<std::int32_t>(delta);
  return (static_cast<std::uint32_t>(s) << 1) ^
         static_cast<std::uint32_t>(s >> 31);
}

std::uint32_t unzigzag(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

/// 32x32 bit transpose: out word b holds bit b of each of the 32 inputs.
void transpose32(const std::uint32_t* in, std::uint32_t* out) {
  for (unsigned b = 0; b < 32; ++b) {
    std::uint32_t w = 0;
    for (unsigned i = 0; i < 32; ++i) {
      w |= ((in[i] >> b) & 1u) << i;
    }
    out[b] = w;
  }
}

/// Compress one chunk of up to kChunkWords words starting at data[begin];
/// returns the number of payload bytes written into `dst` (which must
/// hold kBitmapBytes + 4 * kChunkWords).
size_t encode_chunk(std::span<const std::uint32_t> words, size_t begin,
                    unsigned stride, std::span<byte_t> dst) {
  const size_t len = std::min(kChunkWords, words.size() - begin);
  std::uint32_t planes[kChunkWords] = {};
  {
    std::uint32_t residual[kChunkWords] = {};
    for (size_t i = 0; i < len; ++i) {
      const size_t idx = begin + i;
      const std::uint32_t pred = idx >= stride ? words[idx - stride] : 0;
      residual[i] = zigzag(words[idx] - pred);
    }
    for (size_t g = 0; g * 32 < len; ++g) {
      transpose32(residual + g * 32, planes + g * 32);
    }
  }
  const size_t plane_words = round_up(len, size_t{32});
  std::fill(dst.begin(), dst.begin() + static_cast<long>(kBitmapBytes),
            byte_t{0});
  size_t out = kBitmapBytes;
  for (size_t i = 0; i < plane_words; ++i) {
    if (planes[i] != 0) {
      dst[i / 8] |= static_cast<byte_t>(1u << (i % 8));
      std::memcpy(dst.data() + out, &planes[i], 4);
      out += 4;
    }
  }
  return out;
}

void decode_chunk(std::span<const byte_t> src, size_t begin, size_t len,
                  unsigned stride, std::span<std::uint32_t> words) {
  std::uint32_t planes[kChunkWords] = {};
  const size_t plane_words = round_up(len, size_t{32});
  size_t in = kBitmapBytes;
  for (size_t i = 0; i < plane_words; ++i) {
    if ((src[i / 8] >> (i % 8)) & 1u) {
      if (in + 4 > src.size()) throw format_error("mpc: truncated chunk");
      std::memcpy(&planes[i], src.data() + in, 4);
      in += 4;
    }
  }
  std::uint32_t residual[kChunkWords] = {};
  for (size_t g = 0; g * 32 < plane_words; ++g) {
    transpose32(planes + g * 32, residual + g * 32);
  }
  for (size_t i = 0; i < len; ++i) {
    const size_t idx = begin + i;
    const std::uint32_t pred = idx >= stride ? words[idx - stride] : 0;
    words[idx] = pred + unzigzag(residual[i]);
  }
}

size_t chunk_payload_size(std::span<const byte_t> bitmap, size_t len) {
  size_t nz = 0;
  const size_t plane_words = round_up(len, size_t{32});
  for (size_t i = 0; i < plane_words; ++i) {
    nz += (bitmap[i / 8] >> (i % 8)) & 1u;
  }
  return kBitmapBytes + 4 * nz;
}

}  // namespace

size_t max_compressed_bytes(size_t n) {
  const size_t chunks = div_ceil(std::max<size_t>(n, 1), kChunkWords);
  return kHeaderBytes + chunks * (kBitmapBytes + 4 * kChunkWords);
}

std::vector<byte_t> compress_serial(std::span<const float> data,
                                    const Params& params) {
  if (params.stride == 0) throw format_error("mpc: stride must be positive");
  const size_t n = data.size();
  std::vector<std::uint32_t> words(n);
  if (n != 0) std::memcpy(words.data(), data.data(), n * 4);

  ByteWriter w;
  w.put(kMagic);
  w.put(params.stride);
  w.put(static_cast<std::uint64_t>(n));
  w.put(std::uint64_t{0});  // pad header to kHeaderBytes

  std::vector<byte_t> scratch(kBitmapBytes + 4 * kChunkWords);
  for (size_t begin = 0; begin < n; begin += kChunkWords) {
    const size_t bytes = encode_chunk(words, begin, params.stride, scratch);
    w.put_bytes(std::span<const byte_t>(scratch.data(), bytes));
  }
  return std::move(w).take();
}

std::vector<float> decompress_serial(std::span<const byte_t> stream) {
  ByteReader r(stream);
  if (r.get<std::uint32_t>() != kMagic) throw format_error("mpc: bad magic");
  const auto stride = r.get<std::uint32_t>();
  const auto n = static_cast<size_t>(r.get<std::uint64_t>());
  (void)r.get<std::uint64_t>();
  if (stride == 0) throw format_error("mpc: bad stride");

  std::vector<std::uint32_t> words(n, 0);
  size_t off = kHeaderBytes;
  for (size_t begin = 0; begin < n; begin += kChunkWords) {
    const size_t len = std::min(kChunkWords, n - begin);
    if (off + kBitmapBytes > stream.size()) {
      throw format_error("mpc: truncated bitmap");
    }
    const size_t bytes =
        chunk_payload_size(stream.subspan(off, kBitmapBytes), len);
    if (off + bytes > stream.size()) throw format_error("mpc: truncated");
    decode_chunk(stream.subspan(off, bytes), begin, len, stride, words);
    off += bytes;
  }
  std::vector<float> out(n);
  if (n != 0) std::memcpy(out.data(), words.data(), n * 4);
  return out;
}

DeviceCodecResult compress_device(gs::Device& dev,
                                  const gs::DeviceBuffer<float>& in, size_t n,
                                  const Params& params,
                                  gs::DeviceBuffer<byte_t>& out) {
  if (params.stride == 0) throw format_error("mpc: stride must be positive");
  if (out.size() < max_compressed_bytes(n)) {
    throw format_error("mpc: output buffer too small");
  }
  const auto before = dev.snapshot();
  const size_t chunks = n == 0 ? 0 : div_ceil(n, kChunkWords);
  // Bit-view of the input; kernels read words, never mutate the floats.
  std::vector<std::uint32_t> words(n);
  std::memcpy(words.data(), in.data(), n * 4);

  const std::span<byte_t> stream = out.span();
  gs::ChainedScanState scan_state(dev, std::max<size_t>(1, chunks));
  const size_t stride_slot = kBitmapBytes + 4 * kChunkWords;
  gs::DeviceBuffer<byte_t> d_scratch(dev,
                                     std::max<size_t>(1, chunks * stride_slot));
  gs::DeviceBuffer<std::uint64_t> d_sizes(dev, std::max<size_t>(1, chunks), 0);

  // Single kernel: encode into a per-chunk slot, stitch with the chained
  // scan, and copy the payload to its final offset.
  gs::launch(dev, "mpc_compress", std::max<size_t>(1, chunks),
             [&](const gs::BlockCtx& ctx) {
               const size_t c = ctx.block_idx;
               if (c == 0) {
                 ByteWriter w;
                 w.put(kMagic);
                 w.put(params.stride);
                 w.put(static_cast<std::uint64_t>(n));
                 w.put(std::uint64_t{0});
                 std::copy(w.bytes().begin(), w.bytes().end(), stream.begin());
                 ctx.write(gs::Stage::kOther, kHeaderBytes);
               }
               if (c >= chunks) return;
               const size_t begin = c * kChunkWords;
               const size_t len = std::min(kChunkWords, n - begin);
               const std::span<byte_t> slot =
                   d_scratch.span().subspan(c * stride_slot, stride_slot);
               const size_t bytes =
                   encode_chunk(words, begin, params.stride, slot);
               d_sizes[c] = bytes;
               ctx.read(gs::Stage::kBlockEncode, len * 4);
               ctx.ops(gs::Stage::kBlockEncode, len * 2);

               const std::uint64_t prefix = scan_state.publish_and_lookback(
                   ctx, gs::Stage::kGlobalSync, c, bytes);
               ctx.ops(gs::Stage::kGlobalSync, 1);
               std::copy(slot.begin(), slot.begin() + static_cast<long>(bytes),
                         stream.begin() +
                             static_cast<long>(kHeaderBytes + prefix));
               ctx.write(gs::Stage::kGather, bytes);
               ctx.ops(gs::Stage::kGather, bytes);
             });

  DeviceCodecResult res;
  res.bytes = kHeaderBytes +
              (chunks == 0 ? 0 : scan_state.inclusive_prefix(chunks - 1));
  dev.trace().add_d2h(sizeof(std::uint64_t));
  gs::for_each_op_trace([](gs::Trace& t) { t.add_d2h(sizeof(std::uint64_t)); });
  res.trace = dev.snapshot() - before;
  return res;
}

}  // namespace szp::mpc
