// MPC-style lossless GPU floating-point compressor (Yang et al.,
// CLUSTER'15 — the paper's related work [38], reimplemented in structure).
//
// Pipeline per 1024-word chunk:
//   1. value prediction: wrapping delta against the word `stride`
//      positions back (stride = the data's fastest dimension so vector
//      fields predict component-wise),
//   2. zigzag mapping so small +- residuals have clear high bits,
//   3. 32x32 bit transpose (each output word gathers one bit position
//      from 32 inputs) — smooth data turns high bit planes into zero
//      words,
//   4. zero-word removal: a 1024-bit occupancy bitmap + the non-zero
//      words.
//
// Entirely lossless: decompress(compress(x)) reproduces x bit for bit.
// Used by `bench_ext_lossless` to reproduce the paper's §1 claim that
// lossless compression of scientific f32 data tops out around 2:1.
#pragma once

#include <span>
#include <vector>

#include "szp/gpusim/buffer.hpp"
#include "szp/util/common.hpp"

namespace szp::mpc {

struct Params {
  unsigned stride = 1;  // prediction distance in words (e.g. 3 for xyzxyz)
};

[[nodiscard]] std::vector<byte_t> compress_serial(std::span<const float> data,
                                                  const Params& params = {});

[[nodiscard]] std::vector<float> decompress_serial(
    std::span<const byte_t> stream);

struct DeviceCodecResult {
  size_t bytes = 0;
  gpusim::TraceSnapshot trace;
};

/// Single-kernel device compression (chunk sizes stitched with the same
/// chained scan cuSZp uses). Byte-identical to compress_serial.
DeviceCodecResult compress_device(gpusim::Device& dev,
                                  const gpusim::DeviceBuffer<float>& in,
                                  size_t n, const Params& params,
                                  gpusim::DeviceBuffer<byte_t>& out);

[[nodiscard]] size_t max_compressed_bytes(size_t n);

}  // namespace szp::mpc
