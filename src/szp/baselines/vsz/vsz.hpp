// cuSZ-style baseline ("vsz"): prediction-based error-bounded compressor
// (Tian et al., PACT'20 design, reimplemented per the paper's description).
//
// Pipeline: pre-quantization -> N-D Lorenzo prediction (dual-quant) ->
// quant-code symbolization with an outlier list -> canonical Huffman.
// The codebook is built on the *host* from a device histogram, and the
// variable-length chunks are concatenated on the host — the CPU linear
// recurrences the paper blames for cuSZ's poor end-to-end throughput.
//
// Stream layout:
//   [Header]
//   [codebook code lengths: num_symbols bytes]
//   [chunk encoded byte counts: u64 per chunk]
//   [encoded chunks, each byte-aligned]
//   [outliers: (u64 index, i32 delta) pairs]
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "szp/baselines/vsz/huffman.hpp"
#include "szp/baselines/vsz/lorenzo_nd.hpp"
#include "szp/core/format.hpp"
#include "szp/gpusim/buffer.hpp"

namespace szp::vsz {

struct Params {
  core::ErrorMode mode = core::ErrorMode::kRel;
  double error_bound = 1e-3;
  std::uint32_t radius = 512;    // quant-code radius; 2*radius symbols
  std::uint32_t chunk = 8192;    // symbols per Huffman chunk

  void validate() const;
};

struct Header {
  static constexpr std::uint32_t kMagic = 0x76355A53;  // "SZ5v"
  std::uint64_t num_elements = 0;
  double eb_abs = 0;
  std::uint32_t radius = 512;
  std::uint32_t chunk = 8192;
  std::uint64_t num_outliers = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint8_t ndim = 1;
  std::uint64_t dims[3] = {0, 0, 0};
  static constexpr size_t kSize = 80;

  void serialize(std::span<byte_t> out) const;
  [[nodiscard]] static Header deserialize(std::span<const byte_t> in);
  [[nodiscard]] Grid grid() const;
  [[nodiscard]] size_t num_chunks() const;
};

[[nodiscard]] std::vector<byte_t> compress_serial(
    std::span<const float> data, const Grid& grid, const Params& params,
    std::optional<double> value_range = std::nullopt);

[[nodiscard]] std::vector<float> decompress_serial(
    std::span<const byte_t> stream);

struct DeviceCodecResult {
  size_t bytes = 0;
  gpusim::TraceSnapshot trace;
};

/// Multi-kernel device compression with host codebook build and host chunk
/// concatenation. Byte-identical to compress_serial.
DeviceCodecResult compress_device(gpusim::Device& dev,
                                  const gpusim::DeviceBuffer<float>& in,
                                  const Grid& grid, const Params& params,
                                  double eb_abs,
                                  gpusim::DeviceBuffer<byte_t>& out);

/// Multi-kernel device decompression with host outlier merge.
DeviceCodecResult decompress_device(gpusim::Device& dev,
                                    const gpusim::DeviceBuffer<byte_t>& cmp,
                                    gpusim::DeviceBuffer<float>& out);

[[nodiscard]] size_t max_compressed_bytes(size_t n);

}  // namespace szp::vsz
