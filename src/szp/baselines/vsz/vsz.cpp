#include "szp/baselines/vsz/vsz.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "szp/gpusim/launch.hpp"
#include "szp/util/bytestream.hpp"

namespace szp::vsz {

namespace gs = gpusim;

namespace {

// |r| <= 2^27 leaves headroom for three axis differences (x8 growth).
constexpr std::int64_t kMaxQuant = std::int64_t{1} << 27;

struct Outlier {
  std::uint64_t index;
  std::int32_t delta;
};

void quantize_nd(std::span<const float> in, double eb,
                 std::span<std::int32_t> out) {
  const double inv = 1.0 / (2.0 * eb);
  for (size_t i = 0; i < in.size(); ++i) {
    const double scaled = static_cast<double>(in[i]) * inv;
    if (!(std::abs(scaled) < static_cast<double>(kMaxQuant))) {
      throw format_error("vsz: error bound too small for data magnitude");
    }
    out[i] = static_cast<std::int32_t>(std::llround(scaled));
  }
}

/// delta -> (code, is_outlier). Code 0 is reserved for outliers.
inline std::uint16_t symbol_of(std::int32_t delta, std::uint32_t radius,
                               bool& outlier) {
  const std::int64_t shifted =
      static_cast<std::int64_t>(delta) + static_cast<std::int64_t>(radius);
  if (shifted <= 0 || shifted >= 2 * static_cast<std::int64_t>(radius)) {
    outlier = true;
    return 0;
  }
  outlier = false;
  return static_cast<std::uint16_t>(shifted);
}

double range_of(std::span<const float> data) {
  if (data.empty()) return 0;
  const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  return static_cast<double>(*mx) - static_cast<double>(*mn);
}

size_t chunk_scratch_stride(std::uint32_t chunk) {
  // Worst case: kMaxCodeLength bits per symbol, byte-aligned, plus slack.
  return static_cast<size_t>(chunk) * HuffmanCodebook::kMaxCodeLength / 8 + 16;
}

/// Assemble the final stream from the pieces (shared by serial and the
/// device host-concat phase, guaranteeing identical bytes).
std::vector<byte_t> assemble_stream(
    const Header& h, const HuffmanCodebook& book,
    std::span<const std::uint64_t> chunk_bytes,
    const std::vector<std::vector<byte_t>>& encoded,
    std::span<const Outlier> outliers) {
  ByteWriter w;
  std::vector<byte_t> header_bytes(Header::kSize);
  h.serialize(header_bytes);
  w.put_bytes(header_bytes);
  w.put_bytes(book.serialize());
  for (const std::uint64_t cb : chunk_bytes) w.put(cb);
  for (const auto& chunk : encoded) w.put_bytes(chunk);
  for (const Outlier& o : outliers) {
    w.put(o.index);
    w.put(o.delta);
  }
  return std::move(w).take();
}

}  // namespace

void Params::validate() const {
  if (error_bound <= 0) throw format_error("vsz::Params: bad error bound");
  if (radius < 2 || radius > 32768) {
    throw format_error("vsz::Params: radius out of range");
  }
  if (chunk == 0) throw format_error("vsz::Params: chunk must be positive");
}

void Header::serialize(std::span<byte_t> out) const {
  if (out.size() < kSize) throw format_error("vsz::Header: buffer too small");
  ByteWriter w;
  w.put(kMagic);
  w.put(radius);
  w.put(chunk);
  w.put(ndim);
  w.put(std::uint8_t{0});
  w.put(std::uint16_t{0});
  w.put(num_elements);
  w.put(eb_abs);
  w.put(num_outliers);
  w.put(encoded_bytes);
  for (const std::uint64_t d : dims) w.put(d);
  while (w.size() < kSize) w.put(byte_t{0});
  std::copy(w.bytes().begin(), w.bytes().end(), out.begin());
}

Header Header::deserialize(std::span<const byte_t> in) {
  if (in.size() < kSize) throw format_error("vsz::Header: truncated");
  ByteReader r(in);
  if (r.get<std::uint32_t>() != kMagic) throw format_error("vsz: bad magic");
  Header h;
  h.radius = r.get<std::uint32_t>();
  h.chunk = r.get<std::uint32_t>();
  h.ndim = r.get<std::uint8_t>();
  (void)r.get<std::uint8_t>();
  (void)r.get<std::uint16_t>();
  h.num_elements = r.get<std::uint64_t>();
  h.eb_abs = r.get<double>();
  h.num_outliers = r.get<std::uint64_t>();
  h.encoded_bytes = r.get<std::uint64_t>();
  for (auto& d : h.dims) d = r.get<std::uint64_t>();
  if (h.ndim == 0 || h.ndim > 3 || h.chunk == 0 || h.radius < 2 ||
      h.eb_abs <= 0) {
    throw format_error("vsz::Header: invalid fields");
  }
  return h;
}

Grid Header::grid() const {
  Grid g;
  for (unsigned a = 0; a < ndim; ++a) g.extents.push_back(dims[a]);
  return g;
}

size_t Header::num_chunks() const {
  return num_elements == 0 ? 0 : div_ceil<size_t>(num_elements, chunk);
}

size_t max_compressed_bytes(size_t n) {
  return Header::kSize + 65536 + (n / 1024 + 2) * 8 + 4 * n + 12 * n + 64;
}

// ------------------------------------------------------------- serial ----

std::vector<byte_t> compress_serial(std::span<const float> data,
                                    const Grid& grid, const Params& params,
                                    std::optional<double> value_range) {
  params.validate();
  if (grid.count() != data.size()) {
    throw format_error("vsz: grid does not match data size");
  }
  if (grid.ndim() == 0 || grid.ndim() > 3) {
    throw format_error("vsz: 1-3 dims supported (fuse leading axes)");
  }
  const double eb =
      params.mode == core::ErrorMode::kAbs
          ? params.error_bound
          : std::max(params.error_bound *
                         (value_range ? *value_range : range_of(data)),
                     1e-30);
  const size_t n = data.size();
  const std::uint32_t num_symbols = 2 * params.radius;

  // S1: dual-quant (pre-quantize + N-D Lorenzo).
  std::vector<std::int32_t> deltas(n);
  quantize_nd(data, eb, deltas);
  lorenzo_nd_forward(deltas, grid);

  // S2: symbolize with outlier escape.
  std::vector<std::uint16_t> codes(n);
  std::vector<Outlier> outliers;
  for (size_t i = 0; i < n; ++i) {
    bool is_outlier = false;
    codes[i] = symbol_of(deltas[i], params.radius, is_outlier);
    if (is_outlier) outliers.push_back({i, deltas[i]});
  }

  // S3: histogram + canonical codebook (the CPU-side step in cuSZ).
  std::vector<std::uint64_t> freq(num_symbols, 0);
  for (const std::uint16_t c : codes) ++freq[c];
  const HuffmanCodebook book = HuffmanCodebook::build(freq);

  // S4: chunked Huffman encoding, each chunk byte-aligned.
  const size_t nchunks = n == 0 ? 0 : div_ceil<size_t>(n, params.chunk);
  std::vector<std::uint64_t> chunk_bytes(nchunks, 0);
  std::vector<std::vector<byte_t>> encoded(nchunks);
  std::uint64_t total_encoded = 0;
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t begin = c * params.chunk;
    const size_t len = std::min<size_t>(params.chunk, n - begin);
    encoded[c] = huffman_encode(
        std::span(codes).subspan(begin, len), book);
    chunk_bytes[c] = encoded[c].size();
    total_encoded += encoded[c].size();
  }

  Header h;
  h.num_elements = n;
  h.eb_abs = eb;
  h.radius = params.radius;
  h.chunk = params.chunk;
  h.num_outliers = outliers.size();
  h.encoded_bytes = total_encoded;
  h.ndim = static_cast<std::uint8_t>(grid.ndim());
  for (size_t a = 0; a < grid.ndim(); ++a) h.dims[a] = grid.extents[a];

  return assemble_stream(h, book, chunk_bytes, encoded, outliers);
}

std::vector<float> decompress_serial(std::span<const byte_t> stream) {
  const Header h = Header::deserialize(stream);
  const size_t n = h.num_elements;
  const std::uint32_t num_symbols = 2 * h.radius;
  const size_t nchunks = h.num_chunks();

  ByteReader r(stream);
  (void)r.get_bytes(Header::kSize);
  const HuffmanCodebook book =
      HuffmanCodebook::deserialize(r.get_bytes(num_symbols));
  std::vector<std::uint64_t> chunk_bytes(nchunks);
  for (auto& cb : chunk_bytes) cb = r.get<std::uint64_t>();

  std::vector<std::int32_t> deltas(n, 0);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t begin = c * h.chunk;
    const size_t len = std::min<size_t>(h.chunk, n - begin);
    const auto chunk_bits = r.get_bytes(chunk_bytes[c]);
    const auto symbols = huffman_decode(chunk_bits, book, len);
    for (size_t i = 0; i < len; ++i) {
      deltas[begin + i] = static_cast<std::int32_t>(symbols[i]) -
                          static_cast<std::int32_t>(h.radius);
    }
  }
  // Patch outliers (their in-stream code 0 decoded to -radius above).
  for (std::uint64_t o = 0; o < h.num_outliers; ++o) {
    const auto idx = r.get<std::uint64_t>();
    const auto delta = r.get<std::int32_t>();
    if (idx >= n) throw format_error("vsz: outlier index out of range");
    deltas[idx] = delta;
  }

  const Grid grid = h.grid();
  if (grid.count() != n) throw format_error("vsz: header grid mismatch");
  lorenzo_nd_inverse(deltas, grid);

  std::vector<float> out(n);
  const double scale = 2.0 * h.eb_abs;
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(static_cast<double>(deltas[i]) * scale);
  }
  return out;
}

// ------------------------------------------------------------- device ----

DeviceCodecResult compress_device(gs::Device& dev,
                                  const gs::DeviceBuffer<float>& in,
                                  const Grid& grid, const Params& params,
                                  double eb_abs,
                                  gs::DeviceBuffer<byte_t>& out) {
  params.validate();
  const size_t n = grid.count();
  if (in.size() < n || out.size() < max_compressed_bytes(n)) {
    throw format_error("vsz::compress_device: bad buffer sizes");
  }
  const auto before = dev.snapshot();
  const std::uint32_t num_symbols = 2 * params.radius;
  constexpr size_t kTile = 65536;
  const size_t tiles = std::max<size_t>(1, div_ceil(n, kTile));
  const std::span<const float> data = in.span().first(n);

  // Kernel 1: element-wise pre-quantization.
  gs::DeviceBuffer<std::int32_t> d_deltas(dev, std::max<size_t>(1, n));
  gs::launch(dev, "vsz_quant", tiles, [&](const gs::BlockCtx& ctx) {
    const size_t begin = ctx.block_idx * kTile;
    const size_t end = std::min(n, begin + kTile);
    if (begin >= end) return;
    quantize_nd(data.subspan(begin, end - begin), eb_abs,
                d_deltas.span().subspan(begin, end - begin));
    ctx.read(gs::Stage::kQuantPredict, (end - begin) * 4);
    ctx.write(gs::Stage::kQuantPredict, (end - begin) * 4);
    ctx.ops(gs::Stage::kQuantPredict, end - begin);
  });

  // Kernels 2..: one axis-difference kernel per dimension (lines are
  // independent, so each kernel parallelises over lines).
  for (size_t axis = 0; axis < grid.ndim(); ++axis) {
    gs::launch(dev, "vsz_lorenzo_axis", 1, [&](const gs::BlockCtx& ctx) {
      axis_diff(d_deltas.span().first(n), grid, axis);
      ctx.read(gs::Stage::kQuantPredict, n * 4);
      ctx.write(gs::Stage::kQuantPredict, n * 4);
      ctx.ops(gs::Stage::kQuantPredict, n);
    });
  }

  // Kernel: symbolize + outlier append (atomic, order fixed on the host).
  gs::DeviceBuffer<std::uint16_t> d_codes(dev, std::max<size_t>(1, n));
  gs::DeviceBuffer<std::uint64_t> d_outlier_count(dev, 1, 0);
  gs::DeviceBuffer<std::uint64_t> d_outlier_idx(dev, std::max<size_t>(1, n));
  gs::DeviceBuffer<std::int32_t> d_outlier_val(dev, std::max<size_t>(1, n));
  gs::launch(dev, "vsz_symbolize", tiles, [&](const gs::BlockCtx& ctx) {
    const size_t begin = ctx.block_idx * kTile;
    const size_t end = std::min(n, begin + kTile);
    std::atomic_ref<std::uint64_t> counter(d_outlier_count[0]);
    for (size_t i = begin; i < end; ++i) {
      bool is_outlier = false;
      d_codes[i] = symbol_of(d_deltas[i], params.radius, is_outlier);
      if (is_outlier) {
        const std::uint64_t slot = counter.fetch_add(1);
        d_outlier_idx[slot] = i;
        d_outlier_val[slot] = d_deltas[i];
      }
    }
    if (end > begin) {
      ctx.read(gs::Stage::kOther, (end - begin) * 4);
      ctx.write(gs::Stage::kOther, (end - begin) * 2);
      ctx.ops(gs::Stage::kOther, end - begin);
    }
  });

  // Kernel: histogram (shared-memory style: local then atomic merge).
  gs::DeviceBuffer<std::uint64_t> d_hist(dev, num_symbols, 0);
  gs::launch(dev, "vsz_histogram", tiles, [&](const gs::BlockCtx& ctx) {
    const size_t begin = ctx.block_idx * kTile;
    const size_t end = std::min(n, begin + kTile);
    if (begin >= end) return;
    std::vector<std::uint64_t> local(num_symbols, 0);
    for (size_t i = begin; i < end; ++i) ++local[d_codes[i]];
    for (std::uint32_t s = 0; s < num_symbols; ++s) {
      if (local[s] != 0) {
        std::atomic_ref<std::uint64_t>(d_hist[s]).fetch_add(local[s]);
      }
    }
    ctx.read(gs::Stage::kHistogram, (end - begin) * 2);
    ctx.ops(gs::Stage::kHistogram, end - begin);
    ctx.write(gs::Stage::kHistogram, num_symbols * 8);
  });

  // Host: codebook build (cuSZ's CPU Huffman-tree step).
  const std::vector<std::uint64_t> h_hist = gs::to_host(dev, d_hist);
  const HuffmanCodebook book = gs::host_stage(
      dev, static_cast<std::uint64_t>(num_symbols) * 64,
      [&] { return HuffmanCodebook::build(h_hist); });
  gs::DeviceBuffer<byte_t> d_book(dev, num_symbols);
  gs::copy_h2d<byte_t>(dev, d_book, book.serialize());

  // Kernel: per-chunk Huffman encode into fixed-stride scratch.
  const size_t nchunks = n == 0 ? 0 : div_ceil<size_t>(n, params.chunk);
  const size_t stride = chunk_scratch_stride(params.chunk);
  gs::DeviceBuffer<byte_t> d_scratch(dev, std::max<size_t>(1, nchunks * stride),
                                     byte_t{0});
  gs::DeviceBuffer<std::uint64_t> d_chunk_bytes(dev,
                                                std::max<size_t>(1, nchunks), 0);
  gs::launch(dev, "vsz_encode", std::max<size_t>(1, nchunks),
             [&](const gs::BlockCtx& ctx) {
               const size_t c = ctx.block_idx;
               if (c >= nchunks) return;
               const size_t begin = c * params.chunk;
               const size_t len = std::min<size_t>(params.chunk, n - begin);
               const auto bits = huffman_encode(
                   std::span<const std::uint16_t>(d_codes.span())
                       .subspan(begin, len),
                   book);
               if (bits.size() > stride) {
                 throw format_error("vsz: chunk scratch overflow");
               }
               std::copy(bits.begin(), bits.end(),
                         d_scratch.span().begin() + c * stride);
               d_chunk_bytes[c] = bits.size();
               ctx.read(gs::Stage::kHuffman, len * 2);
               ctx.write(gs::Stage::kHuffman, bits.size() + 8);
               ctx.ops(gs::Stage::kHuffman, len);
             });

  // Host round trip: the dense scratch comes back, the CPU concatenates
  // the variable-length chunks and sorts the outlier list.
  const std::vector<byte_t> h_scratch = gs::to_host(dev, d_scratch);
  const std::vector<std::uint64_t> h_chunk_bytes = gs::to_host(dev, d_chunk_bytes);
  const std::uint64_t n_outliers = gs::to_host(dev, d_outlier_count)[0];
  std::vector<std::uint64_t> h_oidx(n_outliers);
  std::vector<std::int32_t> h_oval(n_outliers);
  gs::copy_d2h<std::uint64_t>(dev, h_oidx, d_outlier_idx, n_outliers);
  gs::copy_d2h<std::int32_t>(dev, h_oval, d_outlier_val, n_outliers);

  std::vector<Outlier> outliers(n_outliers);
  for (std::uint64_t i = 0; i < n_outliers; ++i) {
    outliers[i] = {h_oidx[i], h_oval[i]};
  }

  Header h;
  h.num_elements = n;
  h.eb_abs = eb_abs;
  h.radius = params.radius;
  h.chunk = params.chunk;
  h.num_outliers = n_outliers;
  h.ndim = static_cast<std::uint8_t>(grid.ndim());
  for (size_t a = 0; a < grid.ndim(); ++a) h.dims[a] = grid.extents[a];

  std::uint64_t total_encoded = 0;
  for (size_t c = 0; c < nchunks; ++c) total_encoded += h_chunk_bytes[c];
  h.encoded_bytes = total_encoded;

  const std::vector<byte_t> final_stream = gs::host_stage(
      dev, h_scratch.size() + total_encoded + n_outliers * 12, [&] {
        std::sort(outliers.begin(), outliers.end(),
                  [](const Outlier& a, const Outlier& b) {
                    return a.index < b.index;
                  });
        std::vector<std::vector<byte_t>> encoded(nchunks);
        for (size_t c = 0; c < nchunks; ++c) {
          const auto* src = h_scratch.data() + c * stride;
          encoded[c].assign(src, src + h_chunk_bytes[c]);
        }
        return assemble_stream(h, book, h_chunk_bytes, encoded, outliers);
      });

  if (final_stream.size() > out.size()) {
    throw format_error("vsz: output buffer too small");
  }
  gs::copy_h2d<byte_t>(dev, out, final_stream);

  DeviceCodecResult res;
  res.bytes = final_stream.size();
  res.trace = dev.snapshot() - before;
  return res;
}

DeviceCodecResult decompress_device(gs::Device& dev,
                                    const gs::DeviceBuffer<byte_t>& cmp,
                                    gs::DeviceBuffer<float>& out) {
  const Header h = Header::deserialize(cmp.span());
  dev.trace().add_d2h(Header::kSize);
  gs::for_each_op_trace([](gs::Trace& t) { t.add_d2h(Header::kSize); });
  const size_t n = h.num_elements;
  if (out.size() < n) throw format_error("vsz: output too small");
  const auto before = dev.snapshot();
  const std::uint32_t num_symbols = 2 * h.radius;
  const size_t nchunks = h.num_chunks();

  // Host preprocessing: codebook + chunk offsets.
  std::vector<byte_t> h_meta(Header::kSize + num_symbols + nchunks * 8);
  gs::copy_d2h<byte_t>(dev, h_meta, cmp, h_meta.size());
  ByteReader r(h_meta);
  (void)r.get_bytes(Header::kSize);
  const HuffmanCodebook book = HuffmanCodebook::deserialize(
      r.get_bytes(num_symbols));
  std::vector<std::uint64_t> chunk_offset(std::max<size_t>(1, nchunks), 0);
  std::vector<std::uint64_t> chunk_bytes(std::max<size_t>(1, nchunks), 0);
  gs::host_stage(dev, h_meta.size(), [&] {
    std::uint64_t off = Header::kSize + num_symbols + nchunks * 8;
    for (size_t c = 0; c < nchunks; ++c) {
      chunk_bytes[c] = r.get<std::uint64_t>();
      chunk_offset[c] = off;
      off += chunk_bytes[c];
    }
    return 0;
  });
  gs::DeviceBuffer<std::uint64_t> d_offsets(dev, chunk_offset.size());
  gs::copy_h2d<std::uint64_t>(dev, d_offsets, chunk_offset);

  // Kernel: per-chunk Huffman decode.
  gs::DeviceBuffer<std::uint16_t> d_codes(dev, std::max<size_t>(1, n));
  const std::span<const byte_t> stream = cmp.span();
  gs::launch(dev, "vsz_decode", std::max<size_t>(1, nchunks),
             [&](const gs::BlockCtx& ctx) {
               const size_t c = ctx.block_idx;
               if (c >= nchunks) return;
               const size_t begin = c * h.chunk;
               const size_t len = std::min<size_t>(h.chunk, n - begin);
               if (chunk_offset[c] + chunk_bytes[c] > stream.size()) {
                 throw format_error("vsz: truncated chunk");
               }
               const auto symbols = huffman_decode(
                   stream.subspan(chunk_offset[c], chunk_bytes[c]), book, len);
               std::copy(symbols.begin(), symbols.end(),
                         d_codes.span().begin() + begin);
               ctx.read(gs::Stage::kHuffman, chunk_bytes[c]);
               ctx.write(gs::Stage::kHuffman, len * 2);
               ctx.ops(gs::Stage::kHuffman, len);
             });

  // Host outlier merge: codes come back, outliers are patched on the CPU,
  // and the delta array is re-uploaded (the sparse-gather host step).
  std::vector<std::uint16_t> h_codes = gs::to_host(dev, d_codes);
  const size_t outlier_off = Header::kSize + num_symbols + nchunks * 8 +
                             h.encoded_bytes;
  std::vector<byte_t> h_outliers(h.num_outliers * 12);
  if (!h_outliers.empty()) {
    std::vector<byte_t> tail(cmp.size() - outlier_off);
    // Copy just the outlier region.
    std::memcpy(tail.data(), cmp.data() + outlier_off, tail.size());
    dev.trace().add_d2h(h_outliers.size());
    gs::for_each_op_trace(
        [&](gs::Trace& t) { t.add_d2h(h_outliers.size()); });
    std::copy(tail.begin(), tail.begin() + static_cast<long>(h_outliers.size()),
              h_outliers.begin());
  }
  std::vector<std::int32_t> h_deltas(std::max<size_t>(1, n));
  gs::host_stage(dev, n * 6 + h_outliers.size(), [&] {
    for (size_t i = 0; i < n; ++i) {
      h_deltas[i] = static_cast<std::int32_t>(h_codes[i]) -
                    static_cast<std::int32_t>(h.radius);
    }
    ByteReader orr(h_outliers);
    for (std::uint64_t o = 0; o < h.num_outliers; ++o) {
      const auto idx = orr.get<std::uint64_t>();
      const auto delta = orr.get<std::int32_t>();
      if (idx >= n) throw format_error("vsz: outlier index out of range");
      h_deltas[idx] = delta;
    }
    return 0;
  });
  gs::DeviceBuffer<std::int32_t> d_deltas(dev, std::max<size_t>(1, n));
  gs::copy_h2d<std::int32_t>(dev, d_deltas, h_deltas);

  // Kernels: inverse Lorenzo = one prefix-sum kernel per axis.
  const Grid grid = h.grid();
  if (grid.count() != n) throw format_error("vsz: header grid mismatch");
  for (size_t a = grid.ndim(); a-- > 0;) {
    gs::launch(dev, "vsz_lorenzo_inv_axis", 1, [&](const gs::BlockCtx& ctx) {
      axis_prefix_sum(d_deltas.span().first(n), grid, a);
      ctx.read(gs::Stage::kQuantPredict, n * 4);
      ctx.write(gs::Stage::kQuantPredict, n * 4);
      ctx.ops(gs::Stage::kQuantPredict, n);
    });
  }

  // Kernel: dequantize.
  constexpr size_t kTile = 65536;
  const size_t tiles = std::max<size_t>(1, div_ceil(n, kTile));
  const double scale = 2.0 * h.eb_abs;
  gs::launch(dev, "vsz_dequant", tiles, [&](const gs::BlockCtx& ctx) {
    const size_t begin = ctx.block_idx * kTile;
    const size_t end = std::min(n, begin + kTile);
    for (size_t i = begin; i < end; ++i) {
      out[i] = static_cast<float>(static_cast<double>(d_deltas[i]) * scale);
    }
    if (end > begin) {
      ctx.read(gs::Stage::kQuantPredict, (end - begin) * 4);
      ctx.write(gs::Stage::kQuantPredict, (end - begin) * 4);
      ctx.ops(gs::Stage::kQuantPredict, end - begin);
    }
  });

  DeviceCodecResult res;
  res.bytes = n;
  res.trace = dev.snapshot() - before;
  return res;
}

}  // namespace szp::vsz
