#include "szp/baselines/vsz/lorenzo_nd.hpp"

namespace szp::vsz {

size_t Grid::count() const {
  size_t n = extents.empty() ? 0 : 1;
  for (const size_t e : extents) n *= e;
  return n;
}

namespace {

/// Iterate all "lines" along `axis`: calls fn(base_index, stride, length).
template <typename Fn>
void for_each_line(const Grid& g, size_t axis, Fn&& fn) {
  const size_t ndim = g.ndim();
  if (axis >= ndim) throw format_error("lorenzo_nd: bad axis");
  size_t stride = 1;
  for (size_t a = ndim; a-- > axis + 1;) stride *= g.extents[a];
  const size_t len = g.extents[axis];
  const size_t total = g.count();
  if (total == 0 || len == 0) return;
  const size_t lines = total / len;
  // Decompose line id into (outer, inner) where inner < stride and the
  // line's base = outer * stride * len + inner.
  for (size_t line = 0; line < lines; ++line) {
    const size_t outer = line / stride;
    const size_t inner = line % stride;
    fn(outer * stride * len + inner, stride, len);
  }
}

}  // namespace

void axis_diff(std::span<std::int32_t> v, const Grid& g, size_t axis) {
  for_each_line(g, axis, [&](size_t base, size_t stride, size_t len) {
    // Walk backwards so each element sees its original predecessor.
    for (size_t i = len; i-- > 1;) {
      v[base + i * stride] -= v[base + (i - 1) * stride];
    }
  });
}

void axis_prefix_sum(std::span<std::int32_t> v, const Grid& g, size_t axis) {
  for_each_line(g, axis, [&](size_t base, size_t stride, size_t len) {
    for (size_t i = 1; i < len; ++i) {
      v[base + i * stride] += v[base + (i - 1) * stride];
    }
  });
}

void lorenzo_nd_forward(std::span<std::int32_t> v, const Grid& g) {
  if (v.size() != g.count()) throw format_error("lorenzo_nd: size mismatch");
  for (size_t a = 0; a < g.ndim(); ++a) axis_diff(v, g, a);
}

void lorenzo_nd_inverse(std::span<std::int32_t> v, const Grid& g) {
  if (v.size() != g.count()) throw format_error("lorenzo_nd: size mismatch");
  for (size_t a = g.ndim(); a-- > 0;) axis_prefix_sum(v, g, a);
}

}  // namespace szp::vsz
