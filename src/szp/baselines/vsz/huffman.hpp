// Canonical Huffman coding over 16-bit symbols, used by the vsz (cuSZ-
// style) baseline. Codebook construction is the CPU-side linear recurrence
// the paper identifies as cuSZ's end-to-end bottleneck.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "szp/util/common.hpp"

namespace szp::vsz {

/// Canonical codebook: symbols are implicit [0, lengths.size()).
struct HuffmanCodebook {
  static constexpr unsigned kMaxCodeLength = 24;

  std::vector<std::uint8_t> lengths;  // 0 = symbol unused
  std::vector<std::uint32_t> codes;   // canonical, MSB-aligned to length

  /// Build from symbol frequencies (length-limited to kMaxCodeLength).
  [[nodiscard]] static HuffmanCodebook build(
      std::span<const std::uint64_t> freq);

  /// Codebook transport: just the length array (canonical codes are
  /// reconstructed deterministically).
  [[nodiscard]] std::vector<byte_t> serialize() const;
  [[nodiscard]] static HuffmanCodebook deserialize(
      std::span<const byte_t> bytes);

  /// Kraft sum in units of 2^-kMaxCodeLength (== 2^kMaxCodeLength when the
  /// code is complete; <= for a valid prefix code).
  [[nodiscard]] std::uint64_t kraft_sum() const;

  [[nodiscard]] size_t num_symbols() const { return lengths.size(); }
};

/// Encode symbols MSB-first. Throws if a symbol has no code.
[[nodiscard]] std::vector<byte_t> huffman_encode(
    std::span<const std::uint16_t> symbols, const HuffmanCodebook& book);

/// Decode exactly `count` symbols.
[[nodiscard]] std::vector<std::uint16_t> huffman_decode(
    std::span<const byte_t> bits, const HuffmanCodebook& book, size_t count);

/// Exact encoded size in bits (for chunk layout without encoding twice).
[[nodiscard]] std::uint64_t huffman_encoded_bits(
    std::span<const std::uint16_t> symbols, const HuffmanCodebook& book);

}  // namespace szp::vsz
