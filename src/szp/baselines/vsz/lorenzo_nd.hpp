// N-dimensional (1/2/3D) Lorenzo prediction on pre-quantized integers —
// cuSZ's "dual-quant" formulation, which makes both directions separable:
// the forward operator is the composition of per-axis differences and the
// inverse is the composition of per-axis prefix sums (one scan kernel per
// axis on the device path).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "szp/util/common.hpp"

namespace szp::vsz {

/// Grid extents, slowest axis first; 1-3 dims (higher-D data should fuse
/// leading axes first).
struct Grid {
  std::vector<size_t> extents;
  [[nodiscard]] size_t ndim() const { return extents.size(); }
  [[nodiscard]] size_t count() const;
};

/// In-place forward Lorenzo: v <- Δ_x (Δ_y (Δ_z v)). Values must satisfy
/// |v| <= 2^27 so no intermediate difference can overflow (checked).
void lorenzo_nd_forward(std::span<std::int32_t> v, const Grid& g);

/// In-place inverse: per-axis prefix sums in reverse axis order.
void lorenzo_nd_inverse(std::span<std::int32_t> v, const Grid& g);

/// Difference along one axis (exposed for the device kernels and tests).
void axis_diff(std::span<std::int32_t> v, const Grid& g, size_t axis);
void axis_prefix_sum(std::span<std::int32_t> v, const Grid& g, size_t axis);

}  // namespace szp::vsz
