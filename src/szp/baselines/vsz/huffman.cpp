#include "szp/baselines/vsz/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace szp::vsz {

namespace {

/// Compute unrestricted Huffman code lengths with the classic two-node
/// merge (heap), then length-limit with the deflate-style fixup.
std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq,
                                       unsigned max_len) {
  const size_t n = freq.size();
  std::vector<std::uint8_t> lengths(n, 0);

  struct Node {
    std::uint64_t weight;
    std::uint32_t id;  // < n: leaf; >= n: internal
  };
  struct Cmp {
    bool operator()(const Node& a, const Node& b) const {
      return a.weight > b.weight || (a.weight == b.weight && a.id > b.id);
    }
  };

  std::vector<std::int32_t> parent;
  parent.reserve(2 * n);
  std::priority_queue<Node, std::vector<Node>, Cmp> heap;
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> leaf_id(n, 0);
  for (size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    leaf_id[s] = next_id;
    parent.push_back(-1);
    heap.push({freq[s], next_id++});
  }
  const size_t used = next_id;
  if (used == 0) return lengths;
  if (used == 1) {
    // Single-symbol alphabet: give it a 1-bit code.
    for (size_t s = 0; s < n; ++s) {
      if (freq[s] != 0) lengths[s] = 1;
    }
    return lengths;
  }
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    const std::uint32_t id = next_id++;
    parent.push_back(-1);
    parent[a.id] = static_cast<std::int32_t>(id);
    parent[b.id] = static_cast<std::int32_t>(id);
    heap.push({a.weight + b.weight, id});
  }
  // Depth of each leaf = number of parent hops to the root.
  std::uint32_t li = 0;
  for (size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    unsigned depth = 0;
    for (std::int32_t p = parent[leaf_id[s]]; p >= 0; p = parent[p]) ++depth;
    lengths[s] = static_cast<std::uint8_t>(depth);
    ++li;
  }

  // Length-limit: count codes per length; push overflow down, then pull
  // shorter codes up to restore the Kraft equality (zlib's approach).
  std::vector<std::uint32_t> bl_count(max_len + 1, 0);
  bool overflow = false;
  for (size_t s = 0; s < n; ++s) {
    if (lengths[s] == 0) continue;
    if (lengths[s] > max_len) {
      overflow = true;
      lengths[s] = static_cast<std::uint8_t>(max_len);
    }
    ++bl_count[lengths[s]];
  }
  if (overflow) {
    // Restore Kraft <= 1 by extending the shortest over-full codes.
    std::uint64_t kraft = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
      kraft += static_cast<std::uint64_t>(bl_count[l])
               << (max_len - l);
    }
    const std::uint64_t limit = std::uint64_t{1} << max_len;
    while (kraft > limit) {
      // Find a symbol with the largest length < max_len and demote it.
      unsigned bits = max_len - 1;
      while (bl_count[bits] == 0) --bits;
      --bl_count[bits];
      ++bl_count[bits + 1];
      kraft -= std::uint64_t{1} << (max_len - bits - 1);
    }
    // Re-assign lengths from bl_count to the symbols sorted by frequency
    // (most frequent gets the shortest code).
    std::vector<size_t> order;
    for (size_t s = 0; s < n; ++s) {
      if (freq[s] != 0) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return freq[a] > freq[b] || (freq[a] == freq[b] && a < b);
    });
    size_t pos = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
      for (std::uint32_t c = 0; c < bl_count[l]; ++c) {
        lengths[order[pos++]] = static_cast<std::uint8_t>(l);
      }
    }
  }
  return lengths;
}

/// Assign canonical codes from lengths: shorter codes first, ties by
/// symbol value.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  std::vector<size_t> order;
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] != 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lengths[a] < lengths[b] || (lengths[a] == lengths[b] && a < b);
  });
  std::uint32_t code = 0;
  unsigned prev_len = 0;
  for (const size_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

/// MSB-first bit writer (canonical Huffman convention).
class MsbWriter {
 public:
  void put(std::uint32_t value, unsigned nbits) {
    for (unsigned i = nbits; i-- > 0;) {
      acc_ = static_cast<byte_t>((acc_ << 1) | ((value >> i) & 1u));
      if (++fill_ == 8) {
        buf_.push_back(acc_);
        acc_ = 0;
        fill_ = 0;
      }
    }
  }
  std::vector<byte_t> take() && {
    if (fill_ > 0) buf_.push_back(static_cast<byte_t>(acc_ << (8 - fill_)));
    return std::move(buf_);
  }

 private:
  std::vector<byte_t> buf_;
  byte_t acc_ = 0;
  unsigned fill_ = 0;
};

class MsbReader {
 public:
  explicit MsbReader(std::span<const byte_t> data) : data_(data) {}
  [[nodiscard]] unsigned get_bit() {
    if (pos_ >= data_.size() * 8) {
      throw format_error("huffman: bitstream exhausted");
    }
    const unsigned bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

 private:
  std::span<const byte_t> data_;
  size_t pos_ = 0;
};

}  // namespace

HuffmanCodebook HuffmanCodebook::build(std::span<const std::uint64_t> freq) {
  HuffmanCodebook book;
  book.lengths = code_lengths(freq, kMaxCodeLength);
  book.codes = canonical_codes(book.lengths);
  return book;
}

std::vector<byte_t> HuffmanCodebook::serialize() const {
  std::vector<byte_t> out;
  out.reserve(lengths.size());
  out.assign(lengths.begin(), lengths.end());
  return out;
}

HuffmanCodebook HuffmanCodebook::deserialize(std::span<const byte_t> bytes) {
  HuffmanCodebook book;
  book.lengths.assign(bytes.begin(), bytes.end());
  for (const auto l : book.lengths) {
    if (l > kMaxCodeLength) throw format_error("huffman: bad code length");
  }
  book.codes = canonical_codes(book.lengths);
  return book;
}

std::uint64_t HuffmanCodebook::kraft_sum() const {
  std::uint64_t sum = 0;
  for (const auto l : lengths) {
    if (l != 0) sum += std::uint64_t{1} << (kMaxCodeLength - l);
  }
  return sum;
}

std::vector<byte_t> huffman_encode(std::span<const std::uint16_t> symbols,
                                   const HuffmanCodebook& book) {
  MsbWriter w;
  for (const std::uint16_t s : symbols) {
    if (s >= book.lengths.size() || book.lengths[s] == 0) {
      throw format_error("huffman_encode: symbol has no code");
    }
    w.put(book.codes[s], book.lengths[s]);
  }
  return std::move(w).take();
}

std::uint64_t huffman_encoded_bits(std::span<const std::uint16_t> symbols,
                                   const HuffmanCodebook& book) {
  std::uint64_t bits = 0;
  for (const std::uint16_t s : symbols) {
    if (s >= book.lengths.size() || book.lengths[s] == 0) {
      throw format_error("huffman_encoded_bits: symbol has no code");
    }
    bits += book.lengths[s];
  }
  return bits;
}

std::vector<std::uint16_t> huffman_decode(std::span<const byte_t> bits,
                                          const HuffmanCodebook& book,
                                          size_t count) {
  // Canonical decode: per length, the first code value and the index of
  // its first symbol in canonical order.
  const unsigned kMax = HuffmanCodebook::kMaxCodeLength;
  std::vector<std::uint32_t> first_code(kMax + 2, 0);
  std::vector<std::uint32_t> first_index(kMax + 2, 0);
  std::vector<std::uint32_t> count_len(kMax + 1, 0);
  std::vector<std::uint16_t> canonical_symbols;
  {
    std::vector<size_t> order;
    for (size_t s = 0; s < book.lengths.size(); ++s) {
      if (book.lengths[s] != 0) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return book.lengths[a] < book.lengths[b] ||
             (book.lengths[a] == book.lengths[b] && a < b);
    });
    canonical_symbols.reserve(order.size());
    for (const size_t s : order) {
      canonical_symbols.push_back(static_cast<std::uint16_t>(s));
      ++count_len[book.lengths[s]];
    }
    std::uint32_t code = 0, index = 0;
    for (unsigned l = 1; l <= kMax; ++l) {
      first_code[l] = code;
      first_index[l] = index;
      code = (code + count_len[l]) << 1;
      index += count_len[l];
    }
  }

  std::vector<std::uint16_t> out;
  out.reserve(count);
  MsbReader r(bits);
  for (size_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    unsigned len = 0;
    for (;;) {
      code = (code << 1) | r.get_bit();
      ++len;
      if (len > kMax) throw format_error("huffman_decode: invalid stream");
      if (count_len[len] != 0 &&
          code < first_code[len] + count_len[len] && code >= first_code[len]) {
        out.push_back(
            canonical_symbols[first_index[len] + (code - first_code[len])]);
        break;
      }
    }
  }
  return out;
}

}  // namespace szp::vsz
