#include "szp/baselines/xsz/xsz.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "szp/core/stages.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/util/bytestream.hpp"

namespace szp::xsz {

namespace gs = gpusim;

namespace {

constexpr std::uint8_t kConstantFlag = 0x80;

struct BlockPlan {
  bool constant = false;
  float midpoint = 0;
  unsigned f = 0;
  size_t cmp_len = 0;
  std::uint8_t meta = 0;
};

size_t nonconstant_len(unsigned f, unsigned L) {
  return (static_cast<size_t>(f) + 1) * L / 8;
}

/// Decide constant/non-constant and the fixed length for one block.
BlockPlan plan_block(std::span<const float> block, double eb, unsigned L,
                     std::span<std::int32_t> quant,
                     std::span<std::uint32_t> mags, std::span<byte_t> signs) {
  BlockPlan p;
  float mn = block[0], mx = block[0];
  for (const float v : block) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  if (static_cast<double>(mx) - static_cast<double>(mn) <= 2.0 * eb) {
    // Constant block: flush every point to the range midpoint. This is
    // the cuSZx design decision behind the stripe artifacts (Fig. 16).
    p.constant = true;
    p.midpoint = static_cast<float>(
        (static_cast<double>(mn) + static_cast<double>(mx)) / 2.0);
    p.cmp_len = sizeof(float);
    p.meta = kConstantFlag;
    return p;
  }
  // Non-constant: plain pre-quantization (no Lorenzo in xsz).
  std::vector<float> padded(L, 0.0f);
  std::copy(block.begin(), block.end(), padded.begin());
  core::quantize(padded, eb, quant);
  core::split_signs(quant, mags, signs);
  p.f = core::fixed_length_of(mags);
  p.cmp_len = nonconstant_len(p.f, L);
  p.meta = static_cast<std::uint8_t>(p.f);
  return p;
}

void encode_nonconstant(std::span<const std::uint32_t> mags,
                        std::span<const byte_t> signs, unsigned f, unsigned L,
                        std::span<byte_t> dst) {
  const size_t groups = L / 8;
  std::copy(signs.begin(), signs.end(), dst.begin());
  if (f > 0) core::bit_pack(mags, f, dst.subspan(groups));
}

void decode_block(std::span<const byte_t> payload, std::uint8_t meta,
                  unsigned L, double eb, std::span<float> out) {
  if (meta & kConstantFlag) {
    float mid;
    std::memcpy(&mid, payload.data(), sizeof(float));
    std::fill(out.begin(), out.end(), mid);
    return;
  }
  const unsigned f = meta;
  const size_t groups = L / 8;
  std::vector<std::uint32_t> mags(L, 0u);
  std::vector<std::int32_t> quant(L);
  if (f > 0) core::bit_unpack(payload.subspan(groups), f, mags);
  core::apply_signs(mags, payload.first(groups), quant);
  std::vector<float> full(L);
  core::dequantize(quant, eb, full);
  std::copy(full.begin(), full.begin() + static_cast<long>(out.size()),
            out.begin());
}

double range_of(std::span<const float> data) {
  if (data.empty()) return 0;
  const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  return static_cast<double>(*mx) - static_cast<double>(*mn);
}

}  // namespace

void Params::validate() const {
  if (block_len == 0 || block_len % 8 != 0) {
    throw format_error("xsz::Params: block_len must be a multiple of 8");
  }
  if (error_bound <= 0) throw format_error("xsz::Params: bad error bound");
}

void Header::serialize(std::span<byte_t> out) const {
  if (out.size() < kSize) throw format_error("xsz::Header: buffer too small");
  ByteWriter w;
  w.put(kMagic);
  w.put(block_len);
  w.put(std::uint16_t{0});
  w.put(num_elements);
  w.put(eb_abs);
  while (w.size() < kSize) w.put(byte_t{0});
  std::copy(w.bytes().begin(), w.bytes().end(), out.begin());
}

Header Header::deserialize(std::span<const byte_t> in) {
  if (in.size() < kSize) throw format_error("xsz::Header: truncated");
  ByteReader r(in);
  if (r.get<std::uint32_t>() != kMagic) throw format_error("xsz: bad magic");
  Header h;
  h.block_len = r.get<std::uint16_t>();
  (void)r.get<std::uint16_t>();
  h.num_elements = r.get<std::uint64_t>();
  h.eb_abs = r.get<double>();
  if (h.block_len == 0 || h.block_len % 8 != 0 || h.eb_abs <= 0) {
    throw format_error("xsz::Header: invalid fields");
  }
  return h;
}

size_t max_compressed_bytes(size_t n, unsigned block_len) {
  const size_t nblocks = div_ceil(n, static_cast<size_t>(block_len));
  return Header::kSize + nblocks + nblocks * nonconstant_len(32, block_len);
}

std::vector<byte_t> compress_serial(std::span<const float> data,
                                    const Params& params,
                                    std::optional<double> value_range) {
  params.validate();
  const double eb = params.mode == core::ErrorMode::kAbs
                        ? params.error_bound
                        : std::max(params.error_bound *
                                       (value_range ? *value_range
                                                    : range_of(data)),
                                   1e-30);
  const unsigned L = params.block_len;
  const size_t n = data.size();
  const size_t nblocks = div_ceil(n, static_cast<size_t>(L));

  Header h;
  h.num_elements = n;
  h.eb_abs = eb;
  h.block_len = static_cast<std::uint16_t>(L);

  std::vector<byte_t> meta(nblocks, 0);
  std::vector<std::vector<byte_t>> payloads(nblocks);
  std::vector<std::int32_t> quant(L);
  std::vector<std::uint32_t> mags(L);
  std::vector<byte_t> signs(L / 8);

  size_t total = 0;
  for (size_t b = 0; b < nblocks; ++b) {
    const size_t begin = b * L;
    const size_t len = std::min<size_t>(L, n - begin);
    const BlockPlan p =
        plan_block(data.subspan(begin, len), eb, L, quant, mags, signs);
    meta[b] = p.meta;
    auto& payload = payloads[b];
    payload.resize(p.cmp_len, byte_t{0});
    if (p.constant) {
      std::memcpy(payload.data(), &p.midpoint, sizeof(float));
    } else {
      encode_nonconstant(mags, signs, p.f, L, payload);
    }
    total += p.cmp_len;
  }

  std::vector<byte_t> out(Header::kSize + nblocks + total, byte_t{0});
  h.serialize(out);
  std::copy(meta.begin(), meta.end(), out.begin() + Header::kSize);
  size_t off = Header::kSize + nblocks;
  for (const auto& payload : payloads) {
    std::copy(payload.begin(), payload.end(), out.begin() + off);
    off += payload.size();
  }
  return out;
}

std::vector<float> decompress_serial(std::span<const byte_t> stream) {
  const Header h = Header::deserialize(stream);
  const unsigned L = h.block_len;
  const size_t n = h.num_elements;
  const size_t nblocks = div_ceil(n, static_cast<size_t>(L));
  if (stream.size() < Header::kSize + nblocks) {
    throw format_error("xsz: truncated meta");
  }
  std::vector<float> out(n);
  size_t off = Header::kSize + nblocks;
  for (size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t meta = stream[Header::kSize + b];
    const size_t cl = (meta & kConstantFlag)
                          ? sizeof(float)
                          : nonconstant_len(meta, L);
    if (off + cl > stream.size()) throw format_error("xsz: truncated payload");
    const size_t begin = b * L;
    const size_t len = std::min<size_t>(L, n - begin);
    decode_block(stream.subspan(off, cl), meta, L, h.eb_abs,
                 std::span(out).subspan(begin, len));
    off += cl;
  }
  return out;
}

DeviceCodecResult compress_device(gs::Device& dev,
                                  const gs::DeviceBuffer<float>& in, size_t n,
                                  const Params& params, double eb_abs,
                                  gs::DeviceBuffer<byte_t>& out) {
  params.validate();
  const unsigned L = params.block_len;
  const size_t nblocks = div_ceil(n, static_cast<size_t>(L));
  if (out.size() < max_compressed_bytes(n, L)) {
    throw format_error("xsz::compress_device: output too small");
  }
  const auto before = dev.snapshot();

  const size_t stride = nonconstant_len(32, L);  // worst-case slot
  gs::DeviceBuffer<byte_t> d_scratch(dev, std::max<size_t>(1, nblocks * stride),
                                     byte_t{0});
  gs::DeviceBuffer<byte_t> d_meta(dev, std::max<size_t>(1, nblocks), byte_t{0});
  gs::DeviceBuffer<std::uint64_t> d_lens(dev, std::max<size_t>(1, nblocks), 0);

  constexpr size_t kBlocksPerCta = 8;
  const size_t grid = std::max<size_t>(1, div_ceil(nblocks, kBlocksPerCta));
  const std::span<const float> data = in.span().first(n);

  // Kernel 1: per-block encode into fixed-stride scratch slots. The
  // variable-length concatenation cannot happen here — offsets are only
  // known after the host prefix sum (the cuSZx structure).
  gs::launch(dev, "xsz_encode", grid, [&](const gs::BlockCtx& ctx) {
    std::vector<std::int32_t> quant(L);
    std::vector<std::uint32_t> mags(L);
    std::vector<byte_t> signs(L / 8);
    size_t elems = 0, written = 0;
    for (size_t k = 0; k < kBlocksPerCta; ++k) {
      const size_t b = ctx.block_idx * kBlocksPerCta + k;
      if (b >= nblocks) break;
      const size_t begin = b * L;
      const size_t len = std::min<size_t>(L, n - begin);
      elems += len;
      const BlockPlan p =
          plan_block(data.subspan(begin, len), eb_abs, L, quant, mags, signs);
      d_meta[b] = p.meta;
      d_lens[b] = p.cmp_len;
      const std::span<byte_t> slot = d_scratch.span().subspan(b * stride, stride);
      if (p.constant) {
        std::memcpy(slot.data(), &p.midpoint, sizeof(float));
      } else {
        encode_nonconstant(mags, signs, p.f, L, slot);
      }
      written += p.cmp_len;
    }
    ctx.read(gs::Stage::kBlockEncode, elems * sizeof(float));
    ctx.ops(gs::Stage::kBlockEncode, 2 * elems);
    ctx.write(gs::Stage::kBlockEncode,
              written + kBlocksPerCta * (1 + sizeof(std::uint64_t)));
  });

  // Host round trip: scratch + metadata come back to the CPU, which does
  // the prefix sum and compacts the final stream (cuSZx's "global
  // synchronization on CPU").
  std::vector<byte_t> h_scratch = gs::to_host(dev, d_scratch);
  std::vector<byte_t> h_meta = gs::to_host(dev, d_meta);
  std::vector<std::uint64_t> h_lens = gs::to_host(dev, d_lens);

  Header h;
  h.num_elements = n;
  h.eb_abs = eb_abs;
  h.block_len = static_cast<std::uint16_t>(L);

  size_t total = 0;
  for (size_t b = 0; b < nblocks; ++b) total += h_lens[b];
  const size_t out_size = Header::kSize + nblocks + total;

  std::vector<byte_t> final_stream(out_size, byte_t{0});
  gs::host_stage(dev, nblocks * sizeof(std::uint64_t) + total, [&] {
    h.serialize(final_stream);
    std::copy(h_meta.begin(), h_meta.begin() + static_cast<long>(nblocks),
              final_stream.begin() + Header::kSize);
    size_t off = Header::kSize + nblocks;
    for (size_t b = 0; b < nblocks; ++b) {
      std::memcpy(final_stream.data() + off, h_scratch.data() + b * stride,
                  h_lens[b]);
      off += h_lens[b];
    }
    return 0;
  });

  gs::copy_h2d<byte_t>(dev, out, final_stream);

  DeviceCodecResult res;
  res.bytes = out_size;
  res.trace = dev.snapshot() - before;
  return res;
}

DeviceCodecResult decompress_device(gs::Device& dev,
                                    const gs::DeviceBuffer<byte_t>& cmp,
                                    gs::DeviceBuffer<float>& out) {
  const Header h = Header::deserialize(cmp.span());
  const unsigned L = h.block_len;
  const size_t n = h.num_elements;
  const size_t nblocks = div_ceil(n, static_cast<size_t>(L));
  if (out.size() < n) throw format_error("xsz: output too small");
  const auto before = dev.snapshot();

  // CPU preprocessing: the header + block metadata are copied to the host
  // where the per-block offsets are reconstructed.
  std::vector<byte_t> h_meta(Header::kSize + nblocks);
  gs::copy_d2h<byte_t>(dev, h_meta, cmp, h_meta.size());
  std::vector<std::uint64_t> offsets(std::max<size_t>(1, nblocks), 0);
  gs::host_stage(dev, h_meta.size(), [&] {
    size_t off = Header::kSize + nblocks;
    for (size_t b = 0; b < nblocks; ++b) {
      offsets[b] = off;
      const std::uint8_t meta = h_meta[Header::kSize + b];
      off += (meta & kConstantFlag) ? sizeof(float) : nonconstant_len(meta, L);
    }
    return 0;
  });
  gs::DeviceBuffer<std::uint64_t> d_offsets(dev, offsets.size());
  gs::copy_h2d<std::uint64_t>(dev, d_offsets, offsets);

  constexpr size_t kBlocksPerCta = 8;
  const size_t grid = std::max<size_t>(1, div_ceil(nblocks, kBlocksPerCta));
  const std::span<const byte_t> stream = cmp.span();
  const std::span<float> data = out.span().first(n);

  gs::launch(dev, "xsz_decode", grid, [&](const gs::BlockCtx& ctx) {
    size_t elems = 0, read_bytes = 0;
    for (size_t k = 0; k < kBlocksPerCta; ++k) {
      const size_t b = ctx.block_idx * kBlocksPerCta + k;
      if (b >= nblocks) break;
      const std::uint8_t meta = stream[Header::kSize + b];
      const size_t cl =
          (meta & kConstantFlag) ? sizeof(float) : nonconstant_len(meta, L);
      const size_t begin = b * L;
      const size_t len = std::min<size_t>(L, n - begin);
      if (offsets[b] + cl > stream.size()) {
        throw format_error("xsz: truncated payload");
      }
      decode_block(stream.subspan(offsets[b], cl), meta, L, h.eb_abs,
                   data.subspan(begin, len));
      elems += len;
      read_bytes += cl + 1 + sizeof(std::uint64_t);
    }
    ctx.read(gs::Stage::kBlockEncode, read_bytes);
    ctx.ops(gs::Stage::kBlockEncode, 2 * elems);
    ctx.write(gs::Stage::kBlockEncode, elems * sizeof(float));
  });

  // CPU postprocessing (cuSZx decompression needs both pre- and post-
  // processing on the host, paper §5.2): the reconstruction round-trips to
  // the host for a fixup scan over the float stream.
  std::vector<float> h_out = gs::to_host(dev, out);
  gs::host_stage(dev, h_out.size() * 3, [&] { return 0; });

  DeviceCodecResult res;
  res.bytes = n;
  res.trace = dev.snapshot() - before;
  return res;
}

double constant_block_fraction(std::span<const byte_t> stream) {
  const Header h = Header::deserialize(stream);
  const size_t nblocks =
      div_ceil(static_cast<size_t>(h.num_elements),
               static_cast<size_t>(h.block_len));
  if (nblocks == 0) return 0;
  size_t constant = 0;
  for (size_t b = 0; b < nblocks; ++b) {
    if (stream[Header::kSize + b] & kConstantFlag) ++constant;
  }
  return static_cast<double>(constant) / static_cast<double>(nblocks);
}

}  // namespace szp::xsz
