// cuSZx-style baseline ("xsz"): error-bounded block codec with constant-
// block flushing (Yu et al., HPDC'22 design, reimplemented per the paper's
// description).
//
// Pipeline: split the data into fixed blocks (default 128). A block whose
// value spread fits inside 2*eb is a *constant block* and is flushed to
// the range-midpoint, stored as one float — the design that produces the
// stripe artifacts of paper Fig. 16 and the CR spikes at large REL bounds.
// Other blocks store a sign map plus fixed-length magnitudes (no Lorenzo,
// no bit-shuffle). Offsets are resolved with a host-side prefix sum: the
// device path therefore needs two kernels with host work and PCIe round
// trips in between, which is exactly the end-to-end weakness the paper
// measures (Fig. 13/14).
//
// Stream layout:
//   [Header 32B]
//   [meta: 1 byte per block; bit7 = constant, bits 0..6 = F]
//   [payload at prefix-sum offsets: constant -> 4B midpoint;
//    non-constant -> L/8 sign bytes + F*L/8 packed magnitude bytes]
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "szp/core/format.hpp"  // reuse ErrorMode
#include "szp/gpusim/buffer.hpp"

namespace szp::xsz {

struct Params {
  core::ErrorMode mode = core::ErrorMode::kRel;
  double error_bound = 1e-3;
  unsigned block_len = 128;

  void validate() const;
};

struct Header {
  static constexpr std::uint32_t kMagic = 0x78355A53;  // "SZ5x"
  std::uint64_t num_elements = 0;
  double eb_abs = 0;
  std::uint16_t block_len = 128;
  static constexpr size_t kSize = 32;

  void serialize(std::span<byte_t> out) const;
  [[nodiscard]] static Header deserialize(std::span<const byte_t> in);
};

[[nodiscard]] std::vector<byte_t> compress_serial(
    std::span<const float> data, const Params& params,
    std::optional<double> value_range = std::nullopt);

[[nodiscard]] std::vector<float> decompress_serial(
    std::span<const byte_t> stream);

struct DeviceCodecResult {
  size_t bytes = 0;
  gpusim::TraceSnapshot trace;
};

/// Device compression: encode kernel -> D2H scratch -> host prefix-sum and
/// compaction -> H2D final stream. Byte-identical to compress_serial.
DeviceCodecResult compress_device(gpusim::Device& dev,
                                  const gpusim::DeviceBuffer<float>& in,
                                  size_t n, const Params& params,
                                  double eb_abs,
                                  gpusim::DeviceBuffer<byte_t>& out);

/// Device decompression: D2H stream -> host preprocessing (offsets) ->
/// H2D offsets -> decode kernel -> host postprocessing pass.
DeviceCodecResult decompress_device(gpusim::Device& dev,
                                    const gpusim::DeviceBuffer<byte_t>& cmp,
                                    gpusim::DeviceBuffer<float>& out);

/// Worst-case compressed size.
[[nodiscard]] size_t max_compressed_bytes(size_t n, unsigned block_len);

/// Fraction of blocks flushed to a constant (for tests/benches).
[[nodiscard]] double constant_block_fraction(std::span<const byte_t> stream);

}  // namespace szp::xsz
