// Bit-granular writer/reader over a byte buffer.
//
// Bits are packed LSB-first within each byte, which matches the layout the
// codecs in this repository use for sign maps and bit planes: bit `k` of
// byte `j` corresponds to element `8*j + k`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "szp/util/common.hpp"

namespace szp {

/// Appends bit fields to a growing byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `nbits` bits of `value` (LSB first). nbits in [0, 64].
  void put(std::uint64_t value, unsigned nbits);

  /// Append a single bit.
  void put_bit(bool b) { put(b ? 1u : 0u, 1); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Number of bits written so far.
  [[nodiscard]] size_t bit_count() const { return bit_count_; }

  /// Finish (pads to a byte boundary) and take the buffer.
  [[nodiscard]] std::vector<byte_t> take() &&;

  /// Access the partially written buffer (excluding any pending bits).
  [[nodiscard]] const std::vector<byte_t>& bytes() const { return buf_; }

 private:
  std::vector<byte_t> buf_;
  std::uint64_t acc_ = 0;   // pending bits, LSB-first
  unsigned acc_bits_ = 0;   // number of pending bits in acc_
  size_t bit_count_ = 0;
};

/// Reads bit fields from a byte span. Throws `format_error` on overrun.
class BitReader {
 public:
  explicit BitReader(std::span<const byte_t> data) : data_(data) {}

  /// Read `nbits` bits (LSB first). nbits in [0, 64].
  [[nodiscard]] std::uint64_t get(unsigned nbits);

  [[nodiscard]] bool get_bit() { return get(1) != 0; }

  /// Skip to the next byte boundary.
  void align_to_byte();

  /// Bits consumed so far.
  [[nodiscard]] size_t bit_position() const { return pos_; }

  /// Bits remaining.
  [[nodiscard]] size_t bits_left() const { return data_.size() * 8 - pos_; }

 private:
  std::span<const byte_t> data_;
  size_t pos_ = 0;  // absolute bit position
};

}  // namespace szp
