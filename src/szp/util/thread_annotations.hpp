// Clang Thread Safety Analysis annotations + capability-annotated
// synchronization wrappers.
//
// Every mutex-protected class in the tree declares its lock discipline with
// these macros (`SZP_GUARDED_BY`, `SZP_REQUIRES`, ...) so that a clang build
// with `-Wthread-safety -Werror` proves, at compile time, that guarded state
// is only touched with the right capability held. Under GCC/MSVC the macros
// expand to nothing and the wrappers degrade to thin shims over the standard
// primitives, so the annotations cost nothing where the analysis is
// unavailable.
//
// Policy (enforced by tools/szp_lint.cpp, rule RAW-SYNC): production code
// uses szp::Mutex / szp::LockGuard / szp::UniqueLock / szp::CondVar from this
// header instead of the raw std primitives, because the std types carry no
// capability attributes and make the analysis blind.
//
// See docs/STATIC_ANALYSIS.md for the full catalog.

#ifndef SZP_UTIL_THREAD_ANNOTATIONS_HPP
#define SZP_UTIL_THREAD_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SZP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SZP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type attributes ------------------------------------------------------------

// Marks a type as a capability (lockable). `name` shows up in diagnostics.
#define SZP_CAPABILITY(name) SZP_THREAD_ANNOTATION(capability(name))

// Marks an RAII type whose constructor acquires and destructor releases.
#define SZP_SCOPED_CAPABILITY SZP_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes -----------------------------------------------------

// Field may only be read/written while holding `x`.
#define SZP_GUARDED_BY(x) SZP_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the pointee (not the pointer) is protected by `x`.
#define SZP_PT_GUARDED_BY(x) SZP_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering: this capability must be acquired after / before `...`.
#define SZP_ACQUIRED_AFTER(...) SZP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SZP_ACQUIRED_BEFORE(...) \
  SZP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// Function attributes --------------------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry.
#define SZP_REQUIRES(...) \
  SZP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SZP_REQUIRES_SHARED(...) \
  SZP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability itself.
#define SZP_ACQUIRE(...) SZP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SZP_ACQUIRE_SHARED(...) \
  SZP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SZP_RELEASE(...) SZP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SZP_RELEASE_SHARED(...) \
  SZP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function attempts acquisition; `b` is the success return value.
#define SZP_TRY_ACQUIRE(b, ...) \
  SZP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// Caller must NOT hold the capability (deadlock prevention).
#define SZP_EXCLUDES(...) SZP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define SZP_RETURN_CAPABILITY(x) SZP_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Every use MUST carry a trailing comment of the form
//   SZP_NO_THREAD_SAFETY_ANALYSIS  // tsa-escape: <reason>
// szp_lint (rule TSA-ESCAPE) rejects undocumented uses.
#define SZP_NO_THREAD_SAFETY_ANALYSIS \
  SZP_THREAD_ANNOTATION(no_thread_safety_analysis)

// Annotated wrappers ---------------------------------------------------------

namespace szp {

/// std::mutex with capability attributes. Same cost, same semantics; the
/// attributes let clang track which functions hold it.
class SZP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SZP_ACQUIRE() { m_.lock(); }
  void unlock() SZP_RELEASE() { m_.unlock(); }
  bool try_lock() SZP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The underlying std::mutex, for interop with std APIs that need it
  /// (std::scoped_lock over several mutexes, std::lock, ...). The analysis
  /// does not see through this; prefer the wrapper operations.
  std::mutex& native() SZP_RETURN_CAPABILITY(this) { return m_; }

 private:
  std::mutex m_;
};

/// RAII exclusive lock; std::lock_guard analogue.
class SZP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) SZP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() SZP_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that can be dropped/reacquired and handed to CondVar::wait;
/// std::unique_lock analogue. Must hold the lock at destruction *or* have
/// released it via unlock() — the annotation models the common
/// construct-locked lifecycle.
class SZP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SZP_ACQUIRE(mu) : lk_(mu.native()) {}
  ~UniqueLock() SZP_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() SZP_ACQUIRE() { lk_.lock(); }
  void unlock() SZP_RELEASE() { lk_.unlock(); }

  /// For CondVar and std interop only.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable over szp::Mutex. Only the plain wait() is offered:
/// predicate-lambda overloads hide guarded reads from the analysis (the
/// lambda is analyzed as a separate function with no capability context), so
/// call sites spell the standard `while (!cond) cv.wait(lk);` loop instead —
/// which clang then checks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lk.native(), dur);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace szp

#endif  // SZP_UTIL_THREAD_ANNOTATIONS_HPP
