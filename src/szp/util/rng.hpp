// Deterministic random number generation for dataset synthesis and tests.
//
// We own the generator (xoshiro256**) instead of using std::mt19937 so the
// synthetic datasets are bit-reproducible across standard-library versions.
#pragma once

#include <cstdint>

namespace szp {

/// SplitMix64 — used to seed xoshiro and for cheap hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna; public-domain algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (uses an internal cache).
  [[nodiscard]] double normal();

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace szp
