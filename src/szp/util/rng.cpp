#include "szp/util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace szp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire's unbiased bounded generation (simple rejection variant).
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

}  // namespace szp
