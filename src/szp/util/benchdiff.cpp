#include "szp/util/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

namespace szp::util {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string_view kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

struct Walker {
  const BenchDiffOptions& opts;
  BenchDiffResult& out;

  void add(DiffSeverity sev, const std::string& path, std::string message) {
    out.findings.push_back({sev, path, std::move(message)});
  }

  bool ignored(const std::string& path) {
    for (const std::string& pat : opts.ignore) {
      if (contains(path, pat)) {
        ++out.ignored;
        return true;
      }
    }
    return false;
  }

  /// Severity of a timing/noisy finding under the current options.
  [[nodiscard]] DiffSeverity timing_severity() const {
    return opts.warn_timing_only ? DiffSeverity::kWarn : DiffSeverity::kFail;
  }

  void leaf_number(const std::string& path, std::string_view leaf, double base,
                   double cur) {
    ++out.compared;
    const double denom = std::max(std::abs(base), 1e-300);
    const double rel = (cur - base) / denom;
    switch (classify_metric(leaf)) {
      case MetricClass::kHigherBetter:
        if (rel < -opts.timing_threshold) {
          add(timing_severity(), path,
              "throughput regression: " + fmt_num(base) + " -> " +
                  fmt_num(cur) + " (" + fmt_num(rel * 100.0) + "%)");
        } else if (rel > opts.timing_threshold) {
          add(DiffSeverity::kInfo, path,
              "improved: " + fmt_num(base) + " -> " + fmt_num(cur));
        }
        break;
      case MetricClass::kLowerBetter:
        if (rel > opts.timing_threshold) {
          add(timing_severity(), path,
              "time regression: " + fmt_num(base) + " -> " + fmt_num(cur) +
                  " (+" + fmt_num(rel * 100.0) + "%)");
        } else if (rel < -opts.timing_threshold) {
          add(DiffSeverity::kInfo, path,
              "improved: " + fmt_num(base) + " -> " + fmt_num(cur));
        }
        break;
      case MetricClass::kNoisy:
        if (std::abs(rel) > opts.timing_threshold) {
          add(timing_severity(), path,
              "shifted: " + fmt_num(base) + " -> " + fmt_num(cur));
        }
        break;
      case MetricClass::kExact:
        if (std::abs(rel) > opts.exact_tolerance) {
          add(DiffSeverity::kFail, path,
              "value mismatch: " + fmt_num(base) + " != " + fmt_num(cur));
        }
        break;
    }
  }

  void walk(const std::string& path, std::string_view leaf,
            const JsonValue& base, const JsonValue& cur) {
    if (ignored(path)) return;
    if (base.kind != cur.kind) {
      add(DiffSeverity::kFail, path,
          std::string("type mismatch: ") + std::string(kind_name(base.kind)) +
              " != " + std::string(kind_name(cur.kind)));
      return;
    }
    switch (base.kind) {
      case JsonValue::Kind::kObject: {
        std::set<std::string> keys;
        for (const auto& [k, v] : base.obj) keys.insert(k);
        for (const auto& [k, v] : cur.obj) keys.insert(k);
        for (const std::string& k : keys) {
          const std::string child = path.empty() ? k : path + "." + k;
          const JsonValue* b = base.find(k);
          const JsonValue* c = cur.find(k);
          if (b == nullptr) {
            if (!ignored(child)) {
              add(DiffSeverity::kWarn, child, "new metric (not in baseline)");
            }
            continue;
          }
          if (c == nullptr) {
            if (!ignored(child)) {
              add(DiffSeverity::kFail, child, "metric missing from current");
            }
            continue;
          }
          walk(child, k, *b, *c);
        }
        break;
      }
      case JsonValue::Kind::kArray: {
        if (base.arr.size() != cur.arr.size()) {
          add(DiffSeverity::kFail, path,
              "array length mismatch: " + std::to_string(base.arr.size()) +
                  " != " + std::to_string(cur.arr.size()));
          return;
        }
        for (std::size_t i = 0; i < base.arr.size(); ++i) {
          walk(path + "[" + std::to_string(i) + "]", leaf, base.arr[i],
               cur.arr[i]);
        }
        break;
      }
      case JsonValue::Kind::kNumber:
        leaf_number(path, leaf, base.num, cur.num);
        break;
      case JsonValue::Kind::kString:
        ++out.compared;
        if (base.str != cur.str) {
          add(DiffSeverity::kFail, path,
              "value mismatch: \"" + base.str + "\" != \"" + cur.str + "\"");
        }
        break;
      case JsonValue::Kind::kBool:
        ++out.compared;
        if (base.b != cur.b) {
          add(DiffSeverity::kFail, path,
              std::string("value mismatch: ") + (base.b ? "true" : "false") +
                  " != " + (cur.b ? "true" : "false"));
        }
        break;
      case JsonValue::Kind::kNull:
        ++out.compared;
        break;
    }
  }
};

}  // namespace

std::size_t BenchDiffResult::count(DiffSeverity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const DiffFinding& f) { return f.severity == s; }));
}

MetricClass classify_metric(std::string_view leaf_key) {
  if (ends_with(leaf_key, "_gbps") || ends_with(leaf_key, "_mbps") ||
      contains(leaf_key, "speedup")) {
    return MetricClass::kHigherBetter;
  }
  if (ends_with(leaf_key, "_s") || ends_with(leaf_key, "_ms") ||
      ends_with(leaf_key, "_us") || ends_with(leaf_key, "_ns") ||
      contains(leaf_key, "wall")) {
    return MetricClass::kLowerBetter;
  }
  if (ends_with(leaf_key, "_pct")) return MetricClass::kNoisy;
  return MetricClass::kExact;
}

BenchDiffResult diff_bench(const JsonValue& baseline, const JsonValue& current,
                           const BenchDiffOptions& opts) {
  BenchDiffResult r;
  Walker w{opts, r};
  w.walk("", "", baseline, current);
  return r;
}

void write_benchdiff_report(std::ostream& os, const BenchDiffResult& r) {
  for (const DiffFinding& f : r.findings) {
    const char* tag = f.severity == DiffSeverity::kFail   ? "FAIL"
                      : f.severity == DiffSeverity::kWarn ? "WARN"
                                                          : "info";
    os << tag << "  " << f.path << ": " << f.message << '\n';
  }
  os << "benchdiff: " << r.compared << " metrics compared, "
     << r.count(DiffSeverity::kFail) << " regressions, "
     << r.count(DiffSeverity::kWarn) << " warnings, "
     << r.count(DiffSeverity::kInfo) << " improvements";
  if (r.ignored > 0) os << ", " << r.ignored << " ignored";
  os << '\n';
}

}  // namespace szp::util
