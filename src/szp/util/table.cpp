#include "szp/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace szp {

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double v, int precision) {
  return cell(format_fixed(v, precision));
}

Table& Table::cell(long long v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << s;
      if (c + 1 < width.size()) os << std::string(width[c] - s.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  size_t total = header_.size() - 1;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 1;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace szp
