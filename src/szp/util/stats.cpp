#include "szp/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace szp {

namespace {
template <typename T>
Summary summarize_impl(std::span<const T> xs) {
  Summary s;
  if (xs.empty()) return s;
  double mn = xs[0], mx = xs[0], sum = 0;
  for (const T x : xs) {
    mn = std::min(mn, static_cast<double>(x));
    mx = std::max(mx, static_cast<double>(x));
    sum += static_cast<double>(x);
  }
  s.min = mn;
  s.max = mx;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}
}  // namespace

Summary summarize(std::span<const double> xs) { return summarize_impl(xs); }
Summary summarize(std::span<const float> xs) { return summarize_impl(xs); }

std::vector<double> empirical_cdf(std::span<const double> xs,
                                  std::span<const double> points) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (const double p : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), p);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(rank));
  const auto hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace szp
