// Minimal strict JSON parser: objects, arrays, strings with escapes,
// numbers, true/false/null. Originally a test-support helper for the
// exporter schema tests; promoted to the library so szp_benchdiff can
// parse BENCH_*.json without a third-party dependency. Throws
// std::runtime_error with the byte offset on any deviation.
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace szp::util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      v.obj[key] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)]))) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out.push_back('?');  // codepoint identity is irrelevant here
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = raw_string();
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) { v.b = true; pos_ += 4; return v; }
    if (s_.compare(pos_, 5, "false") == 0) { v.b = false; pos_ += 5; return v; }
    fail("bad literal");
  }

  JsonValue null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace szp::util
