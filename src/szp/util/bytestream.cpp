#include "szp/util/bytestream.hpp"

// Header-only; this TU exists so the library has a stable archive member
// and to keep the build graph uniform across modules.
namespace szp {}
