// Environment-variable knobs shared by the bench harnesses.
#pragma once

#include <string>

namespace szp {

/// SZP_BENCH_SCALE: multiplies the default synthetic field sizes used by
/// the figure/table benches. 1.0 keeps CI-friendly sizes; larger values
/// approach the paper's full dataset dimensions. Defaults to 1.0.
[[nodiscard]] double bench_scale();

/// SZP_BENCH_OUTDIR: directory where benches drop artifacts (PGM images,
/// CSV series). Defaults to "bench_artifacts".
[[nodiscard]] std::string bench_outdir();

}  // namespace szp
