// Environment-variable knobs shared by the bench harnesses.
#pragma once

#include <string>

namespace szp {

/// SZP_BENCH_SCALE: multiplies the default synthetic field sizes used by
/// the figure/table benches. 1.0 keeps CI-friendly sizes; larger values
/// approach the paper's full dataset dimensions. Defaults to 1.0.
[[nodiscard]] double bench_scale();

/// SZP_BENCH_OUTDIR: directory where benches drop artifacts (PGM images,
/// CSV series). Defaults to "bench_artifacts".
[[nodiscard]] std::string bench_outdir();

/// SZP_TRACE: when set (to an output path), the obs tracer records the
/// run and writes Chrome-trace JSON there at process exit. Empty when
/// unset. Consumed by obs::init_from_env().
[[nodiscard]] std::string trace_env_path();

/// SZP_STATS: when set to anything but "" / "0", the obs metrics
/// registry collects during the run and a text summary goes to stderr at
/// process exit. Consumed by obs::init_from_env().
[[nodiscard]] bool stats_env_enabled();

/// SZP_PROFILE raw value: "" when unset, "1"/"on" for collect-only, or an
/// output path for collect + JSON export at process exit. Devices parse it
/// themselves (gpusim::profile::options_from_env); this accessor is for
/// tools/benches that want to report or branch on the setting.
[[nodiscard]] std::string profile_env_spec();

/// SZP_HOSTPROF raw value, same shape as SZP_PROFILE but for the host
/// execution profiler (obs::hostprof::options_from_env parses it).
[[nodiscard]] std::string hostprof_env_spec();

/// SZP_TELEMETRY raw value: "" when unset; "1"/"on" enables the flight
/// recorder + metrics, comma-separated directives (port=<n>,
/// snapshot=<path>, period=<ms>) add live exposition. Parsed by
/// obs::telemetry::init_from_env().
[[nodiscard]] std::string telemetry_env_spec();

/// SZP_LOG raw value: "" when unset, else "<level>[:<path>]" — log level
/// plus an optional JSON-lines sink path. Parsed by
/// obs::telemetry::init_from_env().
[[nodiscard]] std::string log_env_spec();

/// SZP_CRASH_DIR: directory for post-mortem crash bundles ("" when
/// unset; setting it installs the crash handler). Parsed by
/// obs::telemetry::init_from_env().
[[nodiscard]] std::string crash_dir_env();

}  // namespace szp
