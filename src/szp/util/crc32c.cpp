#include "szp/util/crc32c.hpp"

#include <array>

namespace szp {

namespace {

// Slicing-by-4 tables, generated at compile time from the reflected
// Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::array<std::uint32_t, 256>, 4> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
    t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
    t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
  }
  return t;
}

constexpr auto kTables = make_tables();

std::uint32_t advance(std::uint32_t state, std::span<const byte_t> data) {
  size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    state ^= static_cast<std::uint32_t>(data[i]) |
             (static_cast<std::uint32_t>(data[i + 1]) << 8) |
             (static_cast<std::uint32_t>(data[i + 2]) << 16) |
             (static_cast<std::uint32_t>(data[i + 3]) << 24);
    state = kTables[3][state & 0xFFu] ^ kTables[2][(state >> 8) & 0xFFu] ^
            kTables[1][(state >> 16) & 0xFFu] ^ kTables[0][state >> 24];
  }
  for (; i < data.size(); ++i) {
    state = (state >> 8) ^ kTables[0][(state ^ data[i]) & 0xFFu];
  }
  return state;
}

}  // namespace

std::uint32_t crc32c(std::span<const byte_t> data) {
  return advance(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

void Crc32c::update(std::span<const byte_t> data) {
  state_ = advance(state_, data);
}

}  // namespace szp
