// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum used by the stream-integrity footer. Chosen over CRC32 (zlib)
// because its error-detection properties are as good and real deployments
// can swap in the SSE4.2 / ARMv8 instruction without a format change.
//
// Convention matches the iSCSI / ext4 definition: initial state
// 0xFFFFFFFF, final XOR 0xFFFFFFFF. crc32c("123456789") == 0xE3069283.
#pragma once

#include <cstdint>
#include <span>

#include "szp/util/common.hpp"

namespace szp {

/// One-shot CRC32C of a byte span.
[[nodiscard]] std::uint32_t crc32c(std::span<const byte_t> data);

/// Streaming CRC32C for checksums spanning discontiguous regions (the
/// per-group stream checksum covers length bytes and payload bytes that
/// are not adjacent).
class Crc32c {
 public:
  void update(std::span<const byte_t> data);

  /// Finalized value; the accumulator can keep absorbing afterwards.
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace szp
