// Metric-by-metric diff of two bench JSON files (BENCH_*.json), the
// engine behind tools/szp_benchdiff and the CI perf gate.
//
// Metrics are classified by their leaf key so noisy timing numbers get a
// relative threshold while structural facts stay exact:
//   * higher-better timing: keys ending in "_gbps"/"_mbps" or containing
//     "speedup" — a drop beyond the threshold is a regression.
//   * lower-better timing: keys ending in "_s"/"_ms"/"_us"/"_ns" or
//     containing "wall" — a rise beyond the threshold is a regression.
//   * noisy symmetric: keys ending in "_pct" — movement beyond the
//     threshold in either direction is flagged.
//   * exact: everything else (ratios, element counts, flags, strings) —
//     compared with a tiny relative tolerance; any mismatch fails.
// `--warn-timing` downgrades the three noisy families to warnings (the
// CI gate runs this way: timing drifts warn, schema/ratio breaks fail).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "szp/util/mini_json.hpp"

namespace szp::util {

struct BenchDiffOptions {
  /// Relative change tolerated on timing metrics before flagging.
  double timing_threshold = 0.10;
  /// Relative tolerance on exact numeric metrics (formatting slack only).
  double exact_tolerance = 1e-9;
  /// Downgrade timing/noisy findings from fail to warn.
  bool warn_timing_only = false;
  /// Skip any metric whose path contains one of these substrings.
  std::vector<std::string> ignore;
};

enum class DiffSeverity { kInfo, kWarn, kFail };

struct DiffFinding {
  DiffSeverity severity = DiffSeverity::kInfo;
  std::string path;     // "summary.comp_gbps", "matrix[2].threads", ...
  std::string message;  // human-readable, includes both values
};

struct BenchDiffResult {
  std::vector<DiffFinding> findings;
  std::size_t compared = 0;  // leaf metrics actually compared
  std::size_t ignored = 0;   // leaves skipped by ignore patterns

  [[nodiscard]] std::size_t count(DiffSeverity s) const;
  /// True when no finding is kFail.
  [[nodiscard]] bool ok() const { return count(DiffSeverity::kFail) == 0; }
};

/// How a leaf metric is compared; exposed for tests.
enum class MetricClass { kHigherBetter, kLowerBetter, kNoisy, kExact };
[[nodiscard]] MetricClass classify_metric(std::string_view leaf_key);

/// Diff `current` against `baseline` (already-parsed JSON documents).
[[nodiscard]] BenchDiffResult diff_bench(const JsonValue& baseline,
                                         const JsonValue& current,
                                         const BenchDiffOptions& opts = {});

/// One line per finding plus a summary line.
void write_benchdiff_report(std::ostream& os, const BenchDiffResult& r);

}  // namespace szp::util
