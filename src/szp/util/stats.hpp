// Small statistics helpers: summaries and empirical CDFs.
#pragma once

#include <span>
#include <vector>

namespace szp {

struct Summary {
  double min = 0, max = 0, mean = 0;
};

/// min/max/mean of a sample (0s for an empty span).
[[nodiscard]] Summary summarize(std::span<const double> xs);
[[nodiscard]] Summary summarize(std::span<const float> xs);

/// Empirical CDF evaluated at `points`: fraction of samples <= point.
[[nodiscard]] std::vector<double> empirical_cdf(std::span<const double> xs,
                                                std::span<const double> points);

/// p-th percentile (p in [0,100]) by nearest-rank on a copy of the data.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

}  // namespace szp
