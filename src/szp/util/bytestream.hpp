// Byte-granular serialization helpers for compressed-stream headers.
// All multi-byte fields are little-endian (memcpy on the build targets we
// support; a static_assert guards mixed-endian platforms).
#pragma once

#include <bit>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "szp/util/common.hpp"

namespace szp {

static_assert(std::endian::native == std::endian::little,
              "little-endian hosts only");

/// Appends POD values to a growing byte vector.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }

  void put_bytes(std::span<const byte_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Reserve `n` zero bytes and return their offset (for back-patching).
  size_t put_placeholder(size_t n) {
    const size_t off = buf_.size();
    buf_.resize(off + n, byte_t{0});
    return off;
  }

  template <typename T>
  void patch(size_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset + sizeof(T) > buf_.size()) {
      throw format_error("ByteWriter::patch out of range");
    }
    std::memcpy(buf_.data() + offset, &v, sizeof(T));
  }

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<byte_t> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<byte_t>& bytes() const { return buf_; }

 private:
  std::vector<byte_t> buf_;
};

/// Reads POD values from a byte span; throws `format_error` on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const byte_t> data) : data_(data) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) {
      throw format_error("ByteReader: read past end of stream");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::span<const byte_t> get_bytes(size_t n) {
    if (pos_ + n > data_.size()) {
      throw format_error("ByteReader: read past end of stream");
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const byte_t> data_;
  size_t pos_ = 0;
};

}  // namespace szp
