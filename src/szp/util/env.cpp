#include "szp/util/env.hpp"

#include <cstdlib>

namespace szp {

double bench_scale() {
  if (const char* s = std::getenv("SZP_BENCH_SCALE")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

std::string bench_outdir() {
  if (const char* s = std::getenv("SZP_BENCH_OUTDIR")) return s;
  return "bench_artifacts";
}

std::string trace_env_path() {
  if (const char* s = std::getenv("SZP_TRACE")) return s;
  return {};
}

bool stats_env_enabled() {
  const char* s = std::getenv("SZP_STATS");
  return s != nullptr && s[0] != '\0' && !(s[0] == '0' && s[1] == '\0');
}

std::string profile_env_spec() {
  if (const char* s = std::getenv("SZP_PROFILE")) return s;
  return {};
}

std::string hostprof_env_spec() {
  if (const char* s = std::getenv("SZP_HOSTPROF")) return s;
  return {};
}

std::string telemetry_env_spec() {
  if (const char* s = std::getenv("SZP_TELEMETRY")) return s;
  return {};
}

std::string log_env_spec() {
  if (const char* s = std::getenv("SZP_LOG")) return s;
  return {};
}

std::string crash_dir_env() {
  if (const char* s = std::getenv("SZP_CRASH_DIR")) return s;
  return {};
}

}  // namespace szp
