#include "szp/util/env.hpp"

#include <cstdlib>

namespace szp {

double bench_scale() {
  if (const char* s = std::getenv("SZP_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

std::string bench_outdir() {
  if (const char* s = std::getenv("SZP_BENCH_OUTDIR")) return s;
  return "bench_artifacts";
}

}  // namespace szp
