// Minimal fixed-column table printer used by the benchmark harnesses to
// emit the rows/series of the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace szp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row.
  Table& row();

  /// Append one cell to the current row.
  Table& cell(std::string text);
  Table& cell(double v, int precision = 2);
  Table& cell(long long v);

  /// Render with aligned columns.
  void print(std::ostream& os) const;

  [[nodiscard]] size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_fixed(double v, int precision);

}  // namespace szp
