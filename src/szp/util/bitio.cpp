#include "szp/util/bitio.hpp"

#include <cassert>

namespace szp {

void BitWriter::put(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 64);
  if (nbits == 0) return;
  if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;
  bit_count_ += nbits;
  while (nbits > 0) {
    const unsigned take = std::min(nbits, 64u - acc_bits_);
    acc_ |= (take == 64 ? value : (value & ((std::uint64_t{1} << take) - 1)))
            << acc_bits_;
    acc_bits_ += take;
    value = take == 64 ? 0 : value >> take;
    nbits -= take;
    while (acc_bits_ >= 8) {
      buf_.push_back(static_cast<byte_t>(acc_ & 0xffu));
      acc_ >>= 8;
      acc_bits_ -= 8;
    }
  }
}

void BitWriter::align_to_byte() {
  const unsigned rem = static_cast<unsigned>(bit_count_ % 8);
  if (rem != 0) put(0, 8 - rem);
}

std::vector<byte_t> BitWriter::take() && {
  align_to_byte();
  assert(acc_bits_ == 0);
  return std::move(buf_);
}

std::uint64_t BitReader::get(unsigned nbits) {
  // Corrupt container metadata can request absurd widths; reject instead
  // of asserting so Debug and Release agree on malformed input.
  if (nbits > 64) throw format_error("BitReader: invalid field width");
  if (nbits == 0) return 0;
  if (pos_ + nbits > data_.size() * 8) {
    throw format_error("BitReader: read past end of stream");
  }
  std::uint64_t out = 0;
  unsigned got = 0;
  while (got < nbits) {
    const size_t byte_idx = (pos_ + got) / 8;
    const unsigned bit_idx = static_cast<unsigned>((pos_ + got) % 8);
    const unsigned take = std::min(nbits - got, 8 - bit_idx);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(data_[byte_idx]) >> bit_idx) &
        ((std::uint64_t{1} << take) - 1);
    out |= chunk << got;
    got += take;
  }
  pos_ += nbits;
  return out;
}

void BitReader::align_to_byte() {
  const size_t rem = pos_ % 8;
  if (rem != 0) pos_ += 8 - rem;
}

}  // namespace szp
