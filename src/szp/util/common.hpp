// Small shared helpers used across every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace szp {

using std::size_t;
using byte_t = std::uint8_t;

/// Library version surfaced by the CLI tools (`szp_cli --version`).
inline constexpr const char kVersionString[] = "0.2.0 (stream format v2)";

/// Ceiling division for non-negative integers.
template <typename T>
[[nodiscard]] constexpr T div_ceil(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Round `a` up to the nearest multiple of `b`.
template <typename T>
[[nodiscard]] constexpr T round_up(T a, T b) {
  return div_ceil(a, b) * b;
}

/// Narrowing cast that throws if the value does not fit.
template <typename To, typename From>
[[nodiscard]] constexpr To checked_cast(From v) {
  const To r = static_cast<To>(v);
  if (static_cast<From>(r) != v || ((r < To{}) != (v < From{}))) {
    throw std::range_error("checked_cast: value out of range");
  }
  return r;
}

/// Error type thrown on malformed compressed streams.
class format_error : public std::runtime_error {
 public:
  explicit format_error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace szp
