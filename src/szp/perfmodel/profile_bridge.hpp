// Adapter between the analytic hardware model and the gpusim kernel
// profiler's derived-report inputs.
//
// The profiler (src/szp/gpusim/profile/) cannot link against perfmodel —
// perfmodel consumes gpusim traces, so the dependency runs the other
// way. Callers that link both (szp_cli, the benches) use this bridge to
// turn a HardwareSpec preset into the plain profile::ModelParams the
// report writer combines with measured counters.
#pragma once

#include "szp/gpusim/profile/report.hpp"
#include "szp/perfmodel/hardware.hpp"

namespace szp::perfmodel {

/// Copy the model coefficients the profiler's derived section consumes
/// (HBM/PCIe bandwidth, launch cost, per-stage op costs). Host-stage
/// coefficients stay behind: the profiler reports device launches only.
[[nodiscard]] gpusim::profile::ModelParams profile_model_params(
    const HardwareSpec& spec);

}  // namespace szp::perfmodel
