#include "szp/perfmodel/profile_bridge.hpp"

namespace szp::perfmodel {

gpusim::profile::ModelParams profile_model_params(const HardwareSpec& spec) {
  gpusim::profile::ModelParams p;
  p.gpu = spec.name;
  p.hbm_bandwidth = spec.hbm_bandwidth;
  p.pcie_bandwidth = spec.pcie_bandwidth;
  p.kernel_launch_s = spec.kernel_launch_s;
  p.op_cost = spec.op_cost;
  return p;
}

}  // namespace szp::perfmodel
