#include "szp/perfmodel/cost.hpp"

#include <algorithm>

namespace szp::perfmodel {

double RunCost::gpu_fraction() const {
  const double t = end_to_end_s();
  return t > 0 ? device_s / t : 0;
}
double RunCost::memcpy_fraction() const {
  const double t = end_to_end_s();
  return t > 0 ? memcpy_s / t : 0;
}
double RunCost::host_fraction() const {
  const double t = end_to_end_s();
  return t > 0 ? host_s / t : 0;
}

RunCost CostModel::run(const gpusim::TraceSnapshot& diff) const {
  RunCost c;
  for (unsigned i = 0; i < gpusim::kNumStages; ++i) {
    const auto& st = diff.stages[i];
    const double traffic_s =
        static_cast<double>(st.read_bytes + st.write_bytes) /
        spec_.hbm_bandwidth;
    const double compute_s = static_cast<double>(st.ops) * spec_.op_cost[i];
    // A stage is either bandwidth- or compute-limited; overlap the two.
    c.stage_s[i] = std::max(traffic_s, compute_s);
    c.device_s += c.stage_s[i];
  }
  c.device_s += static_cast<double>(diff.kernel_launches) * spec_.kernel_launch_s;
  c.memcpy_s = static_cast<double>(diff.total_memcpy_bytes()) / spec_.pcie_bandwidth;
  c.host_s = static_cast<double>(diff.host_bytes) / spec_.host_bandwidth +
             static_cast<double>(diff.host_stages) * spec_.host_stage_s;
  return c;
}

double CostModel::end_to_end_gbps(const gpusim::TraceSnapshot& diff,
                                  std::uint64_t bytes) const {
  return gbps(bytes, run(diff).end_to_end_s());
}

double CostModel::kernel_gbps(const gpusim::TraceSnapshot& diff,
                              std::uint64_t bytes) const {
  return gbps(bytes, run(diff).device_s);
}

}  // namespace szp::perfmodel
