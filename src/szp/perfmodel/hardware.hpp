// Analytic hardware cost model (DESIGN.md §2).
//
// The simulated runtime records *what* each codec did (bytes moved per
// stage, abstract work items, kernel launches, host stages); this module
// says how long that would take on a given GPU. Coefficients are
// calibrated once, against the absolute numbers the paper reports for the
// A100 (Fig. 10/13/15/21), and are never tuned per experiment — every
// bench consumes the same model, so relative shapes are emergent.
#pragma once

#include <array>
#include <string>

#include "szp/gpusim/trace.hpp"

namespace szp::perfmodel {

struct HardwareSpec {
  std::string name;
  double hbm_bandwidth = 0;      // effective device-memory B/s
  double pcie_bandwidth = 0;     // host<->device B/s
  double kernel_launch_s = 0;    // seconds per kernel launch
  double host_bandwidth = 0;     // B/s for host-side (CPU) stages
  double host_stage_s = 0;       // fixed seconds per host stage (sync etc.)
  /// Seconds per abstract work item, per pipeline stage. Work items are
  /// defined by the kernels (e.g. QP reports one item per element).
  std::array<double, gpusim::kNumStages> op_cost{};
};

/// NVIDIA A100-SXM4-40GB (the paper's platform).
[[nodiscard]] HardwareSpec a100();
/// NVIDIA V100 (paper §6, "Compatibility with Other Lower-End GPUs").
[[nodiscard]] HardwareSpec v100();
/// NVIDIA RTX 3080 10 GB (paper §6).
[[nodiscard]] HardwareSpec rtx3080();

/// All presets, for sweeps.
[[nodiscard]] std::array<HardwareSpec, 3> all_gpus();

}  // namespace szp::perfmodel
