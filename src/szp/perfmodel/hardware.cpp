#include "szp/perfmodel/hardware.hpp"

namespace szp::perfmodel {

using gpusim::Stage;

namespace {
constexpr unsigned idx(Stage s) { return static_cast<unsigned>(s); }
}  // namespace

// Calibration notes (all against the paper's A100 measurements):
//  * op_cost[QP/FE/GS/BB] are set so that a dense field at CR~10
//    compresses at ~94 GB/s with the Fig. 21(a) stage split
//    (QP ~11%, FE ~30%, GS ~38%, BB ~22%) and decompresses at ~120 GB/s
//    with the Fig. 21(b) split (FE nearly free).
//    Work-item semantics are defined by the kernels (see szp/core):
//      QP: one item per element; FE: one item per scanned element plus one
//      per encoded element; GS: one item per block offset plus one restore
//      per non-zero block; BB: one item per element of a non-zero block
//      (the shuffle's register work).
//  * op_cost[GS] at one item per 32-element block gives the standalone
//    Global Synchronization ~210 GB/s of Fig. 10.
//  * Huffman/Histogram match cuSZ's ~46/59 GB/s kernel throughput
//    (Fig. 15); BlockEncode/Gather match cuSZx's ~161 GB/s; Transform
//    matches cuZFP's single-kernel rates.
//  * pcie_bandwidth models pageable cudaMemcpy (~6 GB/s effective), and
//    host_bandwidth single-threaded byte-level CPU codec work (~1.5 GB/s),
//    which together reproduce the Fig. 14 Memcpy/CPU/GPU breakdown and
//    the ~95x / ~55x end-to-end gaps of Fig. 13.
HardwareSpec a100() {
  HardwareSpec hw;
  hw.name = "A100";
  hw.hbm_bandwidth = 1400e9;  // ~90% of 1555 GB/s peak
  hw.pcie_bandwidth = 6e9;
  hw.kernel_launch_s = 4.5e-6;
  hw.host_bandwidth = 1.5e9;
  hw.host_stage_s = 30e-6;
  hw.op_cost[idx(Stage::kQuantPredict)] = 4.6e-12;
  hw.op_cost[idx(Stage::kFixedLenEncode)] = 6.4e-12;
  hw.op_cost[idx(Stage::kGlobalSync)] = 340.0e-12;
  hw.op_cost[idx(Stage::kBitShuffle)] = 9.2e-12;
  hw.op_cost[idx(Stage::kTransform)] = 22.0e-12;
  hw.op_cost[idx(Stage::kHistogram)] = 25.0e-12;
  hw.op_cost[idx(Stage::kHuffman)] = 55.0e-12;
  hw.op_cost[idx(Stage::kBlockEncode)] = 12.0e-12;
  hw.op_cost[idx(Stage::kGather)] = 20.0e-12;
  hw.op_cost[idx(Stage::kOther)] = 10.0e-12;
  return hw;
}

namespace {
/// Derive a lower-end GPU from the A100 coefficients: memory-bound terms
/// scale with bandwidth, compute terms with an SM-throughput factor.
HardwareSpec scaled(const char* name, double bw_factor, double compute_factor) {
  HardwareSpec hw = a100();
  hw.name = name;
  hw.hbm_bandwidth *= bw_factor;
  for (auto& c : hw.op_cost) c /= compute_factor;
  return hw;
}
}  // namespace

HardwareSpec v100() {
  // 900 GB/s HBM2; paper §6: RTM compression kernel 87.44 vs 100.34 GB/s.
  return scaled("V100", 900.0 / 1555.0, 0.86);
}

HardwareSpec rtx3080() {
  // 760 GB/s GDDR6X; paper §6: 80.13 GB/s on the same RTM snapshot.
  return scaled("RTX3080", 760.0 / 1555.0, 0.79);
}

std::array<HardwareSpec, 3> all_gpus() { return {a100(), v100(), rtx3080()}; }

}  // namespace szp::perfmodel
