// Transfer/compute overlap model for stream timelines.
//
// A Device timeline (gpusim::OpRecord log) fixes what each stream op did
// — its own counter diff — so one async run yields both ends of the
// comparison: the serialized schedule (every op back to back, the cost of
// the classic sync path) and the overlapped schedule (per-stream FIFO on
// a device with one copy engine and one compute engine, honoring
// event-record/wait edges — the cuSZp-style pipelining win). The gap
// between them is the modeled wall time the stream schedule saves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "szp/gpusim/trace.hpp"
#include "szp/perfmodel/cost.hpp"

namespace szp::perfmodel {

/// Per-stream occupancy summary (a timeline lane).
struct StreamLane {
  std::uint32_t stream_id = 0;
  std::string name;
  std::size_t ops = 0;
  /// Sum of modeled durations of the lane's ops.
  double busy_s = 0;
};

struct OverlapReport {
  /// Modeled wall with every op executed back to back (sync schedule).
  double serialized_s = 0;
  /// Modeled makespan of the overlapped schedule.
  double overlapped_s = 0;
  /// Measured wall of the recorded run (max t_end - min t_begin); host
  /// timing, reporting only.
  double measured_wall_s = 0;
  std::size_t ops = 0;
  std::vector<StreamLane> lanes;

  /// Fraction of the serialized wall the overlapped schedule saves.
  [[nodiscard]] double overlap_fraction() const {
    return serialized_s > 0 ? 1.0 - overlapped_s / serialized_s : 0.0;
  }
  [[nodiscard]] double speedup() const {
    return overlapped_s > 0 ? serialized_s / overlapped_s : 1.0;
  }
};

/// Model one device's timeline. Deterministic given the timeline: list
/// scheduling with ties broken by (stream id, submission seq). Memcpy
/// ops occupy the copy engine, kernel/host ops the compute engine;
/// event records/waits are zero-cost ordering edges.
[[nodiscard]] OverlapReport model_overlap(
    std::span<const gpusim::OpRecord> timeline, const CostModel& model);

/// Combine per-device reports for devices running concurrently:
/// serialized walls add (a single device would run the shards back to
/// back), overlapped walls max (devices are independent).
[[nodiscard]] OverlapReport combine_devices(
    std::span<const OverlapReport> reports);

}  // namespace szp::perfmodel
