#include "szp/perfmodel/overlap.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace szp::perfmodel {

namespace {

enum class Engine { kCopy, kCompute, kNone };

Engine engine_of(gpusim::OpKind k) {
  switch (k) {
    case gpusim::OpKind::kMemcpyH2D:
    case gpusim::OpKind::kMemcpyD2H:
    case gpusim::OpKind::kMemcpyD2D:
      return Engine::kCopy;
    case gpusim::OpKind::kKernel:
    case gpusim::OpKind::kHostTask:
      return Engine::kCompute;
    case gpusim::OpKind::kEventRecord:
    case gpusim::OpKind::kEventWait:
      return Engine::kNone;
  }
  return Engine::kCompute;
}

struct SimOp {
  const gpusim::OpRecord* rec = nullptr;
  double dur_s = 0;
  /// Index (into the flat op array) of the record op this wait depends
  /// on; SIZE_MAX when none.
  std::size_t dep = SIZE_MAX;
};

}  // namespace

OverlapReport model_overlap(std::span<const gpusim::OpRecord> timeline,
                            const CostModel& model) {
  OverlapReport rep;
  if (timeline.empty()) return rep;

  // Cost every op and resolve event edges. The timeline is appended in
  // completion order, so a wait's producing record is the latest record
  // with the same event id appearing before it.
  std::vector<SimOp> ops(timeline.size());
  std::map<std::uint64_t, std::size_t> last_record;  // event id -> op index
  std::uint64_t t_min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t t_max = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const gpusim::OpRecord& r = timeline[i];
    ops[i].rec = &r;
    ops[i].dur_s =
        engine_of(r.kind) == Engine::kNone ? 0 : model.run(r.trace).end_to_end_s();
    if (r.kind == gpusim::OpKind::kEventRecord) {
      last_record[r.event_id] = i;
    } else if (r.kind == gpusim::OpKind::kEventWait) {
      if (const auto it = last_record.find(r.event_id);
          it != last_record.end()) {
        ops[i].dep = it->second;
      }
    }
    rep.serialized_s += ops[i].dur_s;
    t_min = std::min(t_min, r.t_begin_ns);
    t_max = std::max(t_max, r.t_end_ns);
  }
  rep.ops = timeline.size();
  rep.measured_wall_s =
      t_max > t_min ? static_cast<double>(t_max - t_min) * 1e-9 : 0.0;

  // Per-stream FIFO queues, sorted by submission seq.
  std::map<std::uint32_t, std::vector<std::size_t>> queues;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    queues[ops[i].rec->stream_id].push_back(i);
  }
  for (auto& [id, q] : queues) {
    std::sort(q.begin(), q.end(), [&](std::size_t a, std::size_t b) {
      return ops[a].rec->seq < ops[b].rec->seq;
    });
    StreamLane lane;
    lane.stream_id = id;
    lane.name = ops[q.front()].rec->stream;
    lane.ops = q.size();
    for (const std::size_t i : q) lane.busy_s += ops[i].dur_s;
    rep.lanes.push_back(std::move(lane));
  }

  // List scheduling: repeatedly pick, among every stream's head op whose
  // event dependency (if any) is already scheduled, the one that can
  // start earliest; ties break on (stream id, seq) so the schedule is
  // deterministic. A wait whose record never completed (skipped on a
  // poisoned stream) is treated as depending on nothing.
  std::map<std::uint32_t, std::size_t> head;      // stream -> queue pos
  std::map<std::uint32_t, double> stream_free;    // stream tail time
  std::vector<double> finish(ops.size(), -1.0);   // -1 = unscheduled
  double copy_free = 0, compute_free = 0;
  std::size_t scheduled = 0;
  while (scheduled < ops.size()) {
    std::size_t best = SIZE_MAX;
    double best_start = 0;
    std::uint32_t best_stream = 0;
    for (const auto& [id, q] : queues) {
      const std::size_t pos = head[id];
      if (pos >= q.size()) continue;
      const std::size_t i = q[pos];
      if (ops[i].dep != SIZE_MAX && finish[ops[i].dep] < 0) continue;
      double start = stream_free[id];
      if (ops[i].dep != SIZE_MAX) start = std::max(start, finish[ops[i].dep]);
      const Engine e = engine_of(ops[i].rec->kind);
      if (e == Engine::kCopy) start = std::max(start, copy_free);
      if (e == Engine::kCompute) start = std::max(start, compute_free);
      if (best == SIZE_MAX || start < best_start ||
          (start == best_start && id < best_stream)) {
        best = i;
        best_start = start;
        best_stream = id;
      }
    }
    if (best == SIZE_MAX) break;  // only unsatisfiable waits remain
    const double end = best_start + ops[best].dur_s;
    finish[best] = end;
    stream_free[best_stream] = end;
    const Engine e = engine_of(ops[best].rec->kind);
    if (e == Engine::kCopy) copy_free = end;
    if (e == Engine::kCompute) compute_free = end;
    rep.overlapped_s = std::max(rep.overlapped_s, end);
    ++head[best_stream];
    ++scheduled;
  }
  return rep;
}

OverlapReport combine_devices(std::span<const OverlapReport> reports) {
  OverlapReport out;
  for (const OverlapReport& r : reports) {
    out.serialized_s += r.serialized_s;
    out.overlapped_s = std::max(out.overlapped_s, r.overlapped_s);
    out.measured_wall_s = std::max(out.measured_wall_s, r.measured_wall_s);
    out.ops += r.ops;
    out.lanes.insert(out.lanes.end(), r.lanes.begin(), r.lanes.end());
  }
  return out;
}

}  // namespace szp::perfmodel
