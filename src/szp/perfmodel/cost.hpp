// Turns trace snapshots into modeled times and throughput reports.
#pragma once

#include <array>

#include "szp/perfmodel/hardware.hpp"

namespace szp::perfmodel {

/// Modeled time of one codec run (a trace diff).
struct RunCost {
  double device_s = 0;  // kernel execution (includes launch overhead)
  double memcpy_s = 0;  // host<->device transfers
  double host_s = 0;    // CPU stages
  std::array<double, gpusim::kNumStages> stage_s{};  // device time per stage

  [[nodiscard]] double end_to_end_s() const {
    return device_s + memcpy_s + host_s;
  }
  /// Fractions of end-to-end time, for Fig. 14-style breakdowns.
  [[nodiscard]] double gpu_fraction() const;
  [[nodiscard]] double memcpy_fraction() const;
  [[nodiscard]] double host_fraction() const;
};

class CostModel {
 public:
  explicit CostModel(HardwareSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const HardwareSpec& spec() const { return spec_; }

  /// Model the cost of everything recorded in `diff`.
  [[nodiscard]] RunCost run(const gpusim::TraceSnapshot& diff) const;

  /// GB/s of processing `bytes` of original data in modeled end-to-end /
  /// device-kernel time.
  [[nodiscard]] double end_to_end_gbps(const gpusim::TraceSnapshot& diff,
                                       std::uint64_t bytes) const;
  [[nodiscard]] double kernel_gbps(const gpusim::TraceSnapshot& diff,
                                   std::uint64_t bytes) const;

 private:
  HardwareSpec spec_;
};

/// GB/s helper: bytes / seconds, in gigabytes.
[[nodiscard]] inline double gbps(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / seconds / 1e9 : 0.0;
}

}  // namespace szp::perfmodel
