#include "szp/robust/try_decode.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <type_traits>

#include "szp/core/block_codec.hpp"
#include "szp/core/compressor.hpp"
#include "szp/core/format.hpp"
#include "szp/core/stages.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/crc32c.hpp"

namespace szp::robust {

namespace {

using core::ChecksumFooter;
using core::Header;

/// Parse a header without throwing, classifying each failure mode along
/// the way (Header::deserialize collapses them all into format_error).
Status classify_header(std::span<const byte_t> stream, Header& h,
                       std::string& detail) {
  if (stream.size() < Header::kSize) {
    detail = "stream shorter than a header";
    return Status::kTruncated;
  }
  std::uint32_t magic;
  std::memcpy(&magic, stream.data(), sizeof(magic));
  if (magic != Header::kMagic) {
    detail = "not a cuSZp stream";
    return Status::kBadMagic;
  }
  std::uint16_t version;
  std::memcpy(&version, stream.data() + 4, sizeof(version));
  if (version != Header::kVersionV1 && version != Header::kVersion) {
    detail = "unsupported stream version " + std::to_string(version);
    return Status::kUnsupportedVersion;
  }
  if (version >= 2) {
    std::uint32_t stored;
    std::memcpy(&stored, stream.data() + Header::kCrcOffset, sizeof(stored));
    if (stored != crc32c(stream.first(Header::kCrcOffset))) {
      detail = "header CRC mismatch";
      return Status::kHeaderCorrupt;
    }
  }
  try {
    h = Header::deserialize(stream);
  } catch (const format_error& e) {
    detail = e.what();
    return Status::kBadHeaderField;
  }
  return Status::kOk;
}

/// Locate and parse the v2 footer: first at the offset the length bytes
/// imply, then (corrupt length bytes shift that) by scanning the tail for
/// a self-verifying footer. Returns its absolute offset via `footer_off`.
std::optional<ChecksumFooter> find_footer(std::span<const byte_t> stream,
                                          size_t payload_base,
                                          size_t computed_off_or_npos,
                                          size_t& footer_off) {
  if (computed_off_or_npos != static_cast<size_t>(-1) &&
      computed_off_or_npos <= stream.size()) {
    try {
      auto f = ChecksumFooter::deserialize(
          stream.subspan(computed_off_or_npos));
      footer_off = computed_off_or_npos;
      return f;
    } catch (const format_error&) {
    }
  }
  if (stream.size() < payload_base + ChecksumFooter::kFixedBytes) {
    return std::nullopt;
  }
  for (size_t off = stream.size() - ChecksumFooter::kFixedBytes;;) {
    std::uint32_t magic;
    std::memcpy(&magic, stream.data() + off, sizeof(magic));
    if (magic == ChecksumFooter::kMagic) {
      try {
        auto f = ChecksumFooter::deserialize(stream.subspan(off));
        footer_off = off;
        return f;
      } catch (const format_error&) {
      }
    }
    if (off == payload_base) break;
    --off;
  }
  return std::nullopt;
}

template <typename T>
DecodeReport try_decode_impl(std::span<const byte_t> stream,
                             std::vector<T>* out, const DecodeOptions& opts) {
  DecodeReport rep;
  if (out) out->clear();

  Header h;
  rep.status = classify_header(stream, h, rep.detail);
  if (!rep.ok()) return rep;
  if (out && h.is_f64() != std::is_same_v<T, double>) {
    rep.status = Status::kTypeMismatch;
    rep.detail = h.is_f64() ? "stream holds f64 data" : "stream holds f32 data";
    return rep;
  }

  const unsigned L = h.block_len;
  const size_t n = h.num_elements;
  const size_t nblocks = core::num_blocks(n, L);
  const size_t base = core::payload_offset(nblocks);
  rep.num_elements = n;
  rep.num_blocks = nblocks;
  rep.checksummed = h.checksummed();

  // The stream must physically contain its length area before anything is
  // sized from the header — a corrupt v1 header can claim any element
  // count, and this bound caps it by the bytes actually present.
  if (stream.size() < base) {
    rep.status = Status::kTruncated;
    rep.detail = "length area truncated";
    return rep;
  }

  auto mark_corrupt = [&](size_t first, size_t last) {
    if (first >= last) return;
    if (!rep.corrupt_blocks.empty() &&
        rep.corrupt_blocks.back().last_block == first) {
      rep.corrupt_blocks.back().last_block = last;
    } else {
      rep.corrupt_blocks.push_back({first, last});
    }
  };

  core::BlockScratch scratch;
  std::vector<T> block_out(L);
  // Decode one structurally validated block into the output.
  auto decode_block = [&](size_t b, std::uint8_t lb, size_t off, size_t cl) {
    if (cl != 0) {
      core::read_block_payload(stream.subspan(off, cl), lb, L,
                               h.bit_shuffle(), scratch);
      if (h.lorenzo()) {
        if (h.lorenzo2()) {
          core::lorenzo2_inverse(scratch.quant);
        } else {
          core::lorenzo_inverse(scratch.quant);
        }
      }
      core::dequantize(scratch.quant, h.eb_abs, std::span<T>(block_out));
    } else {
      std::fill(block_out.begin(), block_out.end(), T{0});
    }
    const size_t begin = b * L;
    const size_t len = std::min<size_t>(L, n - begin);
    std::copy(block_out.begin(), block_out.begin() + len,
              out->begin() + begin);
  };

  const auto block_bytes = [&](std::uint8_t lb) {
    return core::block_payload_bytes(lb, L, h.zero_block_bypass());
  };

  if (!h.checksummed()) {
    // ---- v1: structural validation only; no re-alignment is possible
    // past the first defect, so salvage keeps the prefix.
    if (out) out->assign(n, T{0});
    size_t off = base;
    for (size_t b = 0; b < nblocks; ++b) {
      const std::uint8_t lb = stream[core::lengths_offset() + b];
      if (!core::valid_length_byte(lb)) {
        rep.status = Status::kBadLengthByte;
        rep.detail = "invalid length byte at block " + std::to_string(b);
        mark_corrupt(b, nblocks);
        break;
      }
      const size_t cl = block_bytes(lb);
      if (off + cl > stream.size()) {
        rep.status = Status::kTruncated;
        rep.detail = "payload truncated at block " + std::to_string(b);
        mark_corrupt(b, nblocks);
        break;
      }
      if (out) decode_block(b, lb, off, cl);
      off += cl;
    }
    if (!rep.ok() && out) {
      if (opts.salvage) {
        rep.salvaged = true;
      } else {
        out->clear();
      }
    }
    return rep;
  }

  // ---- v2: verify and decode group by group, re-aligning from the
  // footer's per-group payload offsets after any corrupt group.
  size_t computed_off = base;
  for (size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t lb = stream[core::lengths_offset() + b];
    if (!core::valid_length_byte(lb)) {
      computed_off = static_cast<size_t>(-1);
      break;
    }
    computed_off += block_bytes(lb);
  }

  size_t footer_off = 0;
  const auto footer = find_footer(stream, base, computed_off, footer_off);
  const unsigned gb = h.checksum_group_blocks;
  rep.groups_total = core::num_checksum_groups(nblocks, gb);

  bool footer_usable = footer.has_value();
  if (footer_usable && (footer->group_blocks != gb ||
                        footer->crcs.size() != rep.groups_total)) {
    footer_usable = false;
  }
  if (!footer_usable) {
    // No trustworthy footer: nothing in the stream can be vouched for.
    rep.status = footer ? Status::kSizeMismatch : Status::kFooterMissing;
    rep.detail = footer ? "footer layout disagrees with header"
                        : "no usable checksum footer";
    rep.groups_bad = rep.groups_total;
    mark_corrupt(0, nblocks);
    for (size_t g = 0; opts.want_groups && g < rep.groups_total; ++g) {
      rep.groups.push_back({g, g * gb, std::min(nblocks, (g + 1) * size_t{gb}),
                            false});
    }
    if (out && opts.salvage) {
      out->assign(n, T{0});
      rep.salvaged = true;
    }
    return rep;
  }

  if (out) out->assign(n, T{0});
  for (size_t g = 0; g < rep.groups_total; ++g) {
    const size_t first = g * gb;
    const size_t last = std::min(nblocks, first + gb);
    const size_t pb = base + footer->offsets[g];
    const size_t pe = g + 1 < rep.groups_total
                          ? base + footer->offsets[g + 1]
                          : footer_off;
    bool ok = footer->offsets[g] <= footer_off - base && pb <= pe &&
              pe <= footer_off && footer_off <= stream.size();
    size_t lb_sum = 0;
    if (ok) {
      for (size_t b = first; b < last; ++b) {
        const std::uint8_t lb = stream[core::lengths_offset() + b];
        if (!core::valid_length_byte(lb)) {
          ok = false;
          break;
        }
        lb_sum += block_bytes(lb);
      }
    }
    ok = ok && pb + lb_sum == pe;
    if (ok) {
      const core::GroupSpan span{first, last, pb, pe};
      ok = footer->crcs[g] == core::checksum_group_crc(stream, span);
    }
    if (opts.want_groups) rep.groups.push_back({g, first, last, ok});
    if (!ok) {
      ++rep.groups_bad;
      mark_corrupt(first, last);
      if (rep.ok()) {
        rep.status = Status::kChecksumMismatch;
        rep.detail = "checksum mismatch in group " + std::to_string(g);
      }
      continue;
    }
    if (out) {
      size_t off = pb;
      for (size_t b = first; b < last; ++b) {
        const std::uint8_t lb = stream[core::lengths_offset() + b];
        const size_t cl = block_bytes(lb);
        decode_block(b, lb, off, cl);
        off += cl;
      }
    }
  }
  if (!rep.ok() && out) {
    if (opts.salvage) {
      rep.salvaged = true;
    } else {
      out->clear();
    }
  }
  return rep;
}

/// Surface salvage outcomes through the metrics registry so fuzz runs and
/// CLI `--stats` can report fault-tolerance behaviour in aggregate. One
/// branch when collection is off.
void record_decode_report(const DecodeReport& rep) {
  // Always-on black-box + error accounting (independent of the metrics
  // registry: fault evidence must survive into crash bundles).
  if (!rep.ok()) {
    obs::fr::record(obs::fr::Kind::kFault, to_string(rep.status),
                    rep.groups_bad);
    obs::telemetry::builtins().errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (rep.salvaged) {
    obs::fr::record(obs::fr::Kind::kSalvage, "salvaged_stream",
                    rep.groups_bad);
  }
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static auto& calls = reg.counter("robust.try_decompress.calls");
  static auto& ok = reg.counter("robust.try_decompress.ok");
  static auto& failed = reg.counter("robust.try_decompress.failed");
  static auto& corrupt_groups = reg.counter("robust.corrupt_groups");
  static auto& corrupt_blocks = reg.counter("robust.corrupt_blocks");
  static auto& salvaged = reg.counter("robust.salvaged_streams");
  calls.add();
  if (rep.ok()) ok.add(); else failed.add();
  corrupt_groups.add(rep.groups_bad);
  std::uint64_t blocks = 0;
  for (const auto& r : rep.corrupt_blocks) blocks += r.last_block - r.first_block;
  corrupt_blocks.add(blocks);
  if (rep.salvaged) salvaged.add();
}

template <typename T>
DecodeReport guarded(std::span<const byte_t> stream, std::vector<T>* out,
                     const DecodeOptions& opts) {
  const obs::Span span("api", "try_decompress", "bytes", stream.size());
  try {
    const DecodeReport rep = try_decode_impl<T>(stream, out, opts);
    record_decode_report(rep);
    return rep;
  } catch (const std::exception& e) {
    // try_decode_impl validates before it trusts; reaching here is a bug,
    // but the no-throw contract still holds.
    DecodeReport rep;
    rep.status = Status::kInternalError;
    rep.detail = e.what();
    if (out) out->clear();
    record_decode_report(rep);
    return rep;
  }
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTruncated: return "truncated";
    case Status::kBadMagic: return "bad magic";
    case Status::kUnsupportedVersion: return "unsupported version";
    case Status::kHeaderCorrupt: return "header corrupt";
    case Status::kBadHeaderField: return "bad header field";
    case Status::kTypeMismatch: return "type mismatch";
    case Status::kBadLengthByte: return "bad length byte";
    case Status::kFooterMissing: return "footer missing";
    case Status::kChecksumMismatch: return "checksum mismatch";
    case Status::kSizeMismatch: return "size mismatch";
    case Status::kInternalError: return "internal error";
  }
  return "unknown";
}

DecodeReport verify_stream(std::span<const byte_t> stream, bool want_groups) {
  DecodeOptions opts;
  opts.want_groups = want_groups;
  return guarded<float>(stream, nullptr, opts);
}

DecodeReport try_decompress(std::span<const byte_t> stream,
                            std::vector<float>& out,
                            const DecodeOptions& opts) {
  return guarded<float>(stream, &out, opts);
}

DecodeReport try_decompress_f64(std::span<const byte_t> stream,
                                std::vector<double>& out,
                                const DecodeOptions& opts) {
  return guarded<double>(stream, &out, opts);
}

}  // namespace szp::robust

namespace szp {

robust::DecodeReport Compressor::try_decompress(
    std::span<const byte_t> stream, std::vector<float>& out,
    const robust::DecodeOptions& opts) const {
  return robust::try_decompress(stream, out, opts);
}

robust::DecodeReport Compressor::try_decompress_f64(
    std::span<const byte_t> stream, std::vector<double>& out,
    const robust::DecodeOptions& opts) const {
  return robust::try_decompress_f64(stream, out, opts);
}

}  // namespace szp
