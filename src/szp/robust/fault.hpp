// Deterministic fault injection for the fuzz harness.
//
// Every mutation is drawn from a seeded Rng, so a failing case replays
// from its seed alone (Mutation::describe() prints the exact damage).
// Stream mutations model storage/transport faults (bit flips, byte
// smashes, truncation) plus one format-aware attack (length byte
// tampering, which desynchronizes the payload prefix sum). Archive
// mutations attack the v2 on-disk layout through a robust::Fs: index
// header/entry tampering, shard payload rot, shard file drop and swap.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "szp/robust/io.hpp"
#include "szp/util/common.hpp"
#include "szp/util/rng.hpp"

namespace szp::robust {

class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kBitFlip = 0,       // flip one random bit
    kByteSet,           // overwrite one byte with a random value
    kTruncate,          // drop a random-length tail
    kLengthTamper,      // rewrite one per-block length byte
    // Archive-aware kinds (operate on an archive directory via Fs):
    kIndexHeaderTamper,  // corrupt the index file's fixed prefix
    kIndexEntryTamper,   // corrupt the index shard/entry tables
    kShardCorrupt,       // corrupt one byte of a shard file's payload
    kShardDrop,          // delete one shard file
    kShardSwap,          // exchange the contents of two shard files
    kNoop,               // target absent (e.g. no shards to attack)
  };

  /// Record of one applied mutation, for failure reports.
  struct Mutation {
    Kind kind = Kind::kBitFlip;
    size_t offset = 0;     // byte offset (old size for truncation)
    std::uint8_t bit = 0;  // bit index (kBitFlip) or new value (others)
    size_t new_size = 0;   // post-mutation size (kTruncate)
    std::string path;      // attacked file (archive mutations)
    std::string other;     // second file (kShardSwap)

    [[nodiscard]] std::string describe() const;
  };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] Rng& rng() { return rng_; }

  /// Apply one random mutation of a random kind. Length tampering needs a
  /// parseable header to find the length area; when it cannot, it falls
  /// back to a byte smash.
  Mutation mutate(std::vector<byte_t>& stream);

  /// Burst mode: `count` independent random mutations against one stream
  /// (models a dirty channel rather than a single event).
  std::vector<Mutation> burst(std::vector<byte_t>& stream, size_t count);

  Mutation flip_bit(std::vector<byte_t>& stream);
  Mutation set_byte(std::vector<byte_t>& stream);
  Mutation truncate(std::vector<byte_t>& stream);
  Mutation tamper_length_byte(std::vector<byte_t>& stream);

  /// Flip one random bit inside an arbitrary buffer (used by the gpusim
  /// post-kernel hook to corrupt device-resident streams mid-pipeline).
  Mutation corrupt_buffer(std::span<byte_t> buf);

  /// Apply one random archive-aware mutation to archive directory `dir`
  /// (layout.hpp's v2 layout). Returns kNoop when the chosen target does
  /// not exist (e.g. dropping a shard from an empty archive).
  Mutation mutate_archive(Fs& fs, const std::string& dir);

  /// Burst mode over an archive directory.
  std::vector<Mutation> burst_archive(Fs& fs, const std::string& dir,
                                      size_t count);

  Mutation tamper_index_header(Fs& fs, const std::string& dir);
  Mutation tamper_index_entry(Fs& fs, const std::string& dir);
  Mutation corrupt_shard_payload(Fs& fs, const std::string& dir);
  Mutation drop_shard(Fs& fs, const std::string& dir);
  Mutation swap_shards(Fs& fs, const std::string& dir);

 private:
  /// XOR one random byte of `path` within [lo, min(hi, size)) with a
  /// non-zero delta; kNoop when the window is empty or the file absent.
  Mutation corrupt_file_range(Fs& fs, const std::string& path, Kind kind,
                              size_t lo, size_t hi);
  [[nodiscard]] std::vector<std::string> shard_files(Fs& fs,
                                                     const std::string& dir);

  Rng rng_;
};

}  // namespace szp::robust
