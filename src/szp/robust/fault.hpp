// Deterministic fault injection for the fuzz harness.
//
// Every mutation is drawn from a seeded Rng, so a failing case replays
// from its seed alone. Mutations model storage/transport faults (bit
// flips, byte smashes, truncation) plus one format-aware attack (length
// byte tampering, which desynchronizes the payload prefix sum).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "szp/util/common.hpp"
#include "szp/util/rng.hpp"

namespace szp::robust {

class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kBitFlip = 0,   // flip one random bit
    kByteSet,       // overwrite one byte with a random value
    kTruncate,      // drop a random-length tail
    kLengthTamper,  // rewrite one per-block length byte
  };

  /// Record of one applied mutation, for failure reports.
  struct Mutation {
    Kind kind = Kind::kBitFlip;
    size_t offset = 0;     // byte offset (old size for truncation)
    std::uint8_t bit = 0;  // bit index (kBitFlip) or new value (others)
    size_t new_size = 0;   // post-mutation size (kTruncate)

    [[nodiscard]] std::string describe() const;
  };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] Rng& rng() { return rng_; }

  /// Apply one random mutation of a random kind. Length tampering needs a
  /// parseable header to find the length area; when it cannot, it falls
  /// back to a byte smash.
  Mutation mutate(std::vector<byte_t>& stream);

  Mutation flip_bit(std::vector<byte_t>& stream);
  Mutation set_byte(std::vector<byte_t>& stream);
  Mutation truncate(std::vector<byte_t>& stream);
  Mutation tamper_length_byte(std::vector<byte_t>& stream);

  /// Flip one random bit inside an arbitrary buffer (used by the gpusim
  /// post-kernel hook to corrupt device-resident streams mid-pipeline).
  Mutation corrupt_buffer(std::span<byte_t> buf);

 private:
  Rng rng_;
};

}  // namespace szp::robust
