// Structured decode outcomes for the fault-tolerant ("try_") API.
//
// The throwing decoders treat any defect as fatal; this module instead
// reports what is wrong, where, and what could still be recovered. Kept
// free of other szp headers so the core public API can expose try_
// entry points without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace szp::robust {

/// What a no-throw decode (or a stream verification) concluded.
enum class Status : std::uint8_t {
  kOk = 0,
  kTruncated,            // stream shorter than its own accounting implies
  kBadMagic,             // not a cuSZp stream
  kUnsupportedVersion,   // version the library does not know
  kHeaderCorrupt,        // v2 header CRC mismatch
  kBadHeaderField,       // header parses but a field is invalid
  kTypeMismatch,         // f32 requested from an f64 stream or vice versa
  kBadLengthByte,        // a length byte no encoder can produce
  kFooterMissing,        // v2 stream whose checksum footer is unusable
  kChecksumMismatch,     // one or more group CRCs failed
  kSizeMismatch,         // stream extents disagree with the footer layout
  kInternalError,        // unexpected failure (never expected; reported,
                         // not thrown)
};

[[nodiscard]] const char* to_string(Status s);

/// Half-open range of data blocks whose content could not be recovered
/// (their elements are zero-filled in salvaged output).
struct CorruptRange {
  std::size_t first_block = 0;
  std::size_t last_block = 0;  // exclusive

  friend bool operator==(const CorruptRange&, const CorruptRange&) = default;
};

/// Per-checksum-group verdict (populated when DecodeOptions::want_groups).
struct GroupReport {
  std::size_t index = 0;
  std::size_t first_block = 0;
  std::size_t last_block = 0;  // exclusive
  bool ok = false;
};

/// Result of try_decompress / verify_stream. `status` is kOk only when
/// every byte checked out; a salvaged decode keeps the first defect's
/// status and lists exactly which blocks were lost.
struct DecodeReport {
  Status status = Status::kOk;
  bool checksummed = false;  // stream carries a v2 footer
  bool salvaged = false;     // output contains partially recovered data
  std::size_t num_elements = 0;
  std::size_t num_blocks = 0;
  std::size_t groups_total = 0;
  std::size_t groups_bad = 0;
  std::vector<CorruptRange> corrupt_blocks;  // merged, ascending
  std::vector<GroupReport> groups;           // only when want_groups
  std::string detail;                        // human-readable context

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  [[nodiscard]] std::size_t corrupt_block_count() const {
    std::size_t c = 0;
    for (const auto& r : corrupt_blocks) c += r.last_block - r.first_block;
    return c;
  }
};

struct DecodeOptions {
  /// Recover what the checksums vouch for and zero-fill the rest. When
  /// false, any defect leaves the output empty.
  bool salvage = true;
  /// Populate DecodeReport::groups (used by the szp_verify tool).
  bool want_groups = false;
};

}  // namespace szp::robust
