#include "szp/robust/io_fault.hpp"

#include <algorithm>

namespace szp::robust {

bool FaultFs::begin_mutating_op(bool tearable) {
  ++mutating_ops_;
  if (opts_.crash_at_mutating_op != 0 &&
      mutating_ops_ == opts_.crash_at_mutating_op) {
    if (tearable && opts_.torn_writes) return true;
    throw io_crash(mutating_ops_);
  }
  return false;
}

void FaultFs::maybe_perturb_read(std::vector<byte_t>& data) {
  if (data.empty()) return;
  if (opts_.short_read_rate > 0 &&
      rng_.next_double() < opts_.short_read_rate) {
    data.resize(static_cast<size_t>(rng_.next_below(data.size())));
  }
  if (!data.empty() && opts_.read_bitrot_rate > 0 &&
      rng_.next_double() < opts_.read_bitrot_rate) {
    const size_t off = static_cast<size_t>(rng_.next_below(data.size()));
    data[off] = static_cast<byte_t>(data[off] ^
                                    (1u << rng_.next_below(8)));
  }
}

std::vector<byte_t> FaultFs::read_file(const std::string& path) {
  auto data = base_.read_file(path);
  maybe_perturb_read(data);
  return data;
}

std::vector<byte_t> FaultFs::read_range(const std::string& path,
                                        std::uint64_t offset, size_t n) {
  auto data = base_.read_range(path, offset, n);
  maybe_perturb_read(data);
  return data;
}

void FaultFs::write_file(const std::string& path,
                         std::span<const byte_t> data) {
  const bool tear = begin_mutating_op(/*tearable=*/!data.empty());
  if (tear) {
    // Torn write: persist a strict prefix, then die.
    const size_t keep = static_cast<size_t>(rng_.next_below(data.size()));
    base_.write_file(path, data.first(keep));
    throw io_crash(mutating_ops_);
  }
  if (opts_.write_fail_rate > 0 && !data.empty() &&
      rng_.next_double() < opts_.write_fail_rate) {
    base_.write_file(path, data.first(data.size() / 2));
    throw io_error(IoOp::kWrite, path, 28 /*ENOSPC*/,
                   "injected write failure");
  }
  base_.write_file(path, data);
}

void FaultFs::rename(const std::string& from, const std::string& to) {
  (void)begin_mutating_op(/*tearable=*/false);
  base_.rename(from, to);
}

void FaultFs::remove(const std::string& path) {
  (void)begin_mutating_op(/*tearable=*/false);
  base_.remove(path);
}

bool FaultFs::exists(const std::string& path) { return base_.exists(path); }

std::vector<std::string> FaultFs::list_dir(const std::string& dir) {
  return base_.list_dir(dir);
}

void FaultFs::make_dirs(const std::string& path) {
  (void)begin_mutating_op(/*tearable=*/false);
  base_.make_dirs(path);
}

std::uint64_t FaultFs::file_size(const std::string& path) {
  return base_.file_size(path);
}

void FaultFs::sync_file(const std::string& path) {
  (void)begin_mutating_op(/*tearable=*/false);
  base_.sync_file(path);
}

}  // namespace szp::robust
