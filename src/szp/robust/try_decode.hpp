// No-throw decoding and stream verification (format v2 fault tolerance).
//
// try_decompress never throws on malformed input: it classifies the
// defect, decodes every checksum group that still verifies, zero-fills
// the blocks it cannot trust, and reports exactly which ranges were lost.
// v1 streams (no checksums) are decoded with structural validation only —
// corruption past the first defect cannot be re-aligned, so salvage stops
// there.
#pragma once

#include <span>
#include <vector>

#include "szp/robust/status.hpp"
#include "szp/util/common.hpp"

namespace szp::robust {

/// Integrity-check a stream without producing output: header, length
/// bytes, footer, and every group CRC. `want_groups` fills the per-group
/// verdict list (used by szp_verify).
[[nodiscard]] DecodeReport verify_stream(std::span<const byte_t> stream,
                                         bool want_groups = false);

/// Decode `stream` into `out` without throwing. On full success `out`
/// holds all elements and report.ok(); on salvage, corrupt blocks decode
/// as zeros and are listed in report.corrupt_blocks; on unrecoverable
/// defects (or salvage disabled) `out` is empty.
DecodeReport try_decompress(std::span<const byte_t> stream,
                            std::vector<float>& out,
                            const DecodeOptions& opts = {});
DecodeReport try_decompress_f64(std::span<const byte_t> stream,
                                std::vector<double>& out,
                                const DecodeOptions& opts = {});

}  // namespace szp::robust
