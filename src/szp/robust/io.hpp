// Filesystem abstraction for crash-consistent storage (archive format v2).
//
// Everything the archive reads or writes goes through an Fs so the same
// code runs against the real filesystem (RealFs), a deterministic
// in-memory one (MemFs, for the kill-point and fuzz suites), or the
// fault-injecting decorator (FaultFs in io_fault.hpp). The interface is
// deliberately whole-call-grained — one virtual call per syscall-shaped
// operation — so fault injection can count, fail, or kill at exact
// operation boundaries.
//
// Error model:
//   * io_error     — the operation failed (missing file, permission,
//                    short write...). Carries the op name, the path, and
//                    the errno when the backend has one, so tools can
//                    print actionable context.
//   * io_crash     — thrown only by FaultFs to simulate the process dying
//                    at a syscall boundary. Never thrown by real backends;
//                    crash-recovery tests catch it where a real deployment
//                    would reboot.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "szp/util/common.hpp"

namespace szp::robust {

/// Operation that failed; stable names for reports and tests.
enum class IoOp : std::uint8_t {
  kRead,
  kWrite,
  kRename,
  kRemove,
  kList,
  kMakeDirs,
  kSync,
  kStat,
};

[[nodiscard]] const char* to_string(IoOp op);

/// Filesystem operation failure with errno context (0 when the backend
/// has no meaningful errno, e.g. MemFs).
class io_error : public std::runtime_error {
 public:
  io_error(IoOp op, std::string path, int err, const std::string& detail);

  [[nodiscard]] IoOp op() const { return op_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int err() const { return err_; }

 private:
  IoOp op_ = IoOp::kRead;
  std::string path_;
  int err_ = 0;
};

/// Simulated process death at a syscall boundary (FaultFs kill points).
/// Intentionally NOT derived from io_error: recovery code must never
/// "handle" its own death.
class io_crash : public std::exception {
 public:
  explicit io_crash(std::uint64_t op_index) : op_index_(op_index) {
    what_ = "io_crash: simulated kill at mutating op " +
            std::to_string(op_index);
  }
  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }
  [[nodiscard]] std::uint64_t op_index() const { return op_index_; }

 private:
  std::uint64_t op_index_ = 0;
  std::string what_;
};

/// Syscall-shaped filesystem interface. Paths use '/' separators; all
/// operations throw io_error on failure (never return partial success)
/// except where noted.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Whole-file read.
  [[nodiscard]] virtual std::vector<byte_t> read_file(
      const std::string& path) = 0;

  /// pread-style range read. Reading past EOF returns the bytes that
  /// exist (possibly fewer than `n`); a caller that requires exactly `n`
  /// bytes must check, which is how torn tails are detected.
  [[nodiscard]] virtual std::vector<byte_t> read_range(const std::string& path,
                                                       std::uint64_t offset,
                                                       size_t n) = 0;

  /// Create-or-truncate whole-file write.
  virtual void write_file(const std::string& path,
                          std::span<const byte_t> data) = 0;

  /// Atomic replace (POSIX rename semantics: `to` is replaced if present).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  virtual void remove(const std::string& path) = 0;

  [[nodiscard]] virtual bool exists(const std::string& path) = 0;

  /// Regular-file names directly inside `dir`, sorted (no subdirs, no
  /// dot entries). Missing directory reads as empty.
  [[nodiscard]] virtual std::vector<std::string> list_dir(
      const std::string& dir) = 0;

  virtual void make_dirs(const std::string& path) = 0;

  [[nodiscard]] virtual std::uint64_t file_size(const std::string& path) = 0;

  /// Durability barrier for a previously written file (fsync analogue).
  /// Counted as a mutating op by FaultFs even though it moves no bytes.
  virtual void sync_file(const std::string& path) = 0;
};

/// POSIX-backed implementation; io_error carries the real errno.
class RealFs final : public Fs {
 public:
  [[nodiscard]] std::vector<byte_t> read_file(const std::string& path) override;
  [[nodiscard]] std::vector<byte_t> read_range(const std::string& path,
                                               std::uint64_t offset,
                                               size_t n) override;
  void write_file(const std::string& path,
                  std::span<const byte_t> data) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& dir) override;
  void make_dirs(const std::string& path) override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) override;
  void sync_file(const std::string& path) override;
};

/// Deterministic in-memory filesystem for the recovery suites. Copyable:
/// a fuzz iteration clones the pristine archive image instead of
/// re-ingesting. Not thread-safe (tests are single-threaded per Fs).
class MemFs final : public Fs {
 public:
  [[nodiscard]] std::vector<byte_t> read_file(const std::string& path) override;
  [[nodiscard]] std::vector<byte_t> read_range(const std::string& path,
                                               std::uint64_t offset,
                                               size_t n) override;
  void write_file(const std::string& path,
                  std::span<const byte_t> data) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& dir) override;
  void make_dirs(const std::string& path) override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) override;
  void sync_file(const std::string& path) override;

  /// Test hooks: direct access to a file image (corruption helpers).
  [[nodiscard]] std::vector<byte_t>* find(const std::string& path);

 private:
  std::map<std::string, std::vector<byte_t>> files_;
  std::set<std::string> dirs_;
};

}  // namespace szp::robust
