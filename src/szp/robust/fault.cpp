#include "szp/robust/fault.hpp"

#include <algorithm>

#include "szp/core/format.hpp"

namespace szp::robust {

std::string FaultInjector::Mutation::describe() const {
  switch (kind) {
    case Kind::kBitFlip:
      return "bit-flip @" + std::to_string(offset) + " bit " +
             std::to_string(bit);
    case Kind::kByteSet:
      return "byte-set @" + std::to_string(offset) + " = " +
             std::to_string(bit);
    case Kind::kTruncate:
      return "truncate " + std::to_string(offset) + " -> " +
             std::to_string(new_size);
    case Kind::kLengthTamper:
      return "length-tamper @" + std::to_string(offset) + " = " +
             std::to_string(bit);
  }
  return "?";
}

FaultInjector::Mutation FaultInjector::mutate(std::vector<byte_t>& stream) {
  switch (rng_.next_below(4)) {
    case 0: return flip_bit(stream);
    case 1: return set_byte(stream);
    case 2: return truncate(stream);
    default: return tamper_length_byte(stream);
  }
}

FaultInjector::Mutation FaultInjector::flip_bit(std::vector<byte_t>& stream) {
  return corrupt_buffer(stream);
}

FaultInjector::Mutation FaultInjector::set_byte(std::vector<byte_t>& stream) {
  Mutation m;
  m.kind = Kind::kByteSet;
  m.new_size = stream.size();
  if (stream.empty()) return m;
  m.offset = static_cast<size_t>(rng_.next_below(stream.size()));
  // Guarantee a change: XOR with a non-zero delta instead of rerolling.
  const auto delta = static_cast<byte_t>(1 + rng_.next_below(255));
  stream[m.offset] = static_cast<byte_t>(stream[m.offset] ^ delta);
  m.bit = stream[m.offset];
  return m;
}

FaultInjector::Mutation FaultInjector::truncate(std::vector<byte_t>& stream) {
  Mutation m;
  m.kind = Kind::kTruncate;
  m.offset = stream.size();
  if (stream.empty()) return m;
  m.new_size = static_cast<size_t>(rng_.next_below(stream.size()));
  stream.resize(m.new_size);
  return m;
}

FaultInjector::Mutation FaultInjector::tamper_length_byte(
    std::vector<byte_t>& stream) {
  size_t nblocks = 0;
  try {
    const auto h = core::Header::deserialize(stream);
    nblocks = core::num_blocks(h.num_elements, h.block_len);
  } catch (const format_error&) {
  }
  const size_t lo = core::lengths_offset();
  if (nblocks == 0 || stream.size() <= lo) return set_byte(stream);
  const size_t avail = std::min(nblocks, stream.size() - lo);
  Mutation m;
  m.kind = Kind::kLengthTamper;
  m.new_size = stream.size();
  m.offset = lo + static_cast<size_t>(rng_.next_below(avail));
  const auto delta = static_cast<byte_t>(1 + rng_.next_below(255));
  stream[m.offset] = static_cast<byte_t>(stream[m.offset] ^ delta);
  m.bit = stream[m.offset];
  return m;
}

FaultInjector::Mutation FaultInjector::corrupt_buffer(std::span<byte_t> buf) {
  Mutation m;
  m.kind = Kind::kBitFlip;
  m.new_size = buf.size();
  if (buf.empty()) return m;
  m.offset = static_cast<size_t>(rng_.next_below(buf.size()));
  m.bit = static_cast<std::uint8_t>(rng_.next_below(8));
  buf[m.offset] = static_cast<byte_t>(buf[m.offset] ^ (1u << m.bit));
  return m;
}

}  // namespace szp::robust
