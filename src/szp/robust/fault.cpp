#include "szp/robust/fault.hpp"

#include <algorithm>

// Fault injection targets the archive's on-disk layout by design; this
// deliberate layering exception is confined to this one file.
// szp-lint: allow(layering) fault injector mutates archive layout on purpose
#include "szp/archive/layout.hpp"
#include "szp/core/format.hpp"

namespace szp::robust {

std::string FaultInjector::Mutation::describe() const {
  const std::string at = path.empty() ? std::string() : " [" + path + "]";
  switch (kind) {
    case Kind::kBitFlip:
      return "bit-flip @" + std::to_string(offset) + " bit " +
             std::to_string(bit) + at;
    case Kind::kByteSet:
      return "byte-set @" + std::to_string(offset) + " = " +
             std::to_string(bit) + at;
    case Kind::kTruncate:
      return "truncate " + std::to_string(offset) + " -> " +
             std::to_string(new_size) + at;
    case Kind::kLengthTamper:
      return "length-tamper @" + std::to_string(offset) + " = " +
             std::to_string(bit) + at;
    case Kind::kIndexHeaderTamper:
      return "index-header-tamper @" + std::to_string(offset) + " = " +
             std::to_string(bit) + at;
    case Kind::kIndexEntryTamper:
      return "index-entry-tamper @" + std::to_string(offset) + " = " +
             std::to_string(bit) + at;
    case Kind::kShardCorrupt:
      return "shard-corrupt @" + std::to_string(offset) + " = " +
             std::to_string(bit) + at;
    case Kind::kShardDrop:
      return "shard-drop" + at;
    case Kind::kShardSwap:
      return "shard-swap" + at + " <-> [" + other + "]";
    case Kind::kNoop:
      return "noop" + at;
  }
  return "?";
}

FaultInjector::Mutation FaultInjector::mutate(std::vector<byte_t>& stream) {
  switch (rng_.next_below(4)) {
    case 0: return flip_bit(stream);
    case 1: return set_byte(stream);
    case 2: return truncate(stream);
    default: return tamper_length_byte(stream);
  }
}

FaultInjector::Mutation FaultInjector::flip_bit(std::vector<byte_t>& stream) {
  return corrupt_buffer(stream);
}

FaultInjector::Mutation FaultInjector::set_byte(std::vector<byte_t>& stream) {
  Mutation m;
  m.kind = Kind::kByteSet;
  m.new_size = stream.size();
  if (stream.empty()) return m;
  m.offset = static_cast<size_t>(rng_.next_below(stream.size()));
  // Guarantee a change: XOR with a non-zero delta instead of rerolling.
  const auto delta = static_cast<byte_t>(1 + rng_.next_below(255));
  stream[m.offset] = static_cast<byte_t>(stream[m.offset] ^ delta);
  m.bit = stream[m.offset];
  return m;
}

FaultInjector::Mutation FaultInjector::truncate(std::vector<byte_t>& stream) {
  Mutation m;
  m.kind = Kind::kTruncate;
  m.offset = stream.size();
  if (stream.empty()) return m;
  m.new_size = static_cast<size_t>(rng_.next_below(stream.size()));
  stream.resize(m.new_size);
  return m;
}

FaultInjector::Mutation FaultInjector::tamper_length_byte(
    std::vector<byte_t>& stream) {
  size_t nblocks = 0;
  try {
    const auto h = core::Header::deserialize(stream);
    nblocks = core::num_blocks(h.num_elements, h.block_len);
  } catch (const format_error&) {
  }
  const size_t lo = core::lengths_offset();
  if (nblocks == 0 || stream.size() <= lo) return set_byte(stream);
  const size_t avail = std::min(nblocks, stream.size() - lo);
  Mutation m;
  m.kind = Kind::kLengthTamper;
  m.new_size = stream.size();
  m.offset = lo + static_cast<size_t>(rng_.next_below(avail));
  const auto delta = static_cast<byte_t>(1 + rng_.next_below(255));
  stream[m.offset] = static_cast<byte_t>(stream[m.offset] ^ delta);
  m.bit = stream[m.offset];
  return m;
}

FaultInjector::Mutation FaultInjector::corrupt_buffer(std::span<byte_t> buf) {
  Mutation m;
  m.kind = Kind::kBitFlip;
  m.new_size = buf.size();
  if (buf.empty()) return m;
  m.offset = static_cast<size_t>(rng_.next_below(buf.size()));
  m.bit = static_cast<std::uint8_t>(rng_.next_below(8));
  buf[m.offset] = static_cast<byte_t>(buf[m.offset] ^ (1u << m.bit));
  return m;
}

std::vector<FaultInjector::Mutation> FaultInjector::burst(
    std::vector<byte_t>& stream, size_t count) {
  std::vector<Mutation> applied;
  applied.reserve(count);
  for (size_t i = 0; i < count; ++i) applied.push_back(mutate(stream));
  return applied;
}

// ------------------------------------------------- archive mutations ----

namespace layout = szp::archive::layout;

std::vector<std::string> FaultInjector::shard_files(Fs& fs,
                                                    const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& f : fs.list_dir(layout::shard_dir(dir))) {
    if (f.size() >= 5 && f.compare(f.size() - 5, 5, layout::kShardSuffix) == 0) {
      out.push_back(layout::shard_path(dir, f));
    }
  }
  return out;
}

FaultInjector::Mutation FaultInjector::corrupt_file_range(
    Fs& fs, const std::string& path, Kind kind, size_t lo, size_t hi) {
  Mutation m;
  m.kind = kind;
  m.path = path;
  if (!fs.exists(path)) {
    m.kind = Kind::kNoop;
    return m;
  }
  auto bytes = fs.read_file(path);
  hi = std::min(hi, bytes.size());
  if (lo >= hi) {
    m.kind = Kind::kNoop;
    return m;
  }
  m.offset = lo + static_cast<size_t>(rng_.next_below(hi - lo));
  const auto delta = static_cast<byte_t>(1 + rng_.next_below(255));
  bytes[m.offset] = static_cast<byte_t>(bytes[m.offset] ^ delta);
  m.bit = bytes[m.offset];
  m.new_size = bytes.size();
  fs.write_file(path, bytes);
  return m;
}

FaultInjector::Mutation FaultInjector::tamper_index_header(
    Fs& fs, const std::string& dir) {
  return corrupt_file_range(fs, layout::index_path(dir),
                            Kind::kIndexHeaderTamper, 0,
                            layout::kIndexHeaderBytes);
}

FaultInjector::Mutation FaultInjector::tamper_index_entry(
    Fs& fs, const std::string& dir) {
  const std::string path = layout::index_path(dir);
  size_t hi = 0;
  if (fs.exists(path)) {
    const auto size = static_cast<size_t>(fs.file_size(path));
    hi = size > layout::kIndexCrcBytes ? size - layout::kIndexCrcBytes : 0;
  }
  // Attack the shard/entry tables; the trailing CRC stays intact so the
  // mismatch is guaranteed to be detectable.
  return corrupt_file_range(fs, path, Kind::kIndexEntryTamper,
                            layout::kIndexHeaderBytes, hi);
}

FaultInjector::Mutation FaultInjector::corrupt_shard_payload(
    Fs& fs, const std::string& dir) {
  const auto shards = shard_files(fs, dir);
  if (shards.empty()) {
    Mutation m;
    m.kind = Kind::kNoop;
    m.path = layout::shard_dir(dir);
    return m;
  }
  const auto& path =
      shards[static_cast<size_t>(rng_.next_below(shards.size()))];
  return corrupt_file_range(fs, path, Kind::kShardCorrupt,
                            layout::kShardHeaderBytes,
                            static_cast<size_t>(-1));
}

FaultInjector::Mutation FaultInjector::drop_shard(Fs& fs,
                                                  const std::string& dir) {
  Mutation m;
  const auto shards = shard_files(fs, dir);
  if (shards.empty()) {
    m.kind = Kind::kNoop;
    m.path = layout::shard_dir(dir);
    return m;
  }
  m.kind = Kind::kShardDrop;
  m.path = shards[static_cast<size_t>(rng_.next_below(shards.size()))];
  fs.remove(m.path);
  return m;
}

FaultInjector::Mutation FaultInjector::swap_shards(Fs& fs,
                                                   const std::string& dir) {
  Mutation m;
  const auto shards = shard_files(fs, dir);
  if (shards.size() < 2) {
    m.kind = Kind::kNoop;
    m.path = layout::shard_dir(dir);
    return m;
  }
  const size_t a = static_cast<size_t>(rng_.next_below(shards.size()));
  size_t b = static_cast<size_t>(rng_.next_below(shards.size() - 1));
  if (b >= a) ++b;
  m.kind = Kind::kShardSwap;
  m.path = shards[a];
  m.other = shards[b];
  // Swap contents, keep names: both files end up lying about their
  // content address.
  const auto bytes_a = fs.read_file(m.path);
  const auto bytes_b = fs.read_file(m.other);
  fs.write_file(m.path, bytes_b);
  fs.write_file(m.other, bytes_a);
  return m;
}

FaultInjector::Mutation FaultInjector::mutate_archive(Fs& fs,
                                                      const std::string& dir) {
  switch (rng_.next_below(5)) {
    case 0: return tamper_index_header(fs, dir);
    case 1: return tamper_index_entry(fs, dir);
    case 2: return corrupt_shard_payload(fs, dir);
    case 3: return drop_shard(fs, dir);
    default: return swap_shards(fs, dir);
  }
}

std::vector<FaultInjector::Mutation> FaultInjector::burst_archive(
    Fs& fs, const std::string& dir, size_t count) {
  std::vector<Mutation> applied;
  applied.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    applied.push_back(mutate_archive(fs, dir));
  }
  return applied;
}

}  // namespace szp::robust
