// Fault-injecting filesystem decorator (the I/O counterpart of
// robust::FaultInjector).
//
// FaultFs wraps any Fs and perturbs its operations deterministically from
// a seed, so every failure replays from (seed, options) alone:
//
//   * kill points    — crash_at_mutating_op N throws io_crash before the
//                      Nth state-changing operation completes, modeling
//                      the process dying at that exact syscall boundary.
//                      With torn_writes, a write_file that dies persists
//                      a seed-chosen prefix of the data first (a torn
//                      write), which is what real storage does to
//                      non-atomic appends.
//   * short reads    — read_range/read_file occasionally return fewer
//                      bytes than the file holds (silently, as a raced
//                      truncate would); callers must detect via length
//                      checks and checksums.
//   * bit rot        — read results occasionally come back with one
//                      flipped bit (latent media corruption surfacing on
//                      read; the file itself is not modified).
//   * write faults   — write_file occasionally fails with an ENOSPC-shaped
//                      io_error after persisting a prefix.
//
// The mutating-op counter covers write_file, rename, remove, make_dirs
// and sync_file; reads never advance it, so a kill-point sweep over
// [1, mutating_ops()] exercises every journaled transition of a commit
// protocol exactly once.
#pragma once

#include <cstdint>

#include "szp/robust/io.hpp"
#include "szp/util/rng.hpp"

namespace szp::robust {

struct FaultFsOptions {
  std::uint64_t seed = 0;
  /// Throw io_crash before the Nth (1-based) mutating operation takes
  /// full effect. 0 disables kill points.
  std::uint64_t crash_at_mutating_op = 0;
  /// When the kill point lands inside write_file, persist a random prefix
  /// of the data first (torn write) instead of nothing.
  bool torn_writes = true;
  /// Probability that a read returns silently truncated data.
  double short_read_rate = 0;
  /// Probability that a read result has one bit flipped (media rot).
  double read_bitrot_rate = 0;
  /// Probability that write_file fails with an io_error (ENOSPC-shaped)
  /// after persisting a prefix.
  double write_fail_rate = 0;
};

class FaultFs final : public Fs {
 public:
  FaultFs(Fs& base, FaultFsOptions opts) : base_(base), opts_(opts),
                                           rng_(opts.seed) {}

  [[nodiscard]] std::vector<byte_t> read_file(const std::string& path) override;
  [[nodiscard]] std::vector<byte_t> read_range(const std::string& path,
                                               std::uint64_t offset,
                                               size_t n) override;
  void write_file(const std::string& path,
                  std::span<const byte_t> data) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& dir) override;
  void make_dirs(const std::string& path) override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) override;
  void sync_file(const std::string& path) override;

  /// Mutating operations attempted so far (crashed ops included). Running
  /// a workload with kill points disabled measures the sweep bound.
  [[nodiscard]] std::uint64_t mutating_ops() const { return mutating_ops_; }

 private:
  /// Advance the mutating-op counter; throws io_crash at the kill point.
  /// Returns true when this op IS the kill point but the caller should
  /// partially apply first (torn writes).
  bool begin_mutating_op(bool tearable);
  void maybe_perturb_read(std::vector<byte_t>& data);

  Fs& base_;
  FaultFsOptions opts_;
  Rng rng_;
  std::uint64_t mutating_ops_ = 0;
};

}  // namespace szp::robust
