#include "szp/robust/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#ifdef __unix__
#include <unistd.h>
#endif

namespace szp::robust {

namespace fs = std::filesystem;

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kRead: return "read";
    case IoOp::kWrite: return "write";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
    case IoOp::kList: return "list";
    case IoOp::kMakeDirs: return "mkdir";
    case IoOp::kSync: return "sync";
    case IoOp::kStat: return "stat";
  }
  return "?";
}

namespace {

std::string format_io_error(IoOp op, const std::string& path, int err,
                            const std::string& detail) {
  std::string msg = std::string(to_string(op)) + " " + path + ": " + detail;
  if (err != 0) {
    msg += " (errno ";
    msg += std::to_string(err);
    msg += ": ";
    msg += std::strerror(err);
    msg += ")";
  }
  return msg;
}

}  // namespace

io_error::io_error(IoOp op, std::string path, int err,
                   const std::string& detail)
    : std::runtime_error(format_io_error(op, path, err, detail)),
      op_(op),
      path_(std::move(path)),
      err_(err) {}

// ------------------------------------------------------------ RealFs ----

std::vector<byte_t> RealFs::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw io_error(IoOp::kRead, path, errno, "cannot open");
  }
  std::vector<byte_t> data;
  byte_t buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  const bool bad = std::ferror(f) != 0;
  const int err = errno;
  std::fclose(f);
  if (bad) throw io_error(IoOp::kRead, path, err, "read failed");
  return data;
}

std::vector<byte_t> RealFs::read_range(const std::string& path,
                                       std::uint64_t offset, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw io_error(IoOp::kRead, path, errno, "cannot open");
  }
  std::vector<byte_t> data;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    const int err = errno;
    std::fclose(f);
    throw io_error(IoOp::kRead, path, err, "seek failed");
  }
  data.resize(n);
  const size_t got = std::fread(data.data(), 1, n, f);
  const bool bad = std::ferror(f) != 0;
  const int err = errno;
  std::fclose(f);
  if (bad) throw io_error(IoOp::kRead, path, err, "read failed");
  data.resize(got);  // short read past EOF: return what exists
  return data;
}

void RealFs::write_file(const std::string& path,
                        std::span<const byte_t> data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw io_error(IoOp::kWrite, path, errno, "cannot open for writing");
  }
  const size_t put = data.empty() ? 0 : std::fwrite(data.data(), 1,
                                                    data.size(), f);
  const int err = errno;
  if (std::fclose(f) != 0 || put != data.size()) {
    throw io_error(IoOp::kWrite, path, err, "short write");
  }
}

void RealFs::rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw io_error(IoOp::kRename, from, errno, "cannot rename to " + to);
  }
}

void RealFs::remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    throw io_error(IoOp::kRemove, path, errno, "cannot remove");
  }
}

bool RealFs::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(fs::path(path), ec);
}

std::vector<std::string> RealFs::list_dir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(fs::path(dir), ec);
  if (ec) return names;  // missing directory reads as empty
  for (const auto& e : it) {
    if (e.is_regular_file(ec)) names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

void RealFs::make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(fs::path(path), ec);
  if (ec) {
    throw io_error(IoOp::kMakeDirs, path, ec.value(),
                   "cannot create directories");
  }
}

std::uint64_t RealFs::file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(fs::path(path), ec);
  if (ec) throw io_error(IoOp::kStat, path, ec.value(), "cannot stat");
  return static_cast<std::uint64_t>(size);
}

void RealFs::sync_file(const std::string& path) {
#ifdef __unix__
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw io_error(IoOp::kSync, path, errno, "cannot open for fsync");
  }
  const int rc = ::fsync(fileno(f));
  const int err = errno;
  std::fclose(f);
  if (rc != 0) throw io_error(IoOp::kSync, path, err, "fsync failed");
#else
  (void)path;
#endif
}

// ------------------------------------------------------------- MemFs ----

namespace {

/// Parent directory of `path` ("" when none).
std::string parent_of(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::vector<byte_t> MemFs::read_file(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw io_error(IoOp::kRead, path, 0, "no such file");
  }
  return it->second;
}

std::vector<byte_t> MemFs::read_range(const std::string& path,
                                      std::uint64_t offset, size_t n) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw io_error(IoOp::kRead, path, 0, "no such file");
  }
  const auto& data = it->second;
  if (offset >= data.size()) return {};
  const size_t avail = data.size() - static_cast<size_t>(offset);
  const size_t take = std::min(n, avail);
  return std::vector<byte_t>(data.begin() + static_cast<ptrdiff_t>(offset),
                             data.begin() + static_cast<ptrdiff_t>(offset) +
                                 static_cast<ptrdiff_t>(take));
}

void MemFs::write_file(const std::string& path,
                       std::span<const byte_t> data) {
  const std::string parent = parent_of(path);
  if (!parent.empty() && dirs_.find(parent) == dirs_.end()) {
    throw io_error(IoOp::kWrite, path, 0, "parent directory does not exist");
  }
  files_[path].assign(data.begin(), data.end());
}

void MemFs::rename(const std::string& from, const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end()) {
    throw io_error(IoOp::kRename, from, 0, "no such file");
  }
  const std::string parent = parent_of(to);
  if (!parent.empty() && dirs_.find(parent) == dirs_.end()) {
    throw io_error(IoOp::kRename, from, 0,
                   "target directory for " + to + " does not exist");
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
}

void MemFs::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    throw io_error(IoOp::kRemove, path, 0, "no such file");
  }
}

bool MemFs::exists(const std::string& path) {
  return files_.find(path) != files_.end() ||
         dirs_.find(path) != dirs_.end();
}

std::vector<std::string> MemFs::list_dir(const std::string& dir) {
  std::vector<std::string> names;
  const std::string prefix = dir + "/";
  for (const auto& [path, data] : files_) {
    (void)data;
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(),
                                                     prefix) != 0) {
      continue;
    }
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // std::map iteration is already sorted
}

void MemFs::make_dirs(const std::string& path) {
  std::string cur;
  for (size_t pos = 0; pos <= path.size(); ++pos) {
    if (pos == path.size() || path[pos] == '/') {
      cur = path.substr(0, pos);
      if (!cur.empty()) dirs_.insert(cur);
    }
  }
}

std::uint64_t MemFs::file_size(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw io_error(IoOp::kStat, path, 0, "no such file");
  }
  return it->second.size();
}

void MemFs::sync_file(const std::string& path) {
  if (files_.find(path) == files_.end()) {
    throw io_error(IoOp::kSync, path, 0, "no such file");
  }
}

std::vector<byte_t>* MemFs::find(const std::string& path) {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

}  // namespace szp::robust
