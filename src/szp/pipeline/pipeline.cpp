#include "szp/pipeline/pipeline.hpp"

namespace szp::pipeline {

InlinePipeline::InlinePipeline(Config config) : config_(config) {
  config_.params.validate();
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InlinePipeline::~InlinePipeline() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  job_available_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void InlinePipeline::submit(data::Field snapshot,
                            std::optional<double> value_range) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (finished_) throw format_error("pipeline: submit after finish");
  space_available_.wait(
      lock, [&] { return queue_.size() < config_.max_queue || closing_; });
  if (closing_) throw format_error("pipeline: closed");
  Job job;
  job.seq = next_seq_++;
  job.field = std::move(snapshot);
  job.value_range = value_range;
  results_.resize(next_seq_);
  queue_.push_back(std::move(job));
  lock.unlock();
  job_available_.notify_one();
}

std::vector<SnapshotResult> InlinePipeline::finish() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (finished_) throw format_error("pipeline: finish after finish");
    finished_ = true;
    closing_ = true;
  }
  job_available_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (first_error_) std::rethrow_exception(first_error_);
  return std::move(results_);
}

void InlinePipeline::worker_loop() {
  // One engine per worker: with the device backend that is one simulated
  // device per worker, as a multi-GPU node would have; with the host
  // backends, one scratch pool (and thread pool) per worker.
  engine::Engine eng({.params = config_.params,
                      .backend = config_.backend,
                      .threads = config_.threads});
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_available_.wait(lock,
                          [&] { return !queue_.empty() || closing_; });
      if (queue_.empty()) return;  // closing and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    space_available_.notify_one();

    try {
      auto compressed = eng.compress(job.field.values, job.value_range);

      SnapshotResult result;
      result.name = job.field.name;
      result.raw_bytes = job.field.size_bytes();
      result.comp_trace = compressed.trace;
      result.stream = std::move(compressed.bytes);

      const std::lock_guard<std::mutex> lock(mutex_);
      results_[job.seq] = std::move(result);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      closing_ = true;
      job_available_.notify_all();
      space_available_.notify_all();
      return;
    }
  }
}

}  // namespace szp::pipeline
