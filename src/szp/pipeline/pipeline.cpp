#include "szp/pipeline/pipeline.hpp"

#include <algorithm>

#include "szp/gpusim/stream.hpp"
#include "szp/obs/log.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/obs/trace_id.hpp"

namespace szp::pipeline {

InlinePipeline::InlinePipeline(Config config) : config_(config) {
  config_.params.validate();
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InlinePipeline::~InlinePipeline() {
  {
    const LockGuard lock(mutex_);
    closing_ = true;
  }
  job_available_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  const LockGuard lock(mutex_);
  if (!queue_.empty()) {  // error path: settle the gauge for abandoned jobs
    obs::telemetry::builtins().queue_depth.fetch_sub(
        static_cast<std::int64_t>(queue_.size()), std::memory_order_relaxed);
    queue_.clear();
  }
}

void InlinePipeline::submit(data::Field snapshot,
                            std::optional<double> value_range) {
  UniqueLock lock(mutex_);
  if (finished_) throw format_error("pipeline: submit after finish");
  while (queue_.size() >= config_.max_queue && !closing_) {
    space_available_.wait(lock);
  }
  if (closing_) throw format_error("pipeline: closed");
  Job job;
  job.seq = next_seq_++;
  job.trace_id = obs::ensure_trace_id();
  job.field = std::move(snapshot);
  job.value_range = value_range;
  results_.resize(next_seq_);
  queue_.push_back(std::move(job));
  obs::telemetry::builtins().queue_depth.fetch_add(1,
                                                   std::memory_order_relaxed);
  lock.unlock();
  job_available_.notify_one();
}

std::vector<SnapshotResult> InlinePipeline::finish() {
  {
    const LockGuard lock(mutex_);
    if (finished_) throw format_error("pipeline: finish after finish");
    finished_ = true;
    closing_ = true;
  }
  job_available_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  const LockGuard lock(mutex_);
  // On the error path workers exit with jobs still queued; settle the
  // queue-depth gauge for the abandoned ones.
  if (!queue_.empty()) {
    obs::telemetry::builtins().queue_depth.fetch_sub(
        static_cast<std::int64_t>(queue_.size()), std::memory_order_relaxed);
    queue_.clear();
  }
  if (first_error_) std::rethrow_exception(first_error_);
  return std::move(results_);
}

void InlinePipeline::worker_loop() {
  obs::fr::set_thread_name("pipeline-worker");
  // One engine per worker: with the device backend that is one simulated
  // device per worker, as a multi-GPU node would have; with the host
  // backends, one scratch pool (and thread pool) per worker.
  engine::Engine eng({.params = config_.params,
                      .backend = config_.backend,
                      .threads = config_.threads,
                      .streams = std::max(1u, config_.device_streams)});

  // Double-buffer state (device backend only): at most one snapshot in
  // flight per stream of the worker's device. Submitting snapshot k+1's
  // H2D while k's kernel runs is the transfer/compute overlap the stream
  // runtime exists for. `inflight` MUST be quiescent (streams drained)
  // before it goes out of scope — pending ops reference its storage.
  engine::DeviceBackend* devb = eng.device_backend();
  const unsigned lanes =
      devb != nullptr && config_.device_streams >= 2
          ? devb->streams_per_device()
          : 0;  // 0 = synchronous per-job path
  struct Pending {
    size_t seq = 0;
    data::Field field;  // ops read .values until the lane drains
    engine::CompressedStream cs;
  };
  std::vector<std::optional<Pending>> inflight(lanes);
  unsigned next_lane = 0;

  const auto quiesce_lanes = [&] {  // best-effort drain before unwinding
    for (unsigned l = 0; l < lanes; ++l) {
      try {
        devb->stream(0, l).synchronize();
      } catch (...) {  // already unwinding on a prior error
      }
    }
  };
  const auto fail = [&](std::exception_ptr err) {
    quiesce_lanes();
    const LockGuard lock(mutex_);
    if (!first_error_) first_error_ = err;
    closing_ = true;
    job_available_.notify_all();
    space_available_.notify_all();
  };
  // Drain lane l and publish its pending result; throws the lane's error.
  const auto commit = [&](unsigned l) {
    devb->stream(0, l).synchronize();
    Pending& p = *inflight[l];
    SnapshotResult result;
    result.name = p.field.name;
    result.raw_bytes = p.field.size_bytes();
    result.comp_trace = p.cs.trace;
    result.stream = std::move(p.cs.bytes);
    {
      const LockGuard lock(mutex_);
      results_[p.seq] = std::move(result);
    }
    inflight[l].reset();
  };

  for (;;) {
    Job job;
    {
      UniqueLock lock(mutex_);
      while (queue_.empty() && !closing_) job_available_.wait(lock);
      if (queue_.empty()) break;  // closing and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::telemetry::builtins().queue_depth.fetch_sub(
        1, std::memory_order_relaxed);
    space_available_.notify_one();

    // Run the job under its submission-time trace ID: the engine call
    // below adopts it, so stream ops and log records stay attributable
    // to this snapshot.
    const obs::TraceIdScope trace(job.trace_id);
    const obs::fr::Span rec("pipeline.job");
    try {
      if (lanes > 0) {
        const unsigned lane = next_lane;
        next_lane = (next_lane + 1) % lanes;
        if (inflight[lane].has_value()) commit(lane);
        const double eb = eng.eb_abs_for(job.field.values, job.value_range);
        inflight[lane].emplace(
            Pending{job.seq, std::move(job.field), engine::CompressedStream{}});
        devb->submit_compress(0, lane, inflight[lane]->field.values,
                              config_.params, eb, &inflight[lane]->cs);
        continue;
      }
      auto compressed = eng.compress(job.field.values, job.value_range);

      SnapshotResult result;
      result.name = job.field.name;
      result.raw_bytes = job.field.size_bytes();
      result.comp_trace = compressed.trace;
      result.stream = std::move(compressed.bytes);

      const LockGuard lock(mutex_);
      results_[job.seq] = std::move(result);
    } catch (...) {
      fail(std::current_exception());
      return;
    }
  }
  // Closing: flush the in-flight snapshots in lane order.
  for (unsigned l = 0; l < lanes; ++l) {
    const unsigned lane = (next_lane + l) % lanes;
    if (!inflight[lane].has_value()) continue;
    try {
      commit(lane);
    } catch (...) {
      fail(std::current_exception());
      return;
    }
  }
}

}  // namespace szp::pipeline
