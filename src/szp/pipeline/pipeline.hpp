// Inline-compression pipeline (extension; the paper's future-work item of
// integrating cuSZp into running simulations).
//
// A simulation thread submits snapshots; a pool of worker threads — each
// owning its own simulated device — compresses them concurrently, so
// output compression overlaps the next timestep's compute. Results come
// back in submission order regardless of completion order.
#pragma once

#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "szp/core/format.hpp"
#include "szp/data/field.hpp"
#include "szp/engine/engine.hpp"
#include "szp/gpusim/trace.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::pipeline {

struct Config {
  unsigned workers = 2;        // engines compressing concurrently
  size_t max_queue = 4;        // submit() blocks beyond this backlog
  core::Params params;         // codec configuration for every snapshot
  /// Codec backend each worker runs (each worker owns its own engine, so
  /// kDevice means one simulated device per worker, as before).
  engine::BackendKind backend = engine::BackendKind::kDevice;
  unsigned threads = 0;        // parallel-host slots per worker (0 = auto)
  /// Async streams per worker device (device backend only). With >= 2 the
  /// worker double-buffers: snapshot k+1's H2D is submitted while
  /// snapshot k's kernel is still in flight, keeping at most one snapshot
  /// pending per stream. 1 restores the fully synchronous worker.
  unsigned device_streams = 2;
};

struct SnapshotResult {
  std::string name;
  size_t raw_bytes = 0;
  std::vector<byte_t> stream;           // the compressed snapshot
  gpusim::TraceSnapshot comp_trace;     // for modeled-throughput reporting

  [[nodiscard]] double compression_ratio() const {
    return stream.empty() ? 0
                          : static_cast<double>(raw_bytes) /
                                static_cast<double>(stream.size());
  }
};

class InlinePipeline {
 public:
  explicit InlinePipeline(Config config);
  ~InlinePipeline();

  InlinePipeline(const InlinePipeline&) = delete;
  InlinePipeline& operator=(const InlinePipeline&) = delete;

  /// Enqueue a snapshot for compression; blocks while the backlog is at
  /// max_queue (back-pressure on the simulation). A simulation that
  /// already knows the snapshot's value range passes it so REL resolution
  /// does not rescan the field; omit it to derive the range on the worker.
  void submit(data::Field snapshot,
              std::optional<double> value_range = std::nullopt);

  /// Drain the queue, stop the workers and return every result in
  /// submission order. The pipeline cannot be reused afterwards: a second
  /// finish() (or any later submit()) throws.
  [[nodiscard]] std::vector<SnapshotResult> finish();

  [[nodiscard]] size_t submitted() const {
    const LockGuard lock(mutex_);
    return next_seq_;
  }

 private:
  struct Job {
    size_t seq = 0;
    /// Request trace ID: adopted from the submitting thread when one is
    /// ambient, else minted at submit(). Re-established on the worker
    /// while the job runs so engine spans, stream ops and log records
    /// all tie back to this snapshot's submission.
    std::uint64_t trace_id = 0;
    data::Field field;
    std::optional<double> value_range;
  };

  void worker_loop();

  Config config_;
  mutable Mutex mutex_;
  CondVar job_available_;
  CondVar space_available_;
  std::deque<Job> queue_ SZP_GUARDED_BY(mutex_);
  std::vector<SnapshotResult> results_ SZP_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_ SZP_GUARDED_BY(mutex_);
  size_t next_seq_ SZP_GUARDED_BY(mutex_) = 0;
  bool closing_ SZP_GUARDED_BY(mutex_) = false;
  bool finished_ SZP_GUARDED_BY(mutex_) = false;
};

}  // namespace szp::pipeline
