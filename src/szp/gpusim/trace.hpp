// Instrumentation counters for the simulated device runtime.
//
// Kernels account their global-memory traffic and arithmetic per pipeline
// stage; memcpys and host-side stages are accounted by the runtime. The
// perfmodel module turns snapshots of these counters into modeled times.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace szp::gpusim {

/// Pipeline stages used for attribution. The first four are cuSZp's own
/// stages (paper Fig. 21); the rest cover the baseline codecs.
enum class Stage : unsigned {
  kQuantPredict = 0,  // QP: pre-quantization + Lorenzo
  kFixedLenEncode,    // FE: sign map + fixed-length selection
  kGlobalSync,        // GS: prefix-sum synchronization
  kBitShuffle,        // BB: bit-shuffle + payload store
  kTransform,         // vzfp decorrelating transform
  kHistogram,         // vsz histogram
  kHuffman,           // vsz Huffman encode/decode
  kBlockEncode,       // xsz constant/nonconstant block coding
  kGather,            // scatter/gather of compressed payloads
  kOther,
  kCount_,
};

[[nodiscard]] std::string_view stage_name(Stage s);

inline constexpr unsigned kNumStages = static_cast<unsigned>(Stage::kCount_);

/// Plain-value copy of the counters; supports diffing. operator- is
/// saturating (wrap-free): a counter that is smaller in the minuend than
/// in the subtrahend yields 0 rather than wrapping to ~2^64, so a diff
/// against a later snapshot never explodes downstream byte/op totals.
struct TraceSnapshot {
  struct StageCounts {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t ops = 0;
  };
  std::array<StageCounts, kNumStages> stages{};
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t d2d_bytes = 0;
  std::uint64_t host_bytes = 0;  // bytes processed by host-CPU stages
  std::uint64_t host_stages = 0;

  [[nodiscard]] TraceSnapshot operator-(const TraceSnapshot& rhs) const;

  [[nodiscard]] std::uint64_t total_device_read_bytes() const;
  [[nodiscard]] std::uint64_t total_device_write_bytes() const;
  [[nodiscard]] std::uint64_t total_ops() const;
  [[nodiscard]] std::uint64_t total_memcpy_bytes() const {
    return h2d_bytes + d2h_bytes + d2d_bytes;
  }
};

/// Thread-safe counters; owned by a Device.
class Trace {
 public:
  void add_read(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_write(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].write_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_ops(Stage s, std::uint64_t n) {
    stages_[idx(s)].ops.fetch_add(n, std::memory_order_relaxed);
  }
  void add_kernel_launch() {
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_h2d(std::uint64_t bytes) {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_d2h(std::uint64_t bytes) {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_d2d(std::uint64_t bytes) {
    d2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_host_stage(std::uint64_t bytes) {
    host_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    host_stages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copy all counters. NOT atomic as a whole: each counter is loaded
  /// independently, so a kernel running concurrently can leave the copy
  /// internally inconsistent (stage A pre-update, stage B post-update).
  /// Callers must quiesce the device first — prefer Device::snapshot(),
  /// which asserts that no launch is in flight.
  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Zero all counters. Same contract as snapshot(): racing a live
  /// kernel mixes pre- and post-reset values (the launch would add its
  /// remaining traffic on top of the zeroed counters, attributing part
  /// of the old run to the new epoch). Prefer Device::reset_trace().
  void reset();

 private:
  static constexpr unsigned idx(Stage s) { return static_cast<unsigned>(s); }

  struct AtomicStage {
    std::atomic<std::uint64_t> read_bytes{0};
    std::atomic<std::uint64_t> write_bytes{0};
    std::atomic<std::uint64_t> ops{0};
  };
  std::array<AtomicStage, kNumStages> stages_{};
  std::atomic<std::uint64_t> kernel_launches_{0};
  std::atomic<std::uint64_t> h2d_bytes_{0};
  std::atomic<std::uint64_t> d2h_bytes_{0};
  std::atomic<std::uint64_t> d2d_bytes_{0};
  std::atomic<std::uint64_t> host_bytes_{0};
  std::atomic<std::uint64_t> host_stages_{0};
};

// --- per-operation trace attribution -----------------------------------

/// Thread-local per-operation trace sink. The device-wide Trace can only
/// be snapshotted while the device is quiescent, which made before/after
/// diffs impossible once streams run operations concurrently. An
/// OpTraceScope on the submitting thread collects a private copy of every
/// counter the operation adds (kernel block workers receive the scope
/// pointer through BlockCtx, memcpys/host stages consult the thread-local
/// head directly), so each stream op carries its own consistent
/// TraceSnapshot without stopping the world.
///
/// Scopes nest (an engine-level scope around a codec call that itself
/// opens per-op scopes): every accounting site walks the parent chain and
/// adds to each scope, so outer scopes see the sum of their inner ops.
class OpTraceScope {
 public:
  OpTraceScope();
  ~OpTraceScope();
  OpTraceScope(const OpTraceScope&) = delete;
  OpTraceScope& operator=(const OpTraceScope&) = delete;

  [[nodiscard]] TraceSnapshot snapshot() const { return local_.snapshot(); }
  [[nodiscard]] Trace& trace() { return local_; }
  [[nodiscard]] OpTraceScope* parent() const { return parent_; }

  /// Innermost scope on this thread (nullptr when none is open).
  [[nodiscard]] static OpTraceScope* current();

 private:
  Trace local_;
  OpTraceScope* parent_ = nullptr;
};

/// Apply `fn(Trace&)` to every scope in the chain headed at `head`.
/// Kernel launches capture the head on the launching thread and pass it
/// here from worker threads; host-side sites use the TLS overload below.
template <typename Fn>
inline void for_each_op_trace(OpTraceScope* head, Fn&& fn) {
  for (OpTraceScope* s = head; s != nullptr; s = s->parent()) fn(s->trace());
}

template <typename Fn>
inline void for_each_op_trace(Fn&& fn) {
  for_each_op_trace(OpTraceScope::current(), std::forward<Fn>(fn));
}

// --- device timeline (stream op records) -------------------------------

/// Kind of one stream operation, for the device timeline and the
/// perfmodel overlap schedule (which engine an op occupies).
enum class OpKind : std::uint8_t {
  kKernel,
  kMemcpyH2D,
  kMemcpyD2H,
  kMemcpyD2D,
  kHostTask,
  kEventRecord,
  kEventWait,
};

[[nodiscard]] std::string_view op_kind_name(OpKind k);

/// One executed stream operation, appended to the owning Device's
/// timeline when timeline recording is enabled. `trace` is the op's own
/// counter diff (collected through an OpTraceScope), which is what the
/// overlap model costs; `t_begin/end_ns` are measured wall timestamps for
/// reporting only. `seq` is the submission index within the stream, so a
/// per-stream sort reconstructs FIFO order from the interleaved log.
struct OpRecord {
  std::uint32_t stream_id = 0;
  std::string stream;
  std::string name;
  OpKind kind = OpKind::kHostTask;
  std::uint64_t seq = 0;
  std::uint64_t event_id = 0;  // record/wait ops only
  std::uint64_t t_begin_ns = 0;
  std::uint64_t t_end_ns = 0;
  TraceSnapshot trace;
};

}  // namespace szp::gpusim
