// Instrumentation counters for the simulated device runtime.
//
// Kernels account their global-memory traffic and arithmetic per pipeline
// stage; memcpys and host-side stages are accounted by the runtime. The
// perfmodel module turns snapshots of these counters into modeled times.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace szp::gpusim {

/// Pipeline stages used for attribution. The first four are cuSZp's own
/// stages (paper Fig. 21); the rest cover the baseline codecs.
enum class Stage : unsigned {
  kQuantPredict = 0,  // QP: pre-quantization + Lorenzo
  kFixedLenEncode,    // FE: sign map + fixed-length selection
  kGlobalSync,        // GS: prefix-sum synchronization
  kBitShuffle,        // BB: bit-shuffle + payload store
  kTransform,         // vzfp decorrelating transform
  kHistogram,         // vsz histogram
  kHuffman,           // vsz Huffman encode/decode
  kBlockEncode,       // xsz constant/nonconstant block coding
  kGather,            // scatter/gather of compressed payloads
  kOther,
  kCount_,
};

[[nodiscard]] std::string_view stage_name(Stage s);

inline constexpr unsigned kNumStages = static_cast<unsigned>(Stage::kCount_);

/// Plain-value copy of the counters; supports diffing. operator- is
/// saturating (wrap-free): a counter that is smaller in the minuend than
/// in the subtrahend yields 0 rather than wrapping to ~2^64, so a diff
/// against a later snapshot never explodes downstream byte/op totals.
struct TraceSnapshot {
  struct StageCounts {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t ops = 0;
  };
  std::array<StageCounts, kNumStages> stages{};
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t d2d_bytes = 0;
  std::uint64_t host_bytes = 0;  // bytes processed by host-CPU stages
  std::uint64_t host_stages = 0;

  [[nodiscard]] TraceSnapshot operator-(const TraceSnapshot& rhs) const;

  [[nodiscard]] std::uint64_t total_device_read_bytes() const;
  [[nodiscard]] std::uint64_t total_device_write_bytes() const;
  [[nodiscard]] std::uint64_t total_ops() const;
  [[nodiscard]] std::uint64_t total_memcpy_bytes() const {
    return h2d_bytes + d2h_bytes + d2d_bytes;
  }
};

/// Thread-safe counters; owned by a Device.
class Trace {
 public:
  void add_read(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_write(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].write_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_ops(Stage s, std::uint64_t n) {
    stages_[idx(s)].ops.fetch_add(n, std::memory_order_relaxed);
  }
  void add_kernel_launch() {
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_h2d(std::uint64_t bytes) {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_d2h(std::uint64_t bytes) {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_d2d(std::uint64_t bytes) {
    d2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_host_stage(std::uint64_t bytes) {
    host_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    host_stages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copy all counters. NOT atomic as a whole: each counter is loaded
  /// independently, so a kernel running concurrently can leave the copy
  /// internally inconsistent (stage A pre-update, stage B post-update).
  /// Callers must quiesce the device first — prefer Device::snapshot(),
  /// which asserts that no launch is in flight.
  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Zero all counters. Same contract as snapshot(): racing a live
  /// kernel mixes pre- and post-reset values (the launch would add its
  /// remaining traffic on top of the zeroed counters, attributing part
  /// of the old run to the new epoch). Prefer Device::reset_trace().
  void reset();

 private:
  static constexpr unsigned idx(Stage s) { return static_cast<unsigned>(s); }

  struct AtomicStage {
    std::atomic<std::uint64_t> read_bytes{0};
    std::atomic<std::uint64_t> write_bytes{0};
    std::atomic<std::uint64_t> ops{0};
  };
  std::array<AtomicStage, kNumStages> stages_{};
  std::atomic<std::uint64_t> kernel_launches_{0};
  std::atomic<std::uint64_t> h2d_bytes_{0};
  std::atomic<std::uint64_t> d2h_bytes_{0};
  std::atomic<std::uint64_t> d2d_bytes_{0};
  std::atomic<std::uint64_t> host_bytes_{0};
  std::atomic<std::uint64_t> host_stages_{0};
};

}  // namespace szp::gpusim
