// Checked device-memory views: how kernels access DeviceBuffers under
// the sanitizer and the profiler.
//
// A view pairs the buffer's raw payload pointer with its shadow (when
// the owning Device runs checked), the buffer's traffic record (when the
// Device runs profiled) and the launch/actor the accesses belong to. The
// single-element load/store check bounds, init state and races per cell;
// load_span/store_span declare a whole range in one shadow transaction
// and hand back a raw std::span, so inner codec helpers (encode_block,
// Header::serialize, ...) keep operating on plain spans — range
// granularity is the checking model.
//
// The profiler books each accessor call as one transaction of the
// *requested* byte count (before any sanitizer clamping), so a checked
// and an unchecked run of the same kernel report identical traffic —
// the tools compose without double counting (see test_profile).
//
// Disabled fast path: shadow_ and prof_ are null and every accessor is
// a pointer compare away from the raw access.
#pragma once

#include <memory>
#include <span>

#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/launch.hpp"

namespace szp::gpusim {

template <typename T>
class DeviceConstView {
 public:
  DeviceConstView(const T* data, size_t size,
                  std::shared_ptr<sanitize::BufferShadow> shadow,
                  sanitize::LaunchCheck* lc, std::uint32_t actor,
                  std::shared_ptr<profile::BufferProf> prof = nullptr)
      : data_(data),
        size_(size),
        keep_(std::move(shadow)),
        shadow_(keep_.get()),
        keep_prof_(std::move(prof)),
        prof_(keep_prof_.get()),
        lc_(lc),
        actor_(actor) {}

  [[nodiscard]] size_t size() const { return size_; }

  /// Checked element load; on a disallowed access (OOB / use-after-free)
  /// the finding is recorded and a value-initialized T returned.
  [[nodiscard]] T load(size_t i) const {
    if (prof_ != nullptr) prof_->on_read(sizeof(T));
    if (shadow_ == nullptr) return data_[i];
    return shadow_->pre_load(i, lc_, actor_) ? data_[i] : T{};
  }

  /// Declare a ranged read and return the raw (clamped) span.
  [[nodiscard]] std::span<const T> load_span(size_t off, size_t count) const {
    if (prof_ != nullptr) prof_->on_read(count * sizeof(T));
    if (shadow_ == nullptr) return {data_ + off, count};
    const size_t ok = shadow_->pre_load_range(off, count, lc_, actor_);
    return {data_ + (off < size_ ? off : size_), ok};
  }

 private:
  const T* data_;
  size_t size_;
  std::shared_ptr<sanitize::BufferShadow> keep_;  // UAF-safe
  sanitize::BufferShadow* shadow_;
  std::shared_ptr<profile::BufferProf> keep_prof_;
  profile::BufferProf* prof_;
  sanitize::LaunchCheck* lc_;
  std::uint32_t actor_;
};

template <typename T>
class DeviceView {
 public:
  DeviceView(T* data, size_t size,
             std::shared_ptr<sanitize::BufferShadow> shadow,
             sanitize::LaunchCheck* lc, std::uint32_t actor,
             std::shared_ptr<profile::BufferProf> prof = nullptr)
      : data_(data),
        size_(size),
        keep_(std::move(shadow)),
        shadow_(keep_.get()),
        keep_prof_(std::move(prof)),
        prof_(keep_prof_.get()),
        lc_(lc),
        actor_(actor) {}

  [[nodiscard]] size_t size() const { return size_; }

  [[nodiscard]] T load(size_t i) const {
    if (prof_ != nullptr) prof_->on_read(sizeof(T));
    if (shadow_ == nullptr) return data_[i];
    return shadow_->pre_load(i, lc_, actor_) ? data_[i] : T{};
  }

  /// Checked element store; disallowed stores are dropped (recorded as a
  /// finding, never touching memory).
  void store(size_t i, T v) const {
    if (prof_ != nullptr) prof_->on_write(sizeof(T));
    if (shadow_ == nullptr) {
      data_[i] = v;
      return;
    }
    if (shadow_->pre_store(i, lc_, actor_)) data_[i] = v;
  }

  [[nodiscard]] std::span<const T> load_span(size_t off, size_t count) const {
    if (prof_ != nullptr) prof_->on_read(count * sizeof(T));
    if (shadow_ == nullptr) return {data_ + off, count};
    const size_t ok = shadow_->pre_load_range(off, count, lc_, actor_);
    return {data_ + (off < size_ ? off : size_), ok};
  }

  /// Declare a ranged write (marks the cells initialized) and return the
  /// raw (clamped) span for the caller to fill.
  [[nodiscard]] std::span<T> store_span(size_t off, size_t count) const {
    if (prof_ != nullptr) prof_->on_write(count * sizeof(T));
    if (shadow_ == nullptr) return {data_ + off, count};
    const size_t ok = shadow_->pre_store_range(off, count, lc_, actor_);
    return {data_ + (off < size_ ? off : size_), ok};
  }

 private:
  T* data_;
  size_t size_;
  std::shared_ptr<sanitize::BufferShadow> keep_;
  sanitize::BufferShadow* shadow_;
  std::shared_ptr<profile::BufferProf> keep_prof_;
  profile::BufferProf* prof_;
  sanitize::LaunchCheck* lc_;
  std::uint32_t actor_;
};

/// View of a buffer from inside a kernel block.
template <typename T>
[[nodiscard]] DeviceView<T> device_view(DeviceBuffer<T>& buf,
                                        const BlockCtx& ctx) {
  return DeviceView<T>(buf.raw_data(), buf.size(), buf.shadow(), ctx.devcheck,
                       ctx.actor(), buf.profile());
}

template <typename T>
[[nodiscard]] DeviceConstView<T> device_view(const DeviceBuffer<T>& buf,
                                             const BlockCtx& ctx) {
  return DeviceConstView<T>(buf.raw_data(), buf.size(), buf.shadow(),
                            ctx.devcheck, ctx.actor(), buf.profile());
}

/// View of a buffer from host code (between launches): host-scope
/// accesses are checked against in-flight kernels and init state.
template <typename T>
[[nodiscard]] DeviceView<T> host_view(DeviceBuffer<T>& buf) {
  return DeviceView<T>(buf.raw_data(), buf.size(), buf.shadow(), nullptr,
                       sanitize::kHostActor, buf.profile());
}

template <typename T>
[[nodiscard]] DeviceConstView<T> host_view(const DeviceBuffer<T>& buf) {
  return DeviceConstView<T>(buf.raw_data(), buf.size(), buf.shadow(), nullptr,
                            sanitize::kHostActor, buf.profile());
}

}  // namespace szp::gpusim
