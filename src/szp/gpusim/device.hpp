// Simulated GPU device: owns the trace counters, an allocation ledger and
// the worker pool used to execute kernel thread-blocks.
//
// This is the substrate substitution for CUDA described in DESIGN.md §2:
// codecs are written as kernels against this runtime so that structural
// properties (kernel counts, host round-trips, scan forward-progress) are
// exercised by real code.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "szp/gpusim/profile/profile.hpp"
#include "szp/gpusim/sanitize/report.hpp"
#include "szp/gpusim/trace.hpp"
#include "szp/util/common.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim {

namespace sanitize {
class Checker;
}  // namespace sanitize

class Stream;

/// Record of one kernel launch (name + grid size), for tests and reports.
struct KernelRecord {
  std::string name;
  size_t grid_blocks = 0;
};

class Device {
 public:
  /// `workers` = number of host threads used to execute thread blocks.
  /// 0 picks a default based on hardware concurrency (at least 2, so the
  /// chained-scan lookback is exercised concurrently even on 1-core hosts).
  /// Sanitizer tools are picked up from SZP_DEVCHECK (sanitize::
  /// tools_from_env); throws format_error on an unknown tool name. The
  /// profiler is picked up from SZP_PROFILE (profile::options_from_env).
  explicit Device(unsigned workers = 0);

  /// Explicit sanitizer activation (tests, --devcheck tooling); ignores
  /// the environment (profiler stays off).
  Device(unsigned workers, sanitize::Tools devcheck);

  /// Explicit sanitizer + profiler activation; ignores the environment.
  Device(unsigned workers, sanitize::Tools devcheck, profile::Options prof);

  /// When env activation requested abort_on_teardown and findings exist,
  /// runs the leak sweep, prints the report to stderr and aborts — the
  /// compute-sanitizer --error-exitcode analogue for unattended runs.
  /// User Streams must be destroyed before their Device.
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Sanitizer engine; nullptr when no tool is enabled (the zero-overhead
  /// fast path: instrumentation sites check this one pointer).
  [[nodiscard]] sanitize::Checker* checker() const { return checker_.get(); }

  /// Snapshot of sanitizer findings (empty when disabled).
  [[nodiscard]] sanitize::Report sanitize_report() const;
  /// Leak sweep now (normally run at teardown). No-op when disabled.
  void sanitize_finalize();
  /// Drop collected findings (tools print-then-clear before teardown).
  void clear_sanitize_findings();

  /// Kernel profiler; nullptr when disabled (instrumentation sites check
  /// the per-launch/per-buffer pointers derived from this one).
  [[nodiscard]] profile::Profiler* profiler() const { return profiler_.get(); }

  /// Value-typed copy of everything the profiler collected (empty
  /// SessionProfile when disabled).
  [[nodiscard]] profile::SessionProfile profile_snapshot() const;
  /// Drop collected profile data; throws std::logic_error while a kernel
  /// launch is in flight (same torn-state hazard as reset_trace).
  void reset_profile();

  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  /// Consistent counter snapshot. Throws std::logic_error if a kernel
  /// launch is in flight OR any stream still has queued/executing async
  /// operations: work still executing would keep mutating the counters,
  /// so the "snapshot" could mix values from different points in time
  /// (the Trace::snapshot()/reset() torn-read hazard). Call
  /// synchronize() first when streams are in use.
  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Zero the trace counters; same quiescence requirement as snapshot().
  void reset_trace();

  // --- async runtime (streams) ------------------------------------------

  /// The default stream: executes submitted operations inline on the
  /// caller's thread (a per-thread-default-stream analogue), which is
  /// exactly the legacy synchronous behavior — launch()/copy_* are
  /// wrappers over it. Always present.
  [[nodiscard]] Stream& default_stream();

  /// Drain every registered stream (cudaDeviceSynchronize analogue).
  /// Rethrows the first stored stream error after all streams drained.
  /// Streams must not be destroyed concurrently with this call.
  void synchronize();

  /// Async operations submitted to stream queues and not yet retired.
  /// Part of the snapshot()/reset quiescence test.
  [[nodiscard]] unsigned async_ops_pending() const {
    return async_pending_.load(std::memory_order_acquire);
  }

  /// Stream bookkeeping (called by Stream).
  void register_stream(Stream* s);
  void unregister_stream(Stream* s);
  void add_async_pending() {
    async_pending_.fetch_add(1, std::memory_order_acq_rel);
  }
  void sub_async_pending() {
    async_pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] std::uint32_t next_stream_id() {
    return next_stream_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- timeline (per-op records for overlap accounting) -----------------

  /// Opt-in recording of every stream op (kind, stream lane, wall
  /// timestamps, per-op trace). Off by default: recording allocates per
  /// op. The perfmodel overlap report consumes the result.
  void set_timeline_enabled(bool on) {
    timeline_enabled_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool timeline_enabled() const {
    return timeline_enabled_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::vector<OpRecord> timeline() const;
  void clear_timeline();
  void append_op_record(OpRecord rec);

  /// Number of launches currently executing blocks on this device.
  /// Nonzero only when observed from inside a kernel body (or another
  /// thread racing a launch).
  [[nodiscard]] unsigned launches_in_flight() const {
    return launches_in_flight_.load(std::memory_order_relaxed);
  }

  /// Launch bookkeeping (paired, called by detail::run_blocks).
  void begin_launch() {
    launches_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_launch() {
    launches_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Allocation ledger (bytes currently registered by DeviceBuffers).
  void register_alloc(size_t bytes) {
    alloc_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void register_free(size_t bytes) {
    alloc_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] size_t bytes_allocated() const {
    return alloc_bytes_.load(std::memory_order_relaxed);
  }

  /// Launch log.
  void log_launch(std::string name, size_t grid_blocks);
  [[nodiscard]] std::vector<KernelRecord> launch_log() const;
  void clear_launch_log();

  /// Fault-injection hook: invoked with the kernel name after each launch
  /// fully retires (all blocks done, no exception). Tests use it to corrupt
  /// device memory between pipeline stages. Empty by default.
  ///
  /// The hook is handed out as a shared_ptr copied under a mutex: with
  /// launches running on stream threads, set/clear from the host would
  /// otherwise race the unsynchronized read at the end of run_blocks (a
  /// hook could even be destroyed mid-invocation).
  using KernelHook = std::function<void(const std::string&)>;
  void set_post_kernel_hook(KernelHook hook);
  void clear_post_kernel_hook();
  [[nodiscard]] std::shared_ptr<const KernelHook> post_kernel_hook() const;

 private:
  unsigned workers_;
  Trace trace_;
  std::atomic<unsigned> launches_in_flight_{0};
  std::atomic<unsigned> async_pending_{0};
  std::atomic<size_t> alloc_bytes_{0};
  mutable Mutex log_mutex_;
  std::vector<KernelRecord> launch_log_ SZP_GUARDED_BY(log_mutex_);
  mutable Mutex hook_mutex_;
  std::shared_ptr<const KernelHook> post_kernel_hook_
      SZP_GUARDED_BY(hook_mutex_);
  std::unique_ptr<sanitize::Checker> checker_;
  std::unique_ptr<profile::Profiler> profiler_;

  // Async runtime state. The default stream is created eagerly (after the
  // checker, which it registers with) and runs inline; user streams
  // register here so synchronize() can drain them.
  mutable Mutex streams_mutex_;
  std::vector<Stream*> streams_ SZP_GUARDED_BY(streams_mutex_);
  std::atomic<std::uint32_t> next_stream_id_{1};  // 0 = default stream
  std::unique_ptr<Stream> default_stream_;

  std::atomic<bool> timeline_enabled_{false};
  mutable Mutex timeline_mutex_;
  std::vector<OpRecord> timeline_ SZP_GUARDED_BY(timeline_mutex_);
};

}  // namespace szp::gpusim
