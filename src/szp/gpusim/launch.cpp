#include "szp/gpusim/launch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace szp::gpusim::detail {

void run_blocks(Device& dev, const char* kernel_name, size_t grid_blocks,
                const std::function<void(const BlockCtx&)>& body) {
  dev.trace().add_kernel_launch();
  dev.log_launch(kernel_name, grid_blocks);
  if (grid_blocks == 0) return;

  const unsigned workers = static_cast<unsigned>(
      std::min<size_t>(dev.workers(), grid_blocks));

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker_fn = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= grid_blocks || failed.load(std::memory_order_relaxed)) return;
      BlockCtx ctx{i, grid_blocks, &dev.trace(), &failed};
      try {
        body(ctx);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers <= 1) {
    worker_fn();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_fn);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Fault-injection hook (tests): corrupt device memory between pipeline
  // stages once the kernel has fully retired.
  if (const Device::KernelHook& hook = dev.post_kernel_hook()) {
    hook(kernel_name);
  }
}

}  // namespace szp::gpusim::detail
