#include "szp/gpusim/launch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "szp/gpusim/stream.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim::detail {

namespace {
/// Keeps Device::launches_in_flight() accurate on every exit path; the
/// trace snapshot/reset guards depend on it.
struct LaunchScope {
  explicit LaunchScope(Device& d) : dev(d) { dev.begin_launch(); }
  ~LaunchScope() { dev.end_launch(); }
  Device& dev;
};
}  // namespace

void run_blocks(Device& dev, const char* kernel_name, size_t grid_blocks,
                const std::function<void(const BlockCtx&)>& body) {
  dev.trace().add_kernel_launch();
  // Per-op attribution: the chain head is captured here, on the launching
  // thread, and handed to block workers through BlockCtx.
  OpTraceScope* op_sink = OpTraceScope::current();
  for_each_op_trace(op_sink, [](Trace& t) { t.add_kernel_launch(); });
  dev.log_launch(kernel_name, grid_blocks);
  // Flight recorder: kernel_name is required to be a literal (launch
  // sites pass one), so storing the pointer is safe.
  obs::fr::record(obs::fr::Kind::kKernel, kernel_name, grid_blocks);
  // Kernel-level begin/end pair on the launching thread; per-block 'X'
  // spans land on the worker threads' lanes.
  const obs::BeginEndSpan kernel_span("kernel", kernel_name, "grid_blocks",
                                      grid_blocks);
  if (grid_blocks == 0) return;

  const unsigned workers = static_cast<unsigned>(
      std::min<size_t>(dev.workers(), grid_blocks));

  std::unique_ptr<sanitize::LaunchCheck> lc;
  if (sanitize::Checker* chk = dev.checker()) {
    lc = chk->begin_launch(kernel_name, grid_blocks, Stream::calling_slot());
  }
  std::shared_ptr<profile::LaunchProf> lp;
  if (profile::Profiler* prof = dev.profiler()) {
    lp = prof->begin_launch(kernel_name, grid_blocks,
                            std::string(Stream::current_name()));
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point launch_t0 = Clock::now();

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  Mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker_fn = [&](bool pooled) {
    if (pooled) obs::set_thread_name("gpusim-worker");
    const sanitize::KernelThreadScope kernel_thread;
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= grid_blocks || failed.load(std::memory_order_relaxed)) return;
      BlockCtx ctx{i,       grid_blocks, &dev.trace(), &failed,
                   lc.get(), lp.get(),   op_sink};
      obs::Span block_span("block", kernel_name, "block", i);
      const Clock::time_point block_t0 =
          lp != nullptr ? Clock::now() : Clock::time_point{};
      try {
        body(ctx);
      } catch (...) {
        {
          const LockGuard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (lp != nullptr) {
        lp->block_done(i, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  Clock::now() - block_t0)
                                  .count()));
      }
    }
  };

  {
    const LaunchScope scope(dev);
    if (workers <= 1) {
      worker_fn(false);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back(worker_fn, true);
      }
      for (auto& t : pool) t.join();
    }
  }
  // The launch retired (or aborted): bump the sanitizer epoch on every
  // exit path so host accesses after the launch are ordered.
  if (lc != nullptr) dev.checker()->end_launch(*lc);
  // Archive the launch profile even on the error path: partial counters
  // are still useful for diagnosing the failed launch.
  if (lp != nullptr) {
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             launch_t0)
            .count());
    dev.profiler()->end_launch(lp, wall_ns);
  }
  if (first_error) std::rethrow_exception(first_error);

  // Fault-injection hook (tests): corrupt device memory between pipeline
  // stages once the kernel has fully retired. Runs outside the launch
  // scope so hooks may snapshot the (now quiescent) trace. The shared_ptr
  // keeps the hook alive across the call even if the host clears it
  // concurrently (launches run on stream threads now).
  if (const auto hook = dev.post_kernel_hook()) {
    if (*hook) (*hook)(kernel_name);
  }
}

}  // namespace szp::gpusim::detail
