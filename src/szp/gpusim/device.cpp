#include "szp/gpusim/device.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

namespace szp::gpusim {

Device::Device(unsigned workers) : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max(2u, std::thread::hardware_concurrency());
  }
}

void Device::log_launch(std::string name, size_t grid_blocks) {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.push_back({std::move(name), grid_blocks});
}

std::vector<KernelRecord> Device::launch_log() const {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  return launch_log_;
}

void Device::clear_launch_log() {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.clear();
}

}  // namespace szp::gpusim
