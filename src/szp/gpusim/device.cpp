#include "szp/gpusim/device.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

namespace szp::gpusim {

Device::Device(unsigned workers) : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max(2u, std::thread::hardware_concurrency());
  }
}

TraceSnapshot Device::snapshot() const {
  if (launches_in_flight() != 0) {
    throw std::logic_error(
        "Device::snapshot: a kernel launch is in flight; counters would be "
        "torn");
  }
  return trace_.snapshot();
}

void Device::reset_trace() {
  if (launches_in_flight() != 0) {
    throw std::logic_error(
        "Device::reset_trace: a kernel launch is in flight; a concurrent "
        "kernel would mix pre- and post-reset counts");
  }
  trace_.reset();
}

void Device::log_launch(std::string name, size_t grid_blocks) {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.push_back({std::move(name), grid_blocks});
}

std::vector<KernelRecord> Device::launch_log() const {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  return launch_log_;
}

void Device::clear_launch_log() {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.clear();
}

}  // namespace szp::gpusim
