#include "szp/gpusim/device.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "szp/gpusim/sanitize/checker.hpp"

namespace szp::gpusim {

Device::Device(unsigned workers)
    : Device(workers, sanitize::tools_from_env(),
             profile::options_from_env()) {}

Device::Device(unsigned workers, sanitize::Tools devcheck)
    : Device(workers, devcheck, profile::Options::off()) {}

Device::Device(unsigned workers, sanitize::Tools devcheck,
               profile::Options prof)
    : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max(2u, std::thread::hardware_concurrency());
  }
  if (devcheck.any()) {
    checker_ =
        std::make_unique<sanitize::Checker>(devcheck, &launches_in_flight_);
  }
  if (prof.enabled) {
    profiler_ = std::make_unique<profile::Profiler>(std::move(prof), workers_);
  }
}

Device::~Device() {
  if (checker_ == nullptr || !checker_->abort_on_teardown()) return;
  checker_->finalize();
  if (checker_->finding_count() == 0) return;
  const std::string report = checker_->snapshot().to_string();
  std::fputs(report.c_str(), stderr);
  std::fputs("devcheck: aborting at Device teardown (SZP_DEVCHECK set)\n",
             stderr);
  std::abort();
}

sanitize::Report Device::sanitize_report() const {
  return checker_ != nullptr ? checker_->snapshot() : sanitize::Report{};
}

void Device::sanitize_finalize() {
  if (checker_ != nullptr) checker_->finalize();
}

void Device::clear_sanitize_findings() {
  if (checker_ != nullptr) checker_->clear_findings();
}

profile::SessionProfile Device::profile_snapshot() const {
  return profiler_ != nullptr ? profiler_->snapshot()
                              : profile::SessionProfile{};
}

void Device::reset_profile() {
  if (launches_in_flight() != 0) {
    throw std::logic_error(
        "Device::reset_profile: a kernel launch is in flight; a concurrent "
        "kernel would mix pre- and post-reset counters");
  }
  if (profiler_ != nullptr) profiler_->reset();
}

TraceSnapshot Device::snapshot() const {
  if (launches_in_flight() != 0) {
    throw std::logic_error(
        "Device::snapshot: a kernel launch is in flight; counters would be "
        "torn");
  }
  return trace_.snapshot();
}

void Device::reset_trace() {
  if (launches_in_flight() != 0) {
    throw std::logic_error(
        "Device::reset_trace: a kernel launch is in flight; a concurrent "
        "kernel would mix pre- and post-reset counts");
  }
  trace_.reset();
}

void Device::log_launch(std::string name, size_t grid_blocks) {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.push_back({std::move(name), grid_blocks});
}

std::vector<KernelRecord> Device::launch_log() const {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  return launch_log_;
}

void Device::clear_launch_log() {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  launch_log_.clear();
}

}  // namespace szp::gpusim
