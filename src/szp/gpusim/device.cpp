#include "szp/gpusim/device.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "szp/gpusim/sanitize/checker.hpp"
#include "szp/gpusim/stream.hpp"

namespace szp::gpusim {

Device::Device(unsigned workers)
    : Device(workers, sanitize::tools_from_env(),
             profile::options_from_env()) {}

Device::Device(unsigned workers, sanitize::Tools devcheck)
    : Device(workers, devcheck, profile::Options::off()) {}

Device::Device(unsigned workers, sanitize::Tools devcheck,
               profile::Options prof)
    : workers_(workers) {
  if (workers_ == 0) {
    workers_ = std::max(2u, std::thread::hardware_concurrency());
  }
  if (devcheck.any()) {
    checker_ =
        std::make_unique<sanitize::Checker>(devcheck, &launches_in_flight_);
  }
  if (prof.enabled) {
    profiler_ = std::make_unique<profile::Profiler>(std::move(prof), workers_);
  }
  default_stream_ =
      std::unique_ptr<Stream>(new Stream(*this, "default", Stream::Inline{}));
}

Device::~Device() {
  default_stream_.reset();
  if (checker_ == nullptr || !checker_->abort_on_teardown()) return;
  checker_->finalize();
  if (checker_->finding_count() == 0) return;
  const std::string report = checker_->snapshot().to_string();
  // Abort path during teardown: write straight to stderr, with no logger
  // machinery between the findings and the abort.
  // szp-lint: allow(raw-log) teardown abort path writes directly to stderr
  std::fputs(report.c_str(), stderr);
  // szp-lint: allow(raw-log) teardown abort path writes directly to stderr
  std::fputs("devcheck: aborting at Device teardown (SZP_DEVCHECK set)\n",
             stderr);
  std::abort();
}

Stream& Device::default_stream() { return *default_stream_; }

void Device::register_stream(Stream* s) {
  const LockGuard lock(streams_mutex_);
  streams_.push_back(s);
}

void Device::unregister_stream(Stream* s) {
  const LockGuard lock(streams_mutex_);
  streams_.erase(std::remove(streams_.begin(), streams_.end(), s),
                 streams_.end());
}

void Device::synchronize() {
  std::vector<Stream*> streams;
  {
    const LockGuard lock(streams_mutex_);
    streams = streams_;
  }
  std::exception_ptr first;
  for (Stream* s : streams) {
    try {
      s->synchronize();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  // A full device sync is a global barrier: everything submitted so far
  // happens-before everything after, so the racecheck origin map can be
  // pruned down to a floor epoch.
  if (checker_ != nullptr) checker_->hb_device_sync();
  if (first) std::rethrow_exception(first);
}

std::vector<OpRecord> Device::timeline() const {
  const LockGuard lock(timeline_mutex_);
  return timeline_;
}

void Device::clear_timeline() {
  const LockGuard lock(timeline_mutex_);
  timeline_.clear();
}

void Device::append_op_record(OpRecord rec) {
  const LockGuard lock(timeline_mutex_);
  timeline_.push_back(std::move(rec));
}

void Device::set_post_kernel_hook(KernelHook hook) {
  const LockGuard lock(hook_mutex_);
  post_kernel_hook_ = std::make_shared<const KernelHook>(std::move(hook));
}

void Device::clear_post_kernel_hook() {
  const LockGuard lock(hook_mutex_);
  post_kernel_hook_.reset();
}

std::shared_ptr<const Device::KernelHook> Device::post_kernel_hook() const {
  const LockGuard lock(hook_mutex_);
  return post_kernel_hook_;
}

sanitize::Report Device::sanitize_report() const {
  return checker_ != nullptr ? checker_->snapshot() : sanitize::Report{};
}

void Device::sanitize_finalize() {
  if (checker_ != nullptr) checker_->finalize();
}

void Device::clear_sanitize_findings() {
  if (checker_ != nullptr) checker_->clear_findings();
}

profile::SessionProfile Device::profile_snapshot() const {
  return profiler_ != nullptr ? profiler_->snapshot()
                              : profile::SessionProfile{};
}

void Device::reset_profile() {
  if (launches_in_flight() != 0 || async_ops_pending() != 0) {
    throw std::logic_error(
        "Device::reset_profile: a kernel launch or async stream op is in "
        "flight; a concurrent kernel would mix pre- and post-reset counters "
        "(synchronize() first)");
  }
  if (profiler_ != nullptr) profiler_->reset();
}

TraceSnapshot Device::snapshot() const {
  if (launches_in_flight() != 0 || async_ops_pending() != 0) {
    throw std::logic_error(
        "Device::snapshot: a kernel launch or async stream op is in flight; "
        "counters would be torn (synchronize() first)");
  }
  return trace_.snapshot();
}

void Device::reset_trace() {
  if (launches_in_flight() != 0 || async_ops_pending() != 0) {
    throw std::logic_error(
        "Device::reset_trace: a kernel launch or async stream op is in "
        "flight; a concurrent kernel would mix pre- and post-reset counts "
        "(synchronize() first)");
  }
  trace_.reset();
}

void Device::log_launch(std::string name, size_t grid_blocks) {
  const LockGuard lock(log_mutex_);
  launch_log_.push_back({std::move(name), grid_blocks});
}

std::vector<KernelRecord> Device::launch_log() const {
  const LockGuard lock(log_mutex_);
  return launch_log_;
}

void Device::clear_launch_log() {
  const LockGuard lock(log_mutex_);
  launch_log_.clear();
}

}  // namespace szp::gpusim
