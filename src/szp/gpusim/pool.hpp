// Pooled device buffers: reuse allocations across codec calls instead of
// paying a cudaMalloc/cudaFree pair per operation (the host-side overhead
// the paper's end-to-end numbers are measured without, and the reason the
// CUDA artifact allocates once up front). Thread-safe; leases are RAII.
#pragma once

#include <memory>
#include <vector>

#include "szp/gpusim/buffer.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim {

template <typename T>
class BufferPool {
  struct Entry {
    DeviceBuffer<T> buf;
    bool in_use = false;
  };

 public:
  explicit BufferPool(Device& dev) : dev_(&dev) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII lease of a pooled buffer with size() >= the requested count.
  /// Returning the lease (destruction) puts the buffer back in the pool.
  /// Entries are heap-stable, so a lease stays valid while other threads
  /// grow the pool.
  class Lease {
   public:
    Lease() = default;
    Lease(BufferPool* pool, Entry* entry) : pool_(pool), entry_(entry) {}
    Lease(Lease&& o) noexcept : pool_(o.pool_), entry_(o.entry_) {
      o.pool_ = nullptr;
      o.entry_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        entry_ = o.entry_;
        o.pool_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] DeviceBuffer<T>& buffer() { return entry_->buf; }
    [[nodiscard]] const DeviceBuffer<T>& buffer() const { return entry_->buf; }
    [[nodiscard]] DeviceBuffer<T>& operator*() { return buffer(); }
    [[nodiscard]] DeviceBuffer<T>* operator->() { return &buffer(); }

   private:
    void release() {
      if (pool_ != nullptr) pool_->put_back(entry_);
      pool_ = nullptr;
      entry_ = nullptr;
    }

    BufferPool* pool_ = nullptr;
    Entry* entry_ = nullptr;
  };

  /// Lease a buffer holding at least `n` elements. Reuses the smallest
  /// idle buffer that fits; grows (reallocates) an idle buffer if none
  /// fits; allocates a new slot only when every buffer is leased out.
  [[nodiscard]] Lease acquire(size_t n) {
    n = std::max<size_t>(1, n);
    const LockGuard lock(mutex_);
    // Always-on occupancy gauge (acquire never fails, so one bump up
    // front pairs with the one in put_back).
    obs::telemetry::builtins().pool_in_use.fetch_add(
        1, std::memory_order_relaxed);
    Entry* best = nullptr;
    Entry* any_idle = nullptr;
    for (const auto& e : entries_) {
      if (e->in_use) continue;
      any_idle = e.get();
      if (e->buf.size() >= n &&
          (best == nullptr || e->buf.size() < best->buf.size())) {
        best = e.get();
      }
    }
    if (best != nullptr) {
      best->in_use = true;
      ++reuses_;
      // The previous lease's contents are stale: reset the sanitizer's
      // init bitmap so reading them before writing is flagged.
      best->buf.note_pool_reuse();
      return Lease(this, best);
    }
    if (any_idle != nullptr) {
      // Idle but too small: grow in place (frees the old allocation).
      any_idle->buf = DeviceBuffer<T>(*dev_, n);
      any_idle->in_use = true;
      ++allocations_;
      return Lease(this, any_idle);
    }
    entries_.push_back(
        std::make_unique<Entry>(Entry{DeviceBuffer<T>(*dev_, n), true}));
    ++allocations_;
    return Lease(this, entries_.back().get());
  }

  /// Pool statistics, for tests and the bench report.
  [[nodiscard]] size_t allocations() const {
    const LockGuard lock(mutex_);
    return allocations_;
  }
  [[nodiscard]] size_t reuses() const {
    const LockGuard lock(mutex_);
    return reuses_;
  }
  [[nodiscard]] size_t size() const {
    const LockGuard lock(mutex_);
    return entries_.size();
  }

 private:
  void put_back(Entry* entry) {
    const LockGuard lock(mutex_);
    entry->in_use = false;
    obs::telemetry::builtins().pool_in_use.fetch_sub(
        1, std::memory_order_relaxed);
  }

  Device* dev_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ SZP_GUARDED_BY(mutex_);
  size_t allocations_ SZP_GUARDED_BY(mutex_) = 0;
  size_t reuses_ SZP_GUARDED_BY(mutex_) = 0;
};

}  // namespace szp::gpusim
