// Warp-level primitive emulation.
//
// Kernels in this repository are written at warp granularity: a value held
// "per lane" is a Lanes<T> (array of 32). The primitives mirror the CUDA
// intrinsics cuSZp uses (__shfl_up_sync, __ballot_sync, warp scans) so the
// kernel code keeps the same structure as the GPU original.
#pragma once

#include <array>
#include <cstdint>

namespace szp::gpusim::warp {

inline constexpr unsigned kWarpSize = 32;

template <typename T>
using Lanes = std::array<T, kWarpSize>;

/// Broadcast the value held by lane `src` to all lanes (__shfl_sync).
template <typename T>
[[nodiscard]] constexpr T shfl(const Lanes<T>& v, unsigned src_lane) {
  return v[src_lane % kWarpSize];
}

/// __shfl_up_sync: each lane receives the value `delta` lanes below it;
/// lanes below `delta` keep their own value (CUDA semantics).
template <typename T>
[[nodiscard]] constexpr Lanes<T> shfl_up(const Lanes<T>& v, unsigned delta) {
  Lanes<T> out{};
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    out[lane] = lane >= delta ? v[lane - delta] : v[lane];
  }
  return out;
}

/// __shfl_down_sync with the symmetric convention.
template <typename T>
[[nodiscard]] constexpr Lanes<T> shfl_down(const Lanes<T>& v, unsigned delta) {
  Lanes<T> out{};
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    out[lane] = lane + delta < kWarpSize ? v[lane + delta] : v[lane];
  }
  return out;
}

/// __ballot_sync: bit `i` set iff lane i's predicate is true.
[[nodiscard]] constexpr std::uint32_t ballot(const Lanes<bool>& pred) {
  std::uint32_t mask = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (pred[lane]) mask |= (std::uint32_t{1} << lane);
  }
  return mask;
}

/// Kogge-Stone inclusive scan built from shfl_up, exactly as a CUDA warp
/// scan would be written.
template <typename T>
[[nodiscard]] constexpr Lanes<T> inclusive_scan(Lanes<T> v) {
  for (unsigned delta = 1; delta < kWarpSize; delta <<= 1) {
    const Lanes<T> shifted = shfl_up(v, delta);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
      if (lane >= delta) v[lane] = static_cast<T>(v[lane] + shifted[lane]);
    }
  }
  return v;
}

/// Exclusive scan (identity in lane 0).
template <typename T>
[[nodiscard]] constexpr Lanes<T> exclusive_scan(const Lanes<T>& v) {
  const Lanes<T> inc = inclusive_scan(v);
  Lanes<T> out{};
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    out[lane] = lane == 0 ? T{} : inc[lane - 1];
  }
  return out;
}

/// Butterfly max reduction (all lanes end with the max).
template <typename T>
[[nodiscard]] constexpr T reduce_max(const Lanes<T>& v) {
  T m = v[0];
  for (unsigned lane = 1; lane < kWarpSize; ++lane) {
    m = v[lane] > m ? v[lane] : m;
  }
  return m;
}

/// Sum reduction.
template <typename T>
[[nodiscard]] constexpr T reduce_add(const Lanes<T>& v) {
  T s{};
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    s = static_cast<T>(s + v[lane]);
  }
  return s;
}

}  // namespace szp::gpusim::warp
