// Kernel launch: executes a grid of thread blocks on the device's worker
// pool. Each thread block is written at warp granularity (one warp per
// block, as cuSZp configures); the warp-level primitives live in warp.hpp.
#pragma once

#include <atomic>
#include <functional>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/sanitize/checker.hpp"

namespace szp::gpusim {

/// Per-block execution context handed to the kernel body.
struct BlockCtx {
  size_t block_idx = 0;
  size_t grid_blocks = 0;
  Trace* trace = nullptr;
  const std::atomic<bool>* abort_flag = nullptr;
  /// Sanitizer state for this launch; nullptr when disabled (every hook
  /// below is a single null-check then).
  sanitize::LaunchCheck* devcheck = nullptr;
  /// Profiler accumulator for this launch; nullptr when disabled (same
  /// one-branch contract as the sanitizer).
  profile::LaunchProf* prof = nullptr;
  /// Per-op trace chain captured on the launching thread (block workers
  /// run on other threads, so the thread-local head is not visible here);
  /// nullptr when no scope was open at launch.
  OpTraceScope* op_sink = nullptr;

  void read(Stage s, std::uint64_t bytes) const {
    trace->add_read(s, bytes);
    for_each_op_trace(op_sink, [&](Trace& t) { t.add_read(s, bytes); });
    if (prof != nullptr) prof->add_read(s, bytes);
  }
  void write(Stage s, std::uint64_t bytes) const {
    trace->add_write(s, bytes);
    for_each_op_trace(op_sink, [&](Trace& t) { t.add_write(s, bytes); });
    if (prof != nullptr) prof->add_write(s, bytes);
  }
  void ops(Stage s, std::uint64_t n) const {
    trace->add_ops(s, n);
    for_each_op_trace(op_sink, [&](Trace& t) { t.add_ops(s, n); });
    if (prof != nullptr) prof->add_ops(s, n);
  }

  /// Chained-scan lookback descriptor polling. Counts toward the trace
  /// like read(), but the profiler books it in the schedule section: how
  /// many descriptors a partition walks depends on publication timing,
  /// so it must stay out of the deterministic stage counters.
  void lookback_read(Stage s, std::uint64_t bytes) const {
    trace->add_read(s, bytes);
    for_each_op_trace(op_sink, [&](Trace& t) { t.add_read(s, bytes); });
    if (prof != nullptr) prof->add_lookback_bytes(bytes);
  }

  [[nodiscard]] bool profiled() const { return prof != nullptr; }

  /// Timing attribution for the codec stages; kernels call this with a
  /// measured per-lane duration when `profiled()` (or tracing) is on.
  void stage_ns(Stage s, std::uint64_t ns) const {
    if (prof != nullptr) prof->add_stage_ns(s, ns);
  }

  /// Atomic-operation accounting: release publishes (descriptor stores)
  /// and read-modify-writes (checksum credits). One decoupled-lookback
  /// walk is recorded with its descriptor-read depth and spin count.
  void atomic_store_op() const {
    if (prof != nullptr) prof->count_atomic_store();
  }
  void atomic_rmw_op() const {
    if (prof != nullptr) prof->count_atomic_rmw();
  }
  void lookback(std::uint64_t depth, std::uint64_t spins) const {
    if (prof != nullptr) prof->record_lookback(depth, spins);
  }

  /// True once any block of this launch has thrown: spin-waits (e.g. the
  /// chained-scan lookback) must bail out instead of waiting on a
  /// descriptor that will never be published.
  [[nodiscard]] bool aborted() const {
    return abort_flag != nullptr &&
           abort_flag->load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t actor() const {
    return static_cast<std::uint32_t>(block_idx);
  }

  /// Racecheck happens-before edges. Kernels call these next to the
  /// release/acquire atomics they synchronize through (chained-scan flag
  /// publishes, checksum group credits); `key` is the atomic's address.
  void sync_release(const void* key) const {
    if (devcheck != nullptr) devcheck->sync_release(actor(), key);
  }
  void sync_acquire(const void* key) const {
    if (devcheck != nullptr) devcheck->sync_acquire(actor(), key);
  }

  /// Synccheck. Kernels declare divergence (set_active_mask) and the
  /// lanes arriving at each block-wide barrier; warp primitives declare
  /// their participation mask via the *_sync wrappers in warp_sync.hpp.
  void set_active_mask(std::uint32_t mask) const {
    if (devcheck != nullptr) devcheck->set_active_mask(actor(), mask);
  }
  void block_barrier(std::uint32_t arrived_mask = 0xffffffffu) const {
    if (devcheck != nullptr) devcheck->block_barrier(actor(), arrived_mask);
    if (prof != nullptr) prof->count_barrier();
  }
  void warp_op(const char* op, profile::WarpOp kind,
               std::uint32_t mask) const {
    if (devcheck != nullptr) devcheck->warp_op(actor(), op, mask);
    if (prof != nullptr) prof->count_warp_op(kind);
  }
};

namespace detail {
/// Runs `body` for block indices [0, grid_blocks) on the worker pool.
/// Blocks are claimed in increasing index order, which together with
/// yielding spin-waits guarantees forward progress for chained-scan
/// lookback even when workers outnumber hardware threads.
void run_blocks(Device& dev, const char* kernel_name, size_t grid_blocks,
                const std::function<void(const BlockCtx&)>& body);

/// Submits the launch to dev.default_stream(), which executes it inline
/// on the calling thread — identical to calling run_blocks directly, plus
/// timeline/lane attribution. Defined in stream.cpp (Stream is only
/// forward-declared here).
void launch_on_default_stream(Device& dev, const char* kernel_name,
                              size_t grid_blocks,
                              std::function<void(const BlockCtx&)> body);
}  // namespace detail

/// Launch a kernel: `body(const BlockCtx&)` is invoked once per block.
/// Synchronous — routed through the device's inline default stream, so
/// the call returns after all blocks retire and exceptions propagate.
template <typename F>
void launch(Device& dev, const char* kernel_name, size_t grid_blocks,
            F&& body) {
  detail::launch_on_default_stream(
      dev, kernel_name, grid_blocks,
      std::function<void(const BlockCtx&)>(std::forward<F>(body)));
}

}  // namespace szp::gpusim
