// Kernel launch: executes a grid of thread blocks on the device's worker
// pool. Each thread block is written at warp granularity (one warp per
// block, as cuSZp configures); the warp-level primitives live in warp.hpp.
#pragma once

#include <atomic>
#include <functional>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/sanitize/checker.hpp"

namespace szp::gpusim {

/// Per-block execution context handed to the kernel body.
struct BlockCtx {
  size_t block_idx = 0;
  size_t grid_blocks = 0;
  Trace* trace = nullptr;
  const std::atomic<bool>* abort_flag = nullptr;
  /// Sanitizer state for this launch; nullptr when disabled (every hook
  /// below is a single null-check then).
  sanitize::LaunchCheck* devcheck = nullptr;

  void read(Stage s, std::uint64_t bytes) const { trace->add_read(s, bytes); }
  void write(Stage s, std::uint64_t bytes) const {
    trace->add_write(s, bytes);
  }
  void ops(Stage s, std::uint64_t n) const { trace->add_ops(s, n); }

  /// True once any block of this launch has thrown: spin-waits (e.g. the
  /// chained-scan lookback) must bail out instead of waiting on a
  /// descriptor that will never be published.
  [[nodiscard]] bool aborted() const {
    return abort_flag != nullptr &&
           abort_flag->load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t actor() const {
    return static_cast<std::uint32_t>(block_idx);
  }

  /// Racecheck happens-before edges. Kernels call these next to the
  /// release/acquire atomics they synchronize through (chained-scan flag
  /// publishes, checksum group credits); `key` is the atomic's address.
  void sync_release(const void* key) const {
    if (devcheck != nullptr) devcheck->sync_release(actor(), key);
  }
  void sync_acquire(const void* key) const {
    if (devcheck != nullptr) devcheck->sync_acquire(actor(), key);
  }

  /// Synccheck. Kernels declare divergence (set_active_mask) and the
  /// lanes arriving at each block-wide barrier; warp primitives declare
  /// their participation mask via the *_sync wrappers in warp_sync.hpp.
  void set_active_mask(std::uint32_t mask) const {
    if (devcheck != nullptr) devcheck->set_active_mask(actor(), mask);
  }
  void block_barrier(std::uint32_t arrived_mask = 0xffffffffu) const {
    if (devcheck != nullptr) devcheck->block_barrier(actor(), arrived_mask);
  }
  void warp_op(const char* op, std::uint32_t mask) const {
    if (devcheck != nullptr) devcheck->warp_op(actor(), op, mask);
  }
};

namespace detail {
/// Runs `body` for block indices [0, grid_blocks) on the worker pool.
/// Blocks are claimed in increasing index order, which together with
/// yielding spin-waits guarantees forward progress for chained-scan
/// lookback even when workers outnumber hardware threads.
void run_blocks(Device& dev, const char* kernel_name, size_t grid_blocks,
                const std::function<void(const BlockCtx&)>& body);
}  // namespace detail

/// Launch a kernel: `body(const BlockCtx&)` is invoked once per block.
template <typename F>
void launch(Device& dev, const char* kernel_name, size_t grid_blocks,
            F&& body) {
  detail::run_blocks(dev, kernel_name, grid_blocks,
                     std::function<void(const BlockCtx&)>(std::forward<F>(body)));
}

}  // namespace szp::gpusim
