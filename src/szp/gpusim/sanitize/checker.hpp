// The gpusim sanitizer engine: one Checker per Device, one LaunchCheck
// per kernel launch.
//
// The Checker owns the global state — active tools, the set of live
// buffer shadows, the deduplicated finding log, the launch epoch counter
// — and is shared by every worker thread. A LaunchCheck carries the
// per-launch racecheck vector clocks (FastTrack-style, one clock per
// block since gpusim runs each block on exactly one worker) and the
// per-block synccheck convergence state.
//
// Happens-before model, two levels:
//
// Within a launch, sync edges come from the release/acquire hooks that
// instrumented kernels attach to their atomics (chained-scan lookback
// flags, checksum group credits): `sync_release(key)` publishes the
// releasing block's clock under `key`, `sync_acquire(key)` joins it into
// the acquiring block's clock.
//
// Across launches, ordering follows the stream/event graph. Each stream
// owns a clock-vector slot (slot 0 = host + inline default stream); a
// launch bumps its stream's component and registers (epoch -> slot, seq)
// in the origin map. Edges join clocks: op submission (submitter ->
// stream), Event record/wait (recording stream -> waiting stream),
// stream synchronize (stream -> host), device synchronize (global
// barrier, which also prunes the origin map to a floor epoch — epochs at
// or below the floor are ordered by definition). Two launches with no
// such path between them that touch the same cell (with at least one
// write) are an unordered cross-launch race: the missing-Event::wait
// defect. In the purely synchronous API every launch runs on slot 0 in
// submission order, so consecutive launches stay ordered exactly as the
// old epoch-barrier model had it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "szp/gpusim/sanitize/report.hpp"
#include "szp/gpusim/sanitize/shadow.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim::sanitize {

class LaunchCheck;

class Checker {
 public:
  /// `launches_in_flight` points at the owning Device's launch counter
  /// (used to flag host access while a kernel is running).
  Checker(Tools tools, const std::atomic<unsigned>* launches_in_flight);
  ~Checker();

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] const Tools& tools() const { return tools_; }

  /// Buffer lifecycle (called by DeviceBuffer / BufferPool).
  [[nodiscard]] std::shared_ptr<BufferShadow> on_alloc(size_t cells,
                                                       size_t elem_bytes);
  void on_free(BufferShadow& sh, bool redzones_intact);

  /// Launch lifecycle (called by run_blocks). begin_launch bumps the
  /// epoch so prior accesses are ordered-before this launch; end_launch
  /// bumps it again so host accesses after the launch are ordered too.
  /// `hb_slot` is the clock slot of the launching stream (0 = host).
  [[nodiscard]] std::unique_ptr<LaunchCheck> begin_launch(
      const char* kernel, size_t grid_blocks, std::uint32_t hb_slot = 0);
  void end_launch(LaunchCheck& lc);

  /// Stream/event happens-before edges (all no-ops unless racecheck is
  /// active). Clocks are slot-indexed vectors; unequal lengths compare
  /// with missing components as 0.
  [[nodiscard]] std::uint32_t hb_register_stream();
  /// Copy `slot`'s clock (release half of an edge), then bump its own
  /// component so later work on the slot is not ordered into the edge.
  [[nodiscard]] std::vector<std::uint64_t> hb_release(std::uint32_t slot);
  /// Join a released clock into `slot` (acquire half of an edge).
  void hb_acquire(std::uint32_t slot, const std::vector<std::uint64_t>& clock);
  /// stream.synchronize() edge: everything `from_slot` executed
  /// happens-before the synchronizing thread (`into_slot`, usually 0).
  void hb_host_sync(std::uint32_t into_slot, std::uint32_t from_slot);
  /// Device::synchronize() edge: global barrier. Joins every slot into
  /// every other and prunes the epoch-origin map to a floor.
  void hb_device_sync();

  /// Record a finding, deduplicated on (kind, buffer, index, kernel).
  void report(Kind kind, std::string message, std::uint64_t buffer_id = 0,
              std::uint64_t index = 0);

  [[nodiscard]] Report snapshot() const;
  [[nodiscard]] size_t finding_count() const;
  void clear_findings();

  /// Leak sweep: every shadow still alive becomes a kLeak finding. Call
  /// at Device teardown (after all buffers/pools are destroyed) or from
  /// tests that deliberately leak.
  void finalize();

  [[nodiscard]] bool in_kernel() const {
    return in_flight_ != nullptr &&
           in_flight_->load(std::memory_order_acquire) > 0;
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool abort_on_teardown() const {
    return tools_.abort_on_teardown;
  }

 private:
  friend class BufferShadow;
  friend class LaunchCheck;

  Tools tools_;
  const std::atomic<unsigned>* in_flight_;
  std::atomic<const char*> kernel_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> next_buffer_id_{1};

  mutable Mutex findings_mutex_;
  std::vector<Finding> findings_ SZP_GUARDED_BY(findings_mutex_);
  std::unordered_map<std::uint64_t, size_t> finding_sites_
      SZP_GUARDED_BY(findings_mutex_);  // fp -> index
  std::uint64_t dropped_ SZP_GUARDED_BY(findings_mutex_) = 0;

  mutable Mutex live_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<BufferShadow>> live_
      SZP_GUARDED_BY(live_mutex_);

  /// Single lock for all racecheck state (cells + vector clocks): keeps
  /// detection deterministic and the implementation simple; racecheck is
  /// a debugging tool, not a fast path.
  Mutex race_mutex_;

  /// True when `prior_epoch` is ordered before a launch whose captured
  /// stream clock is `vc`.
  [[nodiscard]] bool hb_epoch_ordered(
      std::uint64_t prior_epoch, const std::vector<std::uint64_t>& vc) const
      SZP_REQUIRES(race_mutex_);

  // Cross-launch HB state. hb_vc_[s] is slot s's clock; epoch_origin_
  // maps a launch epoch to the (slot, seq) that produced it so
  // race_range can test ordering against a prior epoch.
  struct EpochOrigin {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
  };
  std::vector<std::vector<std::uint64_t>> hb_vc_
      SZP_GUARDED_BY(race_mutex_){{0}};
  std::unordered_map<std::uint64_t, EpochOrigin> epoch_origin_
      SZP_GUARDED_BY(race_mutex_);
  std::uint64_t hb_floor_epoch_ SZP_GUARDED_BY(race_mutex_) = 0;
};

class LaunchCheck {
 public:
  /// `epoch` is captured atomically by begin_launch (reading it here via
  /// chk.epoch() would race concurrent launches on other streams);
  /// `hb_slot`/`hb_vc` identify the launching stream and its clock at
  /// launch begin.
  LaunchCheck(Checker& chk, const char* kernel, size_t grid_blocks,
              std::uint64_t epoch, std::uint32_t hb_slot,
              std::vector<std::uint64_t> hb_vc);

  LaunchCheck(const LaunchCheck&) = delete;
  LaunchCheck& operator=(const LaunchCheck&) = delete;

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const char* kernel() const { return kernel_; }

  /// Racecheck sync edges, forwarded from BlockCtx. `key` identifies the
  /// synchronizing object (typically the address of the atomic).
  void sync_release(std::uint32_t actor, const void* key);
  void sync_acquire(std::uint32_t actor, const void* key);

  /// Synccheck. Each simulated block runs on one worker thread, so the
  /// per-block convergence state needs no locking.
  void set_active_mask(std::uint32_t actor, std::uint32_t mask);
  void block_barrier(std::uint32_t actor, std::uint32_t arrived_mask);
  void warp_op(std::uint32_t actor, const char* op, std::uint32_t mask);

 private:
  friend class BufferShadow;

  /// Racecheck core, called by BufferShadow; takes race_mutex_ itself
  /// (the caller cannot name it analyzably across the object boundary).
  void race_range(BufferShadow& sh, size_t begin, size_t end,
                  std::uint32_t actor, bool is_write)
      SZP_EXCLUDES(chk_.race_mutex_);
  std::vector<std::uint32_t>& vc(std::uint32_t actor)
      SZP_REQUIRES(chk_.race_mutex_);
  [[nodiscard]] bool ordered(const std::vector<std::uint32_t>& myvc,
                             std::uint32_t prior_actor,
                             std::uint32_t prior_clock) const
      SZP_REQUIRES(chk_.race_mutex_);

  Checker& chk_;
  const char* kernel_;
  size_t grid_;
  std::uint64_t epoch_;
  std::uint32_t hb_slot_;
  /// Launching stream's clock at launch begin: prior epoch (s, q) is
  /// ordered before this launch iff hb_vc_[s] >= q.
  std::vector<std::uint64_t> hb_vc_;
  /// 1-entry cache for the per-cell cross-epoch ordering test (cells in
  /// a range overwhelmingly share one prior epoch).
  mutable std::uint64_t hb_last_epoch_ SZP_GUARDED_BY(chk_.race_mutex_) = 0;
  mutable bool hb_last_ordered_ SZP_GUARDED_BY(chk_.race_mutex_) = true;
  bool race_enabled_;

  // Racecheck: per-actor vector clocks, lazily initialised; sync-var
  // clocks keyed by object address.
  std::vector<std::vector<std::uint32_t>> vc_ SZP_GUARDED_BY(chk_.race_mutex_);
  std::unordered_map<const void*, std::vector<std::uint32_t>> sync_vc_
      SZP_GUARDED_BY(chk_.race_mutex_);

  // Synccheck: per-block active mask (one worker per block, no lock).
  std::vector<std::uint32_t> active_mask_;
};

/// Memory guard: racecheck tracks one vector-clock slot per block per
/// sync var, so launches wider than this run with racecheck disabled
/// (memcheck/synccheck still apply). Far above any grid this codebase
/// launches; documented in docs/SANITIZERS.md.
inline constexpr size_t kMaxRaceActors = 1u << 16;

}  // namespace szp::gpusim::sanitize
