#include "szp/gpusim/sanitize/report.hpp"

#include <cstdlib>
#include <sstream>

namespace szp::gpusim::sanitize {

std::string_view tool_name(Tool t) {
  switch (t) {
    case Tool::kMemcheck: return "memcheck";
    case Tool::kRacecheck: return "racecheck";
    case Tool::kSynccheck: return "synccheck";
  }
  return "?";
}

Tools tools_from_string(std::string_view spec) {
  Tools t;
  if (spec.empty() || spec == "0" || spec == "off" || spec == "none") {
    return t;
  }
  if (spec == "1" || spec == "all") {
    return Tools::all();
  }
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view tok = spec.substr(pos, comma - pos);
    if (tok == "memcheck") {
      t.memcheck = true;
    } else if (tok == "racecheck") {
      t.racecheck = true;
    } else if (tok == "synccheck") {
      t.synccheck = true;
    } else if (!tok.empty()) {
      throw format_error("SZP_DEVCHECK: unknown tool '" + std::string(tok) +
                         "' (expected memcheck|racecheck|synccheck|all)");
    }
    pos = comma + 1;
  }
  return t;
}

Tools tools_from_env() {
  const char* s = std::getenv("SZP_DEVCHECK");
  if (s == nullptr) return {};
  Tools t = tools_from_string(s);
  t.abort_on_teardown = t.any();
  return t;
}

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::kOobRead: return "out-of-bounds read";
    case Kind::kOobWrite: return "out-of-bounds write";
    case Kind::kUninitRead: return "uninitialized read";
    case Kind::kUseAfterFree: return "use after free";
    case Kind::kRedzoneCorruption: return "redzone corruption";
    case Kind::kHostAccessDuringKernel: return "host access during kernel";
    case Kind::kLeak: return "device memory leak";
    case Kind::kRace: return "unordered conflicting access";
    case Kind::kBarrierDivergence: return "barrier divergence";
    case Kind::kMaskMismatch: return "warp mask mismatch";
  }
  return "?";
}

Tool kind_tool(Kind k) {
  switch (k) {
    case Kind::kOobRead:
    case Kind::kOobWrite:
    case Kind::kUninitRead:
    case Kind::kUseAfterFree:
    case Kind::kRedzoneCorruption:
    case Kind::kHostAccessDuringKernel:
    case Kind::kLeak: return Tool::kMemcheck;
    case Kind::kRace: return Tool::kRacecheck;
    case Kind::kBarrierDivergence:
    case Kind::kMaskMismatch: return Tool::kSynccheck;
  }
  return Tool::kMemcheck;
}

std::uint64_t Report::total() const {
  std::uint64_t n = dropped;
  for (const auto& f : findings) n += f.count;
  return n;
}

std::uint64_t Report::count(Tool t) const {
  std::uint64_t n = 0;
  for (const auto& f : findings) {
    if (f.tool() == t) n += f.count;
  }
  return n;
}

std::uint64_t Report::count(Kind k) const {
  std::uint64_t n = 0;
  for (const auto& f : findings) {
    if (f.kind == k) n += f.count;
  }
  return n;
}

std::string Report::to_string() const {
  std::ostringstream os;
  if (empty()) {
    os << "devcheck: no findings\n";
    return os.str();
  }
  os << "devcheck: " << total() << " finding(s)"
     << " [memcheck " << count(Tool::kMemcheck) << ", racecheck "
     << count(Tool::kRacecheck) << ", synccheck " << count(Tool::kSynccheck)
     << "]\n";
  for (const auto& f : findings) {
    os << "  [" << tool_name(f.tool()) << "] " << kind_name(f.kind) << ": "
       << f.message;
    if (!f.kernel.empty()) os << " (kernel " << f.kernel << ")";
    if (f.count > 1) os << " x" << f.count;
    os << "\n";
  }
  if (dropped > 0) {
    os << "  ... " << dropped << " further distinct finding(s) dropped\n";
  }
  return os.str();
}

}  // namespace szp::gpusim::sanitize
