// gpusim-sanitizer reporting types.
//
// The sanitize layer is the simulated-runtime analogue of
// `compute-sanitizer --tool {memcheck,racecheck,synccheck}`: an opt-in
// checking layer that polices the access patterns the cuSZp kernel relies
// on (checked device loads/stores, chained-scan lookback ordering, warp
// primitive convergence). Findings are collected into a structured Report
// rather than printed as they occur, so tests can assert on exact defect
// classes and tools can decide the exit code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "szp/util/common.hpp"

namespace szp::gpusim::sanitize {

/// The three checking tools, mirroring compute-sanitizer's.
enum class Tool : std::uint8_t { kMemcheck, kRacecheck, kSynccheck };

[[nodiscard]] std::string_view tool_name(Tool t);

/// Which tools are active on a Device. Zero-size-of-disabled contract:
/// when no tool is enabled the Device carries no Checker at all and every
/// instrumentation site costs one null-pointer branch.
struct Tools {
  bool memcheck = false;
  bool racecheck = false;
  bool synccheck = false;
  /// When set (env activation), Device teardown with findings aborts the
  /// process after printing the report — the `compute-sanitizer
  /// --error-exitcode` behaviour that makes unattended ctest runs fail
  /// loudly. Config-flag activation leaves this off so tests can consume
  /// findings programmatically.
  bool abort_on_teardown = false;

  [[nodiscard]] bool any() const { return memcheck || racecheck || synccheck; }
  [[nodiscard]] static Tools all() { return {true, true, true, false}; }
  [[nodiscard]] static Tools none() { return {}; }
};

/// Parse a SZP_DEVCHECK-style selector: "all" / "1" enables everything,
/// "" / "0" / "off" nothing, otherwise a comma list of tool names
/// ("memcheck,racecheck,synccheck"). Throws format_error on unknown names.
[[nodiscard]] Tools tools_from_string(std::string_view spec);

/// Tools requested by the SZP_DEVCHECK environment variable (none when
/// unset). Env activation sets abort_on_teardown.
[[nodiscard]] Tools tools_from_env();

/// Defect classes. Each maps to exactly one tool (kind_tool).
enum class Kind : std::uint8_t {
  // memcheck
  kOobRead,
  kOobWrite,
  kUninitRead,
  kUseAfterFree,
  kRedzoneCorruption,
  kHostAccessDuringKernel,
  kLeak,
  // racecheck
  kRace,
  // synccheck
  kBarrierDivergence,
  kMaskMismatch,
};

[[nodiscard]] std::string_view kind_name(Kind k);
[[nodiscard]] Tool kind_tool(Kind k);

/// One deduplicated defect. `count` folds repeats of the same defect at
/// the same site (kind, buffer, cell, kernel).
struct Finding {
  Kind kind = Kind::kOobRead;
  std::string message;
  std::string kernel;         // kernel in flight when detected ("" = host)
  std::uint64_t buffer_id = 0;  // 0 = not buffer-related
  std::uint64_t index = 0;      // cell index where applicable
  std::uint64_t count = 1;

  [[nodiscard]] Tool tool() const { return kind_tool(kind); }
};

/// Snapshot of everything a Checker has collected.
struct Report {
  std::vector<Finding> findings;
  std::uint64_t dropped = 0;  // distinct findings beyond the cap

  [[nodiscard]] bool empty() const { return findings.empty() && dropped == 0; }
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t count(Tool t) const;
  [[nodiscard]] std::uint64_t count(Kind k) const;
  /// Human-readable multi-line summary (szp_cli/szp_verify --devcheck).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace szp::gpusim::sanitize
