// Per-DeviceBuffer shadow state for the gpusim sanitizer.
//
// Memcheck state: an allocated/alive flag (use-after-free), a 1-bit-per-
// cell initialization bitmap (read-before-write), and logical bounds
// (out-of-bounds; redzones around the raw storage are owned by
// DeviceBuffer and verified at free). Racecheck state: one RaceCell per
// element holding the last write and last read as (epoch, actor, clock)
// epochs, checked against the current launch's vector clocks.
//
// All checks funnel through pre_load/pre_store (single cell) and the
// _range variants (bulk accessor views); they record findings on the
// owning Checker and return whether the underlying memory may actually be
// touched (false for out-of-bounds / use-after-free).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "szp/gpusim/sanitize/report.hpp"

namespace szp::gpusim::sanitize {

class Checker;
class LaunchCheck;

/// Actor id used for host-side accesses (copies, host views).
inline constexpr std::uint32_t kHostActor = 0xffffffffu;

/// True on a thread currently executing kernel blocks (or a stream's op
/// thread). Lets the host-access-during-kernel check tell a genuine
/// host-side poke apart from kernel code that goes through the unchecked
/// accessors (the baseline codecs are not ported to views and capture
/// spans up front) and from stream threads legitimately running memcpys
/// while another stream's kernel is in flight.
[[nodiscard]] bool on_kernel_thread() noexcept;

/// RAII marker set by the launch runner around block execution and by
/// stream threads for their lifetime. Depth-counted: a stream thread's
/// lifetime scope survives the nested scopes its kernel ops open when
/// run_blocks executes blocks on the calling thread.
struct KernelThreadScope {
  KernelThreadScope() noexcept;
  ~KernelThreadScope();
};

class BufferShadow {
 public:
  BufferShadow(Checker& chk, std::uint64_t id, size_t cells,
               size_t elem_bytes);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] size_t cells() const { return cells_; }
  [[nodiscard]] size_t elem_bytes() const { return elem_bytes_; }
  [[nodiscard]] bool alive() const {
    return alive_.load(std::memory_order_acquire);
  }

  /// Single-cell access checks. `lc` is the launch the access belongs to
  /// (nullptr = host scope), `actor` the block index (kHostActor for host
  /// accesses). Return false when the access must be suppressed because
  /// the memory may be invalid (OOB, use-after-free).
  [[nodiscard]] bool pre_load(size_t i, LaunchCheck* lc, std::uint32_t actor);
  [[nodiscard]] bool pre_store(size_t i, LaunchCheck* lc, std::uint32_t actor);

  /// Ranged access checks for the bulk view accessors; return the number
  /// of leading cells that may be touched (clamped at the buffer bound).
  [[nodiscard]] size_t pre_load_range(size_t off, size_t count,
                                      LaunchCheck* lc, std::uint32_t actor);
  [[nodiscard]] size_t pre_store_range(size_t off, size_t count,
                                       LaunchCheck* lc, std::uint32_t actor);

  /// Memcheck init-bitmap maintenance (copy_h2d, fill constructors).
  void mark_init(size_t begin, size_t end);
  void mark_init_all();
  /// Pooled-buffer reuse: the old contents are stale, reading them before
  /// writing is the defect this resets the bitmap to catch.
  void reset_init();

  /// Pooled-buffer reuse, racecheck half: the pool's lease handoff (pool
  /// mutex + completed stream ops) synchronizes the transfer, so accesses
  /// by the previous lease must not race the next one even across
  /// streams. Drops all per-cell access history.
  void reset_race();

  /// Called by the Checker when the owning buffer is freed.
  void mark_freed() { alive_.store(false, std::memory_order_release); }

  /// Host-side accessor touch (DeviceBuffer::data/span/operator[]):
  /// flags host access while a kernel launch is in flight.
  void host_access() { host_scope_check(nullptr); }

 private:
  friend class LaunchCheck;

  /// Report host access while a kernel launch is in flight; called for
  /// every host-scope check so stray host reads/writes overlapping a
  /// launch are flagged exactly like compute-sanitizer's memcheck flags
  /// unsynchronized cudaMemcpy.
  void host_scope_check(LaunchCheck* lc);
  [[nodiscard]] bool init_bit(size_t i) const;

  /// Racecheck per-cell state; (epoch, actor, clock) epochs with clock 0
  /// meaning "no access recorded". Guarded by Checker::race_mutex_.
  struct RaceCell {
    std::uint64_t epoch = 0;
    std::uint32_t w_actor = 0;
    std::uint32_t w_clock = 0;
    std::uint32_t r_actor = 0;
    std::uint32_t r_clock = 0;
  };

  Checker& chk_;
  std::uint64_t id_;
  size_t cells_;
  size_t elem_bytes_;
  std::atomic<bool> alive_{true};
  bool memcheck_;
  bool racecheck_;
  /// Fast path for unchecked codecs that call mark_init_all on every
  /// span() touch: once fully initialized, skip the bitmap sweep.
  std::atomic<bool> all_init_{false};
  std::vector<std::atomic<std::uint64_t>> init_;  // empty when !memcheck
  std::vector<RaceCell> race_;  // lazily sized; under Checker::race_mutex_
};

}  // namespace szp::gpusim::sanitize
