#include "szp/gpusim/sanitize/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "szp/obs/metrics.hpp"

namespace szp::gpusim::sanitize {

namespace {

/// Finding cap: dedup handles repeats at one site, the cap bounds memory
/// when a defect sprays across many distinct cells.
constexpr size_t kMaxFindings = 256;

constexpr std::uint32_t kFullMask = 0xffffffffu;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

void count_finding(Kind kind) {
  auto& reg = obs::Registry::instance();
  switch (kind_tool(kind)) {
    case Tool::kMemcheck: {
      static obs::Counter& c = reg.counter("devcheck.memcheck.findings");
      c.add();
      break;
    }
    case Tool::kRacecheck: {
      static obs::Counter& c = reg.counter("devcheck.racecheck.findings");
      c.add();
      break;
    }
    case Tool::kSynccheck: {
      static obs::Counter& c = reg.counter("devcheck.synccheck.findings");
      c.add();
      break;
    }
  }
}

std::string mask_str(std::uint32_t mask) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", mask);
  return buf;
}

void join(std::vector<std::uint32_t>& dst,
          const std::vector<std::uint32_t>& src) {
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

/// Join for stream clocks, which grow as streams register: missing
/// components are 0, so the destination is widened first.
void join_clock(std::vector<std::uint64_t>& dst,
                const std::vector<std::uint64_t>& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

}  // namespace

Checker::Checker(Tools tools, const std::atomic<unsigned>* launches_in_flight)
    : tools_(tools), in_flight_(launches_in_flight) {}

Checker::~Checker() = default;

std::shared_ptr<BufferShadow> Checker::on_alloc(size_t cells,
                                                size_t elem_bytes) {
  auto sh = std::make_shared<BufferShadow>(
      *this, next_buffer_id_.fetch_add(1, std::memory_order_relaxed), cells,
      elem_bytes);
  const LockGuard lock(live_mutex_);
  live_.emplace(sh->id(), sh);
  return sh;
}

void Checker::on_free(BufferShadow& sh, bool redzones_intact) {
  sh.mark_freed();
  if (!redzones_intact) {
    report(Kind::kRedzoneCorruption,
           "redzone overwritten adjacent to buffer #" + std::to_string(sh.id()),
           sh.id(), 0);
  }
  const LockGuard lock(live_mutex_);
  live_.erase(sh.id());
}

std::unique_ptr<LaunchCheck> Checker::begin_launch(const char* kernel,
                                                   size_t grid_blocks,
                                                   std::uint32_t hb_slot) {
  // Capture the bumped value: reading epoch() separately would let two
  // launches racing on different streams observe the same epoch and
  // collide their per-launch racecheck state.
  const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  kernel_.store(kernel, std::memory_order_release);
  std::vector<std::uint64_t> vc;
  if (tools_.racecheck) {
    const LockGuard lock(race_mutex_);
    if (hb_slot >= hb_vc_.size()) hb_vc_.resize(hb_slot + 1);
    auto& slot_vc = hb_vc_[hb_slot];
    if (slot_vc.size() <= hb_slot) slot_vc.resize(hb_slot + 1, 0);
    epoch_origin_[e] = EpochOrigin{hb_slot, ++slot_vc[hb_slot]};
    vc = slot_vc;
  }
  return std::make_unique<LaunchCheck>(*this, kernel, grid_blocks, e, hb_slot,
                                       std::move(vc));
}

void Checker::end_launch(LaunchCheck& lc) {
  (void)lc;
  kernel_.store(nullptr, std::memory_order_release);
  // Launch retirement orders host accesses after the kernel's work. Bump
  // the epoch so host-phase accesses never share a kernel's epoch.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::uint32_t Checker::hb_register_stream() {
  if (!tools_.racecheck) return 0;
  const LockGuard lock(race_mutex_);
  const auto slot = static_cast<std::uint32_t>(hb_vc_.size());
  // The creating thread's knowledge (host slot) happens-before the new
  // stream's first op.
  std::vector<std::uint64_t> vc = hb_vc_[0];
  if (vc.size() <= slot) vc.resize(slot + 1, 0);
  hb_vc_.push_back(std::move(vc));
  return slot;
}

std::vector<std::uint64_t> Checker::hb_release(std::uint32_t slot) {
  if (!tools_.racecheck) return {};
  const LockGuard lock(race_mutex_);
  if (slot >= hb_vc_.size()) return {};
  auto& v = hb_vc_[slot];
  if (v.size() <= slot) v.resize(slot + 1, 0);
  std::vector<std::uint64_t> out = v;
  ++v[slot];
  return out;
}

void Checker::hb_acquire(std::uint32_t slot,
                         const std::vector<std::uint64_t>& clock) {
  if (!tools_.racecheck || clock.empty()) return;
  const LockGuard lock(race_mutex_);
  if (slot >= hb_vc_.size()) return;
  join_clock(hb_vc_[slot], clock);
}

void Checker::hb_host_sync(std::uint32_t into_slot, std::uint32_t from_slot) {
  if (!tools_.racecheck || into_slot == from_slot) return;
  const LockGuard lock(race_mutex_);
  if (into_slot >= hb_vc_.size() || from_slot >= hb_vc_.size()) return;
  const std::vector<std::uint64_t> src = hb_vc_[from_slot];
  join_clock(hb_vc_[into_slot], src);
}

void Checker::hb_device_sync() {
  if (!tools_.racecheck) return;
  const LockGuard lock(race_mutex_);
  std::vector<std::uint64_t> all;
  for (const auto& v : hb_vc_) join_clock(all, v);
  for (auto& v : hb_vc_) join_clock(v, all);
  epoch_origin_.clear();
  hb_floor_epoch_ = epoch_.load(std::memory_order_acquire);
}

bool Checker::hb_epoch_ordered(std::uint64_t prior_epoch,
                               const std::vector<std::uint64_t>& vc) const {
  if (prior_epoch <= hb_floor_epoch_) return true;
  const auto it = epoch_origin_.find(prior_epoch);
  // Unknown epochs were pruned at a device sync (or predate racecheck):
  // ordered by that barrier.
  if (it == epoch_origin_.end()) return true;
  const EpochOrigin& o = it->second;
  return (o.slot < vc.size() ? vc[o.slot] : 0) >= o.seq;
}

void Checker::report(Kind kind, std::string message, std::uint64_t buffer_id,
                     std::uint64_t index) {
  const char* k = kernel_.load(std::memory_order_acquire);
  std::uint64_t fp = fnv1a(0xcbf29ce484222325ull,
                           static_cast<std::uint64_t>(kind));
  fp = fnv1a(fp, buffer_id);
  fp = fnv1a(fp, index);
  if (k != nullptr) {
    for (const char* p = k; *p != '\0'; ++p) {
      fp = fnv1a(fp, static_cast<unsigned char>(*p));
    }
  }
  count_finding(kind);
  const LockGuard lock(findings_mutex_);
  if (auto it = finding_sites_.find(fp); it != finding_sites_.end()) {
    ++findings_[it->second].count;
    return;
  }
  if (findings_.size() >= kMaxFindings) {
    ++dropped_;
    return;
  }
  finding_sites_.emplace(fp, findings_.size());
  findings_.push_back(Finding{kind, std::move(message),
                              k != nullptr ? std::string(k) : std::string(),
                              buffer_id, index, 1});
}

Report Checker::snapshot() const {
  const LockGuard lock(findings_mutex_);
  return Report{findings_, dropped_};
}

size_t Checker::finding_count() const {
  const LockGuard lock(findings_mutex_);
  return findings_.size() + (dropped_ > 0 ? 1 : 0);
}

void Checker::clear_findings() {
  const LockGuard lock(findings_mutex_);
  findings_.clear();
  finding_sites_.clear();
  dropped_ = 0;
}

void Checker::finalize() {
  if (!tools_.memcheck) return;
  std::vector<std::shared_ptr<BufferShadow>> leaked;
  {
    const LockGuard lock(live_mutex_);
    for (auto& [id, sh] : live_) leaked.push_back(sh);
    live_.clear();
  }
  std::sort(leaked.begin(), leaked.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  for (const auto& sh : leaked) {
    report(Kind::kLeak,
           "buffer #" + std::to_string(sh->id()) + " (" +
               std::to_string(sh->cells() * sh->elem_bytes()) +
               " bytes) still allocated at leak check",
           sh->id(), 0);
  }
}

LaunchCheck::LaunchCheck(Checker& chk, const char* kernel, size_t grid_blocks,
                         std::uint64_t epoch, std::uint32_t hb_slot,
                         std::vector<std::uint64_t> hb_vc)
    : chk_(chk),
      kernel_(kernel),
      grid_(grid_blocks),
      epoch_(epoch),
      hb_slot_(hb_slot),
      hb_vc_(std::move(hb_vc)),
      race_enabled_(chk.tools().racecheck && grid_blocks <= kMaxRaceActors) {
  if (race_enabled_) vc_.resize(grid_);
  if (chk.tools().synccheck) active_mask_.assign(grid_, kFullMask);
}

std::vector<std::uint32_t>& LaunchCheck::vc(std::uint32_t actor) {
  auto& v = vc_[actor];
  if (v.empty()) {
    v.assign(grid_, 0);
    v[actor] = 1;
  }
  return v;
}

bool LaunchCheck::ordered(const std::vector<std::uint32_t>& myvc,
                          std::uint32_t prior_actor,
                          std::uint32_t prior_clock) const {
  return prior_clock == 0 || myvc[prior_actor] >= prior_clock;
}

void LaunchCheck::race_range(BufferShadow& sh, size_t begin, size_t end,
                             std::uint32_t actor, bool is_write) {
  if (!race_enabled_) return;
  const LockGuard lock(chk_.race_mutex_);
  if (sh.race_.empty()) sh.race_.resize(sh.cells());
  auto& myvc = vc(actor);
  const std::uint32_t myclock = myvc[actor];
  bool reported = false;
  for (size_t i = begin; i < end; ++i) {
    auto& c = sh.race_[i];
    if (c.epoch != epoch_) {
      // First touch this launch: the prior access came from an earlier
      // launch. Ordered when the stream/event graph has a path from that
      // launch to this one; a conflicting access with no path is the
      // missing-Event::wait defect.
      const bool conflict = c.w_clock != 0 || (is_write && c.r_clock != 0);
      if (c.epoch != 0 && conflict && !reported) {
        bool ord;
        if (c.epoch == hb_last_epoch_) {
          ord = hb_last_ordered_;
        } else {
          ord = chk_.hb_epoch_ordered(c.epoch, hb_vc_);
          hb_last_epoch_ = c.epoch;
          hb_last_ordered_ = ord;
        }
        if (!ord) {
          chk_.report(
              Kind::kRace,
              "unordered cross-launch access: cell " + std::to_string(i) +
                  " of buffer #" + std::to_string(sh.id()) +
                  " touched by launch epoch " + std::to_string(c.epoch) +
                  " and kernel '" + kernel_ +
                  "' on another stream with no happens-before path "
                  "(missing Event::wait?)",
              sh.id(), i);
          reported = true;
        }
      }
      c = BufferShadow::RaceCell{};
      c.epoch = epoch_;
    }
    if (c.w_clock != 0 && c.w_actor != actor &&
        !ordered(myvc, c.w_actor, c.w_clock) && !reported) {
      chk_.report(Kind::kRace,
                  std::string("unordered write-") +
                      (is_write ? "write" : "read") + ": blocks " +
                      std::to_string(c.w_actor) + " and " +
                      std::to_string(actor) + " on cell " + std::to_string(i) +
                      " of buffer #" + std::to_string(sh.id()),
                  sh.id(), i);
      reported = true;
    }
    if (is_write) {
      if (c.r_clock != 0 && c.r_actor != actor &&
          !ordered(myvc, c.r_actor, c.r_clock) && !reported) {
        chk_.report(Kind::kRace,
                    "unordered read-write: blocks " +
                        std::to_string(c.r_actor) + " and " +
                        std::to_string(actor) + " on cell " +
                        std::to_string(i) + " of buffer #" +
                        std::to_string(sh.id()),
                    sh.id(), i);
        reported = true;
      }
      c.w_actor = actor;
      c.w_clock = myclock;
    } else {
      c.r_actor = actor;
      c.r_clock = myclock;
    }
  }
}

void LaunchCheck::sync_release(std::uint32_t actor, const void* key) {
  if (!race_enabled_) return;
  const LockGuard lock(chk_.race_mutex_);
  auto& myvc = vc(actor);
  auto& s = sync_vc_[key];
  if (s.empty()) {
    s = myvc;
  } else {
    join(s, myvc);
  }
  ++myvc[actor];
}

void LaunchCheck::sync_acquire(std::uint32_t actor, const void* key) {
  if (!race_enabled_) return;
  const LockGuard lock(chk_.race_mutex_);
  if (auto it = sync_vc_.find(key); it != sync_vc_.end()) {
    join(vc(actor), it->second);
  }
}

void LaunchCheck::set_active_mask(std::uint32_t actor, std::uint32_t mask) {
  if (actor < active_mask_.size()) active_mask_[actor] = mask;
}

void LaunchCheck::block_barrier(std::uint32_t actor,
                                std::uint32_t arrived_mask) {
  if (actor >= active_mask_.size()) return;
  const std::uint32_t active = active_mask_[actor];
  if (arrived_mask != active) {
    chk_.report(Kind::kBarrierDivergence,
                "block " + std::to_string(actor) + ": barrier reached by " +
                    mask_str(arrived_mask) + " but active mask is " +
                    mask_str(active),
                0, actor);
  }
}

void LaunchCheck::warp_op(std::uint32_t actor, const char* op,
                          std::uint32_t mask) {
  if (actor >= active_mask_.size()) return;
  const std::uint32_t active = active_mask_[actor];
  if (mask != active) {
    chk_.report(Kind::kMaskMismatch,
                std::string(op) + " in block " + std::to_string(actor) +
                    " with mask " + mask_str(mask) +
                    " but converged active mask is " + mask_str(active),
                0, actor);
  }
}

}  // namespace szp::gpusim::sanitize
