#include "szp/gpusim/sanitize/shadow.hpp"

#include <string>

#include "szp/gpusim/sanitize/checker.hpp"

namespace szp::gpusim::sanitize {

namespace {

constexpr size_t kBitsPerWord = 64;

std::string cell_str(std::uint64_t buffer_id, size_t i) {
  return "cell " + std::to_string(i) + " of buffer #" +
         std::to_string(buffer_id);
}

thread_local int t_kernel_scope_depth = 0;

}  // namespace

bool on_kernel_thread() noexcept { return t_kernel_scope_depth > 0; }

KernelThreadScope::KernelThreadScope() noexcept { ++t_kernel_scope_depth; }
KernelThreadScope::~KernelThreadScope() { --t_kernel_scope_depth; }

BufferShadow::BufferShadow(Checker& chk, std::uint64_t id, size_t cells,
                           size_t elem_bytes)
    : chk_(chk),
      id_(id),
      cells_(cells),
      elem_bytes_(elem_bytes),
      memcheck_(chk.tools().memcheck),
      racecheck_(chk.tools().racecheck) {
  if (memcheck_) {
    init_ = std::vector<std::atomic<std::uint64_t>>(
        (cells_ + kBitsPerWord - 1) / kBitsPerWord);
  }
}

bool BufferShadow::init_bit(size_t i) const {
  return (init_[i / kBitsPerWord].load(std::memory_order_relaxed) >>
          (i % kBitsPerWord)) &
         1u;
}

void BufferShadow::mark_init(size_t begin, size_t end) {
  if (init_.empty()) return;
  for (size_t i = begin; i < end && i < cells_; ++i) {
    init_[i / kBitsPerWord].fetch_or(std::uint64_t{1} << (i % kBitsPerWord),
                                     std::memory_order_relaxed);
  }
}

void BufferShadow::mark_init_all() {
  if (all_init_.load(std::memory_order_relaxed)) return;
  mark_init(0, cells_);
  all_init_.store(true, std::memory_order_relaxed);
}

void BufferShadow::reset_init() {
  all_init_.store(false, std::memory_order_relaxed);
  for (auto& w : init_) w.store(0, std::memory_order_relaxed);
}

void BufferShadow::reset_race() {
  if (!racecheck_) return;
  const LockGuard lock(chk_.race_mutex_);
  race_.clear();
}

void BufferShadow::host_scope_check(LaunchCheck* lc) {
  if (lc == nullptr && memcheck_ && chk_.in_kernel() && !on_kernel_thread()) {
    chk_.report(Kind::kHostAccessDuringKernel,
                "host access to buffer #" + std::to_string(id_) +
                    " while a kernel launch is in flight",
                id_, 0);
  }
}

bool BufferShadow::pre_load(size_t i, LaunchCheck* lc, std::uint32_t actor) {
  if (!alive()) {
    chk_.report(Kind::kUseAfterFree, "load from freed " + cell_str(id_, i),
                id_, i);
    return false;
  }
  host_scope_check(lc);
  if (i >= cells_) {
    chk_.report(Kind::kOobRead,
                "load at cell " + std::to_string(i) + " past size " +
                    std::to_string(cells_) + " of buffer #" +
                    std::to_string(id_),
                id_, i);
    return false;
  }
  if (memcheck_ && !init_bit(i)) {
    chk_.report(Kind::kUninitRead, "read of uninitialized " + cell_str(id_, i),
                id_, i);
  }
  if (racecheck_ && lc != nullptr) {
    lc->race_range(*this, i, i + 1, actor, /*is_write=*/false);
  }
  return true;
}

bool BufferShadow::pre_store(size_t i, LaunchCheck* lc, std::uint32_t actor) {
  if (!alive()) {
    chk_.report(Kind::kUseAfterFree, "store to freed " + cell_str(id_, i), id_,
                i);
    return false;
  }
  host_scope_check(lc);
  if (i >= cells_) {
    chk_.report(Kind::kOobWrite,
                "store at cell " + std::to_string(i) + " past size " +
                    std::to_string(cells_) + " of buffer #" +
                    std::to_string(id_),
                id_, i);
    return false;
  }
  mark_init(i, i + 1);
  if (racecheck_ && lc != nullptr) {
    lc->race_range(*this, i, i + 1, actor, /*is_write=*/true);
  }
  return true;
}

size_t BufferShadow::pre_load_range(size_t off, size_t count, LaunchCheck* lc,
                                    std::uint32_t actor) {
  if (count == 0) return 0;
  if (!alive()) {
    chk_.report(Kind::kUseAfterFree, "load from freed " + cell_str(id_, off),
                id_, off);
    return 0;
  }
  host_scope_check(lc);
  size_t allowed = count;
  if (off >= cells_ || count > cells_ - off) {
    const size_t bad = off >= cells_ ? off : cells_;
    chk_.report(Kind::kOobRead,
                "ranged load [" + std::to_string(off) + ", " +
                    std::to_string(off + count) + ") past size " +
                    std::to_string(cells_) + " of buffer #" +
                    std::to_string(id_),
                id_, bad);
    allowed = off >= cells_ ? 0 : cells_ - off;
  }
  if (allowed == 0) return 0;
  if (memcheck_) {
    for (size_t i = off; i < off + allowed; ++i) {
      if (!init_bit(i)) {
        chk_.report(Kind::kUninitRead,
                    "read of uninitialized " + cell_str(id_, i), id_, i);
        break;  // one finding per range keeps reports readable
      }
    }
  }
  if (racecheck_ && lc != nullptr) {
    lc->race_range(*this, off, off + allowed, actor, /*is_write=*/false);
  }
  return allowed;
}

size_t BufferShadow::pre_store_range(size_t off, size_t count, LaunchCheck* lc,
                                     std::uint32_t actor) {
  if (count == 0) return 0;
  if (!alive()) {
    chk_.report(Kind::kUseAfterFree, "store to freed " + cell_str(id_, off),
                id_, off);
    return 0;
  }
  host_scope_check(lc);
  size_t allowed = count;
  if (off >= cells_ || count > cells_ - off) {
    const size_t bad = off >= cells_ ? off : cells_;
    chk_.report(Kind::kOobWrite,
                "ranged store [" + std::to_string(off) + ", " +
                    std::to_string(off + count) + ") past size " +
                    std::to_string(cells_) + " of buffer #" +
                    std::to_string(id_),
                id_, bad);
    allowed = off >= cells_ ? 0 : cells_ - off;
  }
  if (allowed == 0) return 0;
  mark_init(off, off + allowed);
  if (racecheck_ && lc != nullptr) {
    lc->race_range(*this, off, off + allowed, actor, /*is_write=*/true);
  }
  return allowed;
}

}  // namespace szp::gpusim::sanitize
