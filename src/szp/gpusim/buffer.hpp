// Device memory buffers and host<->device copies.
//
// Copies across the simulated PCIe boundary are accounted on the device
// trace so the perfmodel can charge them; device-resident access from
// kernels is accounted explicitly by the kernels themselves.
//
// When the owning Device has the sanitizer enabled, every buffer carries
// a BufferShadow (bounds, init bitmap, race cells) and its raw storage is
// bracketed by 0xa5 redzones verified at free. The host-facing accessors
// (data/span/operator[]) report host access while a kernel is in flight;
// kernels go through the checked views in view.hpp. raw_data() is the
// escape hatch for runtime code that declares its accesses separately.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "szp/gpusim/device.hpp"
#include "szp/gpusim/sanitize/checker.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/common.hpp"

namespace szp::gpusim {

/// Guard bytes on each side of a sanitized buffer's payload.
inline constexpr size_t kRedzoneBytes = 32;
inline constexpr unsigned char kRedzoneByte = 0xa5;

template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& dev, size_t n) : dev_(&dev), n_(n) {
    init_storage();
    dev_->register_alloc(n_ * sizeof(T));
  }

  DeviceBuffer(Device& dev, size_t n, T fill) : dev_(&dev), n_(n) {
    init_storage();
    std::fill_n(storage_.data() + rz_, n_, fill);
    if (shadow_ != nullptr) shadow_->mark_init_all();
    dev_->register_alloc(n_ * sizeof(T));
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : dev_(o.dev_),
        n_(o.n_),
        rz_(o.rz_),
        storage_(std::move(o.storage_)),
        shadow_(std::move(o.shadow_)),
        bprof_(std::move(o.bprof_)) {
    o.dev_ = nullptr;
    o.n_ = 0;
    o.rz_ = 0;
    o.storage_.clear();
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      n_ = o.n_;
      rz_ = o.rz_;
      storage_ = std::move(o.storage_);
      shadow_ = std::move(o.shadow_);
      bprof_ = std::move(o.bprof_);
      o.dev_ = nullptr;
      o.n_ = 0;
      o.rz_ = 0;
      o.storage_.clear();
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  [[nodiscard]] size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] T* data() {
    host_mutable_access();
    return storage_.data() + rz_;
  }
  [[nodiscard]] const T* data() const {
    host_access();
    return storage_.data() + rz_;
  }
  [[nodiscard]] std::span<T> span() { return {data(), n_}; }
  [[nodiscard]] std::span<const T> span() const { return {data(), n_}; }
  [[nodiscard]] T& operator[](size_t i) {
    host_mutable_access();
    return storage_[rz_ + i];
  }
  [[nodiscard]] const T& operator[](size_t i) const {
    host_access();
    return storage_[rz_ + i];
  }

  /// Unchecked payload pointer for runtime code (views, copies, scan
  /// descriptors) that declares its accesses through the shadow itself.
  [[nodiscard]] T* raw_data() { return storage_.data() + rz_; }
  [[nodiscard]] const T* raw_data() const { return storage_.data() + rz_; }

  /// Sanitizer shadow; null when the owning Device runs unchecked.
  [[nodiscard]] const std::shared_ptr<sanitize::BufferShadow>& shadow() const {
    return shadow_;
  }

  /// Profiler traffic record; null when the owning Device runs
  /// unprofiled. Shared with views (like the shadow) so traffic on a
  /// view that outlives the buffer still lands somewhere accountable.
  [[nodiscard]] const std::shared_ptr<profile::BufferProf>& profile() const {
    return bprof_;
  }

  /// Pooled reuse: contents are stale, so drop the init bitmap (reading
  /// a previous lease's data before writing is the defect to catch). The
  /// race cells are dropped too — the lease handoff synchronizes the
  /// previous user's accesses with the next one's even across streams.
  void note_pool_reuse() {
    if (shadow_ != nullptr) {
      shadow_->reset_init();
      shadow_->reset_race();
    }
    if (bprof_ != nullptr) {
      bprof_->pool_reuses.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  void init_storage() {
    if (sanitize::Checker* chk = dev_->checker()) {
      rz_ = (kRedzoneBytes + sizeof(T) - 1) / sizeof(T);
      storage_.assign(n_ + 2 * rz_, T{});
      std::memset(storage_.data(), kRedzoneByte, rz_ * sizeof(T));
      std::memset(storage_.data() + rz_ + n_, kRedzoneByte, rz_ * sizeof(T));
      shadow_ = chk->on_alloc(n_, sizeof(T));
    } else {
      storage_.resize(n_);
    }
    if (profile::Profiler* prof = dev_->profiler()) {
      bprof_ = prof->on_alloc(sizeof(T), n_);
    }
  }

  void host_access() const {
    if (shadow_ != nullptr) shadow_->host_access();
  }

  // A mutable pointer handed to unchecked host code ends the shadow's
  // ability to track individual writes, so conservatively treat the whole
  // buffer as initialized (the same compromise Valgrind makes at syscall
  // boundaries). Checked code paths use raw_data() + views instead and
  // keep cell-precise tracking.
  void host_mutable_access() {
    if (shadow_ != nullptr) {
      shadow_->host_access();
      shadow_->mark_init_all();
    }
  }

  [[nodiscard]] bool redzones_intact() const {
    const auto zone_ok = [&](const T* p) {
      const auto* b = reinterpret_cast<const unsigned char*>(p);
      for (size_t i = 0; i < rz_ * sizeof(T); ++i) {
        if (b[i] != kRedzoneByte) return false;
      }
      return true;
    };
    return zone_ok(storage_.data()) && zone_ok(storage_.data() + rz_ + n_);
  }

  void release() {
    if (dev_ != nullptr) {
      if (shadow_ != nullptr) {
        dev_->checker()->on_free(*shadow_, redzones_intact());
        shadow_.reset();
      }
      if (bprof_ != nullptr) {
        bprof_->freed.store(true, std::memory_order_relaxed);
        bprof_.reset();
      }
      dev_->register_free(n_ * sizeof(T));
    }
    dev_ = nullptr;
  }

  Device* dev_ = nullptr;
  size_t n_ = 0;
  size_t rz_ = 0;  // redzone elements on EACH side (0 when unchecked)
  std::vector<T> storage_;
  std::shared_ptr<sanitize::BufferShadow> shadow_;
  std::shared_ptr<profile::BufferProf> bprof_;
};

/// Host -> device copy (accounted as PCIe traffic).
template <typename T>
void copy_h2d(Device& dev, DeviceBuffer<T>& dst, std::span<const T> src) {
  if (src.size() > dst.size()) throw format_error("copy_h2d: overflow");
  const obs::Span span("memcpy", "h2d", "bytes", src.size() * sizeof(T));
  if (const auto& sh = dst.shadow()) {
    (void)sh->pre_store_range(0, src.size(), nullptr, sanitize::kHostActor);
  }
  // Empty copies are legal no-ops (memcpy with null src/dst is UB).
  if (!src.empty()) {
    std::memcpy(dst.raw_data(), src.data(), src.size() * sizeof(T));
  }
  dev.trace().add_h2d(src.size() * sizeof(T));
  for_each_op_trace([&](Trace& t) { t.add_h2d(src.size() * sizeof(T)); });
  if (profile::Profiler* prof = dev.profiler()) {
    prof->on_memcpy_h2d(src.size() * sizeof(T));
  }
}

/// Device -> host copy (accounted as PCIe traffic).
template <typename T>
void copy_d2h(Device& dev, std::span<T> dst, const DeviceBuffer<T>& src,
              size_t count) {
  if (count > src.size() || count > dst.size()) {
    throw format_error("copy_d2h: overflow");
  }
  const obs::Span span("memcpy", "d2h", "bytes", count * sizeof(T));
  if (const auto& sh = src.shadow()) {
    (void)sh->pre_load_range(0, count, nullptr, sanitize::kHostActor);
  }
  if (count != 0) std::memcpy(dst.data(), src.raw_data(), count * sizeof(T));
  dev.trace().add_d2h(count * sizeof(T));
  for_each_op_trace([&](Trace& t) { t.add_d2h(count * sizeof(T)); });
  if (profile::Profiler* prof = dev.profiler()) {
    prof->on_memcpy_d2h(count * sizeof(T));
  }
}

/// Device -> device copy.
template <typename T>
void copy_d2d(Device& dev, DeviceBuffer<T>& dst, const DeviceBuffer<T>& src,
              size_t count) {
  if (count > src.size() || count > dst.size()) {
    throw format_error("copy_d2d: overflow");
  }
  const obs::Span span("memcpy", "d2d", "bytes", count * sizeof(T));
  if (const auto& sh = src.shadow()) {
    (void)sh->pre_load_range(0, count, nullptr, sanitize::kHostActor);
  }
  if (const auto& sh = dst.shadow()) {
    (void)sh->pre_store_range(0, count, nullptr, sanitize::kHostActor);
  }
  if (count != 0) std::memcpy(dst.raw_data(), src.raw_data(), count * sizeof(T));
  dev.trace().add_d2d(count * sizeof(T));
  for_each_op_trace([&](Trace& t) { t.add_d2d(count * sizeof(T)); });
  if (profile::Profiler* prof = dev.profiler()) {
    prof->on_memcpy_d2d(count * sizeof(T));
  }
}

/// Allocate a device buffer and upload host data into it.
template <typename T>
[[nodiscard]] DeviceBuffer<T> to_device(Device& dev, std::span<const T> src) {
  DeviceBuffer<T> buf(dev, src.size());
  copy_h2d(dev, buf, src);
  return buf;
}

/// Download a full device buffer into a new host vector.
template <typename T>
[[nodiscard]] std::vector<T> to_host(Device& dev, const DeviceBuffer<T>& src) {
  std::vector<T> out(src.size());
  copy_d2h<T>(dev, out, src, src.size());
  return out;
}

/// Download the first `count` elements only. Use this when the logical
/// content is shorter than the allocation (e.g. a compressed stream in a
/// worst-case-sized output buffer): downloading the full buffer would
/// read the uninitialized tail, which memcheck flags.
template <typename T>
[[nodiscard]] std::vector<T> to_host(Device& dev, const DeviceBuffer<T>& src,
                                     size_t count) {
  std::vector<T> out(count);
  copy_d2h<T>(dev, out, src, count);
  return out;
}

/// Run a host-side (CPU) stage over `bytes` bytes; accounted so the
/// perfmodel can charge host time (models cuSZ's Huffman build, cuSZx's
/// host prefix-sum, etc.).
template <typename Fn>
auto host_stage(Device& dev, std::uint64_t bytes, Fn&& fn) {
  dev.trace().add_host_stage(bytes);
  for_each_op_trace([&](Trace& t) { t.add_host_stage(bytes); });
  return fn();
}

}  // namespace szp::gpusim
