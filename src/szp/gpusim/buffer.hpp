// Device memory buffers and host<->device copies.
//
// Copies across the simulated PCIe boundary are accounted on the device
// trace so the perfmodel can charge them; device-resident access from
// kernels is accounted explicitly by the kernels themselves.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "szp/gpusim/device.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/common.hpp"

namespace szp::gpusim {

template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& dev, size_t n) : dev_(&dev), storage_(n) {
    dev_->register_alloc(n * sizeof(T));
  }

  DeviceBuffer(Device& dev, size_t n, T fill) : dev_(&dev), storage_(n, fill) {
    dev_->register_alloc(n * sizeof(T));
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : dev_(o.dev_), storage_(std::move(o.storage_)) {
    o.dev_ = nullptr;
    o.storage_.clear();
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      storage_ = std::move(o.storage_);
      o.dev_ = nullptr;
      o.storage_.clear();
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  [[nodiscard]] size_t size() const { return storage_.size(); }
  [[nodiscard]] bool empty() const { return storage_.empty(); }
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }
  [[nodiscard]] std::span<T> span() { return storage_; }
  [[nodiscard]] std::span<const T> span() const { return storage_; }
  [[nodiscard]] T& operator[](size_t i) { return storage_[i]; }
  [[nodiscard]] const T& operator[](size_t i) const { return storage_[i]; }

 private:
  void release() {
    if (dev_ != nullptr) dev_->register_free(storage_.size() * sizeof(T));
    dev_ = nullptr;
  }

  Device* dev_ = nullptr;
  std::vector<T> storage_;
};

/// Host -> device copy (accounted as PCIe traffic).
template <typename T>
void copy_h2d(Device& dev, DeviceBuffer<T>& dst, std::span<const T> src) {
  if (src.size() > dst.size()) throw format_error("copy_h2d: overflow");
  const obs::Span span("memcpy", "h2d", "bytes", src.size() * sizeof(T));
  // Empty copies are legal no-ops (memcpy with null src/dst is UB).
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(T));
  dev.trace().add_h2d(src.size() * sizeof(T));
}

/// Device -> host copy (accounted as PCIe traffic).
template <typename T>
void copy_d2h(Device& dev, std::span<T> dst, const DeviceBuffer<T>& src,
              size_t count) {
  if (count > src.size() || count > dst.size()) {
    throw format_error("copy_d2h: overflow");
  }
  const obs::Span span("memcpy", "d2h", "bytes", count * sizeof(T));
  if (count != 0) std::memcpy(dst.data(), src.data(), count * sizeof(T));
  dev.trace().add_d2h(count * sizeof(T));
}

/// Device -> device copy.
template <typename T>
void copy_d2d(Device& dev, DeviceBuffer<T>& dst, const DeviceBuffer<T>& src,
              size_t count) {
  if (count > src.size() || count > dst.size()) {
    throw format_error("copy_d2d: overflow");
  }
  const obs::Span span("memcpy", "d2d", "bytes", count * sizeof(T));
  if (count != 0) std::memcpy(dst.data(), src.data(), count * sizeof(T));
  dev.trace().add_d2d(count * sizeof(T));
}

/// Allocate a device buffer and upload host data into it.
template <typename T>
[[nodiscard]] DeviceBuffer<T> to_device(Device& dev, std::span<const T> src) {
  DeviceBuffer<T> buf(dev, src.size());
  copy_h2d(dev, buf, src);
  return buf;
}

/// Download a full device buffer into a new host vector.
template <typename T>
[[nodiscard]] std::vector<T> to_host(Device& dev, const DeviceBuffer<T>& src) {
  std::vector<T> out(src.size());
  copy_d2h<T>(dev, out, src, src.size());
  return out;
}

/// Run a host-side (CPU) stage over `bytes` bytes; accounted so the
/// perfmodel can charge host time (models cuSZ's Huffman build, cuSZx's
/// host prefix-sum, etc.).
template <typename Fn>
auto host_stage(Device& dev, std::uint64_t bytes, Fn&& fn) {
  dev.trace().add_host_stage(bytes);
  return fn();
}

}  // namespace szp::gpusim
