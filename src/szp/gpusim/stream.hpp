// CUDA-streams analogue for the simulated device runtime.
//
// A Stream is a FIFO queue of operations (kernel launches, memcpys, host
// tasks, event records/waits) executed in submission order on a dedicated
// thread, so transfers on one stream overlap compute on another. The
// Device's default stream executes operations inline on the caller's
// thread — exactly the legacy synchronous behavior, which is why the old
// launch()/copy_* API is now a thin wrapper over it.
//
// Cross-stream ordering comes from Events (record on the producing
// stream, wait on the consuming one, cudaEventRecord/cudaStreamWaitEvent
// style). The sanitizer's happens-before model follows the same edges:
// launches on different streams with no event path between them are
// reported as races by racecheck (see sanitize/checker.hpp).
//
// Error model: the first exception an op throws poisons the stream —
// subsequent work ops are skipped (event records still complete so
// cross-stream waiters never deadlock) — and is rethrown by the next
// synchronize(), which also returns the stream to a usable state.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/device.hpp"
#include "szp/gpusim/launch.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim {

/// Cross-stream synchronization point. record() on a stream captures
/// "everything submitted to that stream so far"; wait() on another stream
/// blocks that stream's queue until the recorded point has executed.
/// Copyable handle (shared state), like cudaEvent_t.
class Event {
 public:
  Event();

  /// Host-side wait for the latest recorded generation to complete
  /// (cudaEventSynchronize). No-op when never recorded.
  void synchronize() const;

  /// True when the latest recorded generation has completed (or the event
  /// was never recorded) — cudaEventQuery.
  [[nodiscard]] bool query() const;

  [[nodiscard]] std::uint64_t id() const;

 private:
  friend class Stream;

  struct State {
    std::uint64_t id = 0;
    mutable Mutex m;
    mutable CondVar cv;
    std::uint64_t last_record_gen SZP_GUARDED_BY(m) = 0;  // bumped at record
    std::uint64_t completed_gen SZP_GUARDED_BY(m) = 0;  // bumped when run
    /// Racecheck clock captured when the record op executed; waiters join
    /// it into their stream's clock (empty when racecheck is off).
    std::vector<std::uint64_t> hb_clock SZP_GUARDED_BY(m);
    /// Device of the recording stream, for host-sync happens-before edges.
    Device* dev SZP_GUARDED_BY(m) = nullptr;
  };
  std::shared_ptr<State> st_;
};

class Stream {
 public:
  /// Create an async stream on `dev`: operations run FIFO on a dedicated
  /// thread. `name` labels the stream's trace lane (default "stream<id>").
  explicit Stream(Device& dev, std::string name = {});

  /// Drains the queue and joins the thread. A pending error that was
  /// never observed via synchronize() is dropped (CUDA would surface it
  /// on the next API call; there is none here).
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] Device& device() { return dev_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Generic async operation. `kind` drives the timeline record and the
  /// overlap model's engine assignment (memcpy kinds occupy the copy
  /// engine, kernel/host the compute engine); `fn` runs on the stream
  /// thread. Anything `fn` captures by reference must outlive the op —
  /// i.e. stay alive until synchronize() (capture shared_ptrs for
  /// pooled-buffer leases).
  void submit(OpKind kind, std::string name, std::function<void()> fn);

  /// Async kernel launch (FIFO-ordered against this stream's other ops).
  /// `kernel_name` must have static storage duration (a string literal):
  /// the obs tracer and sanitizer keep the pointer, exactly as with the
  /// synchronous launch() API.
  template <typename F>
  void launch(const char* kernel_name, size_t grid_blocks, F&& body) {
    std::function<void(const BlockCtx&)> fn(std::forward<F>(body));
    submit(OpKind::kKernel, kernel_name,
           [this, kernel_name, grid_blocks, fn = std::move(fn)] {
             detail::run_blocks(dev_, kernel_name, grid_blocks, fn);
           });
  }

  /// Async copies. The buffer and the host span must outlive the op.
  template <typename T>
  void memcpy_h2d(DeviceBuffer<T>& dst, std::span<const T> src) {
    submit(OpKind::kMemcpyH2D, "h2d",
           [this, &dst, src] { copy_h2d(dev_, dst, src); });
  }
  template <typename T>
  void memcpy_d2h(std::span<T> dst, const DeviceBuffer<T>& src, size_t count) {
    submit(OpKind::kMemcpyD2H, "d2h",
           [this, dst, &src, count] { copy_d2h(dev_, dst, src, count); });
  }
  template <typename T>
  void memcpy_d2d(DeviceBuffer<T>& dst, const DeviceBuffer<T>& src,
                  size_t count) {
    submit(OpKind::kMemcpyD2D, "d2d",
           [this, &dst, &src, count] { copy_d2d(dev_, dst, src, count); });
  }

  /// Async host function (cudaLaunchHostFunc analogue).
  void host_task(std::string name, std::function<void()> fn) {
    submit(OpKind::kHostTask, std::move(name), std::move(fn));
  }

  /// Capture this stream's current tail in `ev` (cudaEventRecord).
  void record(Event& ev);

  /// Block this stream's queue until `ev`'s latest recorded point (as of
  /// this call) has executed (cudaStreamWaitEvent). Never-recorded events
  /// are a no-op, like CUDA.
  void wait(const Event& ev);

  /// Drain the queue; rethrows (and clears) the first stored op error.
  void synchronize();

  /// True when no submitted op is still queued or executing.
  [[nodiscard]] bool idle() const;

  /// The stream whose op is executing on this thread (nullptr outside op
  /// execution). The default stream sets this during inline execution, so
  /// profiler lane attribution works for both paths.
  [[nodiscard]] static const Stream* current();
  /// current()->name(), or "default" when no stream op is executing (host
  /// code calling the legacy sync API).
  [[nodiscard]] static std::string_view current_name();

  /// Racecheck vector-clock slot of this stream (0 = host/default-stream
  /// slot; only nonzero when racecheck is active). Consumed by the launch
  /// runner to tag each launch with its originating stream.
  [[nodiscard]] std::uint32_t hb_slot() const { return hb_slot_; }
  /// hb_slot() of the stream executing on this thread, or 0 (host).
  [[nodiscard]] static std::uint32_t calling_slot();

 private:
  friend class Device;
  friend class Event;

  struct Inline {};
  /// Default-stream constructor (Device only): no thread, ops run inline
  /// at submit, exceptions propagate to the caller directly.
  Stream(Device& dev, std::string name, Inline);

  struct Op {
    OpKind kind = OpKind::kHostTask;
    std::string name;
    std::uint64_t seq = 0;
    /// Request trace ID ambient on the submitting thread, re-established
    /// on the stream thread while the op executes so log records and
    /// flight-recorder events stay attributable to the originating
    /// Engine call.
    std::uint64_t trace_id = 0;
    std::function<void()> fn;
    std::shared_ptr<Event::State> ev;  // record/wait ops
    std::uint64_t gen = 0;             // event generation
    /// Submitting thread's racecheck clock, joined into this stream's
    /// clock when the op executes (submission is a real sync edge).
    std::vector<std::uint64_t> hb_release;
  };

  void init_hb();
  void enqueue(Op op);
  /// Executes one op with timeline/trace/HB instrumentation; throws.
  void execute(Op& op);
  void execute_record(Op& op);
  void execute_wait(Op& op);
  void thread_loop();

  Device& dev_;
  std::string name_;
  std::uint32_t id_ = 0;
  std::uint32_t hb_slot_ = 0;  // racecheck clock slot (0 = host/default)
  bool inline_ = false;

  mutable Mutex m_;
  CondVar cv_;          // queue not empty / closing
  CondVar drained_cv_;  // completed_ caught up
  std::deque<Op> q_ SZP_GUARDED_BY(m_);
  std::uint64_t submitted_ SZP_GUARDED_BY(m_) = 0;
  std::uint64_t completed_ SZP_GUARDED_BY(m_) = 0;
  bool closing_ SZP_GUARDED_BY(m_) = false;
  bool poisoned_ SZP_GUARDED_BY(m_) = false;
  std::exception_ptr error_ SZP_GUARDED_BY(m_);
  std::thread thr_;
};

}  // namespace szp::gpusim
