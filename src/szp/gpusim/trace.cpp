#include "szp/gpusim/trace.hpp"

namespace szp::gpusim {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kQuantPredict: return "QP";
    case Stage::kFixedLenEncode: return "FE";
    case Stage::kGlobalSync: return "GS";
    case Stage::kBitShuffle: return "BB";
    case Stage::kTransform: return "Transform";
    case Stage::kHistogram: return "Histogram";
    case Stage::kHuffman: return "Huffman";
    case Stage::kBlockEncode: return "BlockEncode";
    case Stage::kGather: return "Gather";
    case Stage::kOther: return "Other";
    case Stage::kCount_: break;
  }
  return "?";
}

namespace {
/// Saturating ("monus") subtraction: counters are monotonic, so a
/// negative diff can only come from operand mix-ups — clamp to 0 instead
/// of wrapping to astronomically large byte counts.
constexpr std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
}  // namespace

TraceSnapshot TraceSnapshot::operator-(const TraceSnapshot& rhs) const {
  TraceSnapshot d;
  for (unsigned i = 0; i < kNumStages; ++i) {
    d.stages[i].read_bytes =
        sat_sub(stages[i].read_bytes, rhs.stages[i].read_bytes);
    d.stages[i].write_bytes =
        sat_sub(stages[i].write_bytes, rhs.stages[i].write_bytes);
    d.stages[i].ops = sat_sub(stages[i].ops, rhs.stages[i].ops);
  }
  d.kernel_launches = sat_sub(kernel_launches, rhs.kernel_launches);
  d.h2d_bytes = sat_sub(h2d_bytes, rhs.h2d_bytes);
  d.d2h_bytes = sat_sub(d2h_bytes, rhs.d2h_bytes);
  d.d2d_bytes = sat_sub(d2d_bytes, rhs.d2d_bytes);
  d.host_bytes = sat_sub(host_bytes, rhs.host_bytes);
  d.host_stages = sat_sub(host_stages, rhs.host_stages);
  return d;
}

std::uint64_t TraceSnapshot::total_device_read_bytes() const {
  std::uint64_t t = 0;
  for (const auto& s : stages) t += s.read_bytes;
  return t;
}

std::uint64_t TraceSnapshot::total_device_write_bytes() const {
  std::uint64_t t = 0;
  for (const auto& s : stages) t += s.write_bytes;
  return t;
}

std::uint64_t TraceSnapshot::total_ops() const {
  std::uint64_t t = 0;
  for (const auto& s : stages) t += s.ops;
  return t;
}

TraceSnapshot Trace::snapshot() const {
  TraceSnapshot s;
  for (unsigned i = 0; i < kNumStages; ++i) {
    s.stages[i].read_bytes = stages_[i].read_bytes.load();
    s.stages[i].write_bytes = stages_[i].write_bytes.load();
    s.stages[i].ops = stages_[i].ops.load();
  }
  s.kernel_launches = kernel_launches_.load();
  s.h2d_bytes = h2d_bytes_.load();
  s.d2h_bytes = d2h_bytes_.load();
  s.d2d_bytes = d2d_bytes_.load();
  s.host_bytes = host_bytes_.load();
  s.host_stages = host_stages_.load();
  return s;
}

void Trace::reset() {
  for (auto& st : stages_) {
    st.read_bytes.store(0);
    st.write_bytes.store(0);
    st.ops.store(0);
  }
  kernel_launches_.store(0);
  h2d_bytes_.store(0);
  d2h_bytes_.store(0);
  d2d_bytes_.store(0);
  host_bytes_.store(0);
  host_stages_.store(0);
}

namespace {
thread_local OpTraceScope* t_op_trace_head = nullptr;
}  // namespace

OpTraceScope::OpTraceScope() : parent_(t_op_trace_head) {
  t_op_trace_head = this;
}

OpTraceScope::~OpTraceScope() { t_op_trace_head = parent_; }

OpTraceScope* OpTraceScope::current() { return t_op_trace_head; }

std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kKernel: return "kernel";
    case OpKind::kMemcpyH2D: return "h2d";
    case OpKind::kMemcpyD2H: return "d2h";
    case OpKind::kMemcpyD2D: return "d2d";
    case OpKind::kHostTask: return "host";
    case OpKind::kEventRecord: return "event_record";
    case OpKind::kEventWait: return "event_wait";
  }
  return "?";
}

}  // namespace szp::gpusim
