// Mask-checked warp primitives: the *_sync spellings of warp.hpp.
//
// On real hardware every __*_sync intrinsic names its participating
// lanes, and calling one with a mask that does not match the converged
// active lanes is UB that compute-sanitizer's synccheck flags. These
// wrappers declare the mask to the sanitizer and the primitive kind
// to the profiler (BlockCtx::warp_op) and
// forward to the pure-math primitives; kernels declare divergence with
// BlockCtx::set_active_mask. Zero cost when checking is disabled (one
// null-pointer branch in warp_op).
#pragma once

#include <cstdint>

#include "szp/gpusim/launch.hpp"
#include "szp/gpusim/warp.hpp"

namespace szp::gpusim::warp {

inline constexpr std::uint32_t kFullMask = 0xffffffffu;

template <typename T>
[[nodiscard]] T shfl_sync(const BlockCtx& ctx, std::uint32_t mask,
                          const Lanes<T>& v, unsigned src_lane) {
  ctx.warp_op("shfl_sync", profile::WarpOp::kShfl, mask);
  return shfl(v, src_lane);
}

template <typename T>
[[nodiscard]] Lanes<T> shfl_up_sync(const BlockCtx& ctx, std::uint32_t mask,
                                    const Lanes<T>& v, unsigned delta) {
  ctx.warp_op("shfl_up_sync", profile::WarpOp::kShflUp, mask);
  return shfl_up(v, delta);
}

template <typename T>
[[nodiscard]] Lanes<T> shfl_down_sync(const BlockCtx& ctx, std::uint32_t mask,
                                      const Lanes<T>& v, unsigned delta) {
  ctx.warp_op("shfl_down_sync", profile::WarpOp::kShflDown, mask);
  return shfl_down(v, delta);
}

[[nodiscard]] inline std::uint32_t ballot_sync(const BlockCtx& ctx,
                                               std::uint32_t mask,
                                               const Lanes<bool>& pred) {
  ctx.warp_op("ballot_sync", profile::WarpOp::kBallot, mask);
  return ballot(pred);
}

template <typename T>
[[nodiscard]] Lanes<T> inclusive_scan_sync(const BlockCtx& ctx,
                                           std::uint32_t mask, Lanes<T> v) {
  ctx.warp_op("inclusive_scan_sync", profile::WarpOp::kInclusiveScan, mask);
  return inclusive_scan(std::move(v));
}

template <typename T>
[[nodiscard]] Lanes<T> exclusive_scan_sync(const BlockCtx& ctx,
                                           std::uint32_t mask,
                                           const Lanes<T>& v) {
  ctx.warp_op("exclusive_scan_sync", profile::WarpOp::kExclusiveScan, mask);
  return exclusive_scan(v);
}

template <typename T>
[[nodiscard]] T reduce_max_sync(const BlockCtx& ctx, std::uint32_t mask,
                                const Lanes<T>& v) {
  ctx.warp_op("reduce_max_sync", profile::WarpOp::kReduceMax, mask);
  return reduce_max(v);
}

template <typename T>
[[nodiscard]] T reduce_add_sync(const BlockCtx& ctx, std::uint32_t mask,
                                const Lanes<T>& v) {
  ctx.warp_op("reduce_add_sync", profile::WarpOp::kReduceAdd, mask);
  return reduce_add(v);
}

}  // namespace szp::gpusim::warp
