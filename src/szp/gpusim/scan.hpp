// Device prefix-sum building blocks.
//
// ChainedScanState implements the single-pass chained-scan ("decoupled
// lookback") protocol cuSZp uses for its in-kernel Global Synchronization:
// each partition publishes its local aggregate, then walks backwards over
// predecessor descriptors, summing aggregates until it meets a published
// inclusive prefix. A two-pass scan is also provided for the ablation
// study (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "szp/gpusim/buffer.hpp"
#include "szp/gpusim/launch.hpp"

namespace szp::gpusim {

class ChainedScanState {
 public:
  ChainedScanState(Device& dev, size_t partitions)
      : state_(dev, partitions, std::uint64_t{0}) {}

  /// Called once by partition `p` with its local aggregate. Publishes the
  /// aggregate, resolves the exclusive prefix by lookback, publishes the
  /// inclusive prefix, and returns the exclusive prefix. Safe to call
  /// concurrently from blocks executing in any (claimed-in-order) schedule.
  std::uint64_t publish_and_lookback(const BlockCtx& ctx, Stage stage,
                                     size_t p, std::uint64_t aggregate);

  [[nodiscard]] size_t partitions() const { return state_.size(); }

  /// Inclusive prefix of partition p; valid only after its block finished.
  [[nodiscard]] std::uint64_t inclusive_prefix(size_t p);

 private:
  static constexpr std::uint64_t kFlagShift = 62;
  static constexpr std::uint64_t kValueMask = (std::uint64_t{1} << 62) - 1;
  static constexpr std::uint64_t kFlagInvalid = 0;
  static constexpr std::uint64_t kFlagAggregate = 1;
  static constexpr std::uint64_t kFlagPrefix = 2;

  DeviceBuffer<std::uint64_t> state_;
};

/// Exclusive scan of `data` in place using the single-pass chained scan;
/// one kernel launch. Returns the total sum.
std::uint64_t chained_exclusive_scan(Device& dev, DeviceBuffer<std::uint64_t>& data,
                                     Stage stage, size_t items_per_block = 1024);

/// Exclusive scan of `data` in place using a classic three-kernel
/// reduce-then-scan; kept for the scan ablation. Returns the total sum.
std::uint64_t twopass_exclusive_scan(Device& dev, DeviceBuffer<std::uint64_t>& data,
                                     Stage stage, size_t items_per_block = 1024);

}  // namespace szp::gpusim
