// gpusim kernel profiler: Nsight-Compute-style counter collection for
// the simulated device runtime.
//
// Activation mirrors the sanitizer:
//   * `SZP_PROFILE=1` (or `on`) — Devices built with the default ctor
//     collect profiles in memory; callers snapshot them explicitly
//     (szp_cli --profile, Engine::device_roundtrip).
//   * `SZP_PROFILE=<path>` — additionally registers every env-activated
//     Device with a process-wide Collector that writes the combined
//     profile JSON at exit (harness runs, ad-hoc tools).
//   * explicit `Device(workers, tools, profile::Options)` — tests.
//
// Disabled overhead is one null-pointer branch per instrumentation
// site, guarded by the same budget as the obs tracer (test_profile).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "szp/gpusim/profile/counters.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::gpusim::profile {

/// Profiler configuration, resolved once at Device construction.
struct Options {
  bool enabled = false;
  /// Device was armed by SZP_PROFILE (registers with the Collector when
  /// an export path is set).
  bool from_env = false;
  /// Non-empty when SZP_PROFILE named a file: the Collector writes the
  /// combined profile JSON there at process exit.
  std::string export_path;

  [[nodiscard]] static Options off() { return {}; }
  [[nodiscard]] static Options on() {
    Options o;
    o.enabled = true;
    return o;
  }
};

/// Parse an SZP_PROFILE-style value: "" / "0" / "off" → disabled,
/// "1" / "on" → collect only, anything else → collect + export path.
[[nodiscard]] Options options_from_string(std::string_view spec);

/// Read SZP_PROFILE from the environment (sets from_env when armed).
[[nodiscard]] Options options_from_env();

// --- snapshot value types (plain data, exporter input) -----------------

struct StageProfile {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t ops = 0;
  std::uint64_t ns = 0;  // timing family, not deterministic

  [[nodiscard]] bool counters_empty() const {
    return read_bytes == 0 && write_bytes == 0 && ops == 0;
  }
};

struct HistSnapshot {
  std::vector<std::uint64_t> buckets;  // pow2 buckets, bucket i ~ bit_width i
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
};

/// Per-launch wall-clock load-balance statistics over the block grid.
struct BlockStats {
  std::uint64_t executed = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0;
  /// max / mean block wall time: 1.0 = perfectly balanced grid,
  /// large values = straggler blocks dominated the launch.
  double imbalance = 0;
  /// sum(block wall) / launch wall: effective blocks in flight — the
  /// simulated runtime's occupancy analogue (capped by worker count).
  double avg_concurrency = 0;
};

struct LaunchProfile {
  std::string kernel;
  /// Stream lane the launch executed on ("default" for the sync API).
  std::string stream;
  std::uint64_t grid_blocks = 0;
  unsigned workers = 0;

  // deterministic counter section
  std::array<StageProfile, kNumStages> stages{};
  std::array<std::uint64_t, kNumWarpOps> warp_ops{};
  std::uint64_t atomic_stores = 0;
  std::uint64_t atomic_rmws = 0;
  std::uint64_t barriers = 0;
  std::uint64_t lookback_calls = 0;

  // schedule section (varies run to run)
  std::uint64_t lookback_read_bytes = 0;
  HistSnapshot lookback_depth;
  HistSnapshot lookback_spins;

  // timing section
  std::uint64_t wall_ns = 0;
  BlockStats blocks;

  [[nodiscard]] std::uint64_t total_read_bytes() const;
  [[nodiscard]] std::uint64_t total_write_bytes() const;
  [[nodiscard]] std::uint64_t total_ops() const;
};

struct BufferStats {
  std::uint64_t id = 0;
  std::size_t elem_bytes = 0;
  std::size_t elements = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t read_transactions = 0;
  std::uint64_t write_transactions = 0;
  std::uint64_t pool_reuses = 0;
  bool freed = false;
};

struct MemcpyStats {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t d2d_bytes = 0;
  std::uint64_t h2d_count = 0;
  std::uint64_t d2h_count = 0;
  std::uint64_t d2d_count = 0;
};

/// Everything one Device collected: the exporter unit.
struct SessionProfile {
  unsigned workers = 0;
  std::vector<LaunchProfile> launches;
  std::vector<BufferStats> buffers;
  MemcpyStats memcpy;
};

// --- the profiler ------------------------------------------------------

/// Owned by a Device when profiling is enabled. Thread-safe: launches
/// are serialized by the Device, but buffer registration and memcpys
/// can race with snapshots from other threads.
class Profiler {
 public:
  explicit Profiler(Options opts, unsigned workers);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Launch lifecycle (called from run_blocks). `stream` names the lane
  /// the launch runs on ("default" for the synchronous API).
  [[nodiscard]] std::shared_ptr<LaunchProf> begin_launch(
      std::string kernel, std::size_t grid_blocks,
      std::string stream = "default");
  void end_launch(const std::shared_ptr<LaunchProf>& lp, std::uint64_t wall_ns);

  /// Buffer lifecycle (called from DeviceBuffer).
  [[nodiscard]] std::shared_ptr<BufferProf> on_alloc(std::size_t elem_bytes,
                                                     std::size_t elems);
  void on_memcpy_h2d(std::uint64_t bytes);
  void on_memcpy_d2h(std::uint64_t bytes);
  void on_memcpy_d2d(std::uint64_t bytes);

  /// Value-typed copy of everything collected so far.
  [[nodiscard]] SessionProfile snapshot() const;
  /// Number of launches archived so far (for slicing roundtrips).
  [[nodiscard]] std::size_t launch_count() const;
  /// Drop all collected launches/buffers/memcpy totals.
  void reset();

 private:
  Options opts_;
  unsigned workers_;
  mutable Mutex mu_;
  std::vector<LaunchProfile> launches_ SZP_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<BufferProf>> buffers_ SZP_GUARDED_BY(mu_);
  std::uint64_t next_buffer_id_ SZP_GUARDED_BY(mu_) = 0;
  MemcpyStats memcpy_ SZP_GUARDED_BY(mu_);
};

/// Archive a finished LaunchProf into a value-typed LaunchProfile.
[[nodiscard]] LaunchProfile archive_launch(const LaunchProf& lp,
                                           std::uint64_t wall_ns);

// --- process-wide collection for SZP_PROFILE=<path> --------------------

/// Gathers SessionProfiles from env-activated Devices and writes the
/// combined profile JSON at process exit (std::atexit, hooked on first
/// registration like obs::init_from_env).
class Collector {
 public:
  static Collector& instance();

  /// Called by env-activated Devices at teardown (and by explicit
  /// flushes); archives a finished session.
  void archive(SessionProfile session);
  /// Write all archived sessions to `path`; returns false on I/O error.
  bool write(const std::string& path) const;
  [[nodiscard]] std::size_t session_count() const;
  void set_export_path(std::string path);
  void clear();

 private:
  Collector() = default;
  mutable Mutex mu_;
  std::vector<SessionProfile> sessions_ SZP_GUARDED_BY(mu_);
  std::string export_path_ SZP_GUARDED_BY(mu_);
};

}  // namespace szp::gpusim::profile
