#include "szp/gpusim/profile/report.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace szp::gpusim::profile {

namespace {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// Shortest-ish fixed rendering so a given double always serializes the
/// same way regardless of stream state.
void json_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void json_hist(std::ostream& os, const HistSnapshot& h, const char* indent) {
  os << "{\n"
     << indent << "  \"count\": " << h.count << ",\n"
     << indent << "  \"sum\": " << h.sum << ",\n"
     << indent << "  \"max\": " << h.max << ",\n"
     << indent << "  \"pow2_buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    os << (i ? ", " : "") << h.buckets[i];
  }
  os << "]\n" << indent << "}";
}

void json_counters(std::ostream& os, const LaunchProfile& lp) {
  os << "        \"counters\": {\n          \"stages\": {";
  bool first = true;
  for (unsigned s = 0; s < kNumStages; ++s) {
    const StageProfile& sp = lp.stages[s];
    if (sp.counters_empty()) continue;
    os << (first ? "\n" : ",\n") << "            ";
    json_string(os, stage_name(static_cast<Stage>(s)));
    os << ": {\"read_bytes\": " << sp.read_bytes
       << ", \"write_bytes\": " << sp.write_bytes << ", \"ops\": " << sp.ops
       << "}";
    first = false;
  }
  os << "\n          },\n          \"warp_ops\": {";
  first = true;
  for (unsigned w = 0; w < kNumWarpOps; ++w) {
    if (lp.warp_ops[w] == 0) continue;
    os << (first ? "\n" : ",\n") << "            ";
    json_string(os, warp_op_name(static_cast<WarpOp>(w)));
    os << ": " << lp.warp_ops[w];
    first = false;
  }
  os << "\n          },\n          \"atomics\": {\"stores\": "
     << lp.atomic_stores << ", \"rmws\": " << lp.atomic_rmws
     << ", \"lookback_calls\": " << lp.lookback_calls << "},\n"
     << "          \"barriers\": " << lp.barriers << "\n        }";
}

void json_schedule(std::ostream& os, const LaunchProfile& lp) {
  os << "        \"schedule\": {\n"
     << "          \"lookback_read_bytes\": " << lp.lookback_read_bytes
     << ",\n          \"lookback_depth\": ";
  json_hist(os, lp.lookback_depth, "          ");
  os << ",\n          \"lookback_spins\": ";
  json_hist(os, lp.lookback_spins, "          ");
  os << "\n        }";
}

void json_timing(std::ostream& os, const LaunchProfile& lp) {
  os << "        \"timing\": {\n"
     << "          \"wall_ns\": " << lp.wall_ns << ",\n"
     << "          \"stage_ns\": {";
  bool first = true;
  for (unsigned s = 0; s < kNumStages; ++s) {
    if (lp.stages[s].ns == 0) continue;
    os << (first ? "" : ", ");
    json_string(os, stage_name(static_cast<Stage>(s)));
    os << ": " << lp.stages[s].ns;
    first = false;
  }
  const BlockStats& b = lp.blocks;
  os << "},\n          \"blocks\": {\"executed\": " << b.executed
     << ", \"min_ns\": " << b.min_ns << ", \"max_ns\": " << b.max_ns
     << ", \"mean_ns\": ";
  json_number(os, b.mean_ns);
  os << ", \"imbalance\": ";
  json_number(os, b.imbalance);
  os << ", \"avg_concurrency\": ";
  json_number(os, b.avg_concurrency);
  os << "}\n        }";
}

void json_derived(std::ostream& os, const LaunchProfile& lp,
                  const ModelParams& model) {
  const DerivedLaunch d = derive_launch(lp, model);
  os << "        \"derived\": {\n          \"gpu\": ";
  json_string(os, model.gpu);
  os << ",\n          \"stage_s\": {";
  bool first = true;
  for (unsigned s = 0; s < kNumStages; ++s) {
    if (d.stage_s[s] == 0) continue;
    os << (first ? "" : ", ");
    json_string(os, stage_name(static_cast<Stage>(s)));
    os << ": ";
    json_number(os, d.stage_s[s]);
    first = false;
  }
  os << "},\n          \"device_s\": ";
  json_number(os, d.device_s);
  os << ",\n          \"effective_gbps\": ";
  json_number(os, d.effective_gbps);
  os << ",\n          \"arithmetic_intensity\": ";
  json_number(os, d.arithmetic_intensity);
  os << ",\n          \"bound\": ";
  json_string(os, d.bound);
  os << "\n        }";
}

void json_launch(std::ostream& os, const LaunchProfile& lp,
                 const ReportOptions& opts) {
  os << "      {\n        \"kernel\": ";
  json_string(os, lp.kernel);
  os << ",\n        \"stream\": ";
  json_string(os, lp.stream);
  os << ",\n        \"grid_blocks\": " << lp.grid_blocks << ",\n";
  json_counters(os, lp);
  if (opts.include_timing) {
    os << ",\n";
    json_schedule(os, lp);
    os << ",\n";
    json_timing(os, lp);
    if (opts.model != nullptr) {
      os << ",\n";
      json_derived(os, lp, *opts.model);
    }
  }
  os << "\n      }";
}

void json_session(std::ostream& os, const SessionProfile& s,
                  const ReportOptions& opts) {
  os << "    {\n      \"workers\": " << s.workers << ",\n"
     << "      \"launches\": [";
  for (std::size_t i = 0; i < s.launches.size(); ++i) {
    os << (i ? ",\n" : "\n");
    json_launch(os, s.launches[i], opts);
  }
  os << (s.launches.empty() ? "]" : "\n      ]");
  os << ",\n      \"buffers\": [";
  for (std::size_t i = 0; i < s.buffers.size(); ++i) {
    const BufferStats& b = s.buffers[i];
    os << (i ? ",\n" : "\n")
       << "        {\"id\": " << b.id << ", \"elem_bytes\": " << b.elem_bytes
       << ", \"elements\": " << b.elements
       << ", \"read_bytes\": " << b.read_bytes
       << ", \"write_bytes\": " << b.write_bytes
       << ", \"read_transactions\": " << b.read_transactions
       << ", \"write_transactions\": " << b.write_transactions
       << ", \"pool_reuses\": " << b.pool_reuses
       << ", \"freed\": " << (b.freed ? "true" : "false") << "}";
  }
  os << (s.buffers.empty() ? "]" : "\n      ]");
  const MemcpyStats& m = s.memcpy;
  os << ",\n      \"memcpy\": {\"h2d_bytes\": " << m.h2d_bytes
     << ", \"d2h_bytes\": " << m.d2h_bytes << ", \"d2d_bytes\": "
     << m.d2d_bytes << ", \"h2d_count\": " << m.h2d_count
     << ", \"d2h_count\": " << m.d2h_count << ", \"d2d_count\": "
     << m.d2d_count << "}\n    }";
}

}  // namespace

DerivedLaunch derive_launch(const LaunchProfile& lp,
                            const ModelParams& model) {
  DerivedLaunch d;
  double traffic_total = 0;
  double compute_total = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t ops_total = 0;
  for (unsigned s = 0; s < kNumStages; ++s) {
    const StageProfile& sp = lp.stages[s];
    const auto bytes = sp.read_bytes + sp.write_bytes;
    const double traffic_s =
        model.hbm_bandwidth > 0
            ? static_cast<double>(bytes) / model.hbm_bandwidth
            : 0;
    const double compute_s = static_cast<double>(sp.ops) * model.op_cost[s];
    d.stage_s[s] = traffic_s > compute_s ? traffic_s : compute_s;
    traffic_total += traffic_s;
    compute_total += compute_s;
    bytes_total += bytes;
    ops_total += sp.ops;
  }
  for (const double s : d.stage_s) d.device_s += s;
  d.device_s += model.kernel_launch_s;
  if (d.device_s > 0) {
    d.effective_gbps = static_cast<double>(bytes_total) / d.device_s / 1e9;
  }
  if (bytes_total > 0) {
    d.arithmetic_intensity =
        static_cast<double>(ops_total) / static_cast<double>(bytes_total);
  }
  d.bound = traffic_total >= compute_total ? "memory" : "compute";
  return d;
}

void write_profile_json(std::ostream& os,
                        std::span<const SessionProfile> sessions,
                        const ReportOptions& opts) {
  os << "{\n  \"szp_profile_version\": 1,\n  \"sessions\": [";
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    os << (i ? ",\n" : "\n");
    json_session(os, sessions[i], opts);
  }
  os << (sessions.empty() ? "]" : "\n  ]") << "\n}\n";
}

bool write_profile_json_file(const std::string& path,
                             std::span<const SessionProfile> sessions,
                             const ReportOptions& opts) {
  std::ofstream out(path);
  if (!out) return false;
  write_profile_json(out, sessions, opts);
  return static_cast<bool>(out);
}

std::string counter_fingerprint(std::span<const SessionProfile> sessions) {
  std::ostringstream os;
  ReportOptions opts;
  opts.include_timing = false;
  write_profile_json(os, sessions, opts);
  return os.str();
}

void write_profile_text(std::ostream& os,
                        std::span<const SessionProfile> sessions,
                        const ReportOptions& opts) {
  std::size_t si = 0;
  for (const SessionProfile& s : sessions) {
    os << "profile session " << si++ << " (" << s.workers << " workers, "
       << s.launches.size() << " launches)\n";
    for (const LaunchProfile& lp : s.launches) {
      os << "  kernel " << lp.kernel << " stream=" << lp.stream
         << " grid=" << lp.grid_blocks;
      if (opts.include_timing) {
        os << " wall=" << lp.wall_ns << "ns";
      }
      os << "\n    " << std::left << std::setw(6) << "stage" << std::right
         << std::setw(14) << "read B" << std::setw(14) << "write B"
         << std::setw(12) << "ops";
      if (opts.include_timing) os << std::setw(14) << "time ns";
      os << '\n';
      for (unsigned st = 0; st < kNumStages; ++st) {
        const StageProfile& sp = lp.stages[st];
        if (sp.counters_empty() && sp.ns == 0) continue;
        os << "    " << std::left << std::setw(6)
           << stage_name(static_cast<Stage>(st)) << std::right
           << std::setw(14) << sp.read_bytes << std::setw(14)
           << sp.write_bytes << std::setw(12) << sp.ops;
        if (opts.include_timing) os << std::setw(14) << sp.ns;
        os << '\n';
      }
      os << "    warp ops:";
      bool any = false;
      for (unsigned w = 0; w < kNumWarpOps; ++w) {
        if (lp.warp_ops[w] == 0) continue;
        os << ' ' << warp_op_name(static_cast<WarpOp>(w)) << '='
           << lp.warp_ops[w];
        any = true;
      }
      if (!any) os << " none";
      os << "\n    atomics: stores=" << lp.atomic_stores
         << " rmws=" << lp.atomic_rmws
         << " lookback_calls=" << lp.lookback_calls
         << " barriers=" << lp.barriers << '\n';
      if (opts.include_timing && lp.lookback_calls > 0) {
        os << "    lookback: depth max=" << lp.lookback_depth.max
           << " spins max=" << lp.lookback_spins.max
           << " polled=" << lp.lookback_read_bytes << " B\n";
      }
      if (opts.include_timing && lp.blocks.executed > 0) {
        os << "    blocks: " << lp.blocks.executed << " run, mean="
           << static_cast<std::uint64_t>(lp.blocks.mean_ns)
           << "ns max=" << lp.blocks.max_ns << "ns imbalance=" << std::fixed
           << std::setprecision(2) << lp.blocks.imbalance
           << " avg_concurrency=" << lp.blocks.avg_concurrency
           << std::defaultfloat << '\n';
      }
      if (opts.include_timing && opts.model != nullptr) {
        const DerivedLaunch d = derive_launch(lp, *opts.model);
        os << "    derived (" << opts.model->gpu << "): device_s="
           << d.device_s << " effective=" << d.effective_gbps
           << " GB/s intensity=" << d.arithmetic_intensity << " ops/B ("
           << d.bound << "-bound)\n";
      }
    }
    for (const BufferStats& b : s.buffers) {
      os << "  buffer " << b.id << ": " << b.elements << " x "
         << b.elem_bytes << " B, read " << b.read_bytes << " B/"
         << b.read_transactions << " tx, write " << b.write_bytes << " B/"
         << b.write_transactions << " tx";
      if (b.pool_reuses > 0) os << ", " << b.pool_reuses << " pool reuses";
      if (b.freed) os << ", freed";
      os << '\n';
    }
    const MemcpyStats& m = s.memcpy;
    os << "  memcpy: h2d " << m.h2d_bytes << " B/" << m.h2d_count
       << ", d2h " << m.d2h_bytes << " B/" << m.d2h_count << ", d2d "
       << m.d2d_bytes << " B/" << m.d2d_count << '\n';
  }
}

}  // namespace szp::gpusim::profile
