// Hot-path collection structures for the gpusim kernel profiler.
//
// This header is what the runtime layers (launch.hpp, view.hpp,
// buffer.hpp, warp_sync.hpp) include: a per-launch accumulator
// (LaunchProf) and a per-buffer traffic record (BufferProf), both built
// from relaxed atomics so concurrent thread blocks can account without
// locks. The aggregation/report side lives in profile.hpp / report.hpp.
//
// Disabled fast path: a Device without profiling hands out null
// LaunchProf/BufferProf pointers and every instrumentation site is a
// single null-pointer branch — the same contract as the sanitizer.
//
// Counters are split into two families:
//   * deterministic — a pure function of the input and codec config
//     (stage bytes/ops, warp-primitive counts, atomic publish/RMW
//     counts, barrier counts, per-buffer traffic). Two identical runs
//     produce identical values under any schedule.
//   * schedule/timing — wall clocks and contention artifacts (per-block
//     wall time, lookback depth/spin histograms, lookback descriptor
//     polling bytes). These vary run to run and are reported separately
//     so the deterministic section stays byte-comparable.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "szp/gpusim/trace.hpp"

namespace szp::gpusim::profile {

/// Warp primitives the *_sync wrappers declare (warp_sync.hpp).
enum class WarpOp : std::uint8_t {
  kShfl = 0,
  kShflUp,
  kShflDown,
  kBallot,
  kInclusiveScan,
  kExclusiveScan,
  kReduceMax,
  kReduceAdd,
  kCount_,
};

inline constexpr unsigned kNumWarpOps = static_cast<unsigned>(WarpOp::kCount_);

[[nodiscard]] std::string_view warp_op_name(WarpOp op);

/// Power-of-two histogram with lock-free observation: bucket i counts
/// values v with bit_width(v) == i (bucket 0 = zero values, the last
/// bucket saturates). Used for the lookback depth/spin distributions.
template <unsigned NBuckets>
class AtomicPow2Hist {
 public:
  static constexpr unsigned kBuckets = NBuckets;

  void observe(std::uint64_t v) {
    const unsigned w = static_cast<unsigned>(std::bit_width(v));
    const unsigned idx = w < NBuckets ? w : NBuckets - 1;
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t bucket(unsigned i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, NBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Per-buffer device traffic, hooked through the checked views: bytes
/// moved and transactions issued (one load/store or one ranged span
/// declaration = one transaction, mirroring coalesced-access accounting).
/// Owned by the profiler for the session, shared with the buffer like
/// the sanitizer's BufferShadow so views stay UAF-safe.
struct BufferProf {
  std::uint64_t id = 0;
  std::size_t elem_bytes = 0;
  std::size_t elems = 0;
  std::atomic<std::uint64_t> read_bytes{0};
  std::atomic<std::uint64_t> write_bytes{0};
  std::atomic<std::uint64_t> read_transactions{0};
  std::atomic<std::uint64_t> write_transactions{0};
  std::atomic<std::uint64_t> pool_reuses{0};
  std::atomic<bool> freed{false};

  void on_read(std::uint64_t bytes) {
    read_bytes.fetch_add(bytes, std::memory_order_relaxed);
    read_transactions.fetch_add(1, std::memory_order_relaxed);
  }
  void on_write(std::uint64_t bytes) {
    write_bytes.fetch_add(bytes, std::memory_order_relaxed);
    write_transactions.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Per-launch accumulator. Created by the profiler at launch entry,
/// handed to every BlockCtx of the launch, archived (as a value-typed
/// LaunchProfile) at launch exit.
class LaunchProf {
 public:
  LaunchProf(std::string kernel, std::size_t grid_blocks, unsigned workers,
             std::string stream = "default")
      : kernel_(std::move(kernel)),
        stream_(std::move(stream)),
        grid_blocks_(grid_blocks),
        workers_(workers),
        block_wall_ns_(grid_blocks) {}

  // --- deterministic counters -------------------------------------------
  void add_read(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_write(Stage s, std::uint64_t bytes) {
    stages_[idx(s)].write_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_ops(Stage s, std::uint64_t n) {
    stages_[idx(s)].ops.fetch_add(n, std::memory_order_relaxed);
  }
  void count_warp_op(WarpOp op) {
    warp_ops_[static_cast<unsigned>(op)].fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  void count_atomic_store() {
    atomic_stores_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_atomic_rmw() {
    atomic_rmws_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_barrier() { barriers_.fetch_add(1, std::memory_order_relaxed); }

  // --- schedule/timing counters -----------------------------------------
  /// One decoupled-lookback walk: `depth` descriptor reads, `spins`
  /// yield-retries on unpublished descriptors. The walk count itself is
  /// deterministic (one per non-first partition); depth and spins are
  /// schedule artifacts — the hardware's "CAS retry" analogue.
  void record_lookback(std::uint64_t depth, std::uint64_t spins) {
    lookback_calls_.fetch_add(1, std::memory_order_relaxed);
    lookback_depth_.observe(depth);
    lookback_spins_.observe(spins);
  }
  /// Descriptor-polling traffic (depth * descriptor size). Kept out of
  /// the deterministic stage counters: how many descriptors a partition
  /// reads depends on which predecessors had published a prefix.
  void add_lookback_bytes(std::uint64_t bytes) {
    lookback_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_stage_ns(Stage s, std::uint64_t ns) {
    stage_ns_[idx(s)].fetch_add(ns, std::memory_order_relaxed);
  }
  /// Per-block wall time; each block index is written by exactly one
  /// worker, so the slots are race-free by construction.
  void block_done(std::size_t block_idx, std::uint64_t wall_ns) {
    block_wall_ns_[block_idx].store(wall_ns, std::memory_order_relaxed);
    blocks_run_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- readbacks (aggregation side; see profile.cpp) --------------------
  [[nodiscard]] const std::string& kernel() const { return kernel_; }
  [[nodiscard]] const std::string& stream() const { return stream_; }
  [[nodiscard]] std::size_t grid_blocks() const { return grid_blocks_; }
  [[nodiscard]] unsigned workers() const { return workers_; }
  [[nodiscard]] std::uint64_t stage_read_bytes(unsigned s) const {
    return stages_[s].read_bytes.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stage_write_bytes(unsigned s) const {
    return stages_[s].write_bytes.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stage_ops(unsigned s) const {
    return stages_[s].ops.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stage_ns(unsigned s) const {
    return stage_ns_[s].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t warp_op_count(unsigned op) const {
    return warp_ops_[op].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t atomic_stores() const {
    return atomic_stores_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t atomic_rmws() const {
    return atomic_rmws_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t barriers() const {
    return barriers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookback_calls() const {
    return lookback_calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookback_bytes() const {
    return lookback_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_run() const {
    return blocks_run_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t block_wall_ns(std::size_t i) const {
    return block_wall_ns_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AtomicPow2Hist<20>& lookback_depth() const {
    return lookback_depth_;
  }
  [[nodiscard]] const AtomicPow2Hist<28>& lookback_spins() const {
    return lookback_spins_;
  }

 private:
  static constexpr unsigned idx(Stage s) { return static_cast<unsigned>(s); }

  struct StageAtomic {
    std::atomic<std::uint64_t> read_bytes{0};
    std::atomic<std::uint64_t> write_bytes{0};
    std::atomic<std::uint64_t> ops{0};
  };

  std::string kernel_;
  std::string stream_;
  std::size_t grid_blocks_;
  unsigned workers_;
  std::array<StageAtomic, kNumStages> stages_{};
  std::array<std::atomic<std::uint64_t>, kNumStages> stage_ns_{};
  std::array<std::atomic<std::uint64_t>, kNumWarpOps> warp_ops_{};
  std::atomic<std::uint64_t> atomic_stores_{0};
  std::atomic<std::uint64_t> atomic_rmws_{0};
  std::atomic<std::uint64_t> barriers_{0};
  std::atomic<std::uint64_t> lookback_calls_{0};
  std::atomic<std::uint64_t> lookback_bytes_{0};
  AtomicPow2Hist<20> lookback_depth_;
  AtomicPow2Hist<28> lookback_spins_;
  std::vector<std::atomic<std::uint64_t>> block_wall_ns_;
  std::atomic<std::uint64_t> blocks_run_{0};
};

}  // namespace szp::gpusim::profile
