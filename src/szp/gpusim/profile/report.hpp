// Profile exporters: JSON (schema documented in docs/OBSERVABILITY.md)
// and a human-readable text report, plus the perf-model-derived
// throughput / arithmetic-intensity section.
//
// gpusim cannot depend on szp_perfmodel (perfmodel consumes gpusim
// traces), so the model inputs arrive as a plain ModelParams struct;
// perfmodel/profile_bridge.hpp adapts a HardwareSpec into one for
// callers that link both (CLI, benches).
#pragma once

#include <array>
#include <iosfwd>
#include <span>
#include <string>

#include "szp/gpusim/profile/profile.hpp"

namespace szp::gpusim::profile {

/// Static hardware assumptions the derived section combines with the
/// measured counters (mirrors perfmodel::HardwareSpec; see
/// docs/PERFMODEL.md for which inputs are measured vs. assumed).
struct ModelParams {
  std::string gpu;
  double hbm_bandwidth = 0;              // bytes/s
  double pcie_bandwidth = 0;             // bytes/s
  double kernel_launch_s = 0;            // seconds per launch
  std::array<double, kNumStages> op_cost{};  // seconds per counted op
};

struct ReportOptions {
  /// Include the "schedule", "timing" and "derived" sections. The
  /// determinism tests (and any byte-comparison of two runs) set this
  /// to false so only run-invariant counters are emitted.
  bool include_timing = true;
  /// When set, each launch gains a "derived" object (modeled stage
  /// seconds from measured traffic/ops, bound classification,
  /// arithmetic intensity, effective GB/s).
  const ModelParams* model = nullptr;
};

/// Per-launch quantities computed from measured counters + ModelParams.
struct DerivedLaunch {
  std::array<double, kNumStages> stage_s{};  // max(traffic, compute) per stage
  double device_s = 0;        // sum of stage_s + kernel launch cost
  double effective_gbps = 0;  // total measured traffic / device_s
  /// total ops / total bytes — the roofline x-axis.
  double arithmetic_intensity = 0;
  /// "memory" when HBM traffic dominates the modeled time, else "compute".
  std::string bound;
};

[[nodiscard]] DerivedLaunch derive_launch(const LaunchProfile& lp,
                                          const ModelParams& model);

void write_profile_json(std::ostream& os,
                        std::span<const SessionProfile> sessions,
                        const ReportOptions& opts);
void write_profile_text(std::ostream& os,
                        std::span<const SessionProfile> sessions,
                        const ReportOptions& opts);

/// Convenience: open `path` and write the JSON; false on I/O failure.
bool write_profile_json_file(const std::string& path,
                             std::span<const SessionProfile> sessions,
                             const ReportOptions& opts);

/// The deterministic-counter fingerprint of a session list: the profile
/// JSON with timing/schedule/derived sections omitted. Two runs with
/// identical input and config must produce byte-identical strings (see
/// tests/gpusim/test_profile_determinism.cpp).
[[nodiscard]] std::string counter_fingerprint(
    std::span<const SessionProfile> sessions);

}  // namespace szp::gpusim::profile
