#include "szp/gpusim/profile/profile.hpp"

#include <algorithm>
#include <cstdlib>

#include "szp/gpusim/profile/report.hpp"
#include "szp/obs/metrics.hpp"

namespace szp::gpusim::profile {

std::string_view warp_op_name(WarpOp op) {
  switch (op) {
    case WarpOp::kShfl: return "shfl";
    case WarpOp::kShflUp: return "shfl_up";
    case WarpOp::kShflDown: return "shfl_down";
    case WarpOp::kBallot: return "ballot";
    case WarpOp::kInclusiveScan: return "inclusive_scan";
    case WarpOp::kExclusiveScan: return "exclusive_scan";
    case WarpOp::kReduceMax: return "reduce_max";
    case WarpOp::kReduceAdd: return "reduce_add";
    case WarpOp::kCount_: break;
  }
  return "?";
}

Options options_from_string(std::string_view spec) {
  Options o;
  if (spec.empty() || spec == "0" || spec == "off") return o;
  o.enabled = true;
  if (spec == "1" || spec == "on") return o;
  o.export_path.assign(spec);
  return o;
}

Options options_from_env() {
  const char* raw = std::getenv("SZP_PROFILE");
  Options o = options_from_string(raw == nullptr ? "" : raw);
  if (o.enabled) o.from_env = true;
  return o;
}

std::uint64_t LaunchProfile::total_read_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : stages) n += s.read_bytes;
  return n;
}

std::uint64_t LaunchProfile::total_write_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : stages) n += s.write_bytes;
  return n;
}

std::uint64_t LaunchProfile::total_ops() const {
  std::uint64_t n = 0;
  for (const auto& s : stages) n += s.ops;
  return n;
}

namespace {

template <unsigned N>
HistSnapshot snapshot_hist(const AtomicPow2Hist<N>& h) {
  HistSnapshot out;
  out.buckets.resize(N);
  for (unsigned i = 0; i < N; ++i) out.buckets[i] = h.bucket(i);
  // Trim trailing empty buckets so reports stay compact and two runs
  // with the same populated range compare equal.
  while (!out.buckets.empty() && out.buckets.back() == 0) {
    out.buckets.pop_back();
  }
  out.count = h.count();
  out.sum = h.sum();
  out.max = h.max();
  return out;
}

}  // namespace

LaunchProfile archive_launch(const LaunchProf& lp, std::uint64_t wall_ns) {
  LaunchProfile out;
  out.kernel = lp.kernel();
  out.stream = lp.stream();
  out.grid_blocks = lp.grid_blocks();
  out.workers = lp.workers();
  for (unsigned s = 0; s < kNumStages; ++s) {
    out.stages[s].read_bytes = lp.stage_read_bytes(s);
    out.stages[s].write_bytes = lp.stage_write_bytes(s);
    out.stages[s].ops = lp.stage_ops(s);
    out.stages[s].ns = lp.stage_ns(s);
  }
  for (unsigned w = 0; w < kNumWarpOps; ++w) {
    out.warp_ops[w] = lp.warp_op_count(w);
  }
  out.atomic_stores = lp.atomic_stores();
  out.atomic_rmws = lp.atomic_rmws();
  out.barriers = lp.barriers();
  out.lookback_calls = lp.lookback_calls();
  out.lookback_read_bytes = lp.lookback_bytes();
  out.lookback_depth = snapshot_hist(lp.lookback_depth());
  out.lookback_spins = snapshot_hist(lp.lookback_spins());
  out.wall_ns = wall_ns;

  BlockStats& b = out.blocks;
  b.executed = lp.blocks_run();
  std::uint64_t sum = 0;
  std::uint64_t mn = UINT64_MAX;
  std::uint64_t mx = 0;
  for (std::size_t i = 0; i < lp.grid_blocks(); ++i) {
    const std::uint64_t ns = lp.block_wall_ns(i);
    if (ns == 0) continue;  // aborted / unclaimed block
    sum += ns;
    mn = std::min(mn, ns);
    mx = std::max(mx, ns);
  }
  if (b.executed > 0 && mn != UINT64_MAX) {
    b.min_ns = mn;
    b.max_ns = mx;
    b.mean_ns = static_cast<double>(sum) / static_cast<double>(b.executed);
    b.imbalance = b.mean_ns > 0 ? static_cast<double>(mx) / b.mean_ns : 0;
    b.avg_concurrency =
        wall_ns > 0 ? static_cast<double>(sum) / static_cast<double>(wall_ns)
                    : 0;
  }
  return out;
}

Profiler::Profiler(Options opts, unsigned workers)
    : opts_(std::move(opts)), workers_(workers) {}

Profiler::~Profiler() {
  if (opts_.from_env && !opts_.export_path.empty()) {
    Collector::instance().set_export_path(opts_.export_path);
    Collector::instance().archive(snapshot());
  }
}

std::shared_ptr<LaunchProf> Profiler::begin_launch(std::string kernel,
                                                   std::size_t grid_blocks,
                                                   std::string stream) {
  return std::make_shared<LaunchProf>(std::move(kernel), grid_blocks, workers_,
                                      std::move(stream));
}

void Profiler::end_launch(const std::shared_ptr<LaunchProf>& lp,
                          std::uint64_t wall_ns) {
  LaunchProfile archived = archive_launch(*lp, wall_ns);
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    reg.counter("profile.launches").add(1);
    reg.counter("profile.read_bytes").add(archived.total_read_bytes());
    reg.counter("profile.write_bytes").add(archived.total_write_bytes());
    reg.counter("profile.ops").add(archived.total_ops());
    reg.counter("profile.atomic_rmws").add(archived.atomic_rmws);
    reg.histogram("profile.launch_wall_ns", obs::Histogram::pow2_bounds(28))
        .observe(static_cast<double>(wall_ns));
  }
  const LockGuard lock(mu_);
  launches_.push_back(std::move(archived));
}

std::shared_ptr<BufferProf> Profiler::on_alloc(std::size_t elem_bytes,
                                               std::size_t elems) {
  auto bp = std::make_shared<BufferProf>();
  bp->elem_bytes = elem_bytes;
  bp->elems = elems;
  const LockGuard lock(mu_);
  bp->id = next_buffer_id_++;
  buffers_.push_back(bp);
  return bp;
}

void Profiler::on_memcpy_h2d(std::uint64_t bytes) {
  const LockGuard lock(mu_);
  memcpy_.h2d_bytes += bytes;
  memcpy_.h2d_count += 1;
}

void Profiler::on_memcpy_d2h(std::uint64_t bytes) {
  const LockGuard lock(mu_);
  memcpy_.d2h_bytes += bytes;
  memcpy_.d2h_count += 1;
}

void Profiler::on_memcpy_d2d(std::uint64_t bytes) {
  const LockGuard lock(mu_);
  memcpy_.d2d_bytes += bytes;
  memcpy_.d2d_count += 1;
}

SessionProfile Profiler::snapshot() const {
  const LockGuard lock(mu_);
  SessionProfile out;
  out.workers = workers_;
  out.launches = launches_;
  out.buffers.reserve(buffers_.size());
  for (const auto& bp : buffers_) {
    BufferStats bs;
    bs.id = bp->id;
    bs.elem_bytes = bp->elem_bytes;
    bs.elements = bp->elems;
    bs.read_bytes = bp->read_bytes.load(std::memory_order_relaxed);
    bs.write_bytes = bp->write_bytes.load(std::memory_order_relaxed);
    bs.read_transactions =
        bp->read_transactions.load(std::memory_order_relaxed);
    bs.write_transactions =
        bp->write_transactions.load(std::memory_order_relaxed);
    bs.pool_reuses = bp->pool_reuses.load(std::memory_order_relaxed);
    bs.freed = bp->freed.load(std::memory_order_relaxed);
    out.buffers.push_back(bs);
  }
  out.memcpy = memcpy_;
  return out;
}

std::size_t Profiler::launch_count() const {
  const LockGuard lock(mu_);
  return launches_.size();
}

void Profiler::reset() {
  const LockGuard lock(mu_);
  launches_.clear();
  buffers_.clear();
  next_buffer_id_ = 0;
  memcpy_ = {};
}

namespace {

void flush_collector() {
  Collector::instance().write("");  // "" = use the configured export path
}

}  // namespace

Collector& Collector::instance() {
  static Collector c;
  return c;
}

void Collector::archive(SessionProfile session) {
  static std::once_flag hook_once;
  const LockGuard lock(mu_);
  sessions_.push_back(std::move(session));
  if (!export_path_.empty()) {
    std::call_once(hook_once, [] { std::atexit(flush_collector); });
  }
}

bool Collector::write(const std::string& path) const {
  std::string target = path;
  std::vector<SessionProfile> sessions;
  {
    const LockGuard lock(mu_);
    if (target.empty()) target = export_path_;
    sessions = sessions_;
  }
  if (target.empty() || sessions.empty()) return true;
  return write_profile_json_file(target, sessions, ReportOptions{});
}

std::size_t Collector::session_count() const {
  const LockGuard lock(mu_);
  return sessions_.size();
}

void Collector::set_export_path(std::string path) {
  const LockGuard lock(mu_);
  export_path_ = std::move(path);
}

void Collector::clear() {
  const LockGuard lock(mu_);
  sessions_.clear();
  export_path_.clear();
}

}  // namespace szp::gpusim::profile
