#include "szp/gpusim/stream.hpp"

#include <atomic>
#include <optional>
#include <utility>

#include "szp/gpusim/sanitize/checker.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/trace_id.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::gpusim {

namespace {

std::atomic<std::uint64_t> g_next_event_id{1};

thread_local const Stream* t_current_stream = nullptr;

/// Marks the stream whose op runs on this thread (saved/restored so a
/// default-stream op submitted from inside another stream's host task
/// attributes correctly).
struct CurrentStreamScope {
  explicit CurrentStreamScope(const Stream* s) : prev(t_current_stream) {
    t_current_stream = s;
  }
  ~CurrentStreamScope() { t_current_stream = prev; }
  CurrentStreamScope(const CurrentStreamScope&) = delete;
  CurrentStreamScope& operator=(const CurrentStreamScope&) = delete;
  const Stream* prev;
};

}  // namespace

// --- Event --------------------------------------------------------------

Event::Event() : st_(std::make_shared<State>()) {
  st_->id = g_next_event_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Event::id() const { return st_->id; }

void Event::synchronize() const {
  UniqueLock lock(st_->m);
  const std::uint64_t gen = st_->last_record_gen;
  while (st_->completed_gen < gen) st_->cv.wait(lock);
  Device* dev = st_->dev;
  const std::vector<std::uint64_t> clock = st_->hb_clock;
  lock.unlock();
  // Everything before the record now happens-before this thread.
  if (dev != nullptr && dev->checker() != nullptr) {
    dev->checker()->hb_acquire(Stream::calling_slot(), clock);
  }
}

bool Event::query() const {
  const LockGuard lock(st_->m);
  return st_->completed_gen >= st_->last_record_gen;
}

// --- Stream -------------------------------------------------------------

Stream::Stream(Device& dev, std::string name) : dev_(dev) {
  id_ = dev_.next_stream_id();
  name_ = name.empty() ? "stream" + std::to_string(id_) : std::move(name);
  init_hb();
  dev_.register_stream(this);
  thr_ = std::thread([this] { thread_loop(); });
}

Stream::Stream(Device& dev, std::string name, Inline)
    : dev_(dev), name_(std::move(name)), inline_(true) {
  // Default stream shares the host's clock slot (0): its ops execute on
  // the submitting thread, so host and default-stream work are one actor.
  dev_.register_stream(this);
}

Stream::~Stream() {
  if (!inline_) {
    {
      const LockGuard lock(m_);
      closing_ = true;
    }
    cv_.notify_all();
    if (thr_.joinable()) thr_.join();
  }
  dev_.unregister_stream(this);
}

void Stream::init_hb() {
  if (sanitize::Checker* chk = dev_.checker()) {
    hb_slot_ = chk->hb_register_stream();
  }
}

const Stream* Stream::current() { return t_current_stream; }

std::string_view Stream::current_name() {
  return t_current_stream != nullptr ? std::string_view(t_current_stream->name_)
                                     : std::string_view("default");
}

std::uint32_t Stream::calling_slot() {
  return t_current_stream != nullptr ? t_current_stream->hb_slot_ : 0;
}

void Stream::submit(OpKind kind, std::string name, std::function<void()> fn) {
  Op op;
  op.kind = kind;
  op.name = std::move(name);
  op.fn = std::move(fn);
  enqueue(std::move(op));
}

void Stream::record(Event& ev) {
  Op op;
  op.kind = OpKind::kEventRecord;
  op.name = "record";
  op.ev = ev.st_;
  {
    const LockGuard lock(ev.st_->m);
    op.gen = ++ev.st_->last_record_gen;
  }
  enqueue(std::move(op));
}

void Stream::wait(const Event& ev) {
  std::uint64_t gen = 0;
  {
    const LockGuard lock(ev.st_->m);
    gen = ev.st_->last_record_gen;
  }
  if (gen == 0) return;  // never recorded — no-op, like cudaStreamWaitEvent
  Op op;
  op.kind = OpKind::kEventWait;
  op.name = "wait";
  op.ev = ev.st_;
  op.gen = gen;
  enqueue(std::move(op));
}

void Stream::enqueue(Op op) {
  // Capture the submitter's request trace ID so async execution can
  // re-establish it on the stream thread (inline ops run with it still
  // ambient; capturing is then a harmless re-set).
  op.trace_id = obs::current_trace_id();
  if (inline_) {
    {
      const LockGuard lock(m_);
      op.seq = submitted_++;
      ++completed_;  // inline ops retire before enqueue returns
    }
    if (current() != nullptr) {
      // Nested inside another stream op (a codec call running as an async
      // stream's op re-enters launch()): the enclosing op's stream
      // identity, timeline record and clock slot already cover this work,
      // so run it transparently instead of re-attributing to "default".
      switch (op.kind) {
        case OpKind::kEventRecord: execute_record(op); break;
        case OpKind::kEventWait: execute_wait(op); break;
        default: op.fn(); break;
      }
      return;
    }
    execute(op);  // exceptions propagate to the caller (sync semantics)
    return;
  }
  if (sanitize::Checker* chk = dev_.checker()) {
    op.hb_release = chk->hb_release(calling_slot());
  }
  dev_.add_async_pending();
  {
    const LockGuard lock(m_);
    op.seq = submitted_++;
    q_.push_back(std::move(op));
  }
  cv_.notify_all();
}

void Stream::execute(Op& op) {
  const CurrentStreamScope cur(this);
  const obs::TraceIdScope trace(op.trace_id);
  // op_kind_name returns a static literal, safe to hold in the
  // flight-recorder slot (op.name's storage is not).
  obs::fr::record(op.kind == OpKind::kMemcpyH2D ||
                          op.kind == OpKind::kMemcpyD2H ||
                          op.kind == OpKind::kMemcpyD2D
                      ? obs::fr::Kind::kMemcpy
                      : obs::fr::Kind::kStreamOp,
                  op_kind_name(op.kind).data(), op.seq);
  const bool tl = dev_.timeline_enabled();
  OpRecord rec;
  std::optional<OpTraceScope> scope;
  if (tl) {
    rec.stream_id = id_;
    rec.stream = inline_ ? "default" : name_;
    rec.name = op.name.empty() ? std::string(op_kind_name(op.kind)) : op.name;
    rec.kind = op.kind;
    rec.seq = op.seq;
    rec.event_id = op.ev != nullptr ? op.ev->id : 0;
    scope.emplace();
    rec.t_begin_ns = obs::now_ns();
  }
  const auto finish = [&] {
    if (tl) {
      rec.t_end_ns = obs::now_ns();
      rec.trace = scope->snapshot();
      scope.reset();
      dev_.append_op_record(std::move(rec));
    }
  };
  try {
    switch (op.kind) {
      case OpKind::kEventRecord: execute_record(op); break;
      case OpKind::kEventWait: execute_wait(op); break;
      default:
        if (!inline_ && !op.hb_release.empty()) {
          if (sanitize::Checker* chk = dev_.checker()) {
            chk->hb_acquire(hb_slot_, op.hb_release);
          }
        }
        op.fn();
        break;
    }
  } catch (...) {
    finish();
    throw;
  }
  finish();
}

void Stream::execute_record(Op& op) {
  std::vector<std::uint64_t> clock;
  if (sanitize::Checker* chk = dev_.checker()) {
    // calling_slot(), not hb_slot_: identical during normal execution (the
    // scope is set), but a record nested in another stream's op must
    // capture the enclosing stream's clock.
    clock = chk->hb_release(calling_slot());
  }
  {
    const LockGuard lock(op.ev->m);
    if (op.gen > op.ev->completed_gen) op.ev->completed_gen = op.gen;
    op.ev->hb_clock = std::move(clock);
    op.ev->dev = &dev_;
  }
  op.ev->cv.notify_all();
}

void Stream::execute_wait(Op& op) {
  std::vector<std::uint64_t> clock;
  {
    UniqueLock lock(op.ev->m);
    while (op.ev->completed_gen < op.gen) op.ev->cv.wait(lock);
    clock = op.ev->hb_clock;
  }
  if (sanitize::Checker* chk = dev_.checker()) {
    chk->hb_acquire(calling_slot(), clock);
  }
}

void Stream::synchronize() {
  if (inline_) return;  // inline ops retired (and threw) at submit
  std::exception_ptr err;
  {
    UniqueLock lock(m_);
    const std::uint64_t target = submitted_;
    while (completed_ < target) drained_cv_.wait(lock);
    err = std::exchange(error_, nullptr);
    poisoned_ = false;  // stream is reusable after the error is observed
  }
  // Everything the stream executed happens-before the host after this.
  if (sanitize::Checker* chk = dev_.checker()) {
    chk->hb_host_sync(calling_slot(), hb_slot_);
  }
  if (err) std::rethrow_exception(err);
}

bool Stream::idle() const {
  const LockGuard lock(m_);
  return completed_ >= submitted_;
}

void Stream::thread_loop() {
  obs::set_thread_name("stream:" + name_);
  // fr copies into a fixed buffer, so the temporary c_str() is fine.
  obs::fr::set_thread_name(("stream:" + name_).c_str());
  // Stream threads issue memcpys and host tasks while other streams'
  // kernels are in flight — legitimate overlap, not the stray host poke
  // memcheck's host-access-during-kernel check hunts for.
  const sanitize::KernelThreadScope stream_thread;
  for (;;) {
    Op op;
    bool skip = false;
    {
      UniqueLock lock(m_);
      while (!closing_ && q_.empty()) cv_.wait(lock);
      if (q_.empty()) return;  // closing and drained
      op = std::move(q_.front());
      q_.pop_front();
      skip = poisoned_;
    }
    try {
      // A poisoned stream skips work ops, but event records still
      // complete so waiters on other streams never deadlock.
      if (!skip || op.kind == OpKind::kEventRecord) execute(op);
    } catch (...) {
      const LockGuard lock(m_);
      if (!error_) error_ = std::current_exception();
      poisoned_ = true;
    }
    {
      const LockGuard lock(m_);
      ++completed_;
    }
    drained_cv_.notify_all();
    dev_.sub_async_pending();
  }
}

namespace detail {
void launch_on_default_stream(Device& dev, const char* kernel_name,
                              size_t grid_blocks,
                              std::function<void(const BlockCtx&)> body) {
  dev.default_stream().launch(kernel_name, grid_blocks, std::move(body));
}
}  // namespace detail

}  // namespace szp::gpusim
