#include "szp/gpusim/scan.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "szp/gpusim/view.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::gpusim {

namespace {

/// The GS tail-latency story (paper §4.3): how far each partition had to
/// walk back, and how long it spun on unpublished descriptors.
void record_lookback(std::uint64_t t0_ns, size_t partition,
                     std::uint64_t depth, std::uint64_t spins) {
  if (obs::tracing_enabled()) {
    obs::complete("gs", "lookback", t0_ns, obs::now_ns() - t0_ns, "depth",
                  depth, "spins", spins);
  }
  if (obs::metrics_enabled()) {
    static auto& depth_hist = obs::Registry::instance().histogram(
        "gs.lookback.depth", obs::Histogram::pow2_bounds(16));
    static auto& spin_hist = obs::Registry::instance().histogram(
        "gs.lookback.spins", obs::Histogram::pow2_bounds(24));
    static auto& calls = obs::Registry::instance().counter("gs.lookback.calls");
    depth_hist.observe(static_cast<double>(depth));
    spin_hist.observe(static_cast<double>(spins));
    calls.add();
  }
  (void)partition;
}

}  // namespace

std::uint64_t ChainedScanState::publish_and_lookback(const BlockCtx& ctx,
                                                     Stage stage, size_t p,
                                                     std::uint64_t aggregate) {
  if ((aggregate & ~kValueMask) != 0) {
    throw format_error("ChainedScanState: aggregate exceeds 62 bits");
  }
  // Raw storage: the descriptor words are the synchronization objects
  // themselves, accessed with atomic_ref; the sanitizer learns the
  // happens-before edges via the sync_release/sync_acquire hooks next to
  // each release-store / acquire-load pair.
  std::uint64_t* st = state_.raw_data();
  std::atomic_ref<std::uint64_t> self(st[p]);

  if (p == 0) {
    // Partition 0's inclusive prefix is its aggregate; publish directly.
    ctx.sync_release(&st[p]);
    self.store((kFlagPrefix << kFlagShift) | aggregate,
               std::memory_order_release);
    ctx.atomic_store_op();
    ctx.write(stage, sizeof(std::uint64_t));
    return 0;
  }

  ctx.sync_release(&st[p]);
  self.store((kFlagAggregate << kFlagShift) | aggregate,
             std::memory_order_release);
  ctx.atomic_store_op();
  ctx.write(stage, sizeof(std::uint64_t));

  const std::uint64_t t0_ns = obs::tracing_enabled() ? obs::now_ns() : 0;
  std::uint64_t exclusive = 0;
  std::uint64_t reads = 0;
  size_t i = p;
  std::uint64_t spins = 0;
  while (i > 0) {
    std::atomic_ref<std::uint64_t> pred(st[i - 1]);
    const std::uint64_t word = pred.load(std::memory_order_acquire);
    ++reads;
    const std::uint64_t flag = word >> kFlagShift;
    if (flag == kFlagPrefix) {
      ctx.sync_acquire(&st[i - 1]);
      exclusive += word & kValueMask;
      break;
    }
    if (flag == kFlagAggregate) {
      ctx.sync_acquire(&st[i - 1]);
      exclusive += word & kValueMask;
      --i;
      continue;
    }
    // Predecessor has not published yet: yield and retry. The launch
    // scheduler claims blocks in increasing order, so progress is
    // guaranteed; the cap converts a logic bug into an error, not a hang.
    // If another block of this launch threw (corrupt input), its prefix
    // will never be published — bail out instead of spinning to the cap.
    if (ctx.aborted()) {
      throw format_error("ChainedScanState: lookback aborted");
    }
    if (++spins > (std::uint64_t{1} << 34)) {
      throw format_error("ChainedScanState: lookback stalled");
    }
    std::this_thread::yield();
  }
  // Descriptor polling is schedule-dependent (how many predecessors had
  // published a prefix), so the profiler books it separately from the
  // deterministic stage counters.
  ctx.lookback_read(stage, reads * sizeof(std::uint64_t));
  ctx.lookback(reads, spins);
  record_lookback(t0_ns, p, reads, spins);

  ctx.sync_release(&st[p]);
  self.store((kFlagPrefix << kFlagShift) | ((exclusive + aggregate) & kValueMask),
             std::memory_order_release);
  ctx.atomic_store_op();
  ctx.write(stage, sizeof(std::uint64_t));
  return exclusive;
}

std::uint64_t ChainedScanState::inclusive_prefix(size_t p) {
  std::atomic_ref<std::uint64_t> ref(state_.raw_data()[p]);
  const std::uint64_t word = ref.load(std::memory_order_acquire);
  if ((word >> kFlagShift) != kFlagPrefix) {
    throw format_error("ChainedScanState: prefix not published");
  }
  return word & kValueMask;
}

std::uint64_t chained_exclusive_scan(Device& dev,
                                     DeviceBuffer<std::uint64_t>& data,
                                     Stage stage, size_t items_per_block) {
  const size_t n = data.size();
  if (n == 0) return 0;
  const size_t blocks = div_ceil(n, items_per_block);
  ChainedScanState scan_state(dev, blocks);

  launch(dev, "chained_exclusive_scan", blocks, [&](const BlockCtx& ctx) {
    const std::uint64_t t0 = ctx.profiled() ? obs::now_ns() : 0;
    const auto dv = device_view(data, ctx);
    const size_t begin = ctx.block_idx * items_per_block;
    const size_t end = std::min(n, begin + items_per_block);
    // Local (in-register) scan of this partition's tile.
    std::uint64_t aggregate = 0;
    for (const std::uint64_t v : dv.load_span(begin, end - begin)) {
      aggregate += v;
    }
    ctx.read(stage, (end - begin) * sizeof(std::uint64_t));

    const std::uint64_t exclusive =
        scan_state.publish_and_lookback(ctx, stage, ctx.block_idx, aggregate);

    std::uint64_t running = exclusive;
    for (std::uint64_t& slot : dv.store_span(begin, end - begin)) {
      const std::uint64_t v = slot;
      slot = running;
      running += v;
    }
    ctx.write(stage, (end - begin) * sizeof(std::uint64_t));
    if (ctx.profiled()) ctx.stage_ns(stage, obs::now_ns() - t0);
  });

  return scan_state.inclusive_prefix(blocks - 1);
}

std::uint64_t twopass_exclusive_scan(Device& dev,
                                     DeviceBuffer<std::uint64_t>& data,
                                     Stage stage, size_t items_per_block) {
  const size_t n = data.size();
  if (n == 0) return 0;
  const size_t blocks = div_ceil(n, items_per_block);
  DeviceBuffer<std::uint64_t> partials(dev, blocks, std::uint64_t{0});

  // Kernel 1: per-block reduction.
  launch(dev, "twopass_reduce", blocks, [&](const BlockCtx& ctx) {
    const std::uint64_t t0 = ctx.profiled() ? obs::now_ns() : 0;
    const auto dv = device_view(data, ctx);
    const auto pv = device_view(partials, ctx);
    const size_t begin = ctx.block_idx * items_per_block;
    const size_t end = std::min(n, begin + items_per_block);
    std::uint64_t sum = 0;
    for (const std::uint64_t v : dv.load_span(begin, end - begin)) sum += v;
    pv.store(ctx.block_idx, sum);
    ctx.read(stage, (end - begin) * sizeof(std::uint64_t));
    ctx.write(stage, sizeof(std::uint64_t));
    if (ctx.profiled()) ctx.stage_ns(stage, obs::now_ns() - t0);
  });

  // Kernel 2: single-block scan of the partials.
  std::uint64_t total = 0;
  launch(dev, "twopass_spine", 1, [&](const BlockCtx& ctx) {
    const std::uint64_t t0 = ctx.profiled() ? obs::now_ns() : 0;
    const auto pv = device_view(partials, ctx);
    (void)pv.load_span(0, blocks);  // declare the read side of the rewrite
    std::uint64_t running = 0;
    for (std::uint64_t& slot : pv.store_span(0, blocks)) {
      const std::uint64_t v = slot;
      slot = running;
      running += v;
    }
    total = running;
    ctx.read(stage, blocks * sizeof(std::uint64_t));
    ctx.write(stage, blocks * sizeof(std::uint64_t));
    if (ctx.profiled()) ctx.stage_ns(stage, obs::now_ns() - t0);
  });

  // Kernel 3: per-block local scan + offset.
  launch(dev, "twopass_downsweep", blocks, [&](const BlockCtx& ctx) {
    const std::uint64_t t0 = ctx.profiled() ? obs::now_ns() : 0;
    const auto dv = device_view(data, ctx);
    const auto pv = device_view(partials, ctx);
    const size_t begin = ctx.block_idx * items_per_block;
    const size_t end = std::min(n, begin + items_per_block);
    std::uint64_t running = pv.load(ctx.block_idx);
    (void)dv.load_span(begin, end - begin);  // read side of the rewrite
    for (std::uint64_t& slot : dv.store_span(begin, end - begin)) {
      const std::uint64_t v = slot;
      slot = running;
      running += v;
    }
    ctx.read(stage, (end - begin + 1) * sizeof(std::uint64_t));
    ctx.write(stage, (end - begin) * sizeof(std::uint64_t));
    if (ctx.profiled()) ctx.stage_ns(stage, obs::now_ns() - t0);
  });

  return total;
}

}  // namespace szp::gpusim
