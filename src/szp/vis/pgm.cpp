#include "szp/vis/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "szp/util/common.hpp"

namespace szp::vis {

namespace {

void write_pgm_bytes(const std::string& path, size_t w, size_t h,
                     const std::vector<byte_t>& pixels) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw format_error("write_pgm: cannot open " + path);
  out << "P5\n" << w << " " << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size()));
  if (!out) throw format_error("write_pgm: short write");
}

}  // namespace

void write_pgm(const std::string& path, const data::Slice2D& slice, double lo,
               double hi) {
  if (lo >= hi) {
    const auto [mn, mx] =
        std::minmax_element(slice.values.begin(), slice.values.end());
    lo = *mn;
    hi = *mx;
    if (lo >= hi) hi = lo + 1;
  }
  const double inv = 255.0 / (hi - lo);
  std::vector<byte_t> pixels(slice.values.size());
  for (size_t i = 0; i < pixels.size(); ++i) {
    const double v = (static_cast<double>(slice.values[i]) - lo) * inv;
    pixels[i] = static_cast<byte_t>(std::clamp(v, 0.0, 255.0));
  }
  write_pgm_bytes(path, slice.width, slice.height, pixels);
}

void write_diff_pgm(const std::string& path, const data::Slice2D& a,
                    const data::Slice2D& b, double scale) {
  if (a.values.size() != b.values.size()) {
    throw format_error("write_diff_pgm: size mismatch");
  }
  if (scale <= 0) scale = 1;
  std::vector<byte_t> pixels(a.values.size());
  for (size_t i = 0; i < pixels.size(); ++i) {
    const double d = std::abs(static_cast<double>(a.values[i]) -
                              static_cast<double>(b.values[i]));
    pixels[i] = static_cast<byte_t>(std::clamp(d / scale * 2550.0, 0.0, 255.0));
  }
  write_pgm_bytes(path, a.width, a.height, pixels);
}

double mean_abs_diff(const data::Slice2D& a, const data::Slice2D& b) {
  if (a.values.size() != b.values.size() || a.values.empty()) return 0;
  double sum = 0;
  for (size_t i = 0; i < a.values.size(); ++i) {
    sum += std::abs(static_cast<double>(a.values[i]) -
                    static_cast<double>(b.values[i]));
  }
  return sum / static_cast<double>(a.values.size());
}

}  // namespace szp::vis
