// Grayscale slice rendering (binary PGM) — the repository's stand-in for
// the paper's visual quality assessment (Figs. 1, 7, 16, 19, 20). Benches
// emit original / reconstruction / |difference| images so artifacts like
// cuSZx's constant-block stripes are inspectable.
#pragma once

#include <string>

#include "szp/data/field.hpp"

namespace szp::vis {

/// Write a 2D slice as an 8-bit PGM, normalizing values to [lo, hi]
/// (pass lo >= hi to auto-range from the slice).
void write_pgm(const std::string& path, const data::Slice2D& slice,
               double lo = 0, double hi = 0);

/// Write |a - b| as a PGM normalized to `scale` (e.g. the value range).
void write_diff_pgm(const std::string& path, const data::Slice2D& a,
                    const data::Slice2D& b, double scale);

/// Mean absolute per-pixel difference between two slices (quick artifact
/// score used by the visual-quality bench).
[[nodiscard]] double mean_abs_diff(const data::Slice2D& a,
                                   const data::Slice2D& b);

}  // namespace szp::vis
