// Chrome trace-event JSON exporter (the format Perfetto and
// chrome://tracing load). Events come out of the span tracer's per-thread
// rings; each recording thread becomes one lane, so the per-thread-block
// spans of gpusim kernel launches render as a thread-block timeline.
//
// Format reference: the Trace Event Format's JSON-object form —
// {"traceEvents": [...], "displayTimeUnit": "ms"} with "X"/"B"/"E"/"i"
// phase events carrying microsecond timestamps.
#pragma once

#include <iosfwd>
#include <string>

namespace szp::obs {

/// Serialize everything currently recorded by Tracer::instance().
/// Events are sorted by timestamp; thread-name metadata ('M') events and
/// a drop-count annotation per wrapped ring are included.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file; returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path);

}  // namespace szp::obs
