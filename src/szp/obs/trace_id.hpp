// Process-wide request/trace identity.
//
// A trace ID is a monotonically assigned 64-bit token minted at an API
// boundary (one per Engine entry-point call) and carried across threads:
// pipeline jobs and gpusim stream ops capture the submitting thread's
// current ID and re-establish it on their worker thread, so one request
// can be followed through log records, flight-recorder events, metric
// exemplars and Chrome-trace flow events.
//
// ID 0 means "no active request" and is never minted.
#pragma once

#include <atomic>
#include <cstdint>

namespace szp::obs {

namespace detail {
inline std::atomic<std::uint64_t> g_next_trace_id{1};
inline thread_local std::uint64_t t_current_trace_id = 0;
}  // namespace detail

/// Mint a fresh, never-zero trace ID.
[[nodiscard]] inline std::uint64_t next_trace_id() {
  return detail::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

/// The calling thread's active trace ID (0 = none).
[[nodiscard]] inline std::uint64_t current_trace_id() {
  return detail::t_current_trace_id;
}

/// Override the calling thread's active trace ID (prefer TraceIdScope).
inline void set_current_trace_id(std::uint64_t id) {
  detail::t_current_trace_id = id;
}

/// Adopt-or-mint: the ambient ID if one is active, else a fresh one.
/// API boundaries use this so a caller that already established a
/// request identity (a pipeline job, a CLI request loop) keeps it
/// across the engine call instead of having it re-minted.
[[nodiscard]] inline std::uint64_t ensure_trace_id() {
  const std::uint64_t cur = current_trace_id();
  return cur != 0 ? cur : next_trace_id();
}

/// RAII: set the calling thread's trace ID for a scope, restoring the
/// previous one on exit. Used both to mint at API boundaries
/// (TraceIdScope(next_trace_id())) and to adopt a captured ID on a
/// worker thread (TraceIdScope(job.trace_id)).
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id)
      : prev_(detail::t_current_trace_id) {
    detail::t_current_trace_id = id;
  }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;
  ~TraceIdScope() { detail::t_current_trace_id = prev_; }

  [[nodiscard]] std::uint64_t id() const {
    return detail::t_current_trace_id;
  }

 private:
  std::uint64_t prev_;
};

}  // namespace szp::obs
