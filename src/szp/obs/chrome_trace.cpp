#include "szp/obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "szp/obs/tracer.hpp"

namespace szp::obs {

namespace {

/// Events carry literal names; escaping is still applied for safety.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << *s;
    }
  }
  os << '"';
}

/// Chrome traces use microsecond timestamps; emit fractional µs to keep
/// nanosecond resolution.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
     << static_cast<char>('0' + (ns % 100) / 10)
     << static_cast<char>('0' + ns % 10);
}

struct FlatEvent {
  const Event* e;
  std::uint32_t tid;
};

void write_event(std::ostream& os, const FlatEvent& fe) {
  const Event& e = *fe.e;
  os << "{\"name\": ";
  write_json_string(os, e.name);
  os << ", \"cat\": ";
  write_json_string(os, e.cat);
  os << ", \"ph\": \"" << static_cast<char>(e.ph) << "\", \"ts\": ";
  write_us(os, e.ts_ns);
  if (e.ph == Phase::kComplete) {
    os << ", \"dur\": ";
    write_us(os, e.dur_ns);
  }
  if (e.ph == Phase::kInstant) os << ", \"s\": \"t\"";
  os << ", \"pid\": 1, \"tid\": " << fe.tid;
  if (e.arg1_name != nullptr || e.arg2_name != nullptr || e.flow_id != 0) {
    os << ", \"args\": {";
    bool any = false;
    if (e.arg1_name != nullptr) {
      write_json_string(os, e.arg1_name);
      os << ": " << e.arg1;
      any = true;
    }
    if (e.arg2_name != nullptr) {
      if (any) os << ", ";
      write_json_string(os, e.arg2_name);
      os << ": " << e.arg2;
      any = true;
    }
    if (e.flow_id != 0) {
      if (any) os << ", ";
      os << "\"trace_id\": " << e.flow_id;
    }
    os << '}';
  }
  os << '}';
}

/// Flow events ('s'/'t'/'f') stitching spans that share a trace ID into
/// one request arrow across threads. Each flow event binds to its span
/// by thread + timestamp.
void write_flow_event(std::ostream& os, const FlatEvent& fe, char ph,
                      bool ending) {
  const Event& e = *fe.e;
  os << "{\"name\": \"request\", \"cat\": \"flow\", \"ph\": \"" << ph
     << "\", \"id\": " << e.flow_id << ", \"ts\": ";
  write_us(os, e.ts_ns);
  if (ending) os << ", \"bp\": \"e\"";
  os << ", \"pid\": 1, \"tid\": " << fe.tid << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const std::vector<ThreadEvents> threads = Tracer::instance().collect();

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };

  // Process-name metadata so the single-process trace groups under "szp"
  // instead of a bare pid in the viewer.
  sep();
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"szp\"}}";

  // Thread-name metadata rows: explicit names first, then a default so
  // every lane is labeled in the viewer.
  for (const ThreadEvents& t : threads) {
    sep();
    const std::string label = t.thread_name.empty()
                                  ? "thread-" + std::to_string(t.tid)
                                  : t.thread_name;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << t.tid << ", \"args\": {\"name\": ";
    write_json_string(os, label.c_str());
    os << "}}";
    if (t.overwritten > 0) {
      sep();
      os << "{\"name\": \"ring_overwrote\", \"cat\": \"obs\", \"ph\": "
            "\"i\", \"s\": \"t\", \"ts\": 0.000, \"pid\": 1, \"tid\": "
         << t.tid << ", \"args\": {\"events\": " << t.overwritten << "}}";
    }
  }

  // Flatten and sort by timestamp so viewers that expect ordered input
  // (and humans reading the raw JSON) get a chronological stream.
  std::vector<FlatEvent> flat;
  for (const ThreadEvents& t : threads) {
    for (const Event& e : t.events) flat.push_back({&e, t.tid});
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     return a.e->ts_ns < b.e->ts_ns;
                   });
  for (const FlatEvent& fe : flat) {
    sep();
    write_event(os, fe);
  }

  // Flow linkage: for every trace ID seen on 2+ spans, connect the
  // spans in timestamp order with 's' → 't'... → 'f' flow events so the
  // viewer draws one request arrow across engine / pipeline / stream
  // lanes. Only span-shaped events anchor a flow step (B/E pairs would
  // otherwise double-count a phase).
  std::map<std::uint64_t, std::vector<const FlatEvent*>> flows;
  for (const FlatEvent& fe : flat) {
    if (fe.e->flow_id == 0) continue;
    if (fe.e->ph != Phase::kComplete && fe.e->ph != Phase::kBegin) continue;
    flows[fe.e->flow_id].push_back(&fe);
  }
  for (const auto& [flow_id, steps] : flows) {
    if (steps.size() < 2) continue;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      sep();
      const bool last = i + 1 == steps.size();
      const char ph = i == 0 ? 's' : (last ? 'f' : 't');
      write_flow_event(os, *steps[i], ph, last);
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace szp::obs
