#include "szp/obs/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string_view>

#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::obs {

const char* log_level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view s) {
  if (s == "trace" || s == "0") return LogLevel::kTrace;
  if (s == "debug" || s == "1") return LogLevel::kDebug;
  if (s == "info" || s == "2") return LogLevel::kInfo;
  if (s == "warn" || s == "warning" || s == "3") return LogLevel::kWarn;
  if (s == "error" || s == "4") return LogLevel::kError;
  if (s == "off" || s == "none" || s == "5") return LogLevel::kOff;
  return LogLevel::kInfo;
}

struct Logger::Impl {
  mutable Mutex mutex;
  std::ofstream json_sink SZP_GUARDED_BY(mutex);
  bool stderr_sink SZP_GUARDED_BY(mutex) = true;
  // Token-bucket rate limit: refill `limit` tokens each wall second.
  std::uint64_t limit SZP_GUARDED_BY(mutex) = 200;
  std::uint64_t tokens SZP_GUARDED_BY(mutex) = 200;
  std::uint64_t window_start_ns SZP_GUARDED_BY(mutex) = 0;
  std::uint64_t pending_suppressed SZP_GUARDED_BY(mutex) = 0;
  std::atomic<std::uint64_t> records{0};
  std::atomic<std::uint64_t> suppressed{0};
};

Logger& Logger::instance() {
  static Logger* l = new Logger();  // leaked: usable from exit handlers
  return *l;
}

Logger::Impl& Logger::impl() const {
  static Impl* i = new Impl();
  return *i;
}

bool Logger::set_json_sink(const std::string& path) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  if (im.json_sink.is_open()) im.json_sink.close();
  if (path.empty()) return true;
  im.json_sink.open(path, std::ios::out | std::ios::app);
  return im.json_sink.is_open();
}

void Logger::set_stderr_sink(bool on) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  im.stderr_sink = on;
}

void Logger::set_rate_limit(std::uint64_t per_sec) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  im.limit = per_sec > 0 ? per_sec : 1;
  im.tokens = im.limit;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Logger::log(LogLevel lvl, const char* component,
                 const std::string& message) {
  Impl& im = impl();
  const std::uint64_t ts = now_ns();
  const std::uint64_t trace_id = current_trace_id();

  std::uint64_t report_suppressed = 0;
  {
    const LockGuard lock(im.mutex);
    // Refill the token bucket once per wall second.
    if (ts - im.window_start_ns >= 1'000'000'000ull) {
      im.window_start_ns = ts;
      im.tokens = im.limit;
    }
    if (im.tokens == 0) {
      ++im.pending_suppressed;
      im.suppressed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    --im.tokens;
    report_suppressed = im.pending_suppressed;
    im.pending_suppressed = 0;

    if (im.json_sink.is_open()) {
      im.json_sink << "{\"ts_ns\": " << ts << ", \"level\": \""
                   << log_level_name(lvl) << "\", \"component\": ";
      write_json_string(im.json_sink, component);
      im.json_sink << ", \"trace_id\": " << trace_id << ", \"msg\": ";
      write_json_string(im.json_sink, message);
      if (report_suppressed > 0) {
        im.json_sink << ", \"suppressed\": " << report_suppressed;
      }
      im.json_sink << "}\n";
    }
    if (im.stderr_sink) {
      // Diagnostics go to stderr, never stdout: stdout belongs to data
      // outputs like --metrics-json.
      std::ostream& os = std::cerr;
      os << "[szp " << log_level_name(lvl) << ' ' << component << ']';
      if (trace_id != 0) os << " (trace=" << trace_id << ')';
      os << ' ' << message;
      if (report_suppressed > 0) {
        os << " [" << report_suppressed << " records suppressed]";
      }
      os << '\n';
    }
  }
  im.records.fetch_add(1, std::memory_order_relaxed);
  telemetry::builtins().log_records.fetch_add(1, std::memory_order_relaxed);
  if (lvl >= LogLevel::kWarn) {
    telemetry::builtins().errors.fetch_add(lvl >= LogLevel::kError ? 1 : 0,
                                           std::memory_order_relaxed);
    // Warnings and errors ride into the flight recorder so crash
    // bundles carry them; the component literal is the event name.
    fr::record(lvl >= LogLevel::kError ? fr::Kind::kError : fr::Kind::kLog,
               component, static_cast<std::uint64_t>(lvl), 0);
  }
}

void Logger::logf(LogLevel lvl, const char* component, const char* fmt, ...) {
  char buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  log(lvl, component, std::string(buf));
}

std::uint64_t Logger::records() const {
  return impl().records.load(std::memory_order_relaxed);
}

std::uint64_t Logger::suppressed() const {
  return impl().suppressed.load(std::memory_order_relaxed);
}

void Logger::flush() {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  if (im.json_sink.is_open()) im.json_sink.flush();
}

}  // namespace szp::obs
