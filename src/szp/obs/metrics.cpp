#include "szp/obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

#include "szp/obs/tracer.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::obs {

namespace {

/// Relaxed fetch-add for atomic<double> (no hardware fetch_add pre-C++20
/// on all targets; CAS loop is fine off the fast path).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    std::sort(bounds_.begin(), bounds_.end());
  }
  if (buckets_.size() != bounds_.size() + 1) {
    // bounds_ may have grown by the empty-guard above.
    std::vector<std::atomic<std::uint64_t>> b(bounds_.size() + 1);
    buckets_.swap(b);
  }
}

std::vector<double> Histogram::linear_bounds(double lo, double hi,
                                             std::size_t n) {
  std::vector<double> b;
  b.reserve(std::max<std::size_t>(1, n));
  const double step = n > 0 ? (hi - lo) / static_cast<double>(n) : (hi - lo);
  for (std::size_t i = 1; i <= std::max<std::size_t>(1, n); ++i) {
    b.push_back(lo + step * static_cast<double>(i));
  }
  return b;
}

std::vector<double> Histogram::pow2_bounds(std::size_t n) {
  std::vector<double> b;
  b.reserve(std::max<std::size_t>(1, n));
  double v = 1.0;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, n); ++i) {
    b.push_back(v);
    v *= 2.0;
  }
  return b;
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First observation seeds min/max; racing observers still converge
    // through the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank with
  // interpolation below): rank r falls in the first bucket whose
  // cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= rank) {
      // Bucket edges; the open-ended first/last buckets borrow the
      // tracked extrema so the interpolation stays finite.
      double lo = i == 0 ? min() : bounds_[i - 1];
      double hi = i == bounds_.size() ? max() : bounds_[i];
      lo = std::max(lo, min());
      hi = std::min(hi, max());
      if (hi < lo) hi = lo;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(n);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min(),
                        max());
    }
    cum += n;
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      SZP_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      SZP_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      SZP_GUARDED_BY(mutex);
};

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: usable from exit handlers
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* i = new Impl();
  return *i;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  const auto it = im.counters.find(name);
  return it == im.counters.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  const auto it = im.gauges.find(name);
  return it == im.gauges.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  const auto it = im.histograms.find(name);
  return it == im.histograms.end() ? nullptr : it->second.get();
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  for (const auto& [name, c] : im.counters) fn(name, *c);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  for (const auto& [name, g] : im.gauges) fn(name, *g);
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  for (const auto& [name, h] : im.histograms) fn(name, *h);
}

void Registry::reset() {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, name);
    os << ": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    if (!g->has_value()) continue;
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, name);
    os << ": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, name);
    os << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"min\": " << h->min() << ", \"max\": " << h->max()
       << ", \"p50\": " << h->quantile(0.50)
       << ", \"p90\": " << h->quantile(0.90)
       << ", \"p99\": " << h->quantile(0.99) << ", \"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      os << (i ? ", " : "") << h->bounds()[i];
    }
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      os << (i ? ", " : "") << h->bucket_count(i);
    }
    os << "]}";
    first = false;
  }
  // Tracer ring health rides along so a stats dump records whether the
  // companion trace (if any) is complete or has wrap-around holes.
  os << "\n  },\n  \"tracer\": {\"events\": " << Tracer::instance().event_count()
     << ", \"dropped_events\": " << Tracer::instance().dropped_events()
     << "}\n}\n";
}

void Registry::write_text(std::ostream& os) const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  for (const auto& [name, c] : im.counters) {
    if (c->value() == 0) continue;
    os << "  " << std::left << std::setw(36) << name << ' ' << c->value()
       << '\n';
  }
  for (const auto& [name, g] : im.gauges) {
    if (!g->has_value()) continue;
    os << "  " << std::left << std::setw(36) << name << ' ' << g->value()
       << '\n';
  }
  for (const auto& [name, h] : im.histograms) {
    if (h->count() == 0) continue;
    os << "  " << std::left << std::setw(36) << name << " count="
       << h->count() << " mean=" << h->mean() << " p50=" << h->quantile(0.50)
       << " p90=" << h->quantile(0.90) << " p99=" << h->quantile(0.99)
       << " min=" << h->min() << " max=" << h->max() << "\n    buckets:";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      os << ' ';
      if (i == 0) {
        os << "(-inf," << h->bounds()[0] << ")";
      } else if (i == h->bounds().size()) {
        os << "[" << h->bounds().back() << ",inf)";
      } else {
        os << "[" << h->bounds()[i - 1] << ',' << h->bounds()[i] << ")";
      }
      os << '=' << n;
    }
    os << '\n';
  }
  if (const std::uint64_t dropped = Tracer::instance().dropped_events();
      dropped > 0) {
    os << "  " << std::left << std::setw(36) << "tracer.dropped_events" << ' '
       << dropped << "  (WARNING: trace rings wrapped; spans were lost)\n";
  }
}

}  // namespace szp::obs
