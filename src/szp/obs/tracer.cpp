#include "szp/obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "szp/obs/chrome_trace.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/util/env.hpp"

namespace szp::obs {

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// One thread's ring. push() is only ever called by the owning thread;
/// the mutex serializes it against collect()/clear() from other threads.
struct Tracer::ThreadBuffer {
  mutable std::mutex mutex;
  std::uint32_t tid = 0;
  std::string name;
  bool alive = true;  // owning thread still running
  std::size_t capacity = 0;
  std::size_t head = 0;  // next write position
  std::uint64_t overwritten = 0;
  std::vector<Event> ring;

  void push(const Event& e) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(e);
      head = ring.size() % capacity;
    } else {
      ring[head] = e;
      head = (head + 1) % capacity;
      ++overwritten;
    }
  }
};

struct Tracer::Registry {
  mutable std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
  std::size_t ring_capacity = 1u << 15;
};

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: usable from exit handlers
  return *t;
}

Tracer::Registry& Tracer::registry() const {
  static Registry* r = new Registry();
  return *r;
}

void Tracer::set_ring_capacity(std::size_t events) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.ring_capacity = std::max<std::size_t>(16, events);
}

std::size_t Tracer::ring_capacity() const {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.ring_capacity;
}

namespace {
/// Marks the registry entry dead when the owning thread exits; the buffer
/// itself stays registered (and exportable) until Tracer::clear().
struct ThreadLocalHandle {
  std::shared_ptr<Tracer::ThreadBuffer> buffer;
  ~ThreadLocalHandle() {
    if (buffer) {
      const std::lock_guard<std::mutex> lock(buffer->mutex);
      buffer->alive = false;
    }
  }
};
}  // namespace

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadLocalHandle handle;
  if (!handle.buffer) {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    buf->tid = reg.next_tid++;
    buf->capacity = reg.ring_capacity;
    buf->ring.reserve(std::min<std::size_t>(buf->capacity, 1024));
    reg.buffers.push_back(buf);
    handle.buffer = std::move(buf);
  }
  return *handle.buffer;
}

void Tracer::record(const Event& e) { local_buffer().push(e); }

void Tracer::set_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name = std::move(name);
}

std::vector<ThreadEvents> Tracer::collect() const {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<ThreadEvents> out;
  out.reserve(buffers.size());
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    ThreadEvents te;
    te.tid = buf->tid;
    te.thread_name = buf->name;
    te.overwritten = buf->overwritten;
    te.events.reserve(buf->ring.size());
    // Ring order: oldest first. When full, `head` is the oldest slot.
    if (buf->ring.size() == buf->capacity) {
      te.events.insert(te.events.end(), buf->ring.begin() +
                       static_cast<std::ptrdiff_t>(buf->head),
                       buf->ring.end());
      te.events.insert(te.events.end(), buf->ring.begin(),
                       buf->ring.begin() +
                       static_cast<std::ptrdiff_t>(buf->head));
    } else {
      te.events = buf->ring;
    }
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t Tracer::event_count() const {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->ring.size();
  }
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t n = 0;
  for (const auto& buf : reg.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->overwritten;
  }
  return n;
}

void Tracer::clear() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& v = reg.buffers;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const std::shared_ptr<ThreadBuffer>& b) {
                           const std::lock_guard<std::mutex> bl(b->mutex);
                           return !b->alive;
                         }),
          v.end());
  for (const auto& buf : v) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->ring.clear();
    buf->ring.shrink_to_fit();
    buf->head = 0;
    buf->overwritten = 0;
    buf->capacity = reg.ring_capacity;  // re-apply a changed capacity
  }
}

namespace {

void flush_env_outputs() {
  const std::string path = trace_env_path();
  if (!path.empty()) {
    if (write_chrome_trace_file(path)) {
      std::fprintf(stderr, "[szp-obs] wrote trace to %s (%zu events)\n",
                   path.c_str(), Tracer::instance().event_count());
      const std::uint64_t dropped = Tracer::instance().dropped_events();
      if (dropped > 0) {
        std::fprintf(stderr,
                     "[szp-obs] WARNING: %llu events dropped to ring "
                     "wrap-around; the trace has holes (raise the ring "
                     "capacity or shorten the recording)\n",
                     static_cast<unsigned long long>(dropped));
      }
    } else {
      std::fprintf(stderr, "[szp-obs] FAILED to write trace to %s\n",
                   path.c_str());
    }
  }
  if (stats_env_enabled()) {
    std::cerr << "[szp-obs] metrics summary:\n";
    Registry::instance().write_text(std::cerr);
  }
}

}  // namespace

void init_from_env() {
  static const bool done = [] {
    bool hooked = false;
    if (!trace_env_path().empty()) {
      Tracer::instance().set_enabled(true);
      hooked = true;
    }
    if (stats_env_enabled()) {
      Registry::instance().set_enabled(true);
      hooked = true;
    }
    if (hooked) std::atexit(flush_env_outputs);
    return true;
  }();
  (void)done;
}

}  // namespace szp::obs
