#include "szp/obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "szp/obs/chrome_trace.hpp"
#include "szp/obs/log.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/util/env.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::obs {

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// One thread's ring. push() is only ever called by the owning thread;
/// the mutex serializes it against collect()/clear() from other threads.
struct Tracer::ThreadBuffer {
  mutable Mutex mutex;
  std::uint32_t tid = 0;  // immutable after registration
  std::string name SZP_GUARDED_BY(mutex);
  bool alive SZP_GUARDED_BY(mutex) = true;  // owning thread still running
  std::size_t capacity SZP_GUARDED_BY(mutex) = 0;
  std::size_t head SZP_GUARDED_BY(mutex) = 0;  // next write position
  std::uint64_t overwritten SZP_GUARDED_BY(mutex) = 0;
  std::vector<Event> ring SZP_GUARDED_BY(mutex);

  void push(const Event& e) {
    const LockGuard lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(e);
      head = ring.size() % capacity;
    } else {
      ring[head] = e;
      head = (head + 1) % capacity;
      ++overwritten;
    }
  }
};

struct Tracer::Registry {
  mutable Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers SZP_GUARDED_BY(mutex);
  std::uint32_t next_tid SZP_GUARDED_BY(mutex) = 0;
  std::size_t ring_capacity SZP_GUARDED_BY(mutex) = 1u << 15;
};

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: usable from exit handlers
  return *t;
}

Tracer::Registry& Tracer::registry() const {
  static Registry* r = new Registry();
  return *r;
}

void Tracer::set_ring_capacity(std::size_t events) {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  reg.ring_capacity = std::max<std::size_t>(16, events);
}

std::size_t Tracer::ring_capacity() const {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  return reg.ring_capacity;
}

namespace {
/// Marks the registry entry dead when the owning thread exits; the buffer
/// itself stays registered (and exportable) until Tracer::clear().
struct ThreadLocalHandle {
  std::shared_ptr<Tracer::ThreadBuffer> buffer;
  ~ThreadLocalHandle() {
    if (buffer) {
      const LockGuard lock(buffer->mutex);
      buffer->alive = false;
    }
  }
};
}  // namespace

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadLocalHandle handle;
  if (!handle.buffer) {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    const LockGuard lock(reg.mutex);
    buf->tid = reg.next_tid++;
    {
      // Uncontended (the buffer is not yet published), but taking the
      // buffer lock keeps the guarded-field discipline uniform. Lock
      // order everywhere: registry mutex, then buffer mutex.
      const LockGuard buf_lock(buf->mutex);
      buf->capacity = reg.ring_capacity;
      buf->ring.reserve(std::min<std::size_t>(buf->capacity, 1024));
    }
    reg.buffers.push_back(buf);
    handle.buffer = std::move(buf);
  }
  return *handle.buffer;
}

void Tracer::record(const Event& e) { local_buffer().push(e); }

void Tracer::set_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer();
  const LockGuard lock(buf.mutex);
  buf.name = std::move(name);
}

std::vector<ThreadEvents> Tracer::collect() const {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const LockGuard lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<ThreadEvents> out;
  out.reserve(buffers.size());
  for (const auto& buf : buffers) {
    const LockGuard lock(buf->mutex);
    ThreadEvents te;
    te.tid = buf->tid;
    te.thread_name = buf->name;
    te.overwritten = buf->overwritten;
    te.events.reserve(buf->ring.size());
    // Ring order: oldest first. When full, `head` is the oldest slot.
    if (buf->ring.size() == buf->capacity) {
      te.events.insert(te.events.end(), buf->ring.begin() +
                       static_cast<std::ptrdiff_t>(buf->head),
                       buf->ring.end());
      te.events.insert(te.events.end(), buf->ring.begin(),
                       buf->ring.begin() +
                       static_cast<std::ptrdiff_t>(buf->head));
    } else {
      te.events = buf->ring;
    }
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t Tracer::event_count() const {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    const LockGuard buf_lock(buf->mutex);
    n += buf->ring.size();
  }
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  std::uint64_t n = 0;
  for (const auto& buf : reg.buffers) {
    const LockGuard buf_lock(buf->mutex);
    n += buf->overwritten;
  }
  return n;
}

void Tracer::clear() {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  auto& v = reg.buffers;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const std::shared_ptr<ThreadBuffer>& b) {
                           const LockGuard bl(b->mutex);
                           return !b->alive;
                         }),
          v.end());
  for (const auto& buf : v) {
    const LockGuard buf_lock(buf->mutex);
    buf->ring.clear();
    buf->ring.shrink_to_fit();
    buf->head = 0;
    buf->overwritten = 0;
    buf->capacity = reg.ring_capacity;  // re-apply a changed capacity
  }
}

namespace {

void flush_env_outputs() {
  // All diagnostics route through the logger, whose text sink is
  // stderr: stdout stays reserved for data outputs (--metrics-json -).
  const std::string path = trace_env_path();
  if (!path.empty()) {
    if (write_chrome_trace_file(path)) {
      SZP_LOG_INFO("obs", "wrote trace to %s (%zu events)", path.c_str(),
                   Tracer::instance().event_count());
      const std::uint64_t dropped = Tracer::instance().dropped_events();
      if (dropped > 0) {
        SZP_LOG_WARN("obs",
                     "%llu events dropped to ring wrap-around; the trace "
                     "has holes (raise the ring capacity or shorten the "
                     "recording)",
                     static_cast<unsigned long long>(dropped));
      }
    } else {
      SZP_LOG_ERROR("obs", "FAILED to write trace to %s", path.c_str());
    }
  }
  if (stats_env_enabled() && log_enabled(LogLevel::kInfo)) {
    std::ostringstream ss;
    ss << "metrics summary:\n";
    Registry::instance().write_text(ss);
    Logger::instance().log(LogLevel::kInfo, "obs", ss.str());
  }
}

}  // namespace

void init_from_env() {
  static const bool done = [] {
    bool hooked = false;
    if (!trace_env_path().empty()) {
      Tracer::instance().set_enabled(true);
      hooked = true;
    }
    if (stats_env_enabled()) {
      Registry::instance().set_enabled(true);
      hooked = true;
    }
    if (hooked) std::atexit(flush_env_outputs);
    return true;
  }();
  (void)done;
}

}  // namespace szp::obs
