// Wall-clock span tracer for the host/device pipeline.
//
// Complements gpusim::Trace (which *counts* bytes/ops for the perfmodel)
// with *when* things happened: nestable RAII spans, instant events and
// begin/end pairs, recorded into per-thread ring buffers with a wall
// clock and a stable small thread id. The chrome_trace exporter turns a
// recording into Perfetto / chrome://tracing JSON where gpusim worker
// threads appear as thread-block lanes.
//
// Overhead contract: with tracing disabled (the default) every
// instrumentation site costs exactly one relaxed atomic load and branch —
// no clock read, no allocation, no lock — so the Tier-1 perf figures are
// unaffected. Enable via Tracer::set_enabled(true) or the SZP_TRACE
// environment variable (see init_from_env).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "szp/obs/trace_id.hpp"

namespace szp::obs {

namespace detail {
/// Global enable flag; inline so the fast-path check can be inlined into
/// every instrumentation site.
inline std::atomic<bool> g_tracing{false};
}  // namespace detail

/// The one-branch fast path: every event helper checks this first.
[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Nanoseconds on a monotonic clock, relative to process start.
[[nodiscard]] std::uint64_t now_ns();

/// Chrome trace-event phases we emit (the exporter writes the letter).
enum class Phase : char {
  kComplete = 'X',  // span with ts + dur
  kBegin = 'B',     // begin/end pair (matched by name, same thread)
  kEnd = 'E',
  kInstant = 'i',
};

/// One recorded event. Names and categories must be string literals (or
/// otherwise outlive the tracer recording) — events store the pointer.
struct Event {
  const char* name = "";
  const char* cat = "";
  Phase ph = Phase::kComplete;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // kComplete only
  // Up to two optional numeric args (arg name nullptr = absent).
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
  // Request identity captured from current_trace_id() at record time
  // (0 = none). The chrome_trace exporter links spans sharing a flow id
  // across threads with flow events.
  std::uint64_t flow_id = 0;
};

/// Per-thread ring buffer snapshot returned by Tracer::collect().
struct ThreadEvents {
  std::uint32_t tid = 0;
  std::string thread_name;
  std::uint64_t overwritten = 0;  // events lost to ring wrap-around
  std::vector<Event> events;     // in recording order
};

/// Process-wide tracer. Threads register a ring buffer lazily on their
/// first event; buffers survive thread exit until clear() so that the
/// short-lived gpusim worker threads keep their lanes in the export.
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) {
    detail::g_tracing.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return tracing_enabled(); }

  /// Ring capacity (events per thread) applied to buffers registered
  /// after the call, and to existing buffers at the next clear().
  /// Minimum 16.
  void set_ring_capacity(std::size_t events);
  [[nodiscard]] std::size_t ring_capacity() const;

  /// Record into the calling thread's ring. The enabled check is the
  /// caller's job (the Span/instant helpers do it); record() itself
  /// always stores.
  void record(const Event& e);

  /// Label the calling thread in exported traces (e.g. "gpusim-worker").
  void set_thread_name(std::string name);

  /// Snapshot every thread's ring (including exited threads').
  [[nodiscard]] std::vector<ThreadEvents> collect() const;

  /// Total events currently held across all rings.
  [[nodiscard]] std::size_t event_count() const;

  /// Total events lost to ring wrap-around across all rings since the
  /// last clear(). Nonzero means exported traces have holes — raise the
  /// capacity with set_ring_capacity() (or shorten the recording).
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Drop all recorded events and forget buffers of exited threads.
  void clear();

  // Implementation details (public so the thread-local registration
  // helper in tracer.cpp can hold a shared_ptr to its buffer).
  struct ThreadBuffer;
  struct Registry;

 private:
  Tracer() = default;
  [[nodiscard]] ThreadBuffer& local_buffer();

  Registry& registry() const;
};

// ------------------------------------------------------------ helpers ----

/// RAII complete-span ('X'): clocks construction..destruction.
class Span {
 public:
  Span(const char* cat, const char* name) {
    if (tracing_enabled()) open(cat, name);
  }
  Span(const char* cat, const char* name, const char* arg1_name,
       std::uint64_t arg1) {
    if (tracing_enabled()) {
      open(cat, name);
      e_.arg1_name = arg1_name;
      e_.arg1 = arg1;
    }
  }
  Span(const char* cat, const char* name, const char* arg1_name,
       std::uint64_t arg1, const char* arg2_name, std::uint64_t arg2) {
    if (tracing_enabled()) {
      open(cat, name);
      e_.arg1_name = arg1_name;
      e_.arg1 = arg1;
      e_.arg2_name = arg2_name;
      e_.arg2 = arg2;
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// End the span before scope exit (idempotent).
  void close() {
    if (!active_) return;
    active_ = false;
    e_.dur_ns = now_ns() - e_.ts_ns;
    Tracer::instance().record(e_);
  }

 private:
  void open(const char* cat, const char* name) {
    active_ = true;
    e_.cat = cat;
    e_.name = name;
    e_.ph = Phase::kComplete;
    e_.ts_ns = now_ns();
    e_.flow_id = current_trace_id();
  }
  bool active_ = false;
  Event e_;
};

/// RAII begin/end pair ('B'/'E') — used for long-lived phases (kernel
/// launches, API entry points) so nested X spans from other threads stay
/// readable in the viewer.
class BeginEndSpan {
 public:
  BeginEndSpan(const char* cat, const char* name, const char* arg1_name,
               std::uint64_t arg1) {
    if (!tracing_enabled()) return;
    active_ = true;
    cat_ = cat;
    name_ = name;
    Event e;
    e.cat = cat;
    e.name = name;
    e.ph = Phase::kBegin;
    e.ts_ns = now_ns();
    e.arg1_name = arg1_name;
    e.arg1 = arg1;
    e.flow_id = current_trace_id();
    Tracer::instance().record(e);
  }
  BeginEndSpan(const char* cat, const char* name)
      : BeginEndSpan(cat, name, nullptr, 0) {}
  BeginEndSpan(const BeginEndSpan&) = delete;
  BeginEndSpan& operator=(const BeginEndSpan&) = delete;
  ~BeginEndSpan() {
    if (!active_) return;
    Event e;
    e.cat = cat_;
    e.name = name_;
    e.ph = Phase::kEnd;
    e.ts_ns = now_ns();
    e.flow_id = current_trace_id();
    Tracer::instance().record(e);
  }

 private:
  bool active_ = false;
  const char* cat_ = "";
  const char* name_ = "";
};

/// Zero-duration marker.
inline void instant(const char* cat, const char* name,
                    const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                    const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
  if (!tracing_enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.ph = Phase::kInstant;
  e.ts_ns = now_ns();
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  e.flow_id = current_trace_id();
  Tracer::instance().record(e);
}

/// Emit a complete span from an explicit start/duration (for call sites
/// that accumulate time across loop iterations before emitting).
inline void complete(const char* cat, const char* name, std::uint64_t ts_ns,
                     std::uint64_t dur_ns, const char* arg1_name = nullptr,
                     std::uint64_t arg1 = 0, const char* arg2_name = nullptr,
                     std::uint64_t arg2 = 0) {
  if (!tracing_enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.ph = Phase::kComplete;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  e.flow_id = current_trace_id();
  Tracer::instance().record(e);
}

inline void set_thread_name(std::string name) {
  if (!tracing_enabled()) return;
  Tracer::instance().set_thread_name(std::move(name));
}

/// Process the SZP_TRACE / SZP_STATS environment variables once:
///   SZP_TRACE=<path>  enable the tracer; write Chrome-trace JSON to
///                     <path> at process exit.
///   SZP_STATS=1       enable the metrics registry; print the text
///                     summary to stderr at process exit.
/// Idempotent and cheap; the bench harness calls it on every run.
void init_from_env();

}  // namespace szp::obs
