// Structured, leveled, thread-safe logging.
//
// Design goals, in order:
//   1. Near-zero cost when a record is below the active level: one
//      relaxed atomic load and a compare, same contract as the tracer
//      and metrics fast paths.
//   2. Machine-readable output: an optional JSON-lines sink where every
//      record is one strict-JSON object carrying a timestamp, level,
//      component, the calling thread's trace ID (see trace_id.hpp) and
//      the formatted message.
//   3. Human output that never corrupts data output: the default text
//      sink writes to stderr, leaving stdout free for --metrics-json
//      and friends.
//   4. Flood control: a global token-bucket rate limit; suppressed
//      records are counted and surfaced on the next emitted record.
//
// Records at kWarn and above also land in the flight recorder (when
// recording) so crash bundles carry recent errors.
//
// Level semantics: a record is emitted when its level >= the configured
// level. The default level is kInfo with the stderr text sink on, which
// preserves the pre-existing "[szp-obs] ..." diagnostics; per-request
// chatter belongs at kDebug so the library stays quiet by default.
// Configure via SZP_LOG=<level>[:<path>] (see telemetry::init_from_env).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace szp::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

namespace detail {
/// Active level; inline so the fast-path check can be inlined into every
/// log site.
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
}  // namespace detail

/// The one-branch fast path: true when a record at `lvl` would be kept.
[[nodiscard]] inline bool log_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) >=
         detail::g_log_level.load(std::memory_order_relaxed);
}

[[nodiscard]] const char* log_level_name(LogLevel lvl);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (also "0".."5").
/// Returns kInfo for unrecognized input.
[[nodiscard]] LogLevel parse_log_level(std::string_view s);

/// Process-wide logger (singleton, leaked so exit handlers can use it).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) {
    detail::g_log_level.store(static_cast<int>(lvl),
                              std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(
        detail::g_log_level.load(std::memory_order_relaxed));
  }

  /// Route records to a JSON-lines file (one strict-JSON object per
  /// line). Empty path closes the sink. Returns false if the file could
  /// not be opened.
  bool set_json_sink(const std::string& path);

  /// Toggle the human-readable stderr sink (on by default).
  void set_stderr_sink(bool on);

  /// Max records emitted per second before suppression kicks in
  /// (default 200; minimum 1). Suppressed records are counted and the
  /// count is reported on the next emitted record.
  void set_rate_limit(std::uint64_t per_sec);

  /// Emit a preformatted record. The level check is the caller's job
  /// (the SZP_LOG* macros do it); log() itself always sinks.
  void log(LogLevel lvl, const char* component, const std::string& message);

  /// printf-style convenience; formats into a bounded buffer (records
  /// truncate at ~512 bytes).
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 4, 5)))
#endif
  void logf(LogLevel lvl, const char* component, const char* fmt, ...);

  /// Total records emitted (post rate limit) and suppressed since start.
  [[nodiscard]] std::uint64_t records() const;
  [[nodiscard]] std::uint64_t suppressed() const;

  /// Flush file sinks (also flushed at process exit).
  void flush();

 private:
  Logger() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace szp::obs

/// Log-site macros: one relaxed load + branch when below the level.
#define SZP_LOGF(lvl, component, ...)                                    \
  do {                                                                   \
    if (szp::obs::log_enabled(lvl)) {                                    \
      szp::obs::Logger::instance().logf(lvl, component, __VA_ARGS__);    \
    }                                                                    \
  } while (0)

#define SZP_LOG_DEBUG(component, ...) \
  SZP_LOGF(szp::obs::LogLevel::kDebug, component, __VA_ARGS__)
#define SZP_LOG_INFO(component, ...) \
  SZP_LOGF(szp::obs::LogLevel::kInfo, component, __VA_ARGS__)
#define SZP_LOG_WARN(component, ...) \
  SZP_LOGF(szp::obs::LogLevel::kWarn, component, __VA_ARGS__)
#define SZP_LOG_ERROR(component, ...) \
  SZP_LOGF(szp::obs::LogLevel::kError, component, __VA_ARGS__)
