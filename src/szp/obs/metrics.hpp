// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, thread-safe and cheap enough to sit on codec hot paths.
//
// Like the tracer, collection is off by default and every instrument
// costs one relaxed atomic load + branch while disabled. Instruments are
// created on first use and live for the process lifetime, so call sites
// may cache the returned reference (e.g. in a function-local static).
//
// Domain metrics recorded by the library when enabled:
//   szp.encode.blocks / szp.encode.zero_blocks   zero-block ratio
//   szp.encode.fk                                 F_k bit-width histogram
//   szp.compress.calls/.in_bytes/.out_bytes       per-call volume
//   szp.compress.last_ratio                       compression ratio gauge
//   gs.lookback.depth / gs.lookback.spins         chained-scan tail story
//   robust.*                                      salvage/corruption counts
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace szp::obs {

namespace detail {
inline std::atomic<bool> g_metrics{false};
}  // namespace detail

/// The one-branch fast path for every instrument.
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics.load(std::memory_order_relaxed);
}

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (e.g. the most recent compression ratio).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_value() const {
    return set_.load(std::memory_order_relaxed);
  }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    set_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] <= v < bounds[i]; the final bucket is the overflow
/// (v >= bounds.back()). Also tracks count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Evenly spaced bounds: n buckets covering [lo, hi) plus overflow.
  [[nodiscard]] static std::vector<double> linear_bounds(double lo, double hi,
                                                         std::size_t n);
  /// Power-of-two bounds 1, 2, 4, ... 2^(n-1) plus overflow (bucket 0
  /// counts observations < 1, i.e. zero for integer inputs).
  [[nodiscard]] static std::vector<double> pow2_bounds(std::size_t n);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }
  [[nodiscard]] double min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  /// Estimated q-quantile (q in [0, 1]) from the bucket counts: linear
  /// interpolation inside the covering bucket, with the open-ended edge
  /// buckets tightened by the tracked min/max. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// Name-keyed instrument registry (singleton: Registry::instance()).
class Registry {
 public:
  static Registry& instance();

  void set_enabled(bool on) {
    detail::g_metrics.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return metrics_enabled(); }

  /// Find-or-create. References stay valid for the process lifetime.
  /// Re-requesting a histogram ignores the (already fixed) bounds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Lookup without creation (nullptr if absent).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Visit every instrument (sorted by name) under the registry lock.
  /// Callbacks must not re-enter the registry. Used by the Prometheus
  /// exposition renderer.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// Zero every instrument (instruments themselves are kept).
  void reset();

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;
  /// Human-readable summary (sorted by name; empty instruments skipped).
  void write_text(std::ostream& os) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace szp::obs
