// Tiny polling-friendly exposition server.
//
// Two modes, independently enabled:
//   - TCP: listen on 127.0.0.1:<port>; every accepted connection gets a
//     minimal HTTP/1.0 200 response whose body is the Prometheus text
//     (so curl and any scraper work), then the connection closes. One
//     accept thread, one connection at a time — this is a debug/ops
//     peephole, not a web server.
//   - Snapshot: every period_ms, write the exposition text to a file
//     (tmp + rename, so readers never see a torn snapshot). For
//     environments without sockets.
#pragma once

#include <string>

namespace szp::obs::telemetry {

class TelemetryServer {
 public:
  struct Options {
    /// -1 disables TCP; 0 binds an ephemeral port (see port() after
    /// start); >0 binds that port on 127.0.0.1.
    int port = -1;
    /// Empty disables snapshots.
    std::string snapshot_path;
    int snapshot_period_ms = 1000;
  };

  static TelemetryServer& instance();

  /// Idempotent; returns false if a requested mode could not start
  /// (e.g. the port is taken). Already-running modes are left alone.
  bool start(const Options& opts);

  /// Stop threads, close sockets, write one final snapshot.
  void stop();

  /// Bound TCP port (0 when TCP mode is off).
  [[nodiscard]] int port() const;

  [[nodiscard]] bool running() const;

 private:
  TelemetryServer() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace szp::obs::telemetry
