// Always-on telemetry substrate: built-in counters/gauges that are live
// from process start (no enable flag — they are plain relaxed atomics
// touched only at request granularity, never per element), plus the
// one-call environment initializer the CLI tools run at startup.
//
// Env knobs (see docs/OBSERVABILITY.md):
//   SZP_TELEMETRY  "1"/"on" enables the flight recorder + metrics
//                  registry; comma-separated directives add exposition:
//                    port=<n>        serve Prometheus text on
//                                    127.0.0.1:<n> (0 = ephemeral)
//                    snapshot=<path> periodically write the exposition
//                                    text to <path> (atomic rename)
//                    period=<ms>     snapshot period (default 1000)
//   SZP_LOG        <level>[:<path>] — set the log level; with a path,
//                  add a JSON-lines sink there.
//   SZP_CRASH_DIR  <dir> — install the crash handler; fatal signals /
//                  unhandled exceptions write a post-mortem bundle
//                  into <dir>.
#pragma once

#include <atomic>
#include <cstdint>

namespace szp::obs::telemetry {

/// Built-in always-on instruments. Separate from obs::Registry because
/// (a) they must be readable from a signal context (no mutex) and
/// (b) they are on even when SZP_STATS-style metrics are off.
struct Builtins {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::int64_t> queue_depth{0};    // pipeline jobs in flight
  std::atomic<std::int64_t> pool_in_use{0};    // gpusim buffer-pool slots
  std::atomic<std::uint64_t> log_records{0};
  /// Trace ID of the most recently completed request (exposition
  /// attaches it to szp_requests_total as an exemplar).
  std::atomic<std::uint64_t> last_trace_id{0};
};

/// The process-wide instance (immortal, lock-free).
[[nodiscard]] Builtins& builtins();

/// Monotonic ns since process start (same epoch as obs::now_ns()).
[[nodiscard]] std::uint64_t uptime_ns();

/// Process SZP_TELEMETRY / SZP_LOG / SZP_CRASH_DIR once (idempotent),
/// and chain to obs::init_from_env() for SZP_TRACE / SZP_STATS. Safe to
/// call from every tool main().
void init_from_env();

}  // namespace szp::obs::telemetry
