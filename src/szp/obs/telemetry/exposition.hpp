// Prometheus-style text exposition.
//
// Renders the always-on builtins (uptime, requests, errors, bytes,
// queue depth, pool occupancy) plus everything in obs::Registry as
// Prometheus text format: metric names sanitized to [a-zA-Z0-9_:],
// counters suffixed _total, histograms expanded into cumulative
// _bucket{le="..."} series with _sum and _count. szp_requests_total
// carries an OpenMetrics exemplar with the most recent request's trace
// ID, so a scrape can be joined against log lines and trace flows.
#pragma once

#include <iosfwd>
#include <string>

namespace szp::obs::telemetry {

/// Write the full exposition text.
void write_prometheus(std::ostream& os);

/// write_prometheus as a string (the TCP server and snapshot writer
/// both use this).
[[nodiscard]] std::string prometheus_text();

}  // namespace szp::obs::telemetry
