#include "szp/obs/telemetry/exposition.hpp"

#include <cctype>
#include <ostream>
#include <sstream>

#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"

namespace szp::obs::telemetry {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void emit_header(std::ostream& os, const std::string& name, const char* type,
                 const char* help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void write_prometheus(std::ostream& os) {
  const Builtins& b = builtins();

  emit_header(os, "szp_uptime_seconds", "gauge",
              "Seconds since process start.");
  os << "szp_uptime_seconds "
     << static_cast<double>(uptime_ns()) / 1e9 << '\n';

  emit_header(os, "szp_requests_total", "counter",
              "Engine API requests completed.");
  os << "szp_requests_total " << b.requests.load(std::memory_order_relaxed);
  if (const std::uint64_t tid =
          b.last_trace_id.load(std::memory_order_relaxed);
      tid != 0) {
    // OpenMetrics exemplar: join scrapes against log lines / trace
    // flows via the most recent request's trace ID.
    os << " # {trace_id=\"" << tid << "\"} 1";
  }
  os << '\n';

  emit_header(os, "szp_errors_total", "counter",
              "Errors (decode failures, error-level log records).");
  os << "szp_errors_total " << b.errors.load(std::memory_order_relaxed)
     << '\n';

  emit_header(os, "szp_bytes_in_total", "counter",
              "Uncompressed bytes accepted by compress entry points.");
  os << "szp_bytes_in_total " << b.bytes_in.load(std::memory_order_relaxed)
     << '\n';

  emit_header(os, "szp_bytes_out_total", "counter",
              "Compressed bytes produced by compress entry points.");
  os << "szp_bytes_out_total " << b.bytes_out.load(std::memory_order_relaxed)
     << '\n';

  emit_header(os, "szp_queue_depth", "gauge",
              "Pipeline jobs currently queued or in flight.");
  os << "szp_queue_depth " << b.queue_depth.load(std::memory_order_relaxed)
     << '\n';

  emit_header(os, "szp_pool_in_use", "gauge",
              "gpusim buffer-pool slots currently handed out.");
  os << "szp_pool_in_use " << b.pool_in_use.load(std::memory_order_relaxed)
     << '\n';

  emit_header(os, "szp_log_records_total", "counter",
              "Log records emitted (post rate limit).");
  os << "szp_log_records_total "
     << b.log_records.load(std::memory_order_relaxed) << '\n';

  emit_header(os, "szp_recorder_events_total", "counter",
              "Flight-recorder events ever pushed.");
  os << "szp_recorder_events_total " << fr::event_count() << '\n';

  // Registry instruments (on when metrics collection is enabled; the
  // maps are empty otherwise, so this is free in the always-on path).
  Registry& reg = Registry::instance();
  reg.for_each_counter([&os](const std::string& name, const Counter& c) {
    const std::string p = sanitize(name) + "_total";
    emit_header(os, p, "counter", "szp registry counter.");
    os << p << ' ' << c.value() << '\n';
  });
  reg.for_each_gauge([&os](const std::string& name, const Gauge& g) {
    if (!g.has_value()) return;
    const std::string p = sanitize(name);
    emit_header(os, p, "gauge", "szp registry gauge.");
    os << p << ' ' << g.value() << '\n';
  });
  reg.for_each_histogram([&os](const std::string& name, const Histogram& h) {
    const std::string p = sanitize(name);
    emit_header(os, p, "histogram", "szp registry histogram.");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cum += h.bucket_count(i);
      os << p << "_bucket{le=\"" << h.bounds()[i] << "\"} " << cum << '\n';
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
    os << p << "_sum " << h.sum() << '\n';
    os << p << "_count " << h.count() << '\n';
  });
}

std::string prometheus_text() {
  std::ostringstream ss;
  write_prometheus(ss);
  return ss.str();
}

}  // namespace szp::obs::telemetry
