// Post-mortem crash bundles.
//
// install() hooks the fatal signals (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
// SIGILL — the set SZP_DEVCHECK aborts and assertion failures funnel
// into) and std::terminate. When one fires, a JSON bundle is written to
// the configured directory containing:
//   - the flight-recorder rings (the events leading up to the fault),
//   - each thread's active-span stack,
//   - the always-on builtin counters (requests, errors, bytes, queues),
//   - a build/version/config manifest (version string, build mode, the
//     telemetry env knobs as seen at install time).
// The signal path uses only async-signal-safe operations (open/write +
// integer formatting; the recorder rings are lock-free and immortal).
// After the bundle is written the default signal action is restored and
// the signal re-raised, so exit status is unchanged — a supervisor (or
// a gtest death test) still sees the process die by the original
// signal.
//
// The non-signal entry points (write_bundle*) produce the same schema
// plus a full obs::Registry metrics snapshot, and are used by the
// recovery suites to drop event history next to failing-seed dumps.
#pragma once

#include <iosfwd>
#include <string>

namespace szp::obs::crash {

struct Options {
  /// Directory bundles are written into (created if absent). The bundle
  /// file is "szp_crash_<pid>.json".
  std::string dir;
};

/// Install the handlers (idempotent; later calls just update the
/// directory). Returns false if the directory could not be created.
bool install(const Options& opts);

[[nodiscard]] bool installed();

/// Configured bundle directory ("" when not installed).
[[nodiscard]] const char* bundle_dir();

/// Full path the next crash bundle will be written to.
[[nodiscard]] const char* bundle_path();

/// Write a bundle now (regular, non-signal context): same schema as the
/// crash path plus a "metrics" section with the full obs::Registry
/// snapshot. `reason` lands in the bundle's "reason" field.
void write_bundle(std::ostream& os, const char* reason);

/// write_bundle to a file; returns false on I/O failure.
bool write_bundle_file(const std::string& path, const char* reason);

}  // namespace szp::obs::crash
