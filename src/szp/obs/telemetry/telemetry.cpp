#include "szp/obs/telemetry/telemetry.hpp"

#include <cstdlib>
#include <string>

#include "szp/obs/log.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/crash_handler.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/server.hpp"
#include "szp/obs/tracer.hpp"
#include "szp/util/env.hpp"

namespace szp::obs::telemetry {

Builtins& builtins() {
  static Builtins* b = new Builtins();  // immortal, lock-free
  return *b;
}

std::uint64_t uptime_ns() { return now_ns(); }

namespace {

void shutdown_telemetry() {
  TelemetryServer::instance().stop();
  Logger::instance().flush();
}

/// Parse one comma-separated SZP_TELEMETRY directive into opts; any
/// recognized (or bare enabling) value flips `enable`.
void apply_directive(const std::string& d, TelemetryServer::Options& opts,
                     bool& enable) {
  if (d.empty() || d == "0" || d == "off") return;
  enable = true;
  if (d.rfind("port=", 0) == 0) {
    opts.port = static_cast<int>(std::strtol(d.c_str() + 5, nullptr, 10));
  } else if (d.rfind("snapshot=", 0) == 0) {
    opts.snapshot_path = d.substr(9);
  } else if (d.rfind("period=", 0) == 0) {
    const long ms = std::strtol(d.c_str() + 7, nullptr, 10);
    if (ms > 0) opts.snapshot_period_ms = static_cast<int>(ms);
  }
  // "1"/"on"/unknown directives: just enable.
}

}  // namespace

void init_from_env() {
  static const bool done = [] {
    // Pin the clock epoch before anything else, so uptime and every
    // event timestamp share t=0 at init.
    (void)now_ns();

    bool hooked = false;

    // SZP_LOG=<level>[:<path>]
    const std::string log_spec = szp::log_env_spec();
    if (!log_spec.empty()) {
      const std::size_t colon = log_spec.find(':');
      Logger& log = Logger::instance();
      log.set_level(parse_log_level(log_spec.substr(0, colon)));
      if (colon != std::string::npos) {
        const std::string path = log_spec.substr(colon + 1);
        if (!path.empty() && !log.set_json_sink(path)) {
          SZP_LOG_WARN("telemetry", "cannot open SZP_LOG sink %s",
                       path.c_str());
        }
      }
      hooked = true;
    }

    // SZP_TELEMETRY=1|on|port=..,snapshot=..,period=..
    const std::string spec = szp::telemetry_env_spec();
    if (!spec.empty()) {
      TelemetryServer::Options opts;
      bool enable = false;
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        apply_directive(spec.substr(start, end - start), opts, enable);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (enable) {
        // The always-on tier: flight recorder + builtins + exposition.
        // The registry's per-block domain instruments stay behind
        // SZP_STATS (chained below) — they cost real time in the codec
        // inner loops and would blow the <2% overhead contract.
        fr::set_enabled(true);
        if (opts.port >= 0 || !opts.snapshot_path.empty()) {
          if (!TelemetryServer::instance().start(opts)) {
            SZP_LOG_WARN("telemetry", "exposition server failed to start");
          }
        }
        hooked = true;
      }
    }

    // SZP_CRASH_DIR=<dir>
    const std::string crash_dir = szp::crash_dir_env();
    if (!crash_dir.empty()) {
      if (!crash::install({crash_dir})) {
        SZP_LOG_WARN("telemetry", "cannot use SZP_CRASH_DIR %s",
                     crash_dir.c_str());
      }
    }

    if (hooked) std::atexit(shutdown_telemetry);

    // Chain to the tracer/metrics env hooks (SZP_TRACE / SZP_STATS).
    obs::init_from_env();
    return true;
  }();
  (void)done;
}

}  // namespace szp::obs::telemetry
