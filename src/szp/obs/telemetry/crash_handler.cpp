#include "szp/obs/telemetry/crash_handler.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <ostream>

#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/util/common.hpp"

namespace szp::obs::crash {

namespace {

// All state the signal handler touches lives in fixed static storage:
// no allocation, no std::string, no locks.
constexpr std::size_t kPathMax = 1024;
char g_dir[kPathMax] = {0};
char g_path[kPathMax] = {0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_in_crash{false};

// Env knobs captured at install time (the manifest must not call
// getenv from a signal context).
constexpr std::size_t kEnvMax = 256;
char g_env_telemetry[kEnvMax] = {0};
char g_env_log[kEnvMax] = {0};
char g_env_crash_dir[kEnvMax] = {0};
char g_env_devcheck[kEnvMax] = {0};

// Dedicated signal stack so a stack-overflow SIGSEGV still dumps.
char g_altstack[64 * 1024];

const int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

// -------------------------------------------- async-signal-safe writer --

void wr_str(int fd, const char* s) {
  std::size_t n = std::strlen(s);
  std::size_t off = 0;
  while (off < n) {
    const ::ssize_t w = ::write(fd, s + off, n - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

void wr_u64(int fd, std::uint64_t v) {
  char tmp[21];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  char out[21];
  std::size_t m = 0;
  while (n > 0) out[m++] = tmp[--n];
  out[m] = '\0';
  wr_str(fd, out);
}

void wr_i64(int fd, std::int64_t v) {
  if (v < 0) {
    wr_str(fd, "-");
    wr_u64(fd, static_cast<std::uint64_t>(-v));
  } else {
    wr_u64(fd, static_cast<std::uint64_t>(v));
  }
}

/// JSON string from a buffer we control (env values): escape quotes and
/// backslashes, squash control bytes.
void wr_jstr(int fd, const char* s) {
  wr_str(fd, "\"");
  char one[3] = {0, 0, 0};
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      one[0] = '\\';
      one[1] = c;
      one[2] = '\0';
    } else if (static_cast<unsigned char>(c) < 0x20) {
      one[0] = ' ';
      one[1] = '\0';
    } else {
      one[0] = c;
      one[1] = '\0';
    }
    wr_str(fd, one);
  }
  wr_str(fd, "\"");
}

/// The bundle prefix + builtins, shared by the signal and manual paths.
/// Leaves the object open: callers append "recorder" (and optionally
/// "metrics") then close it.
void wr_bundle_head(int fd, const char* reason, int sig) {
  const telemetry::Builtins& b = telemetry::builtins();
  wr_str(fd, "{\"schema\": \"szp.crash_bundle.v1\",\n \"version\": ");
  wr_jstr(fd, szp::kVersionString);
  wr_str(fd, ",\n \"build\": \"");
#ifdef NDEBUG
  wr_str(fd, "release");
#else
  wr_str(fd, "debug");
#endif
  wr_str(fd, "\",\n \"reason\": ");
  wr_jstr(fd, reason);
  wr_str(fd, ",\n \"signal\": ");
  wr_i64(fd, sig);
  wr_str(fd, ",\n \"uptime_ns\": ");
  wr_u64(fd, telemetry::uptime_ns());
  wr_str(fd, ",\n \"env\": {\"SZP_TELEMETRY\": ");
  wr_jstr(fd, g_env_telemetry);
  wr_str(fd, ", \"SZP_LOG\": ");
  wr_jstr(fd, g_env_log);
  wr_str(fd, ", \"SZP_CRASH_DIR\": ");
  wr_jstr(fd, g_env_crash_dir);
  wr_str(fd, ", \"SZP_DEVCHECK\": ");
  wr_jstr(fd, g_env_devcheck);
  wr_str(fd, "},\n \"builtins\": {\"requests\": ");
  wr_u64(fd, b.requests.load(std::memory_order_relaxed));
  wr_str(fd, ", \"errors\": ");
  wr_u64(fd, b.errors.load(std::memory_order_relaxed));
  wr_str(fd, ", \"bytes_in\": ");
  wr_u64(fd, b.bytes_in.load(std::memory_order_relaxed));
  wr_str(fd, ", \"bytes_out\": ");
  wr_u64(fd, b.bytes_out.load(std::memory_order_relaxed));
  wr_str(fd, ", \"queue_depth\": ");
  wr_i64(fd, b.queue_depth.load(std::memory_order_relaxed));
  wr_str(fd, ", \"pool_in_use\": ");
  wr_i64(fd, b.pool_in_use.load(std::memory_order_relaxed));
  wr_str(fd, ", \"log_records\": ");
  wr_u64(fd, b.log_records.load(std::memory_order_relaxed));
  wr_str(fd, ", \"last_trace_id\": ");
  wr_u64(fd, b.last_trace_id.load(std::memory_order_relaxed));
  wr_str(fd, "},\n \"recorder\": ");
}

void write_bundle_fd(int fd, const char* reason, int sig) {
  wr_bundle_head(fd, reason, sig);
  fr::dump_to_fd(fd);
  wr_str(fd, "}\n");
}

void capture_env(const char* name, char* out) {
  if (const char* v = std::getenv(name)) {
    std::strncpy(out, v, kEnvMax - 1);
    out[kEnvMax - 1] = '\0';
  } else {
    out[0] = '\0';
  }
}

void crash_signal_handler(int sig, siginfo_t* /*info*/, void* /*uctx*/) {
  if (!g_in_crash.exchange(true)) {
    const int fd =
        ::open(g_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      char reason[32] = "signal:";
      // Format the signal number by hand (snprintf is not
      // async-signal-safe on all platforms).
      char num[8];
      int v = sig;
      std::size_t n = 0;
      do {
        num[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
      } while (v != 0 && n < sizeof(num) - 1);
      std::size_t pos = std::strlen(reason);
      while (n > 0 && pos < sizeof(reason) - 1) reason[pos++] = num[--n];
      reason[pos] = '\0';
      write_bundle_fd(fd, reason, sig);
      ::close(fd);
    }
  }
  // Restore the default action and re-raise so the exit status keeps
  // the original signal.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void crash_terminate_handler() {
  if (!g_in_crash.exchange(true)) {
    const int fd = ::open(g_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      write_bundle_fd(fd, "unhandled_exception", 0);
      ::close(fd);
    }
  }
  std::abort();  // SIGABRT handler sees g_in_crash set and just re-raises
}

}  // namespace

bool install(const Options& opts) {
  if (opts.dir.empty() || opts.dir.size() >= kPathMax - 64) return false;
  ::mkdir(opts.dir.c_str(), 0755);  // single level; EEXIST is fine
  struct ::stat st;
  if (::stat(opts.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return false;
  }
  std::strncpy(g_dir, opts.dir.c_str(), kPathMax - 1);
  g_dir[kPathMax - 1] = '\0';
  std::snprintf(g_path, kPathMax, "%s/szp_crash_%d.json", g_dir,
                static_cast<int>(::getpid()));

  capture_env("SZP_TELEMETRY", g_env_telemetry);
  capture_env("SZP_LOG", g_env_log);
  capture_env("SZP_CRASH_DIR", g_env_crash_dir);
  capture_env("SZP_DEVCHECK", g_env_devcheck);

  if (!g_installed.exchange(true)) {
    ::stack_t ss;
    ss.ss_sp = g_altstack;
    ss.ss_size = sizeof(g_altstack);
    ss.ss_flags = 0;
    ::sigaltstack(&ss, nullptr);

    struct ::sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = crash_signal_handler;
    sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
    ::sigemptyset(&sa.sa_mask);
    for (const int sig : kSignals) ::sigaction(sig, &sa, nullptr);

    std::set_terminate(crash_terminate_handler);
  }
  return true;
}

bool installed() { return g_installed.load(std::memory_order_relaxed); }

const char* bundle_dir() { return g_dir; }

const char* bundle_path() { return g_path; }

void write_bundle(std::ostream& os, const char* reason) {
  const telemetry::Builtins& b = telemetry::builtins();
  const auto jstr = [&os](const char* s) {
    os << '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        os << '\\' << c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
    os << '"';
  };
  os << "{\"schema\": \"szp.crash_bundle.v1\",\n \"version\": ";
  jstr(szp::kVersionString);
#ifdef NDEBUG
  os << ",\n \"build\": \"release\"";
#else
  os << ",\n \"build\": \"debug\"";
#endif
  os << ",\n \"reason\": ";
  jstr(reason);
  os << ",\n \"signal\": 0,\n \"uptime_ns\": " << telemetry::uptime_ns();
  os << ",\n \"env\": {\"SZP_TELEMETRY\": ";
  jstr(g_env_telemetry);
  os << ", \"SZP_LOG\": ";
  jstr(g_env_log);
  os << ", \"SZP_CRASH_DIR\": ";
  jstr(g_env_crash_dir);
  os << ", \"SZP_DEVCHECK\": ";
  jstr(g_env_devcheck);
  os << "},\n \"builtins\": {\"requests\": "
     << b.requests.load(std::memory_order_relaxed)
     << ", \"errors\": " << b.errors.load(std::memory_order_relaxed)
     << ", \"bytes_in\": " << b.bytes_in.load(std::memory_order_relaxed)
     << ", \"bytes_out\": " << b.bytes_out.load(std::memory_order_relaxed)
     << ", \"queue_depth\": " << b.queue_depth.load(std::memory_order_relaxed)
     << ", \"pool_in_use\": " << b.pool_in_use.load(std::memory_order_relaxed)
     << ", \"log_records\": " << b.log_records.load(std::memory_order_relaxed)
     << ", \"last_trace_id\": "
     << b.last_trace_id.load(std::memory_order_relaxed)
     << "},\n \"recorder\": ";
  fr::write_json(os);
  os << ",\n \"metrics\": ";
  Registry::instance().write_json(os);
  os << "}\n";
}

bool write_bundle_file(const std::string& path, const char* reason) {
  std::ofstream os(path);
  if (!os) return false;
  write_bundle(os, reason);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace szp::obs::crash
