#include "szp/obs/telemetry/flight_recorder.hpp"

#include <unistd.h>

#include <cstring>
#include <ostream>

namespace szp::obs::fr {

void set_enabled(bool on) {
  detail::g_recording.store(on, std::memory_order_relaxed);
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSpanBegin: return "span_begin";
    case Kind::kSpanEnd: return "span_end";
    case Kind::kKernel: return "kernel";
    case Kind::kStreamOp: return "stream_op";
    case Kind::kMemcpy: return "memcpy";
    case Kind::kFault: return "fault";
    case Kind::kSalvage: return "salvage";
    case Kind::kError: return "error";
    case Kind::kLog: return "log";
    case Kind::kRequest: return "request";
  }
  return "unknown";
}

namespace detail {

std::atomic<Ring*>& ring_list() {
  static std::atomic<Ring*> head{nullptr};
  return head;
}

namespace {

std::atomic<std::uint32_t> g_next_tid{0};

/// Keeps the thread's ring pointer; on thread exit only marks it dead —
/// the ring itself is immortal so late/crash-time readers stay safe.
struct ThreadLocalRing {
  Ring* ring = nullptr;
  ~ThreadLocalRing() {
    if (ring != nullptr) {
      ring->alive.store(false, std::memory_order_relaxed);
    }
  }
};

}  // namespace

Ring& local_ring() {
  thread_local ThreadLocalRing handle;
  if (handle.ring == nullptr) {
    Ring* r = new Ring();  // intentionally never freed
    r->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    std::atomic<Ring*>& head = ring_list();
    Ring* old = head.load(std::memory_order_relaxed);
    do {
      r->next = old;
    } while (!head.compare_exchange_weak(old, r, std::memory_order_release,
                                         std::memory_order_relaxed));
    handle.ring = r;
  }
  return *handle.ring;
}

void record_impl(Kind k, const char* name, std::uint64_t a, std::uint64_t b) {
  local_ring().push(k, name, a, b);
}

void span_begin_impl(const char* name) {
  Ring& r = local_ring();
  const std::uint32_t d = r.span_depth.load(std::memory_order_relaxed);
  if (d < kMaxSpanDepth) r.span_stack[d] = name;
  r.span_depth.store(d + 1, std::memory_order_release);
  r.push(Kind::kSpanBegin, name, 0, 0);
}

void span_end_impl() {
  Ring& r = local_ring();
  const std::uint32_t d = r.span_depth.load(std::memory_order_relaxed);
  const char* name = "";
  if (d > 0) {
    if (d <= kMaxSpanDepth) name = r.span_stack[d - 1];
    r.span_depth.store(d - 1, std::memory_order_release);
  }
  r.push(Kind::kSpanEnd, name, 0, 0);
}

}  // namespace detail

void set_thread_name(const char* name) {
  if (!recording_enabled()) return;
  Ring& r = detail::local_ring();
  std::strncpy(r.thread_name, name, sizeof(r.thread_name) - 1);
  r.thread_name[sizeof(r.thread_name) - 1] = '\0';
}

std::uint64_t event_count() {
  std::uint64_t n = 0;
  for (Ring* r = detail::ring_list().load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    n += r->seq.load(std::memory_order_acquire);
  }
  return n;
}

std::uint64_t dropped_events() {
  std::uint64_t n = 0;
  for (Ring* r = detail::ring_list().load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    const std::uint64_t seq = r->seq.load(std::memory_order_acquire);
    if (seq > kRingCapacity) n += seq - kRingCapacity;
  }
  return n;
}

void clear() {
  for (Ring* r = detail::ring_list().load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    r->seq.store(0, std::memory_order_release);
    r->span_depth.store(0, std::memory_order_release);
  }
}

// ------------------------------------------------------------- dumps ----
//
// Both dump paths walk the same data; the fd path restricts itself to
// async-signal-safe operations (write(2) + integer formatting into a
// stack buffer), the ostream path produces byte-identical JSON so the
// crash-bundle schema has one shape.

namespace {

/// Bounded, allocation-free JSON writer over a raw fd.
struct FdWriter {
  int fd;
  char buf[1024];
  std::size_t len = 0;
  bool ok = true;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t w = ::write(fd, buf + off, len - off);
      if (w <= 0) {
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    len = 0;
  }
  void ch(char c) {
    if (len >= sizeof(buf)) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    for (; *s != '\0'; ++s) ch(*s);
  }
  /// JSON string with minimal escaping (names are literals we control,
  /// but stay strict anyway).
  void jstr(const char* s) {
    ch('"');
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        ch('\\');
        ch(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        ch(' ');
      } else {
        ch(c);
      }
    }
    ch('"');
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }
};

/// Shared dump walk, parameterized over the two writers via a tiny
/// emit interface so the JSON stays byte-identical.
template <class W>
void dump_rings(W& w) {
  w.str("{\"schema\": \"szp.flight_recorder.v1\", \"threads\": [");
  bool first_ring = true;
  for (Ring* r = detail::ring_list().load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    w.str(first_ring ? "\n" : ",\n");
    first_ring = false;
    const std::uint64_t seq = r->seq.load(std::memory_order_acquire);
    const std::uint64_t kept =
        seq < kRingCapacity ? seq : static_cast<std::uint64_t>(kRingCapacity);
    w.str("{\"tid\": ");
    w.u64(r->tid);
    w.str(", \"name\": ");
    w.jstr(r->thread_name);
    w.str(", \"alive\": ");
    w.str(r->alive.load(std::memory_order_relaxed) ? "true" : "false");
    w.str(", \"dropped\": ");
    w.u64(seq > kRingCapacity ? seq - kRingCapacity : 0);
    w.str(", \"active_spans\": [");
    const std::uint32_t depth = r->span_depth.load(std::memory_order_acquire);
    const std::uint32_t shown =
        depth < kMaxSpanDepth ? depth
                              : static_cast<std::uint32_t>(kMaxSpanDepth);
    for (std::uint32_t i = 0; i < shown; ++i) {
      if (i > 0) w.str(", ");
      w.jstr(r->span_stack[i] != nullptr ? r->span_stack[i] : "");
    }
    w.str("], \"events\": [");
    for (std::uint64_t i = 0; i < kept; ++i) {
      // Oldest first: slots [seq-kept, seq).
      const Event& e = r->slots[(seq - kept + i) % kRingCapacity];
      w.str(i > 0 ? ",\n  " : "\n  ");
      w.str("{\"ts_ns\": ");
      w.u64(e.ts_ns);
      w.str(", \"kind\": ");
      w.jstr(kind_name(e.kind));
      w.str(", \"name\": ");
      w.jstr(e.name != nullptr ? e.name : "");
      w.str(", \"trace_id\": ");
      w.u64(e.trace_id);
      w.str(", \"a\": ");
      w.u64(e.a);
      w.str(", \"b\": ");
      w.u64(e.b);
      w.str("}");
    }
    w.str("]}");
  }
  w.str("\n]}");
}

/// ostream adapter with the same emit interface as FdWriter.
struct OsWriter {
  std::ostream& os;
  void str(const char* s) { os << s; }
  void jstr(const char* s) {
    os << '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        os << '\\' << c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
    os << '"';
  }
  void u64(std::uint64_t v) { os << v; }
};

}  // namespace

void write_json(std::ostream& os) {
  OsWriter w{os};
  dump_rings(w);
  os << '\n';
}

bool dump_to_fd(int fd) {
  FdWriter w{fd};
  dump_rings(w);
  w.ch('\n');
  w.flush();
  return w.ok;
}

}  // namespace szp::obs::fr
