// Always-on flight recorder: a black box of recent structured events.
//
// Each thread owns a fixed-size ring of plain-old-data events (span
// begin/end, kernel launches, stream ops, fault/salvage events, errors,
// log records). Pushes are lock-free and owner-only: write the slot,
// then release-store the sequence counter. Rings live in a push-only
// intrusive list that is never freed, so a reader — including the crash
// handler running in a signal context — can traverse it without locks
// or allocation.
//
// Overhead contract: with recording disabled every instrumentation site
// costs one relaxed atomic load and branch (same as the tracer and
// metrics fast paths); enabled, a push is a clock read plus a handful
// of plain stores. Readers tolerate a torn in-flight slot on a live
// thread: this is a crash-dump black box, not a precise trace.
//
// Event names must be string literals (or otherwise immortal) — events
// store the pointer, and the crash handler dereferences it after the
// fault.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "szp/obs/trace_id.hpp"

namespace szp::obs {
/// Defined in tracer.cpp: monotonic ns since process start.
std::uint64_t now_ns();
}  // namespace szp::obs

namespace szp::obs::fr {

namespace detail {
inline std::atomic<bool> g_recording{false};
}  // namespace detail

/// The one-branch fast path: every recording site checks this first.
[[nodiscard]] inline bool recording_enabled() {
  return detail::g_recording.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// Structured event kinds — what the last moments of a process looked
/// like, not a full trace.
enum class Kind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kKernel = 2,
  kStreamOp = 3,
  kMemcpy = 4,
  kFault = 5,
  kSalvage = 6,
  kError = 7,
  kLog = 8,
  kRequest = 9,
};

[[nodiscard]] const char* kind_name(Kind k);

/// One recorded event; plain data so a signal-context reader can format
/// it with nothing but integer printing.
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t trace_id = 0;
  const char* name = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Kind kind = Kind::kLog;
};

/// Events kept per thread. A power of two keeps the wrap cheap.
inline constexpr std::size_t kRingCapacity = 256;
/// Active-span stack depth tracked per thread; deeper nesting is still
/// counted but the names are not retained.
inline constexpr std::size_t kMaxSpanDepth = 16;

/// One thread's ring + active-span stack. Public so the crash handler
/// can walk rings from a signal context; everything here is either
/// owner-written plain data published by `seq`, or atomics.
struct Ring {
  std::uint32_t tid = 0;
  char thread_name[48] = {0};
  std::atomic<std::uint64_t> seq{0};  // events ever pushed; head = seq % cap
  std::atomic<bool> alive{true};
  Event slots[kRingCapacity];
  const char* span_stack[kMaxSpanDepth] = {nullptr};
  std::atomic<std::uint32_t> span_depth{0};
  Ring* next = nullptr;  // intrusive push-only list

  /// Owner-only push: fill the slot, then publish with a release store
  /// so a reader that acquires `seq` sees complete slots behind it.
  void push(Kind k, const char* name, std::uint64_t a, std::uint64_t b) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    Event& e = slots[s % kRingCapacity];
    e.ts_ns = szp::obs::now_ns();
    e.trace_id = current_trace_id();
    e.name = name;
    e.a = a;
    e.b = b;
    e.kind = k;
    seq.store(s + 1, std::memory_order_release);
  }
};

namespace detail {
/// Head of the immortal ring list (push-only; never freed so the crash
/// handler can traverse it lock-free at any time).
[[nodiscard]] std::atomic<Ring*>& ring_list();
/// The calling thread's ring, registering it on first use.
[[nodiscard]] Ring& local_ring();
void record_impl(Kind k, const char* name, std::uint64_t a, std::uint64_t b);
void span_begin_impl(const char* name);
void span_end_impl();
}  // namespace detail

/// Record one event into the calling thread's ring.
inline void record(Kind k, const char* name, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
  if (!recording_enabled()) return;
  detail::record_impl(k, name, a, b);
}

/// Label the calling thread in dumps (truncated to 47 chars).
void set_thread_name(const char* name);

/// RAII span: records kSpanBegin/kSpanEnd and maintains the per-thread
/// active-span stack the crash handler reports.
class Span {
 public:
  explicit Span(const char* name) {
    if (recording_enabled()) {
      active_ = true;
      detail::span_begin_impl(name);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) detail::span_end_impl();
  }

 private:
  bool active_ = false;
};

/// Total events ever recorded / lost to wrap-around, across all rings.
[[nodiscard]] std::uint64_t event_count();
[[nodiscard]] std::uint64_t dropped_events();

/// Drop all recorded events and span stacks (rings stay registered).
void clear();

/// JSON dump of every ring: {"threads": [{tid, name, dropped,
/// active_spans, events: [...]}, ...]}. Same shape the crash handler
/// emits inside a bundle.
void write_json(std::ostream& os);

/// Async-signal-safe variant of write_json: formats with nothing but
/// integer printing and write(2). Used by the crash handler; also handy
/// for tests. Returns false if any write failed.
bool dump_to_fd(int fd);

}  // namespace szp::obs::fr
