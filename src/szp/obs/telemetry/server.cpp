#include "szp/obs/telemetry/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "szp/obs/log.hpp"
#include "szp/obs/telemetry/exposition.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::obs::telemetry {

struct TelemetryServer::Impl {
  mutable Mutex mutex;
  CondVar wake;
  bool stopping SZP_GUARDED_BY(mutex) = false;
  bool tcp_running SZP_GUARDED_BY(mutex) = false;
  bool snap_running SZP_GUARDED_BY(mutex) = false;
  int listen_fd SZP_GUARDED_BY(mutex) = -1;
  int bound_port SZP_GUARDED_BY(mutex) = 0;
  std::string snapshot_path SZP_GUARDED_BY(mutex);
  int snapshot_period_ms SZP_GUARDED_BY(mutex) = 1000;
  // Threads are joined by stop(); raw std::thread is whitelisted for
  // this file in szp_lint (the pipeline/stream wrappers are built for
  // work queues, not a blocking accept loop).
  std::thread tcp_thread;
  std::thread snap_thread;
};

TelemetryServer& TelemetryServer::instance() {
  static TelemetryServer* s = new TelemetryServer();
  return *s;
}

TelemetryServer::Impl& TelemetryServer::impl() const {
  static Impl* i = new Impl();
  return *i;
}

namespace {

/// Serve one accepted connection: drain whatever request bytes arrived,
/// write an HTTP/1.0 response with the exposition text, close.
void serve_connection(int fd) {
  char req[512];
  (void)::recv(fd, req, sizeof(req), MSG_DONTWAIT);
  const std::string body = prometheus_text();
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                body.size());
  std::string resp = std::string(head) + body;
  std::size_t off = 0;
  while (off < resp.size()) {
    const ::ssize_t w = ::send(fd, resp.data() + off, resp.size() - off, 0);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
}

/// Write the snapshot atomically: tmp file + rename.
void write_snapshot(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;
    const std::string body = prometheus_text();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

bool TelemetryServer::start(const Options& opts) {
  Impl& im = impl();
  bool ok = true;

  if (opts.port >= 0) {
    const LockGuard lock(im.mutex);
    if (!im.tcp_running) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        ok = false;
      } else {
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        ::sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
        if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) !=
                0 ||
            ::listen(fd, 8) != 0) {
          ::close(fd);
          ok = false;
        } else {
          ::socklen_t len = sizeof(addr);
          ::getsockname(fd, reinterpret_cast<::sockaddr*>(&addr), &len);
          im.listen_fd = fd;
          im.bound_port = ntohs(addr.sin_port);
          im.tcp_running = true;
          im.stopping = false;
          im.tcp_thread = std::thread([this, fd] {
            for (;;) {
              const int conn = ::accept(fd, nullptr, nullptr);
              if (conn < 0) break;  // listen fd closed by stop()
              serve_connection(conn);
            }
            Impl& tim = impl();
            const LockGuard tlock(tim.mutex);
            tim.tcp_running = false;
          });
          SZP_LOG_INFO("telemetry", "exposition listening on 127.0.0.1:%d",
                       im.bound_port);
        }
      }
    }
  }

  if (!opts.snapshot_path.empty()) {
    const LockGuard lock(im.mutex);
    if (!im.snap_running) {
      im.snapshot_path = opts.snapshot_path;
      im.snapshot_period_ms =
          opts.snapshot_period_ms > 0 ? opts.snapshot_period_ms : 1000;
      im.snap_running = true;
      im.stopping = false;
      im.snap_thread = std::thread([this] {
        Impl& tim = impl();
        for (;;) {
          std::string path;
          int period_ms;
          {
            UniqueLock lk(tim.mutex);
            if (tim.stopping) break;
            path = tim.snapshot_path;
            period_ms = tim.snapshot_period_ms;
          }
          write_snapshot(path);
          {
            UniqueLock lk(tim.mutex);
            if (tim.stopping) break;
            tim.wake.wait_for(lk, std::chrono::milliseconds(period_ms));
          }
        }
      });
    }
  }

  return ok;
}

void TelemetryServer::stop() {
  Impl& im = impl();
  std::string final_snapshot;
  {
    const LockGuard lock(im.mutex);
    im.stopping = true;
    if (im.listen_fd >= 0) {
      // shutdown + close unblocks the accept loop.
      ::shutdown(im.listen_fd, SHUT_RDWR);
      ::close(im.listen_fd);
      im.listen_fd = -1;
      im.bound_port = 0;
    }
    final_snapshot = im.snapshot_path;
    im.wake.notify_all();
  }
  if (im.tcp_thread.joinable()) im.tcp_thread.join();
  if (im.snap_thread.joinable()) im.snap_thread.join();
  {
    const LockGuard lock(im.mutex);
    im.snap_running = false;
    im.snapshot_path.clear();
  }
  if (!final_snapshot.empty()) write_snapshot(final_snapshot);
}

int TelemetryServer::port() const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  return im.bound_port;
}

bool TelemetryServer::running() const {
  Impl& im = impl();
  const LockGuard lock(im.mutex);
  return im.tcp_running || im.snap_running;
}

}  // namespace szp::obs::telemetry
