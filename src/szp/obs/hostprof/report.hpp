// Exporters for hostprof snapshots: schema-v1 JSON, a human-readable
// attribution table, and the deterministic counter fingerprint.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "szp/obs/hostprof/hostprof.hpp"

namespace szp::obs::hostprof {

/// Attribution totals for one lane (or aggregated across lanes).
struct Attribution {
  std::uint64_t wall_ns = 0;
  std::array<std::uint64_t, kNumBuckets> bucket_ns{};
  std::uint64_t idle_ns = 0;

  [[nodiscard]] std::uint64_t bucket(Bucket b) const {
    return bucket_ns[static_cast<unsigned>(b)];
  }
  /// Codec stage time: qp + fe + gs + bb + checksum.
  [[nodiscard]] std::uint64_t work_ns() const;
  /// Executor time: queue_wait + dispatch + barrier.
  [[nodiscard]] std::uint64_t overhead_ns() const;
  /// Percent of wall (0..100); 0 when wall is 0.
  [[nodiscard]] double pct(Bucket b) const;
  [[nodiscard]] double idle_pct() const;
};

[[nodiscard]] Attribution attribution_of(const ThreadSnapshot& t);
/// Sum over every lane in the snapshot.
[[nodiscard]] Attribution aggregate_attribution(const Snapshot& s);
/// Largest executor-overhead bucket ("queue_wait" / "dispatch" /
/// "barrier"), or "none" when no overhead was recorded.
[[nodiscard]] std::string_view dominant_overhead(const Attribution& a);

/// Schema v1: {"szp_hostprof_version": 1, "counters": {...},
/// "threads": [...], "summary": {...}}.
void write_hostprof_json(std::ostream& os, const Snapshot& s);
bool write_hostprof_json_file(const std::string& path, const Snapshot& s);

/// Per-lane attribution table (percent of lane wall per bucket).
void write_hostprof_text(std::ostream& os, const Snapshot& s);

/// The version + counters section only — the run-to-run byte-identical
/// slice of the report (no lanes, no nanoseconds).
[[nodiscard]] std::string counter_fingerprint(const Snapshot& s);

}  // namespace szp::obs::hostprof
