// Per-thread host execution profiler for the parallel host backend.
//
// The gpusim profiler (szp/gpusim/profile/) answers "where does the
// simulated device spend its time"; this module answers the same question
// for the engine's ThreadPool + host codec, where ROADMAP item 1's
// regression lives (4 threads slower than serial). Activation mirrors the
// kernel profiler:
//   * `SZP_HOSTPROF=1` (or `on`) — collect in memory; callers snapshot
//     explicitly (szp_cli, bench_pr7_hostscale).
//   * `SZP_HOSTPROF=<path>` — additionally write the JSON report there at
//     process exit.
//   * explicit Profiler::instance().set_enabled(true) — tests/benches.
//
// Attribution model: every instrumented thread owns a lane, registered
// lazily on its first sample and surviving thread exit until reset().
// Lane wall time (registration → snapshot) splits into
//   work     = qp + fe + gs + bb + checksum     (codec stage buckets)
//   overhead = queue_wait + dispatch + barrier  (executor buckets)
//   idle     = the unattributed residual
// so per-lane attribution always sums to 100% of lane wall time.
//
// Determinism contract: the ThreadPool claims chunks dynamically
// (fetch_add), so *per-lane* numbers vary run to run and live in the
// timing section. Counters (blocks, bytes, chunk-size histograms,
// cache-line-sharing incidents) are updated only with values that are a
// pure function of (data, params, executor width), so the counter section
// — and counter_fingerprint() — is byte-identical across runs at a fixed
// thread count.
//
// Disabled overhead is one relaxed atomic load + branch per site, under
// the same budget as the obs tracer (tests/obs/test_hostprof.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "szp/obs/tracer.hpp"  // now_ns()

namespace szp::obs::hostprof {

namespace detail {
/// Global enable flag; inline so the fast-path check inlines everywhere.
inline std::atomic<bool> g_hostprof{false};
}  // namespace detail

/// The one-branch fast path: every sample helper checks this first.
[[nodiscard]] inline bool enabled() {
  return detail::g_hostprof.load(std::memory_order_relaxed);
}

/// Profiler configuration, parsed from SZP_HOSTPROF.
struct Options {
  bool enabled = false;
  bool from_env = false;
  /// Non-empty when SZP_HOSTPROF named a file: the JSON report is written
  /// there at process exit.
  std::string export_path;

  [[nodiscard]] static Options off() { return {}; }
  [[nodiscard]] static Options on() {
    Options o;
    o.enabled = true;
    return o;
  }
};

/// Parse an SZP_HOSTPROF-style value: "" / "0" / "off" → disabled,
/// "1" / "on" → collect only, anything else → collect + export path.
[[nodiscard]] Options options_from_string(std::string_view spec);

/// Read SZP_HOSTPROF from the environment (sets from_env when armed).
[[nodiscard]] Options options_from_env();

/// Where a sampled nanosecond interval is attributed.
enum class Bucket : unsigned {
  kQueueWait,  // worker: waiting on cv_start_ for a batch
  kDispatch,   // caller: batch publish + worker wakeup
  kQP,         // quantize + Lorenzo prediction (inverse on decode)
  kFE,         // sign split + fixed-length scan + outlier scan
  kGS,         // serial chunk-offset prefix sum / offset rebuild
  kBB,         // payload write + pass-2 scatter / payload read
  kChecksum,   // checksum-group CRC pass / verify
  kBarrier,    // caller: cv_done_ wait for the offset-pass barrier
  kCount_,
};
inline constexpr unsigned kNumBuckets = static_cast<unsigned>(Bucket::kCount_);
[[nodiscard]] std::string_view bucket_name(Bucket b);

/// Deterministic counters (see the determinism contract above).
enum class HostCounter : unsigned {
  kCompressCalls,
  kDecompressCalls,
  kBatches,         // executor batches submitted
  kTasks,           // chunk tasks submitted (sum of batch sizes)
  kBlocksEncoded,
  kBlocksDecoded,
  kBytesRead,       // element bytes in (compress) + stream bytes in (decode)
  kBytesWritten,    // stream bytes out (compress) + element bytes out (decode)
  kChunks,          // chunk count across calls
  kFalseSharedBoundaries,  // adjacent chunks sharing a 64B output line
  kCount_,
};
inline constexpr unsigned kNumHostCounters =
    static_cast<unsigned>(HostCounter::kCount_);
[[nodiscard]] std::string_view counter_name(HostCounter c);

// --- snapshot value types (plain data, exporter input) -----------------

struct HistSnapshot {
  std::vector<std::uint64_t> buckets;  // pow2 buckets, bucket i ~ bit_width i
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
};

struct ThreadSnapshot {
  std::uint32_t tid = 0;    // hostprof lane id, registration order
  std::string label;        // "szp-worker-0", "szp-caller", ...
  bool alive = true;
  std::uint64_t wall_ns = 0;  // lane registration → snapshot (or exit)
  std::array<std::uint64_t, kNumBuckets> bucket_ns{};
  std::uint64_t idle_ns = 0;  // wall - sum(bucket_ns), clamped at 0
  std::uint64_t tasks = 0;    // chunk tasks this lane claimed
  std::uint64_t batches = 0;  // batches this lane submitted
};

struct Snapshot {
  std::array<std::uint64_t, kNumHostCounters> counters{};
  HistSnapshot chunk_blocks;         // blocks per compress chunk
  HistSnapshot chunk_payload_bytes;  // payload bytes per compress chunk
  std::vector<ThreadSnapshot> threads;

  [[nodiscard]] std::uint64_t counter(HostCounter c) const {
    return counters[static_cast<unsigned>(c)];
  }
};

// --- the profiler ------------------------------------------------------

/// Process-wide collector. Threads register a lane lazily on their first
/// sample; lanes survive thread exit until reset() so short-lived worker
/// pools keep their rows in the report.
class Profiler {
 public:
  static Profiler& instance();

  void set_enabled(bool on) {
    detail::g_hostprof.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool is_enabled() const { return enabled(); }

  /// Timing samples (callers check enabled(); these always record).
  void add_time(Bucket b, std::uint64_t ns);
  void note_task();   // calling lane claimed one chunk task
  void note_batch();  // calling lane submitted one executor batch

  /// Label the calling lane "<prefix><index>" if it has no label yet.
  void label_thread(std::string_view prefix, unsigned index);
  /// Label the calling lane unconditionally.
  void set_thread_label(std::string label);

  /// Deterministic counters (callers check enabled()).
  void count(HostCounter c, std::uint64_t n = 1);
  void observe_chunk(std::uint64_t blocks, std::uint64_t payload_bytes);

  /// Value-typed copy of everything collected so far.
  [[nodiscard]] Snapshot snapshot() const;
  /// Zero counters and live lanes; drop lanes of exited threads.
  void reset();

  /// SZP_HOSTPROF=<path> export target ("" = none).
  void set_export_path(std::string path);
  [[nodiscard]] std::string export_path() const;

  // Implementation detail (public so the thread-local registration helper
  // in hostprof.cpp can hold a shared_ptr to its lane).
  struct ThreadSlot;

 private:
  Profiler() = default;
  [[nodiscard]] ThreadSlot& local_slot();
  struct Registry;
  Registry& registry() const;
};

// ------------------------------------------------------------ helpers ----

/// RAII bucket timer: attributes construction..destruction to `b`.
/// One branch when disabled (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Bucket b) {
    if (enabled()) {
      active_ = true;
      b_ = b;
      t0_ = now_ns();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Attribute the elapsed time now instead of at scope exit (idempotent).
  void stop() {
    if (!active_) return;
    active_ = false;
    Profiler::instance().add_time(b_, now_ns() - t0_);
  }

 private:
  bool active_ = false;
  Bucket b_ = Bucket::kQueueWait;
  std::uint64_t t0_ = 0;
};

/// Timer that attributes consecutive phases of one scope to different
/// buckets: time up to each split() goes to the current bucket, the
/// remainder (to destruction or the next split) to the new one.
class SplitTimer {
 public:
  explicit SplitTimer(Bucket b) {
    if (enabled()) {
      active_ = true;
      b_ = b;
      t0_ = now_ns();
    }
  }
  SplitTimer(const SplitTimer&) = delete;
  SplitTimer& operator=(const SplitTimer&) = delete;
  ~SplitTimer() {
    if (active_) Profiler::instance().add_time(b_, now_ns() - t0_);
  }

  void split(Bucket next) {
    if (!active_) return;
    const std::uint64_t t = now_ns();
    Profiler::instance().add_time(b_, t - t0_);
    b_ = next;
    t0_ = t;
  }

 private:
  bool active_ = false;
  Bucket b_ = Bucket::kQueueWait;
  std::uint64_t t0_ = 0;
};

/// Process SZP_HOSTPROF once: enable collection, and when a path was
/// given, write the JSON report there at process exit (std::atexit).
/// Idempotent and cheap; the ThreadPool constructor calls it.
void init_from_env();

}  // namespace szp::obs::hostprof
