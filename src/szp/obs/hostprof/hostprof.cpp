#include "szp/obs/hostprof/hostprof.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <memory>

#include "szp/obs/hostprof/report.hpp"
#include "szp/obs/log.hpp"
#include "szp/util/env.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::obs::hostprof {

std::string_view bucket_name(Bucket b) {
  switch (b) {
    case Bucket::kQueueWait: return "queue_wait";
    case Bucket::kDispatch: return "dispatch";
    case Bucket::kQP: return "qp";
    case Bucket::kFE: return "fe";
    case Bucket::kGS: return "gs";
    case Bucket::kBB: return "bb";
    case Bucket::kChecksum: return "checksum";
    case Bucket::kBarrier: return "barrier";
    case Bucket::kCount_: break;
  }
  return "?";
}

std::string_view counter_name(HostCounter c) {
  switch (c) {
    case HostCounter::kCompressCalls: return "compress_calls";
    case HostCounter::kDecompressCalls: return "decompress_calls";
    case HostCounter::kBatches: return "batches";
    case HostCounter::kTasks: return "tasks";
    case HostCounter::kBlocksEncoded: return "blocks_encoded";
    case HostCounter::kBlocksDecoded: return "blocks_decoded";
    case HostCounter::kBytesRead: return "bytes_read";
    case HostCounter::kBytesWritten: return "bytes_written";
    case HostCounter::kChunks: return "chunks";
    case HostCounter::kFalseSharedBoundaries: return "false_shared_boundaries";
    case HostCounter::kCount_: break;
  }
  return "?";
}

Options options_from_string(std::string_view spec) {
  Options o;
  if (spec.empty() || spec == "0" || spec == "off") return o;
  o.enabled = true;
  if (spec == "1" || spec == "on") return o;
  o.export_path.assign(spec);
  return o;
}

Options options_from_env() {
  Options o = options_from_string(hostprof_env_spec());
  if (o.enabled) o.from_env = true;
  return o;
}

namespace {

/// Power-of-two histogram: bucket i counts values with bit_width i
/// (v = 0 → bucket 0, 1 → 1, 2..3 → 2, ...). Concurrent observes are
/// relaxed adds, so totals are order-independent and deterministic.
struct AtomicPow2Hist {
  static constexpr unsigned kBuckets = 65;  // uint64 bit widths 0..64
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};

  void observe(std::uint64_t v) {
    buckets[static_cast<unsigned>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max.load(std::memory_order_relaxed);
    while (v > cur &&
           !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] HistSnapshot snapshot() const {
    HistSnapshot out;
    out.buckets.resize(kBuckets);
    for (unsigned i = 0; i < kBuckets; ++i) {
      out.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    }
    // Trim trailing empty buckets so two runs with the same populated
    // range serialize identically and compactly.
    while (!out.buckets.empty() && out.buckets.back() == 0) {
      out.buckets.pop_back();
    }
    out.count = count.load(std::memory_order_relaxed);
    out.sum = sum.load(std::memory_order_relaxed);
    out.max = max.load(std::memory_order_relaxed);
    return out;
  }
};

}  // namespace

/// One thread's lane. Bucket adds come only from the owning thread
/// (relaxed atomics so snapshots from other threads read torn-free); the
/// mutex guards label/alive.
struct Profiler::ThreadSlot {
  mutable Mutex mutex;  // label + alive
  std::uint32_t tid = 0;  // immutable after registration
  std::string label SZP_GUARDED_BY(mutex);
  bool alive SZP_GUARDED_BY(mutex) = true;
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> end_ns{0};  // set once at thread exit
  std::array<std::atomic<std::uint64_t>, kNumBuckets> bucket_ns{};
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> batches{0};
};

struct Profiler::Registry {
  mutable Mutex mutex;
  std::vector<std::shared_ptr<ThreadSlot>> slots SZP_GUARDED_BY(mutex);
  std::uint32_t next_tid SZP_GUARDED_BY(mutex) = 0;
  std::string export_path SZP_GUARDED_BY(mutex);
  std::array<std::atomic<std::uint64_t>, kNumHostCounters> counters{};
  AtomicPow2Hist chunk_blocks;
  AtomicPow2Hist chunk_payload_bytes;
};

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();  // leaked: usable from exit handlers
  return *p;
}

Profiler::Registry& Profiler::registry() const {
  static Registry* r = new Registry();
  return *r;
}

namespace {
/// Marks the lane dead (and stamps its end time) when the owning thread
/// exits; the lane itself stays registered until Profiler::reset().
struct SlotHandle {
  std::shared_ptr<Profiler::ThreadSlot> slot;
  ~SlotHandle() {
    if (slot) {
      slot->end_ns.store(now_ns(), std::memory_order_relaxed);
      const LockGuard lock(slot->mutex);
      slot->alive = false;
    }
  }
};
}  // namespace

Profiler::ThreadSlot& Profiler::local_slot() {
  thread_local SlotHandle handle;
  if (!handle.slot) {
    auto slot = std::make_shared<ThreadSlot>();
    slot->start_ns.store(now_ns(), std::memory_order_relaxed);
    Registry& reg = registry();
    const LockGuard lock(reg.mutex);
    slot->tid = reg.next_tid++;
    reg.slots.push_back(slot);
    handle.slot = std::move(slot);
  }
  return *handle.slot;
}

void Profiler::add_time(Bucket b, std::uint64_t ns) {
  local_slot().bucket_ns[static_cast<unsigned>(b)].fetch_add(
      ns, std::memory_order_relaxed);
}

void Profiler::note_task() {
  local_slot().tasks.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::note_batch() {
  local_slot().batches.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::label_thread(std::string_view prefix, unsigned index) {
  ThreadSlot& slot = local_slot();
  const LockGuard lock(slot.mutex);
  if (slot.label.empty()) {
    slot.label = std::string(prefix) + std::to_string(index);
  }
}

void Profiler::set_thread_label(std::string label) {
  ThreadSlot& slot = local_slot();
  const LockGuard lock(slot.mutex);
  slot.label = std::move(label);
}

void Profiler::count(HostCounter c, std::uint64_t n) {
  registry().counters[static_cast<unsigned>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void Profiler::observe_chunk(std::uint64_t blocks,
                             std::uint64_t payload_bytes) {
  Registry& reg = registry();
  reg.chunk_blocks.observe(blocks);
  reg.chunk_payload_bytes.observe(payload_bytes);
}

Snapshot Profiler::snapshot() const {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadSlot>> slots;
  Snapshot out;
  {
    const LockGuard lock(reg.mutex);
    slots = reg.slots;
  }
  for (unsigned i = 0; i < kNumHostCounters; ++i) {
    out.counters[i] = reg.counters[i].load(std::memory_order_relaxed);
  }
  out.chunk_blocks = reg.chunk_blocks.snapshot();
  out.chunk_payload_bytes = reg.chunk_payload_bytes.snapshot();
  const std::uint64_t now = now_ns();
  out.threads.reserve(slots.size());
  for (const auto& slot : slots) {
    ThreadSnapshot t;
    {
      const LockGuard lock(slot->mutex);
      t.label = slot->label;
      t.alive = slot->alive;
    }
    t.tid = slot->tid;
    const std::uint64_t start = slot->start_ns.load(std::memory_order_relaxed);
    const std::uint64_t end =
        t.alive ? now : slot->end_ns.load(std::memory_order_relaxed);
    t.wall_ns = end > start ? end - start : 0;
    std::uint64_t attributed = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
      t.bucket_ns[b] = slot->bucket_ns[b].load(std::memory_order_relaxed);
      attributed += t.bucket_ns[b];
    }
    // Clock granularity can push the bucket sum a hair past the lane
    // wall; report the wall as attributed so percentages stay sane.
    if (attributed > t.wall_ns) t.wall_ns = attributed;
    t.idle_ns = t.wall_ns - attributed;
    t.tasks = slot->tasks.load(std::memory_order_relaxed);
    t.batches = slot->batches.load(std::memory_order_relaxed);
    out.threads.push_back(std::move(t));
  }
  return out;
}

void Profiler::reset() {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  auto& v = reg.slots;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const std::shared_ptr<ThreadSlot>& s) {
                           const LockGuard sl(s->mutex);
                           return !s->alive;
                         }),
          v.end());
  const std::uint64_t now = now_ns();
  for (const auto& slot : v) {
    for (auto& b : slot->bucket_ns) b.store(0, std::memory_order_relaxed);
    slot->tasks.store(0, std::memory_order_relaxed);
    slot->batches.store(0, std::memory_order_relaxed);
    slot->start_ns.store(now, std::memory_order_relaxed);
    slot->end_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& c : reg.counters) c.store(0, std::memory_order_relaxed);
  reg.chunk_blocks.reset();
  reg.chunk_payload_bytes.reset();
}

void Profiler::set_export_path(std::string path) {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  reg.export_path = std::move(path);
}

std::string Profiler::export_path() const {
  Registry& reg = registry();
  const LockGuard lock(reg.mutex);
  return reg.export_path;
}

namespace {

void flush_env_report() {
  const std::string path = Profiler::instance().export_path();
  if (path.empty()) return;
  const Snapshot snap = Profiler::instance().snapshot();
  if (write_hostprof_json_file(path, snap)) {
    SZP_LOG_INFO("hostprof", "wrote report to %s (%zu lanes)", path.c_str(),
                 snap.threads.size());
  } else {
    SZP_LOG_ERROR("hostprof", "FAILED to write report to %s", path.c_str());
  }
}

}  // namespace

void init_from_env() {
  static const bool done = [] {
    const Options o = options_from_env();
    if (o.enabled) {
      Profiler::instance().set_enabled(true);
      if (!o.export_path.empty()) {
        Profiler::instance().set_export_path(o.export_path);
        std::atexit(flush_env_report);
      }
    }
    return true;
  }();
  (void)done;
}

}  // namespace szp::obs::hostprof
