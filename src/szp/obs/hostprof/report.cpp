#include "szp/obs/hostprof/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace szp::obs::hostprof {

namespace {

constexpr std::array<Bucket, 5> kWorkBuckets = {
    Bucket::kQP, Bucket::kFE, Bucket::kGS, Bucket::kBB, Bucket::kChecksum};
constexpr std::array<Bucket, 3> kOverheadBuckets = {
    Bucket::kQueueWait, Bucket::kDispatch, Bucket::kBarrier};

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// Fixed rendering so a given double always serializes the same way
/// regardless of stream state.
void json_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void json_hist(std::ostream& os, const HistSnapshot& h, const char* indent) {
  os << "{\n"
     << indent << "  \"count\": " << h.count << ",\n"
     << indent << "  \"sum\": " << h.sum << ",\n"
     << indent << "  \"max\": " << h.max << ",\n"
     << indent << "  \"pow2_buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    os << (i ? ", " : "") << h.buckets[i];
  }
  os << "]\n" << indent << "}";
}

/// The deterministic section: fixed enum order, integers only.
void json_counters(std::ostream& os, const Snapshot& s) {
  os << "  \"counters\": {\n";
  for (unsigned c = 0; c < kNumHostCounters; ++c) {
    os << "    ";
    json_string(os, counter_name(static_cast<HostCounter>(c)));
    os << ": " << s.counters[c] << ",\n";
  }
  os << "    \"chunk_blocks\": ";
  json_hist(os, s.chunk_blocks, "    ");
  os << ",\n    \"chunk_payload_bytes\": ";
  json_hist(os, s.chunk_payload_bytes, "    ");
  os << "\n  }";
}

void json_bucket_ns(std::ostream& os,
                    const std::array<std::uint64_t, kNumBuckets>& ns) {
  os << '{';
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    os << (b ? ", " : "");
    json_string(os, bucket_name(static_cast<Bucket>(b)));
    os << ": " << ns[b];
  }
  os << '}';
}

void json_attribution_pct(std::ostream& os, const Attribution& a) {
  os << '{';
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    json_string(os, bucket_name(static_cast<Bucket>(b)));
    os << ": ";
    json_number(os, a.pct(static_cast<Bucket>(b)));
    os << ", ";
  }
  os << "\"idle\": ";
  json_number(os, a.idle_pct());
  os << '}';
}

void json_thread(std::ostream& os, const ThreadSnapshot& t) {
  const Attribution a = attribution_of(t);
  os << "    {\"tid\": " << t.tid << ", \"label\": ";
  json_string(os, t.label);
  os << ", \"alive\": " << (t.alive ? "true" : "false")
     << ", \"wall_ns\": " << t.wall_ns << ", \"tasks\": " << t.tasks
     << ", \"batches\": " << t.batches << ",\n     \"bucket_ns\": ";
  json_bucket_ns(os, t.bucket_ns);
  os << ", \"idle_ns\": " << t.idle_ns << ",\n     \"attribution_pct\": ";
  json_attribution_pct(os, a);
  os << '}';
}

}  // namespace

std::uint64_t Attribution::work_ns() const {
  std::uint64_t n = 0;
  for (const Bucket b : kWorkBuckets) n += bucket(b);
  return n;
}

std::uint64_t Attribution::overhead_ns() const {
  std::uint64_t n = 0;
  for (const Bucket b : kOverheadBuckets) n += bucket(b);
  return n;
}

double Attribution::pct(Bucket b) const {
  return wall_ns == 0 ? 0.0
                      : 100.0 * static_cast<double>(bucket(b)) /
                            static_cast<double>(wall_ns);
}

double Attribution::idle_pct() const {
  return wall_ns == 0 ? 0.0
                      : 100.0 * static_cast<double>(idle_ns) /
                            static_cast<double>(wall_ns);
}

Attribution attribution_of(const ThreadSnapshot& t) {
  Attribution a;
  a.wall_ns = t.wall_ns;
  a.bucket_ns = t.bucket_ns;
  a.idle_ns = t.idle_ns;
  return a;
}

Attribution aggregate_attribution(const Snapshot& s) {
  Attribution a;
  for (const ThreadSnapshot& t : s.threads) {
    a.wall_ns += t.wall_ns;
    a.idle_ns += t.idle_ns;
    for (unsigned b = 0; b < kNumBuckets; ++b) a.bucket_ns[b] += t.bucket_ns[b];
  }
  return a;
}

std::string_view dominant_overhead(const Attribution& a) {
  Bucket best = Bucket::kCount_;
  std::uint64_t best_ns = 0;
  for (const Bucket b : kOverheadBuckets) {
    if (a.bucket(b) > best_ns) {
      best_ns = a.bucket(b);
      best = b;
    }
  }
  return best == Bucket::kCount_ ? std::string_view("none") : bucket_name(best);
}

void write_hostprof_json(std::ostream& os, const Snapshot& s) {
  os << "{\n  \"szp_hostprof_version\": 1,\n";
  json_counters(os, s);
  os << ",\n  \"threads\": [";
  for (std::size_t i = 0; i < s.threads.size(); ++i) {
    os << (i ? ",\n" : "\n");
    json_thread(os, s.threads[i]);
  }
  os << "\n  ],\n";
  const Attribution agg = aggregate_attribution(s);
  os << "  \"summary\": {\n    \"threads\": " << s.threads.size()
     << ",\n    \"wall_ns\": " << agg.wall_ns
     << ",\n    \"work_ns\": " << agg.work_ns()
     << ",\n    \"overhead_ns\": " << agg.overhead_ns()
     << ",\n    \"idle_ns\": " << agg.idle_ns << ",\n    \"work_pct\": ";
  const double wall = static_cast<double>(agg.wall_ns);
  json_number(os, wall > 0 ? 100.0 * static_cast<double>(agg.work_ns()) / wall
                           : 0.0);
  os << ",\n    \"overhead_pct\": ";
  json_number(
      os, wall > 0 ? 100.0 * static_cast<double>(agg.overhead_ns()) / wall
                   : 0.0);
  os << ",\n    \"idle_pct\": ";
  json_number(os, agg.idle_pct());
  os << ",\n    \"attribution_pct\": ";
  json_attribution_pct(os, agg);
  os << ",\n    \"dominant_overhead\": ";
  json_string(os, dominant_overhead(agg));
  os << "\n  }\n}\n";
}

bool write_hostprof_json_file(const std::string& path, const Snapshot& s) {
  std::ofstream os(path);
  if (!os) return false;
  write_hostprof_json(os, s);
  os.flush();
  return static_cast<bool>(os);
}

void write_hostprof_text(std::ostream& os, const Snapshot& s) {
  os << "host execution profile (" << s.threads.size() << " lanes)\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "  %-14s %10s %6s |%7s %7s %7s %7s %7s |%7s %7s %7s |%7s\n",
                "lane", "wall ms", "tasks", "qp%", "fe%", "gs%", "bb%", "crc%",
                "wait%", "disp%", "barr%", "idle%");
  os << line;
  const auto row = [&](std::string_view label, const Attribution& a,
                       std::uint64_t tasks) {
    std::snprintf(
        line, sizeof line,
        "  %-14.*s %10.2f %6llu |%7.1f %7.1f %7.1f %7.1f %7.1f |%7.1f "
        "%7.1f %7.1f |%7.1f\n",
        static_cast<int>(label.size()), label.data(),
        static_cast<double>(a.wall_ns) / 1e6,
        static_cast<unsigned long long>(tasks), a.pct(Bucket::kQP),
        a.pct(Bucket::kFE), a.pct(Bucket::kGS), a.pct(Bucket::kBB),
        a.pct(Bucket::kChecksum), a.pct(Bucket::kQueueWait),
        a.pct(Bucket::kDispatch), a.pct(Bucket::kBarrier), a.idle_pct());
    os << line;
  };
  std::uint64_t total_tasks = 0;
  for (const ThreadSnapshot& t : s.threads) {
    const std::string label =
        t.label.empty() ? "lane-" + std::to_string(t.tid) : t.label;
    row(label, attribution_of(t), t.tasks);
    total_tasks += t.tasks;
  }
  const Attribution agg = aggregate_attribution(s);
  row("TOTAL", agg, total_tasks);
  os << "  dominant overhead: " << dominant_overhead(agg)
     << "  (blocks encoded: " << s.counter(HostCounter::kBlocksEncoded)
     << ", chunks: " << s.counter(HostCounter::kChunks)
     << ", false-shared boundaries: "
     << s.counter(HostCounter::kFalseSharedBoundaries) << ")\n";
}

std::string counter_fingerprint(const Snapshot& s) {
  std::ostringstream os;
  os << "{\n  \"szp_hostprof_version\": 1,\n";
  json_counters(os, s);
  os << "\n}\n";
  return os.str();
}

}  // namespace szp::obs::hostprof
