#include "szp/harness/runner.hpp"

#include <algorithm>

#include "szp/obs/tracer.hpp"

namespace szp::harness {

Throughput throughput_of(const RunResult& r,
                         const perfmodel::CostModel& model) {
  Throughput t;
  t.e2e_comp_gbps = model.end_to_end_gbps(r.comp_trace, r.original_bytes);
  t.e2e_decomp_gbps = model.end_to_end_gbps(r.decomp_trace, r.original_bytes);
  t.kernel_comp_gbps = model.kernel_gbps(r.comp_trace, r.original_bytes);
  t.kernel_decomp_gbps = model.kernel_gbps(r.decomp_trace, r.original_bytes);
  return t;
}

SuiteThroughput sweep_codec(const std::vector<data::Field>& fields,
                            CodecId codec,
                            const perfmodel::CostModel& model) {
  SuiteThroughput out;
  out.codec = codec;
  const bool fixed_rate = codec == CodecId::kZfp;
  const auto& sweep = fixed_rate ? fixed_rates() : rel_bounds();

  double n = 0, cr_sum = 0;
  for (const auto& field : fields) {
    for (const double v : sweep) {
      CodecSetting s;
      s.id = codec;
      (fixed_rate ? s.rate : s.rel) = v;
      const obs::Span sweep_span("harness", "sweep_point", "codec",
                                 static_cast<std::uint64_t>(codec), "point",
                                 static_cast<std::uint64_t>(n));
      const RunResult r = run_codec(s, field);
      const Throughput t = throughput_of(r, model);
      out.avg.e2e_comp_gbps += t.e2e_comp_gbps;
      out.avg.e2e_decomp_gbps += t.e2e_decomp_gbps;
      out.avg.kernel_comp_gbps += t.kernel_comp_gbps;
      out.avg.kernel_decomp_gbps += t.kernel_decomp_gbps;
      cr_sum += r.compression_ratio();
      n += 1;
    }
  }
  if (n > 0) {
    out.avg.e2e_comp_gbps /= n;
    out.avg.e2e_decomp_gbps /= n;
    out.avg.kernel_comp_gbps /= n;
    out.avg.kernel_decomp_gbps /= n;
    out.avg_compression_ratio = cr_sum / n;
  }
  return out;
}

CrStats cr_over_fields(const std::vector<data::Field>& fields, CodecId codec,
                       double rel) {
  CrStats s;
  bool first = true;
  double sum = 0;
  for (const auto& field : fields) {
    CodecSetting setting;
    setting.id = codec;
    setting.rel = rel;
    const RunResult r = run_codec(setting, field);
    const double cr = r.compression_ratio();
    s.min = first ? cr : std::min(s.min, cr);
    s.max = first ? cr : std::max(s.max, cr);
    sum += cr;
    first = false;
  }
  if (!fields.empty()) s.avg = sum / static_cast<double>(fields.size());
  return s;
}

const std::vector<data::Suite>& all_suite_ids() {
  static const std::vector<data::Suite> v = {
      data::Suite::kHurricane, data::Suite::kNyx,  data::Suite::kQmcpack,
      data::Suite::kRtm,       data::Suite::kHacc, data::Suite::kCesmAtm};
  return v;
}

}  // namespace szp::harness
