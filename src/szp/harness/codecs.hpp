// Uniform codec harness: runs any of the four compressors on a field via
// the device (simulated-GPU) path and returns sizes, traces and the
// reconstruction. Every figure/table bench is built on this.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "szp/data/field.hpp"
#include "szp/gpusim/profile/profile.hpp"
#include "szp/gpusim/trace.hpp"

namespace szp::harness {

enum class CodecId { kSzp, kSz, kSzx, kZfp };

[[nodiscard]] std::string codec_name(CodecId id);
[[nodiscard]] const std::vector<CodecId>& all_codecs();
[[nodiscard]] const std::vector<CodecId>& error_bounded_codecs();

/// One codec configuration. Error-bounded codecs use `rel` (value-range
/// relative bound, the paper's REL mode); vzfp uses `rate` bits/value.
struct CodecSetting {
  CodecId id = CodecId::kSzp;
  double rel = 1e-2;
  double rate = 8.0;
};

/// The paper's standard sweeps (§5.1.4).
[[nodiscard]] const std::vector<double>& rel_bounds();  // 1e-1 .. 1e-4
[[nodiscard]] const std::vector<double>& fixed_rates(); // 4, 8, 16, 24

struct RunResult {
  size_t original_bytes = 0;
  size_t compressed_bytes = 0;
  double eb_abs = 0;  // resolved bound (0 for vzfp)
  gpusim::TraceSnapshot comp_trace;
  gpusim::TraceSnapshot decomp_trace;
  std::vector<float> reconstruction;
  double wall_comp_s = 0;    // real host seconds of the simulated run
  double wall_decomp_s = 0;
  /// Kernel counter profile of the run; present when the device ran with
  /// the profiler enabled (SZP_PROFILE, or a bench arming it explicitly).
  std::optional<gpusim::profile::SessionProfile> profile;

  [[nodiscard]] double compression_ratio() const {
    return compressed_bytes > 0 ? static_cast<double>(original_bytes) /
                                      static_cast<double>(compressed_bytes)
                                : 0;
  }
  [[nodiscard]] double bit_rate() const {
    return original_bytes > 0 ? 32.0 * static_cast<double>(compressed_bytes) /
                                    static_cast<double>(original_bytes)
                              : 0;
  }
};

/// Compress + decompress `field` on a fresh device. The input starts in
/// device memory and the compressed/reconstructed data end in device
/// memory (the paper's end-to-end definition); the traces cover exactly
/// those two operations.
[[nodiscard]] RunResult run_codec(const CodecSetting& setting,
                                  const data::Field& field);

/// Fuse leading axes until at most `max_dims` remain (vsz/vzfp need <= 3).
[[nodiscard]] data::Dims fuse_dims(const data::Dims& dims, size_t max_dims);

}  // namespace szp::harness
