#include "szp/harness/codecs.hpp"

#include <chrono>

#include "szp/baselines/vsz/vsz.hpp"
#include "szp/baselines/vzfp/vzfp.hpp"
#include "szp/baselines/xsz/xsz.hpp"
#include "szp/engine/engine.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::harness {

namespace gs = gpusim;

std::string codec_name(CodecId id) {
  switch (id) {
    case CodecId::kSzp: return "cuSZp";
    case CodecId::kSz: return "cuSZ";
    case CodecId::kSzx: return "cuSZx";
    case CodecId::kZfp: return "cuZFP";
  }
  return "?";
}

const std::vector<CodecId>& all_codecs() {
  static const std::vector<CodecId> v = {CodecId::kSzp, CodecId::kSz,
                                         CodecId::kSzx, CodecId::kZfp};
  return v;
}

const std::vector<CodecId>& error_bounded_codecs() {
  static const std::vector<CodecId> v = {CodecId::kSzp, CodecId::kSz,
                                         CodecId::kSzx};
  return v;
}

const std::vector<double>& rel_bounds() {
  static const std::vector<double> v = {1e-1, 1e-2, 1e-3, 1e-4};
  return v;
}

const std::vector<double>& fixed_rates() {
  static const std::vector<double> v = {4, 8, 16, 24};
  return v;
}

data::Dims fuse_dims(const data::Dims& dims, size_t max_dims) {
  if (dims.ndim() <= max_dims) return dims;
  data::Dims out;
  size_t fused = 1;
  const size_t to_fuse = dims.ndim() - max_dims + 1;
  for (size_t a = 0; a < to_fuse; ++a) fused *= dims[a];
  out.extents.push_back(fused);
  for (size_t a = to_fuse; a < dims.ndim(); ++a) {
    out.extents.push_back(dims[a]);
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time one harness phase, tracing it under cat "harness" so sweep points
/// show up as lanes enclosing the kernel spans they contain.
template <typename Fn>
auto timed_phase(const char* phase, CodecId id, double& wall_s, Fn&& fn) {
  const obs::Span span("harness", phase, "codec",
                       static_cast<std::uint64_t>(id));
  const auto t0 = Clock::now();
  auto res = fn();
  wall_s = seconds_since(t0);
  return res;
}

}  // namespace

RunResult run_codec(const CodecSetting& setting, const data::Field& field) {
  // Bench binaries opt into tracing via SZP_TRACE / SZP_STATS; idempotent.
  obs::init_from_env();
  RunResult r;
  r.original_bytes = field.size_bytes();
  const size_t n = field.count();
  const double range = field.value_range();

  if (setting.id == CodecId::kSzp) {
    // cuSZp runs through the engine, which owns the device, the pooled
    // buffers and the measured-roundtrip orchestration.
    core::Params p;
    p.mode = core::ErrorMode::kRel;
    p.error_bound = setting.rel;
    engine::Engine eng({.params = p,
                        .backend = engine::BackendKind::kDevice,
                        .threads = 0});
    auto rt = eng.device_roundtrip(field.values, range);
    r.compressed_bytes = rt.compressed_bytes;
    r.eb_abs = rt.eb_abs;
    r.comp_trace = rt.comp_trace;
    r.decomp_trace = rt.decomp_trace;
    r.wall_comp_s = rt.wall_comp_s;
    r.wall_decomp_s = rt.wall_decomp_s;
    r.reconstruction = std::move(rt.reconstruction);
    r.reconstruction.resize(n);
    r.profile = std::move(rt.profile);
    return r;
  }

  gs::Device dev;
  auto d_in = gs::to_device<float>(dev, field.values);
  gs::DeviceBuffer<float> d_recon(dev, std::max<size_t>(1, n));

  switch (setting.id) {
    case CodecId::kSzp:
      break;  // handled above
    case CodecId::kSz: {
      vsz::Params p;
      p.mode = core::ErrorMode::kRel;
      p.error_bound = setting.rel;
      const data::Dims fd = fuse_dims(field.dims, 3);
      vsz::Grid grid{fd.extents};
      const double eb = std::max(setting.rel * range, 1e-30);
      gs::DeviceBuffer<byte_t> d_cmp(dev, vsz::max_compressed_bytes(n));
      const auto cres = timed_phase("compress", setting.id, r.wall_comp_s, [&] {
        return vsz::compress_device(dev, d_in, grid, p, eb, d_cmp);
      });
      r.compressed_bytes = cres.bytes;
      r.comp_trace = cres.trace;
      r.eb_abs = eb;
      const auto dres =
          timed_phase("decompress", setting.id, r.wall_decomp_s,
                      [&] { return vsz::decompress_device(dev, d_cmp, d_recon); });
      r.decomp_trace = dres.trace;
      break;
    }
    case CodecId::kSzx: {
      xsz::Params p;
      p.mode = core::ErrorMode::kRel;
      p.error_bound = setting.rel;
      const double eb = std::max(setting.rel * range, 1e-30);
      gs::DeviceBuffer<byte_t> d_cmp(dev,
                                     xsz::max_compressed_bytes(n, p.block_len));
      const auto cres = timed_phase("compress", setting.id, r.wall_comp_s, [&] {
        return xsz::compress_device(dev, d_in, n, p, eb, d_cmp);
      });
      r.compressed_bytes = cres.bytes;
      r.comp_trace = cres.trace;
      r.eb_abs = eb;
      const auto dres =
          timed_phase("decompress", setting.id, r.wall_decomp_s,
                      [&] { return xsz::decompress_device(dev, d_cmp, d_recon); });
      r.decomp_trace = dres.trace;
      break;
    }
    case CodecId::kZfp: {
      vzfp::Params p;
      p.rate = setting.rate;
      const data::Dims fd = fuse_dims(field.dims, 3);
      gs::DeviceBuffer<byte_t> d_cmp(dev, vzfp::compressed_bytes(fd, p));
      const auto cres = timed_phase("compress", setting.id, r.wall_comp_s, [&] {
        return vzfp::compress_device(dev, d_in, fd, p, d_cmp);
      });
      r.compressed_bytes = cres.bytes;
      r.comp_trace = cres.trace;
      const auto dres = timed_phase(
          "decompress", setting.id, r.wall_decomp_s,
          [&] { return vzfp::decompress_device(dev, d_cmp, d_recon); });
      r.decomp_trace = dres.trace;
      break;
    }
  }

  r.reconstruction = gs::to_host(dev, d_recon);
  r.reconstruction.resize(n);
  if (dev.profiler() != nullptr) r.profile = dev.profile_snapshot();
  return r;
}

}  // namespace szp::harness
