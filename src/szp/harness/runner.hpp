// Shared sweep driver for the figure/table benches: iterates suites,
// fields and error bounds, aggregating modeled throughput and quality.
#pragma once

#include <vector>

#include "szp/data/registry.hpp"
#include "szp/harness/codecs.hpp"
#include "szp/perfmodel/cost.hpp"

namespace szp::harness {

/// Modeled throughput of one run on given hardware.
struct Throughput {
  double e2e_comp_gbps = 0;
  double e2e_decomp_gbps = 0;
  double kernel_comp_gbps = 0;
  double kernel_decomp_gbps = 0;
};

[[nodiscard]] Throughput throughput_of(const RunResult& r,
                                       const perfmodel::CostModel& model);

/// Average throughput/CR of a codec over pre-generated fields across the
/// standard error bounds (fixed rates for vzfp) — the aggregation behind
/// Fig. 13/15 and Table 3.
struct SuiteThroughput {
  CodecId codec = CodecId::kSzp;
  Throughput avg;
  double avg_compression_ratio = 0;
};

[[nodiscard]] SuiteThroughput sweep_codec(
    const std::vector<data::Field>& fields, CodecId codec,
    const perfmodel::CostModel& model);

/// Per-(codec, bound) compression-ratio stats over a suite (Table 3 rows).
struct CrStats {
  double min = 0, max = 0, avg = 0;
};
[[nodiscard]] CrStats cr_over_fields(const std::vector<data::Field>& fields,
                                     CodecId codec, double rel);

/// The six evaluation suites in paper order.
[[nodiscard]] const std::vector<data::Suite>& all_suite_ids();

}  // namespace szp::harness
