#include "szp/engine/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "szp/obs/hostprof/hostprof.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::engine {

namespace hostprof = obs::hostprof;

ThreadPool::ThreadPool(unsigned threads) {
  // Arm the host profiler once per process if SZP_HOSTPROF asks for it,
  // before any worker can take its first sample.
  hostprof::init_from_env();
  if (threads == 0) {
    threads = std::max(2u, std::thread::hardware_concurrency());
  }
  // The calling thread is one of the `threads` slots.
  const unsigned workers = threads - 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (hostprof::enabled()) {
    auto& prof = hostprof::Profiler::instance();
    prof.label_thread("szp-caller-", 0);
    prof.note_batch();
    prof.count(hostprof::HostCounter::kBatches);
    prof.count(hostprof::HostCounter::kTasks, count);
  }
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      if (hostprof::enabled()) hostprof::Profiler::instance().note_task();
      const obs::Span span("host", "chunk", "chunk", i);
      task(i);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  {
    hostprof::ScopedTimer dispatch(hostprof::Bucket::kDispatch);
    const obs::Span span("host", "dispatch", "tasks", count);
    {
      const LockGuard lock(mutex_);
      batch_ = batch;
      ++generation_;
    }
    cv_start_.notify_all();
  }
  process(*batch);
  {
    hostprof::ScopedTimer barrier(hostprof::Bucket::kBarrier);
    const obs::Span span("host", "barrier_wait");
    UniqueLock lock(mutex_);
    while (batch->done != batch->count) cv_done_.wait(lock);
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop(unsigned index) {
  bool trace_named = false;
  std::uint64_t seen = 0;
  UniqueLock lock(mutex_);
  for (;;) {
    {
      // The condition variable releases the pool mutex while blocked, so
      // this interval really is time spent waiting for work.
      hostprof::ScopedTimer wait(hostprof::Bucket::kQueueWait);
      while (!stop_ && generation_ == seen) cv_start_.wait(lock);
    }
    if (stop_) return;
    seen = generation_;
    // Keep the batch alive past the submitting run() call: process() may
    // make one final (empty) index claim after the batch completed.
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    if (hostprof::enabled()) {
      hostprof::Profiler::instance().label_thread("szp-worker-", index);
    }
    if (obs::tracing_enabled() && !trace_named) {
      obs::set_thread_name("szp-worker-" + std::to_string(index));
      trace_named = true;
    }
    process(*batch);
    lock.lock();
  }
}

void ThreadPool::process(Batch& batch) {
  size_t i;
  while ((i = batch.next.fetch_add(1, std::memory_order_relaxed)) <
         batch.count) {
    if (hostprof::enabled()) hostprof::Profiler::instance().note_task();
    try {
      const obs::Span span("host", "chunk", "chunk", i);
      (*batch.task)(i);
    } catch (...) {
      const LockGuard lock(mutex_);
      if (!batch.error) batch.error = std::current_exception();
    }
    // The mutex hand-off publishes this task's writes to whoever observes
    // completion in run().
    const LockGuard lock(mutex_);
    if (++batch.done == batch.count) cv_done_.notify_all();
  }
}

}  // namespace szp::engine
