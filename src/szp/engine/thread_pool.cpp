#include "szp/engine/thread_pool.hpp"

#include <algorithm>

namespace szp::engine {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(2u, std::thread::hardware_concurrency());
  }
  // The calling thread is one of the `threads` slots.
  const unsigned workers = threads - 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  cv_start_.notify_all();
  process(*batch);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return batch->done == batch->count; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Keep the batch alive past the submitting run() call: process() may
    // make one final (empty) index claim after the batch completed.
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    process(*batch);
    lock.lock();
  }
}

void ThreadPool::process(Batch& batch) {
  size_t i;
  while ((i = batch.next.fetch_add(1, std::memory_order_relaxed)) <
         batch.count) {
    try {
      (*batch.task)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.error) batch.error = std::current_exception();
    }
    // The mutex hand-off publishes this task's writes to whoever observes
    // completion in run().
    const std::lock_guard<std::mutex> lock(mutex_);
    if (++batch.done == batch.count) cv_done_.notify_all();
  }
}

}  // namespace szp::engine
