// Pool of host codec scratch arenas keyed by (element count, block length).
// A compress call leases an arena sized for its field; repeated calls on
// same-shaped fields hit warm arenas and do no per-call allocation.
#pragma once

#include <memory>
#include <vector>

#include "szp/core/host_codec.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::engine {

class ScratchPool {
  struct Entry {
    size_t n = 0;
    unsigned block_len = 0;
    bool in_use = false;
    core::HostScratch scratch;
  };

 public:
  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// RAII lease; destruction returns the arena to the pool. Entries are
  /// heap-stable, so leases survive concurrent pool growth.
  class Lease {
   public:
    Lease(ScratchPool* pool, Entry* entry) : pool_(pool), entry_(entry) {}
    Lease(Lease&& o) noexcept : pool_(o.pool_), entry_(o.entry_) {
      o.pool_ = nullptr;
      o.entry_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->put_back(entry_);
    }

    [[nodiscard]] core::HostScratch& scratch() { return entry_->scratch; }

   private:
    ScratchPool* pool_;
    Entry* entry_;
  };

  /// Lease an arena for an `n`-element field with block length `block_len`.
  /// An idle arena last used for the same shape counts as a hit (its
  /// internal vectors are already at size); any other idle arena is
  /// repurposed, and a new one is created only when all are leased.
  [[nodiscard]] Lease acquire(size_t n, unsigned block_len) {
    const LockGuard lock(mutex_);
    Entry* idle = nullptr;
    for (const auto& e : entries_) {
      if (e->in_use) continue;
      if (e->n == n && e->block_len == block_len) {
        e->in_use = true;
        ++hits_;
        return Lease(this, e.get());
      }
      idle = e.get();
    }
    ++misses_;
    if (idle != nullptr) {
      idle->n = n;
      idle->block_len = block_len;
      idle->in_use = true;
      return Lease(this, idle);
    }
    entries_.push_back(std::make_unique<Entry>());
    entries_.back()->n = n;
    entries_.back()->block_len = block_len;
    entries_.back()->in_use = true;
    return Lease(this, entries_.back().get());
  }

  [[nodiscard]] size_t hits() const {
    const LockGuard lock(mutex_);
    return hits_;
  }
  [[nodiscard]] size_t misses() const {
    const LockGuard lock(mutex_);
    return misses_;
  }
  [[nodiscard]] size_t size() const {
    const LockGuard lock(mutex_);
    return entries_.size();
  }

 private:
  void put_back(Entry* entry) {
    const LockGuard lock(mutex_);
    entry->in_use = false;
  }

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ SZP_GUARDED_BY(mutex_);
  size_t hits_ SZP_GUARDED_BY(mutex_) = 0;
  size_t misses_ SZP_GUARDED_BY(mutex_) = 0;
};

}  // namespace szp::engine
