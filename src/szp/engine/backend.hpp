// Codec execution backends. A Backend turns (host data, params, resolved
// absolute error bound) into a cuSZp stream and back; every backend
// produces byte-identical streams because the stream layout is a pure
// function of the inputs. Three implementations:
//
//   SerialBackend       reference path, one thread, pooled scratch
//   ParallelHostBackend same host codec fanned out over a thread pool
//                       (two-pass scheme mirroring the kernel: parallel
//                       per-block QP+FE, prefix sum, parallel BB scatter)
//   DeviceBackend       the paper's single-kernel path on gpusim, with
//                       pooled device buffers
//
// Orchestration policy (REL resolution, obs spans, metrics, batching)
// lives above this interface, in engine::Engine.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "szp/core/device.hpp"
#include "szp/core/host_codec.hpp"
#include "szp/engine/scratch_pool.hpp"
#include "szp/engine/thread_pool.hpp"
#include "szp/gpusim/device.hpp"
#include "szp/gpusim/pool.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::engine {

enum class BackendKind : std::uint8_t {
  kSerial,
  kParallelHost,
  kDevice,
};

[[nodiscard]] std::string_view backend_name(BackendKind kind);

/// Parse "serial" / "parallel" / "device" (throws format_error otherwise).
[[nodiscard]] BackendKind backend_from_name(std::string_view name);

/// A compressed stream plus the device trace that produced it (zeroed for
/// host backends, where no simulated device is involved).
struct CompressedStream {
  std::vector<byte_t> bytes;
  gpusim::TraceSnapshot trace;
};

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;

  [[nodiscard]] virtual CompressedStream compress(std::span<const float> data,
                                                  const core::Params& params,
                                                  double eb_abs) = 0;

  /// Compress many fields; `eb_abs[i]` is the resolved bound for
  /// `fields[i]` (same length). The base implementation is a serial loop
  /// over compress(); DeviceBackend overrides it to shard fields across
  /// its devices and overlap transfers with compute on its streams.
  /// Results are byte-identical to the serial loop in every backend.
  [[nodiscard]] virtual std::vector<CompressedStream> compress_batch(
      std::span<const std::span<const float>> fields,
      const core::Params& params, std::span<const double> eb_abs);
  [[nodiscard]] virtual CompressedStream compress_f64(
      std::span<const double> data, const core::Params& params,
      double eb_abs) = 0;

  [[nodiscard]] virtual std::vector<float> decompress(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace = nullptr) = 0;
  [[nodiscard]] virtual std::vector<double> decompress_f64(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace = nullptr) = 0;
};

/// One-thread reference path: core host codec + serial executor.
class SerialBackend final : public Backend {
 public:
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kSerial;
  }
  [[nodiscard]] CompressedStream compress(std::span<const float> data,
                                          const core::Params& params,
                                          double eb_abs) override;
  [[nodiscard]] CompressedStream compress_f64(std::span<const double> data,
                                              const core::Params& params,
                                              double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;
  [[nodiscard]] std::vector<double> decompress_f64(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;

  [[nodiscard]] ScratchPool& scratch_pool() { return scratch_; }

 private:
  ScratchPool scratch_;
};

/// Host codec over a persistent thread pool. Byte-identical to the serial
/// backend for every input.
class ParallelHostBackend final : public Backend {
 public:
  /// `threads` = execution slots including the caller; 0 = auto.
  explicit ParallelHostBackend(unsigned threads = 0);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kParallelHost;
  }
  [[nodiscard]] unsigned threads() const { return pool_.width(); }

  [[nodiscard]] CompressedStream compress(std::span<const float> data,
                                          const core::Params& params,
                                          double eb_abs) override;
  [[nodiscard]] CompressedStream compress_f64(std::span<const double> data,
                                              const core::Params& params,
                                              double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;
  [[nodiscard]] std::vector<double> decompress_f64(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;

  [[nodiscard]] ScratchPool& scratch_pool() { return scratch_; }

 private:
  ThreadPool pool_;
  ScratchPool scratch_;
};

/// The paper's single-kernel pipeline on an owned gpusim::Device, staged
/// through pooled device buffers. Host-facing compress/decompress include
/// the H2D/D2H transfers; device-resident entry points are on Engine.
/// Calls are serialized internally (gpusim snapshots require exclusive
/// launch windows).
///
/// Batch sharding: compress_batch() distributes field i to shard device
/// i % devices, stream (i / devices) % streams — so with one device and
/// two streams consecutive fields alternate streams and field k+1's H2D
/// overlaps field k's kernel (classic double buffering), and with N
/// devices the batch fans out N-wide. Shard device 0 is device() itself;
/// extra devices and all streams materialize lazily on first batch use.
class DeviceBackend final : public Backend {
 public:
  /// `devices` = simulated devices the batch path shards across (device 0
  /// also backs the single-call API); `streams` = async streams per
  /// device for transfer/compute overlap. devices=1 streams=1 keeps
  /// batches on the serial inline path.
  explicit DeviceBackend(unsigned devices = 1, unsigned streams = 2);
  ~DeviceBackend() override;

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kDevice;
  }
  [[nodiscard]] gpusim::Device& device() { return dev_; }
  [[nodiscard]] unsigned devices() const { return devices_; }
  [[nodiscard]] unsigned streams_per_device() const { return streams_; }

  /// Shard device d (0 = device()); materializes the shard set.
  [[nodiscard]] gpusim::Device& shard_device(unsigned d);
  /// Async stream s of shard device d (lazily created, lives for the
  /// backend's lifetime).
  [[nodiscard]] gpusim::Stream& stream(unsigned d, unsigned s);

  /// Submit one field's H2D → kernel → D2H triple to stream (d, s). The
  /// three ops share a job object that keeps the pooled-buffer leases
  /// alive until the D2H op retires; `*out` is written by the D2H op, so
  /// it is valid only after that stream synchronizes. Callers sharing the
  /// backend across threads must hold op_mutex() while submitting (the
  /// batch path does).
  void submit_compress(unsigned d, unsigned s, std::span<const float> data,
                       const core::Params& params, double eb_abs,
                       CompressedStream* out);

  [[nodiscard]] std::vector<CompressedStream> compress_batch(
      std::span<const std::span<const float>> fields,
      const core::Params& params, std::span<const double> eb_abs) override;

  /// Per-op timeline recording on every shard device (overlap accounting;
  /// perfmodel::model_overlap consumes the records). Applies to shards
  /// created later as well.
  void set_timeline_enabled(bool on);
  /// Drain each shard device's timeline (index = shard device).
  [[nodiscard]] std::vector<std::vector<gpusim::OpRecord>> take_timelines();

  [[nodiscard]] CompressedStream compress(std::span<const float> data,
                                          const core::Params& params,
                                          double eb_abs) override;
  [[nodiscard]] CompressedStream compress_f64(std::span<const double> data,
                                              const core::Params& params,
                                              double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;
  [[nodiscard]] std::vector<double> decompress_f64(
      std::span<const byte_t> stream,
      gpusim::TraceSnapshot* trace) override;

  [[nodiscard]] gpusim::BufferPool<float>& f32_pool() { return f32_; }
  [[nodiscard]] gpusim::BufferPool<double>& f64_pool() { return f64_; }
  [[nodiscard]] gpusim::BufferPool<byte_t>& byte_pool() { return bytes_; }
  [[nodiscard]] Mutex& op_mutex() SZP_RETURN_CAPABILITY(op_mutex_) {
    return op_mutex_;
  }

 private:
  template <typename T>
  CompressedStream compress_impl(std::span<const T> data,
                                 const core::Params& params, double eb_abs);
  template <typename T>
  std::vector<T> decompress_impl(std::span<const byte_t> stream,
                                 gpusim::TraceSnapshot* trace);

  struct Shard;  // device + pools + streams of one batch lane
  void ensure_shards();

  gpusim::Device dev_;
  gpusim::BufferPool<float> f32_;
  gpusim::BufferPool<double> f64_;
  gpusim::BufferPool<byte_t> bytes_;
  Mutex op_mutex_;
  unsigned devices_ = 1;
  unsigned streams_ = 2;
  bool timeline_on_ = false;
  // Declared last: shard streams must be destroyed before dev_.
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// `devices`/`streams` shape the device backend's batch sharding; the
/// host backends ignore them (as kDevice ignores `threads`).
[[nodiscard]] std::unique_ptr<Backend> make_backend(BackendKind kind,
                                                    unsigned threads = 0,
                                                    unsigned devices = 1,
                                                    unsigned streams = 2);

/// Device codec entry points with the engine's obs-span and metrics
/// wiring. Everything that runs the single-kernel pipeline — Engine,
/// szp::Compressor, the harness — funnels through these two, so the
/// "api/compress_on_device" span is emitted in exactly one place.
core::DeviceCodecResult device_compress(gpusim::Device& dev,
                                        const gpusim::DeviceBuffer<float>& in,
                                        size_t n, const core::Params& params,
                                        double eb_abs,
                                        gpusim::DeviceBuffer<byte_t>& out);
core::DeviceCodecResult device_decompress(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<float>& out, size_t stream_bytes = 0);
core::DeviceCodecResult device_compress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<double>& in, size_t n,
    const core::Params& params, double eb_abs,
    gpusim::DeviceBuffer<byte_t>& out);
core::DeviceCodecResult device_decompress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<double>& out, size_t stream_bytes = 0);

namespace detail {
/// Per-call accounting at the engine boundary (CLI `--stats` totals,
/// plus the always-on telemetry byte counters).
void record_compress_call(std::uint64_t in_bytes, std::uint64_t out_bytes);
void record_decompress_call(std::uint64_t out_bytes);
/// Request bookkeeping at API entry points: bumps the always-on request
/// counter, publishes the trace ID as the exposition exemplar, and
/// drops a flight-recorder event.
void record_request(const char* name, std::uint64_t trace_id);
}  // namespace detail

}  // namespace szp::engine
