#include "szp/engine/backend.hpp"

#include <string>

#include "szp/obs/metrics.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::engine {

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerial: return "serial";
    case BackendKind::kParallelHost: return "parallel";
    case BackendKind::kDevice: return "device";
  }
  return "unknown";
}

BackendKind backend_from_name(std::string_view name) {
  if (name == "serial") return BackendKind::kSerial;
  if (name == "parallel" || name == "parallel-host") {
    return BackendKind::kParallelHost;
  }
  if (name == "device") return BackendKind::kDevice;
  throw format_error("unknown backend '" + std::string(name) +
                     "' (expected serial|parallel|device)");
}

std::unique_ptr<Backend> make_backend(BackendKind kind, unsigned threads) {
  switch (kind) {
    case BackendKind::kSerial: return std::make_unique<SerialBackend>();
    case BackendKind::kParallelHost:
      return std::make_unique<ParallelHostBackend>(threads);
    case BackendKind::kDevice: return std::make_unique<DeviceBackend>();
  }
  throw format_error("make_backend: invalid backend kind");
}

namespace detail {

void record_compress_call(std::uint64_t in_bytes, std::uint64_t out_bytes) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static auto& calls = reg.counter("szp.compress.calls");
  static auto& in = reg.counter("szp.compress.in_bytes");
  static auto& out = reg.counter("szp.compress.out_bytes");
  static auto& ratio = reg.gauge("szp.compress.last_ratio");
  calls.add();
  in.add(in_bytes);
  out.add(out_bytes);
  if (out_bytes > 0) {
    ratio.set(static_cast<double>(in_bytes) / static_cast<double>(out_bytes));
  }
}

void record_decompress_call(std::uint64_t out_bytes) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static auto& calls = reg.counter("szp.decompress.calls");
  static auto& out = reg.counter("szp.decompress.out_bytes");
  calls.add();
  out.add(out_bytes);
}

}  // namespace detail

// ------------------------------------------------------ host backends ----

namespace {

template <typename T>
CompressedStream host_compress(std::span<const T> data,
                               const core::Params& params, double eb_abs,
                               core::Executor& exec, ScratchPool& pool) {
  auto lease = pool.acquire(data.size(), params.block_len);
  CompressedStream out;
  out.bytes = core::compress_host(data, params, eb_abs, exec, lease.scratch());
  return out;
}

}  // namespace

CompressedStream SerialBackend::compress(std::span<const float> data,
                                         const core::Params& params,
                                         double eb_abs) {
  return host_compress(data, params, eb_abs, core::serial_executor(),
                       scratch_);
}

CompressedStream SerialBackend::compress_f64(std::span<const double> data,
                                             const core::Params& params,
                                             double eb_abs) {
  return host_compress(data, params, eb_abs, core::serial_executor(),
                       scratch_);
}

std::vector<float> SerialBackend::decompress(std::span<const byte_t> stream,
                                             gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host(stream, core::serial_executor(),
                               lease.scratch());
}

std::vector<double> SerialBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host_f64(stream, core::serial_executor(),
                                   lease.scratch());
}

ParallelHostBackend::ParallelHostBackend(unsigned threads) : pool_(threads) {}

CompressedStream ParallelHostBackend::compress(std::span<const float> data,
                                               const core::Params& params,
                                               double eb_abs) {
  return host_compress(data, params, eb_abs, pool_, scratch_);
}

CompressedStream ParallelHostBackend::compress_f64(
    std::span<const double> data, const core::Params& params, double eb_abs) {
  return host_compress(data, params, eb_abs, pool_, scratch_);
}

std::vector<float> ParallelHostBackend::decompress(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host(stream, pool_, lease.scratch());
}

std::vector<double> ParallelHostBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host_f64(stream, pool_, lease.scratch());
}

// ------------------------------------------------------ device wiring ----

core::DeviceCodecResult device_compress(gpusim::Device& dev,
                                        const gpusim::DeviceBuffer<float>& in,
                                        size_t n, const core::Params& params,
                                        double eb_abs,
                                        gpusim::DeviceBuffer<byte_t>& out) {
  const obs::Span span("api", "compress_on_device", "elements", n);
  const auto res = core::compress_device(dev, in, n, params, eb_abs, out);
  detail::record_compress_call(n * sizeof(float), res.bytes);
  return res;
}

core::DeviceCodecResult device_decompress(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<float>& out, size_t stream_bytes) {
  const obs::Span span("api", "decompress_on_device", "bytes",
                       stream_bytes != 0 ? stream_bytes : cmp.size());
  const auto res = core::decompress_device(dev, cmp, out, stream_bytes);
  detail::record_decompress_call(res.bytes * sizeof(float));
  return res;
}

core::DeviceCodecResult device_compress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<double>& in, size_t n,
    const core::Params& params, double eb_abs,
    gpusim::DeviceBuffer<byte_t>& out) {
  const obs::Span span("api", "compress_on_device", "elements", n);
  const auto res = core::compress_device_f64(dev, in, n, params, eb_abs, out);
  detail::record_compress_call(n * sizeof(double), res.bytes);
  return res;
}

core::DeviceCodecResult device_decompress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<double>& out, size_t stream_bytes) {
  const obs::Span span("api", "decompress_on_device", "bytes",
                       stream_bytes != 0 ? stream_bytes : cmp.size());
  const auto res = core::decompress_device_f64(dev, cmp, out, stream_bytes);
  detail::record_decompress_call(res.bytes * sizeof(double));
  return res;
}

// ------------------------------------------------------ DeviceBackend ----

DeviceBackend::DeviceBackend()
    : f32_(dev_), f64_(dev_), bytes_(dev_) {}

namespace {

template <typename T>
gpusim::BufferPool<T>& pool_of(DeviceBackend& b) {
  if constexpr (std::is_same_v<T, float>) {
    return b.f32_pool();
  } else {
    return b.f64_pool();
  }
}

}  // namespace

template <typename T>
CompressedStream DeviceBackend::compress_impl(std::span<const T> data,
                                              const core::Params& params,
                                              double eb_abs) {
  const std::lock_guard<std::mutex> lock(op_mutex_);
  auto in = pool_of<T>(*this).acquire(data.size());
  gpusim::copy_h2d(dev_, *in, data);
  auto cmp = bytes_.acquire(core::max_compressed_bytes(
      data.size(), params.block_len, params.checksum_group_blocks));
  core::DeviceCodecResult res;
  if constexpr (std::is_same_v<T, float>) {
    res = device_compress(dev_, *in, data.size(), params, eb_abs, *cmp);
  } else {
    res = device_compress_f64(dev_, *in, data.size(), params, eb_abs, *cmp);
  }
  CompressedStream out;
  out.trace = res.trace;
  out.bytes.resize(res.bytes);
  gpusim::copy_d2h<byte_t>(dev_, out.bytes, *cmp, res.bytes);
  return out;
}

template <typename T>
std::vector<T> DeviceBackend::decompress_impl(std::span<const byte_t> stream,
                                              gpusim::TraceSnapshot* trace) {
  const core::Header h = core::Header::deserialize(stream);
  if (h.is_f64() != std::is_same_v<T, double>) {
    throw format_error("DeviceBackend: stream precision mismatch");
  }
  const std::lock_guard<std::mutex> lock(op_mutex_);
  auto cmp = bytes_.acquire(stream.size());
  gpusim::copy_h2d(dev_, *cmp, stream);
  auto out = pool_of<T>(*this).acquire(h.num_elements);
  core::DeviceCodecResult res;
  if constexpr (std::is_same_v<T, float>) {
    res = device_decompress(dev_, *cmp, *out, stream.size());
  } else {
    res = device_decompress_f64(dev_, *cmp, *out, stream.size());
  }
  if (trace != nullptr) *trace = res.trace;
  std::vector<T> host(res.bytes);
  gpusim::copy_d2h<T>(dev_, host, *out, res.bytes);
  return host;
}

CompressedStream DeviceBackend::compress(std::span<const float> data,
                                         const core::Params& params,
                                         double eb_abs) {
  return compress_impl<float>(data, params, eb_abs);
}

CompressedStream DeviceBackend::compress_f64(std::span<const double> data,
                                             const core::Params& params,
                                             double eb_abs) {
  return compress_impl<double>(data, params, eb_abs);
}

std::vector<float> DeviceBackend::decompress(std::span<const byte_t> stream,
                                             gpusim::TraceSnapshot* trace) {
  return decompress_impl<float>(stream, trace);
}

std::vector<double> DeviceBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot* trace) {
  return decompress_impl<double>(stream, trace);
}

}  // namespace szp::engine
