#include "szp/engine/backend.hpp"

#include <algorithm>
#include <string>

#include "szp/gpusim/stream.hpp"
#include "szp/obs/metrics.hpp"
#include "szp/obs/telemetry/flight_recorder.hpp"
#include "szp/obs/telemetry/telemetry.hpp"
#include "szp/obs/tracer.hpp"

namespace szp::engine {

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerial: return "serial";
    case BackendKind::kParallelHost: return "parallel";
    case BackendKind::kDevice: return "device";
  }
  return "unknown";
}

BackendKind backend_from_name(std::string_view name) {
  if (name == "serial") return BackendKind::kSerial;
  if (name == "parallel" || name == "parallel-host") {
    return BackendKind::kParallelHost;
  }
  if (name == "device") return BackendKind::kDevice;
  throw format_error("unknown backend '" + std::string(name) +
                     "' (expected serial|parallel|device)");
}

std::unique_ptr<Backend> make_backend(BackendKind kind, unsigned threads,
                                      unsigned devices, unsigned streams) {
  switch (kind) {
    case BackendKind::kSerial: return std::make_unique<SerialBackend>();
    case BackendKind::kParallelHost:
      return std::make_unique<ParallelHostBackend>(threads);
    case BackendKind::kDevice:
      return std::make_unique<DeviceBackend>(devices, streams);
  }
  throw format_error("make_backend: invalid backend kind");
}

std::vector<CompressedStream> Backend::compress_batch(
    std::span<const std::span<const float>> fields, const core::Params& params,
    std::span<const double> eb_abs) {
  std::vector<CompressedStream> out;
  out.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out.push_back(compress(fields[i], params, eb_abs[i]));
  }
  return out;
}

namespace detail {

void record_compress_call(std::uint64_t in_bytes, std::uint64_t out_bytes) {
  auto& b = obs::telemetry::builtins();
  b.bytes_in.fetch_add(in_bytes, std::memory_order_relaxed);
  b.bytes_out.fetch_add(out_bytes, std::memory_order_relaxed);
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static auto& calls = reg.counter("szp.compress.calls");
  static auto& in = reg.counter("szp.compress.in_bytes");
  static auto& out = reg.counter("szp.compress.out_bytes");
  static auto& ratio = reg.gauge("szp.compress.last_ratio");
  calls.add();
  in.add(in_bytes);
  out.add(out_bytes);
  if (out_bytes > 0) {
    ratio.set(static_cast<double>(in_bytes) / static_cast<double>(out_bytes));
  }
}

void record_decompress_call(std::uint64_t out_bytes) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static auto& calls = reg.counter("szp.decompress.calls");
  static auto& out = reg.counter("szp.decompress.out_bytes");
  calls.add();
  out.add(out_bytes);
}

void record_request(const char* name, std::uint64_t trace_id) {
  auto& b = obs::telemetry::builtins();
  b.requests.fetch_add(1, std::memory_order_relaxed);
  if (trace_id != 0) {
    b.last_trace_id.store(trace_id, std::memory_order_relaxed);
  }
  obs::fr::record(obs::fr::Kind::kRequest, name);
}

}  // namespace detail

// ------------------------------------------------------ host backends ----

namespace {

template <typename T>
CompressedStream host_compress(std::span<const T> data,
                               const core::Params& params, double eb_abs,
                               core::Executor& exec, ScratchPool& pool) {
  auto lease = pool.acquire(data.size(), params.block_len);
  CompressedStream out;
  out.bytes = core::compress_host(data, params, eb_abs, exec, lease.scratch());
  return out;
}

}  // namespace

CompressedStream SerialBackend::compress(std::span<const float> data,
                                         const core::Params& params,
                                         double eb_abs) {
  return host_compress(data, params, eb_abs, core::serial_executor(),
                       scratch_);
}

CompressedStream SerialBackend::compress_f64(std::span<const double> data,
                                             const core::Params& params,
                                             double eb_abs) {
  return host_compress(data, params, eb_abs, core::serial_executor(),
                       scratch_);
}

std::vector<float> SerialBackend::decompress(std::span<const byte_t> stream,
                                             gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host(stream, core::serial_executor(),
                               lease.scratch());
}

std::vector<double> SerialBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host_f64(stream, core::serial_executor(),
                                   lease.scratch());
}

ParallelHostBackend::ParallelHostBackend(unsigned threads) : pool_(threads) {}

CompressedStream ParallelHostBackend::compress(std::span<const float> data,
                                               const core::Params& params,
                                               double eb_abs) {
  return host_compress(data, params, eb_abs, pool_, scratch_);
}

CompressedStream ParallelHostBackend::compress_f64(
    std::span<const double> data, const core::Params& params, double eb_abs) {
  return host_compress(data, params, eb_abs, pool_, scratch_);
}

std::vector<float> ParallelHostBackend::decompress(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host(stream, pool_, lease.scratch());
}

std::vector<double> ParallelHostBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot*) {
  auto lease = scratch_.acquire(0, 0);
  return core::decompress_host_f64(stream, pool_, lease.scratch());
}

// ------------------------------------------------------ device wiring ----

core::DeviceCodecResult device_compress(gpusim::Device& dev,
                                        const gpusim::DeviceBuffer<float>& in,
                                        size_t n, const core::Params& params,
                                        double eb_abs,
                                        gpusim::DeviceBuffer<byte_t>& out) {
  const obs::Span span("api", "compress_on_device", "elements", n);
  const auto res = core::compress_device(dev, in, n, params, eb_abs, out);
  detail::record_compress_call(n * sizeof(float), res.bytes);
  return res;
}

core::DeviceCodecResult device_decompress(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<float>& out, size_t stream_bytes) {
  const obs::Span span("api", "decompress_on_device", "bytes",
                       stream_bytes != 0 ? stream_bytes : cmp.size());
  const auto res = core::decompress_device(dev, cmp, out, stream_bytes);
  detail::record_decompress_call(res.bytes * sizeof(float));
  return res;
}

core::DeviceCodecResult device_compress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<double>& in, size_t n,
    const core::Params& params, double eb_abs,
    gpusim::DeviceBuffer<byte_t>& out) {
  const obs::Span span("api", "compress_on_device", "elements", n);
  const auto res = core::compress_device_f64(dev, in, n, params, eb_abs, out);
  detail::record_compress_call(n * sizeof(double), res.bytes);
  return res;
}

core::DeviceCodecResult device_decompress_f64(
    gpusim::Device& dev, const gpusim::DeviceBuffer<byte_t>& cmp,
    gpusim::DeviceBuffer<double>& out, size_t stream_bytes) {
  const obs::Span span("api", "decompress_on_device", "bytes",
                       stream_bytes != 0 ? stream_bytes : cmp.size());
  const auto res = core::decompress_device_f64(dev, cmp, out, stream_bytes);
  detail::record_decompress_call(res.bytes * sizeof(double));
  return res;
}

// ------------------------------------------------------ DeviceBackend ----

/// One batch lane: a shard device with its own buffer pools and async
/// streams. Shard 0 borrows the backend's primary device and pools (so
/// batch work warms the same buffers as the single-call API); extra
/// shards own a Device each. Member order matters: `streams` is declared
/// last so stream threads join before the owned device dies.
struct DeviceBackend::Shard {
  std::unique_ptr<gpusim::Device> owned_dev;
  std::unique_ptr<gpusim::BufferPool<float>> owned_f32;
  std::unique_ptr<gpusim::BufferPool<byte_t>> owned_bytes;
  gpusim::Device* dev = nullptr;
  gpusim::BufferPool<float>* f32 = nullptr;
  gpusim::BufferPool<byte_t>* bytes = nullptr;
  std::vector<std::unique_ptr<gpusim::Stream>> streams;
};

DeviceBackend::DeviceBackend(unsigned devices, unsigned streams)
    : f32_(dev_),
      f64_(dev_),
      bytes_(dev_),
      devices_(std::max(1u, devices)),
      streams_(std::max(1u, streams)) {}

DeviceBackend::~DeviceBackend() = default;

void DeviceBackend::ensure_shards() {
  if (!shards_.empty()) return;
  shards_.reserve(devices_);
  for (unsigned d = 0; d < devices_; ++d) {
    auto shard = std::make_unique<Shard>();
    if (d == 0) {
      shard->dev = &dev_;
      shard->f32 = &f32_;
      shard->bytes = &bytes_;
    } else {
      shard->owned_dev = std::make_unique<gpusim::Device>();
      shard->dev = shard->owned_dev.get();
      shard->owned_f32 =
          std::make_unique<gpusim::BufferPool<float>>(*shard->dev);
      shard->f32 = shard->owned_f32.get();
      shard->owned_bytes =
          std::make_unique<gpusim::BufferPool<byte_t>>(*shard->dev);
      shard->bytes = shard->owned_bytes.get();
    }
    shard->dev->set_timeline_enabled(timeline_on_);
    shard->streams.reserve(streams_);
    for (unsigned s = 0; s < streams_; ++s) {
      shard->streams.push_back(std::make_unique<gpusim::Stream>(
          *shard->dev, "d" + std::to_string(d) + ".s" + std::to_string(s)));
    }
    shards_.push_back(std::move(shard));
  }
}

gpusim::Device& DeviceBackend::shard_device(unsigned d) {
  const LockGuard lock(op_mutex_);
  ensure_shards();
  return *shards_.at(d)->dev;
}

gpusim::Stream& DeviceBackend::stream(unsigned d, unsigned s) {
  const LockGuard lock(op_mutex_);
  ensure_shards();
  return *shards_.at(d)->streams.at(s % streams_);
}

void DeviceBackend::set_timeline_enabled(bool on) {
  const LockGuard lock(op_mutex_);
  timeline_on_ = on;
  for (const auto& shard : shards_) shard->dev->set_timeline_enabled(on);
  if (shards_.empty()) dev_.set_timeline_enabled(on);
}

std::vector<std::vector<gpusim::OpRecord>> DeviceBackend::take_timelines() {
  const LockGuard lock(op_mutex_);
  std::vector<std::vector<gpusim::OpRecord>> out;
  if (shards_.empty()) {
    out.push_back(dev_.timeline());
    dev_.clear_timeline();
    return out;
  }
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->dev->timeline());
    shard->dev->clear_timeline();
  }
  return out;
}

namespace {

template <typename T>
gpusim::BufferPool<T>& pool_of(DeviceBackend& b) {
  if constexpr (std::is_same_v<T, float>) {
    return b.f32_pool();
  } else {
    return b.f64_pool();
  }
}

/// Shared state of one field's h2d → kernel → d2h op triple. The last op
/// lambda to be destroyed releases the pool leases (on the stream thread,
/// after the d2h retires).
struct AsyncJob {
  gpusim::BufferPool<float>::Lease in;
  gpusim::BufferPool<byte_t>::Lease cmp;
  std::span<const float> data;
  core::DeviceCodecResult res;
};

}  // namespace

void DeviceBackend::submit_compress(unsigned d, unsigned s,
                                    std::span<const float> data,
                                    const core::Params& params, double eb_abs,
                                    CompressedStream* out) {
  ensure_shards();
  Shard& shard = *shards_.at(d % devices_);
  gpusim::Stream& st = *shard.streams.at(s % streams_);
  gpusim::Device* dev = shard.dev;

  auto job = std::make_shared<AsyncJob>();
  job->in = shard.f32->acquire(data.size());
  job->cmp = shard.bytes->acquire(core::max_compressed_bytes(
      data.size(), params.block_len, params.checksum_group_blocks));
  job->data = data;

  st.submit(gpusim::OpKind::kMemcpyH2D, "h2d", [job, dev] {
    gpusim::copy_h2d(*dev, *job->in, job->data);
  });
  st.submit(gpusim::OpKind::kKernel, "szp_compress",
            [job, dev, params, eb_abs] {
              job->res = device_compress(*dev, *job->in, job->data.size(),
                                         params, eb_abs, *job->cmp);
            });
  st.submit(gpusim::OpKind::kMemcpyD2H, "d2h", [job, dev, out] {
    out->trace = job->res.trace;
    out->bytes.resize(job->res.bytes);
    gpusim::copy_d2h<byte_t>(*dev, out->bytes, *job->cmp, job->res.bytes);
  });
}

std::vector<CompressedStream> DeviceBackend::compress_batch(
    std::span<const std::span<const float>> fields, const core::Params& params,
    std::span<const double> eb_abs) {
  // One device, one stream: the async machinery adds nothing — keep the
  // batch on the inline serial path (no stream threads spun up).
  if (devices_ == 1 && streams_ == 1) {
    return Backend::compress_batch(fields, params, eb_abs);
  }
  const LockGuard lock(op_mutex_);
  ensure_shards();

  std::vector<CompressedStream> out(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    // Field i -> device i % D, stream (i / D) % S: consecutive fields fan
    // out across devices first, then alternate streams within a device so
    // one field's H2D overlaps the previous field's kernel.
    const unsigned d = static_cast<unsigned>(i % devices_);
    const unsigned s = static_cast<unsigned>((i / devices_) % streams_);
    submit_compress(d, s, fields[i], params, eb_abs[i], &out[i]);
  }

  // Drain every lane; surface the first stream error after all lanes are
  // quiescent (the job shared_ptrs must be released before `out` dies).
  std::exception_ptr first;
  for (const auto& shard : shards_) {
    for (const auto& st : shard->streams) {
      try {
        st->synchronize();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
  }
  if (first) std::rethrow_exception(first);
  return out;
}

template <typename T>
CompressedStream DeviceBackend::compress_impl(std::span<const T> data,
                                              const core::Params& params,
                                              double eb_abs) {
  const LockGuard lock(op_mutex_);
  auto in = pool_of<T>(*this).acquire(data.size());
  gpusim::copy_h2d(dev_, *in, data);
  auto cmp = bytes_.acquire(core::max_compressed_bytes(
      data.size(), params.block_len, params.checksum_group_blocks));
  core::DeviceCodecResult res;
  if constexpr (std::is_same_v<T, float>) {
    res = device_compress(dev_, *in, data.size(), params, eb_abs, *cmp);
  } else {
    res = device_compress_f64(dev_, *in, data.size(), params, eb_abs, *cmp);
  }
  CompressedStream out;
  out.trace = res.trace;
  out.bytes.resize(res.bytes);
  gpusim::copy_d2h<byte_t>(dev_, out.bytes, *cmp, res.bytes);
  return out;
}

template <typename T>
std::vector<T> DeviceBackend::decompress_impl(std::span<const byte_t> stream,
                                              gpusim::TraceSnapshot* trace) {
  const core::Header h = core::Header::deserialize(stream);
  if (h.is_f64() != std::is_same_v<T, double>) {
    throw format_error("DeviceBackend: stream precision mismatch");
  }
  const LockGuard lock(op_mutex_);
  auto cmp = bytes_.acquire(stream.size());
  gpusim::copy_h2d(dev_, *cmp, stream);
  auto out = pool_of<T>(*this).acquire(h.num_elements);
  core::DeviceCodecResult res;
  if constexpr (std::is_same_v<T, float>) {
    res = device_decompress(dev_, *cmp, *out, stream.size());
  } else {
    res = device_decompress_f64(dev_, *cmp, *out, stream.size());
  }
  if (trace != nullptr) *trace = res.trace;
  std::vector<T> host(res.bytes);
  gpusim::copy_d2h<T>(dev_, host, *out, res.bytes);
  return host;
}

CompressedStream DeviceBackend::compress(std::span<const float> data,
                                         const core::Params& params,
                                         double eb_abs) {
  return compress_impl<float>(data, params, eb_abs);
}

CompressedStream DeviceBackend::compress_f64(std::span<const double> data,
                                             const core::Params& params,
                                             double eb_abs) {
  return compress_impl<double>(data, params, eb_abs);
}

std::vector<float> DeviceBackend::decompress(std::span<const byte_t> stream,
                                             gpusim::TraceSnapshot* trace) {
  return decompress_impl<float>(stream, trace);
}

std::vector<double> DeviceBackend::decompress_f64(
    std::span<const byte_t> stream, gpusim::TraceSnapshot* trace) {
  return decompress_impl<double>(stream, trace);
}

}  // namespace szp::engine
