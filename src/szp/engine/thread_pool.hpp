// Persistent worker pool implementing core::Executor for the
// parallel-host backend. Workers live for the pool's lifetime, so a
// compress call costs two condition-variable signals instead of thread
// spawns. The calling thread participates in every batch, so a pool with
// W workers gives W+1 execution slots.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "szp/core/host_codec.hpp"
#include "szp/util/thread_annotations.hpp"

namespace szp::engine {

class ThreadPool final : public core::Executor {
 public:
  /// `threads` = total execution slots (workers + the calling thread);
  /// 0 picks std::thread::hardware_concurrency (at least 2).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned width() const override {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run task(0..count). Tasks may execute on any worker or the calling
  /// thread; returns after all complete. The first task exception is
  /// rethrown (remaining tasks still run). Safe to call from multiple
  /// threads: each call completes its own batch (concurrent batches share
  /// the workers).
  void run(size_t count, const std::function<void(size_t)>& task) override;

 private:
  /// One batch of tasks. Heap-shared so a worker that observed a batch can
  /// finish its (empty) claim loop safely even after the submitting run()
  /// call returned.
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    // Guarded by the pool mutex. (Batch is shared across pool instances'
    // scopes, so the guard cannot be named in an attribute here; process()
    // and run() take the lock around every access.)
    size_t done = 0;
    std::exception_ptr error;
  };

  void worker_loop(unsigned index);
  void process(Batch& batch) SZP_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_start_;
  CondVar cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Batch> batch_ SZP_GUARDED_BY(mutex_);
  std::uint64_t generation_ SZP_GUARDED_BY(mutex_) = 0;
  bool stop_ SZP_GUARDED_BY(mutex_) = false;
};

}  // namespace szp::engine
